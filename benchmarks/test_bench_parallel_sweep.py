"""Benchmark: process-parallel sweep executor vs the serial loop.

Runs the same 8-job seed grid twice through ``api.run_sweep`` — serially
and over a worker pool driving the PR-9 chunked executor (two jobs per
worker task, so each submission amortises its IPC round-trip and the
per-worker assembly cache gets consecutive hits) — and reports jobs/sec
both ways. Two guards:

* **equivalence** (always): the parallel results must be byte-identical
  to the serial ones, in the same order, down to the ``--out`` JSON; and
* **speedup** (multi-core hosts only): the pool must beat the serial
  loop. On a single-core host process parallelism cannot win, so the
  guard is reported as skipped rather than asserted against physics;
  thresholds also relax under ``ECT_PERF_RELAXED=1`` / scaled workloads
  so CI smoke runs stay un-flaky.
"""

from __future__ import annotations

import json
import os
import time

from conftest import perf_relaxed, write_perf_report
from repro import api
from repro.parallel import _available_cpus
from repro.spec import SweepSpec
from repro.spec.compiler import spec_from_fleet_flags

N_JOBS = 8
N_HUBS = 24
POOL_SIZE = 4
CHUNK_SIZE = 2

# Tightened with the chunked executor: batching jobs per worker task
# cut the IPC overhead the old floors priced in.
MIN_SPEEDUP = 1.3
MIN_SPEEDUP_RELAXED = 0.9


def _sweep(scale: float) -> SweepSpec:
    days = max(int(round(7 * scale)), 2)
    base = spec_from_fleet_flags(n_hubs=N_HUBS, days=days)
    return SweepSpec(
        base=base,
        parameters={"run.seed": tuple(range(N_JOBS))},
        name="parallel-bench",
    )


def test_bench_parallel_sweep():
    scale = float(os.environ.get("ECT_BENCH_SCALE", 1.0))
    sweep = _sweep(scale)
    cores = _available_cpus()
    # Always run the real pool (even single-core hosts must produce
    # byte-identical results through it); only the speedup guard needs
    # genuine parallel hardware.
    workers = POOL_SIZE

    start = time.perf_counter()
    serial = api.run_sweep(sweep)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = api.run_sweep(sweep, jobs=workers, chunk_size=CHUNK_SIZE)
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s
    multi_core = cores >= 2
    relaxed = perf_relaxed()
    floor = MIN_SPEEDUP_RELAXED if relaxed else MIN_SPEEDUP
    if not multi_core:
        guard = "skipped (single-core host)"
    else:
        guard = f">= {floor:.1f}x{' relaxed' if relaxed else ''}"

    report = "\n".join(
        [
            "== parallel-sweep: worker pool vs serial sweep ==",
            f"workload: {N_JOBS} jobs x {N_HUBS} hubs x "
            f"{sweep.base.run.days} days, {workers} workers, "
            f"chunks of {CHUNK_SIZE} ({cores} cores visible)",
            f"serial    {N_JOBS / serial_s:>8.2f} jobs/sec  ({serial_s:.3f}s)",
            f"parallel  {N_JOBS / parallel_s:>8.2f} jobs/sec  ({parallel_s:.3f}s)",
            f"speedup   {speedup:>8.2f}x  (guard: {guard})",
            "results byte-identical to serial: checked below",
        ]
    )
    write_perf_report(
        "parallel-sweep",
        report,
        {
            "workload": {
                "n_jobs": N_JOBS,
                "n_hubs": N_HUBS,
                "days": sweep.base.run.days,
                "workers": workers,
                "chunk_size": CHUNK_SIZE,
                "cores": cores,
            },
            "serial_jobs_per_sec": N_JOBS / serial_s,
            "parallel_jobs_per_sec": N_JOBS / parallel_s,
            "speedup": speedup,
            "speedup_guard": guard,
            "relaxed": relaxed,
        },
    )
    print("\n" + report)

    # Equivalence guard: same jobs, same order, same bytes.
    serial_json = json.dumps(
        [result.to_json_dict() for result in serial], sort_keys=True
    )
    parallel_json = json.dumps(
        [result.to_json_dict() for result in parallel], sort_keys=True
    )
    assert serial_json == parallel_json

    if multi_core:
        assert speedup >= floor, report
