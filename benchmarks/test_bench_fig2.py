"""Bench: regenerate paper artifact fig2 (see DESIGN.md §4)."""

from conftest import bench_scale


def test_bench_fig2(run_artifact):
    run_artifact("fig2", scale=bench_scale(1.0))
