"""Bench: Table III — average daily rewards for all 12 hubs."""

from conftest import bench_scale


def test_bench_table3(run_artifact):
    run_artifact("table3", scale=bench_scale(0.5))
