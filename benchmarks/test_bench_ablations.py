"""Benches: ablations — schedulers vs DP bound, c_BP sweep, loss forms."""

from conftest import bench_scale


def test_bench_abl_sched(run_artifact):
    run_artifact("abl-sched", scale=bench_scale(1.0))


def test_bench_abl_cbp(run_artifact):
    run_artifact("abl-cbp", scale=bench_scale(1.0))


def test_bench_abl_loss(run_artifact):
    run_artifact("abl-loss", scale=bench_scale(0.5))
