"""Benchmark: batched fleet engine vs the per-hub Python loop.

Simulates the same 100-hub scenario set under the rule-based scheduler
twice — once through :class:`repro.fleet.FleetSimulation` (one vectorized
step per slot) and once as 100 independent
:class:`~repro.hub.simulation.HubSimulation` runs — and reports throughput
in hub-slots/sec. A second case times the shared-grid coupled engine
(binding feeders, allocation + reserve routing live every slot) against
the uncoupled batched step: the guard is coupling < 2× the uncoupled
cost. Reports are persisted to ``reports/fleet.txt`` so the perf
trajectory is tracked across PRs; the PR-1 acceptance floor of a ≥5×
batched speedup still applies.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from conftest import write_perf_report
from repro.fleet import FleetRuleBasedScheduler, build_default_fleet
from repro.hub.simulation import HubSimulation
from repro.rl.schedulers import RuleBasedScheduler

REPORT_DIR = Path(__file__).parent / "reports"

#: Fleet size pinned by the acceptance criterion; horizon scales instead.
N_HUBS = 100


def test_bench_fleet_throughput():
    scale = float(os.environ.get("ECT_BENCH_SCALE", 1.0))
    n_days = max(int(round(14 * scale)), 2)
    scenarios, sim = build_default_fleet(
        N_HUBS, n_days=n_days, seed=0, outage_probability=0.001
    )
    hub_slots = N_HUBS * sim.horizon

    start = time.perf_counter()
    batched_book = sim.run(FleetRuleBasedScheduler())
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    looped_profit = 0.0
    for index, scenario in enumerate(scenarios):
        one = HubSimulation(scenario.build_hub(), sim.inputs.hub(index))
        one.run(RuleBasedScheduler())
        looped_profit += one.book.profit
    looped_s = time.perf_counter() - start

    batched_rate = hub_slots / batched_s
    looped_rate = hub_slots / looped_s
    speedup = batched_rate / looped_rate

    report = "\n".join(
        [
            "== fleet: batched vs looped throughput ==",
            f"workload: {N_HUBS} hubs x {sim.horizon} slots "
            f"({hub_slots} hub-slots), rule-based scheduler",
            f"batched   {batched_rate:>12,.0f} hub-slots/sec  ({batched_s:.3f}s)",
            f"looped    {looped_rate:>12,.0f} hub-slots/sec  ({looped_s:.3f}s)",
            f"speedup   {speedup:>12.1f}x",
            f"network profit agreement: batched ${batched_book.profit:,.1f} "
            f"vs looped ${looped_profit:,.1f}",
        ]
    )
    write_perf_report(
        "fleet",
        report,
        {
            "workload": {
                "n_hubs": N_HUBS,
                "slots": sim.horizon,
                "hub_slots": hub_slots,
                "scheduler": "rule-based",
            },
            "batched_hub_slots_per_sec": batched_rate,
            "looped_hub_slots_per_sec": looped_rate,
            "speedup": speedup,
        },
    )
    print("\n" + report)

    # The engines must agree (the real equivalence suite lives in tests/).
    assert abs(batched_book.profit - looped_profit) < 1e-6
    # Acceptance floor: the batched engine is at least 5x the Python loop.
    assert speedup >= 5.0, report


def test_bench_fleet_coupling_overhead():
    """Shared-grid coupling must cost < 2x the uncoupled batched step.

    Both runs use ``congestion_aware=False`` so the action streams start
    identical and the congested run cannot schedule its way around the
    binding limit — the timing difference is the allocation + reserve
    routing itself, exercised on real contention at every scale. The
    timed horizon is floored at 14 days: this ratio gates CI, and a
    sub-50 ms numerator would make the guard a coin flip on shared
    runners.
    """
    scale = float(os.environ.get("ECT_BENCH_SCALE", 1.0))
    n_days = max(int(round(14 * scale)), 14)
    n_feeders = 4

    def timed_run(feeder_capacity_kw):
        _, sim = build_default_fleet(
            N_HUBS,
            n_days=n_days,
            seed=0,
            outage_probability=0.001,
            n_feeders=n_feeders,
            feeder_capacity_kw=feeder_capacity_kw,
        )
        best = float("inf")
        for _ in range(3):  # best-of-3 damps shared-runner noise
            sim.reset()
            start = time.perf_counter()
            book = sim.run(FleetRuleBasedScheduler(congestion_aware=False))
            best = min(best, time.perf_counter() - start)
        return book, best

    # Reference: the same 4-feeder topology, unlimited capacity (the
    # engine's fast path), peaks read off the book's feeder rollup.
    reference_book, uncoupled_s = timed_run(np.inf)
    capacity = 0.7 * float(reference_book.feeder_peak_import_kw.max())
    coupled_book, coupled_s = timed_run(capacity)

    hub_slots = N_HUBS * reference_book.horizon
    overhead = coupled_s / uncoupled_s
    report = "\n".join(
        [
            "== fleet: shared-grid coupling overhead ==",
            f"workload: {N_HUBS} hubs x {reference_book.horizon} slots, "
            f"{n_feeders} feeders @ {capacity:,.0f} kW (70% of peak), "
            "rule-based scheduler (congestion-blind)",
            f"uncoupled {hub_slots / uncoupled_s:>12,.0f} hub-slots/sec  "
            f"({uncoupled_s:.3f}s)",
            f"coupled   {hub_slots / coupled_s:>12,.0f} hub-slots/sec  "
            f"({coupled_s:.3f}s)",
            f"overhead  {overhead:>12.2f}x  (guard: < 2x)",
            f"congestion: {coupled_book.total_import_shortfall_kwh:,.1f} kWh "
            f"curtailed over {coupled_book.congested_feeder_slots} "
            "congested feeder-slots",
        ]
    )
    # Own section file: repeated/partial bench runs stay deterministic.
    write_perf_report(
        "fleet-coupling",
        report,
        {
            "workload": {
                "n_hubs": N_HUBS,
                "slots": reference_book.horizon,
                "hub_slots": hub_slots,
                "n_feeders": n_feeders,
                "feeder_capacity_kw": capacity,
                "scheduler": "rule-based (congestion-blind)",
            },
            "uncoupled_hub_slots_per_sec": hub_slots / uncoupled_s,
            "coupled_hub_slots_per_sec": hub_slots / coupled_s,
            "overhead": overhead,
            "congested_feeder_slots": coupled_book.congested_feeder_slots,
            "curtailed_kwh": coupled_book.total_import_shortfall_kwh,
        },
    )
    print("\n" + report)

    # The congested run must actually exercise the coupling path.
    assert coupled_book.congested_feeder_slots > 0
    # Guard: the allocation step costs less than the batched step itself.
    assert overhead < 2.0, report
