"""Benchmark: batched fleet engine vs the per-hub Python loop.

Simulates the same 100-hub scenario set under the rule-based scheduler
twice — once through :class:`repro.fleet.FleetSimulation` (one vectorized
step per slot) and once as 100 independent
:class:`~repro.hub.simulation.HubSimulation` runs — and reports throughput
in hub-slots/sec. The report is persisted to ``reports/fleet.txt`` so the
perf trajectory is tracked across PRs; the acceptance floor for this PR is
a ≥5× batched speedup.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.fleet import FleetRuleBasedScheduler, build_default_fleet
from repro.hub.simulation import HubSimulation
from repro.rl.schedulers import RuleBasedScheduler

REPORT_DIR = Path(__file__).parent / "reports"

#: Fleet size pinned by the acceptance criterion; horizon scales instead.
N_HUBS = 100


def test_bench_fleet_throughput():
    scale = float(os.environ.get("ECT_BENCH_SCALE", 1.0))
    n_days = max(int(round(14 * scale)), 2)
    scenarios, sim = build_default_fleet(
        N_HUBS, n_days=n_days, seed=0, outage_probability=0.001
    )
    hub_slots = N_HUBS * sim.horizon

    start = time.perf_counter()
    batched_book = sim.run(FleetRuleBasedScheduler())
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    looped_profit = 0.0
    for index, scenario in enumerate(scenarios):
        one = HubSimulation(scenario.build_hub(), sim.inputs.hub(index))
        one.run(RuleBasedScheduler())
        looped_profit += one.book.profit
    looped_s = time.perf_counter() - start

    batched_rate = hub_slots / batched_s
    looped_rate = hub_slots / looped_s
    speedup = batched_rate / looped_rate

    report = "\n".join(
        [
            "== fleet: batched vs looped throughput ==",
            f"workload: {N_HUBS} hubs x {sim.horizon} slots "
            f"({hub_slots} hub-slots), rule-based scheduler",
            f"batched   {batched_rate:>12,.0f} hub-slots/sec  ({batched_s:.3f}s)",
            f"looped    {looped_rate:>12,.0f} hub-slots/sec  ({looped_s:.3f}s)",
            f"speedup   {speedup:>12.1f}x",
            f"network profit agreement: batched ${batched_book.profit:,.1f} "
            f"vs looped ${looped_profit:,.1f}",
        ]
    )
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / "fleet.txt").write_text(report + "\n")
    print("\n" + report)

    # The engines must agree (the real equivalence suite lives in tests/).
    assert abs(batched_book.profit - looped_profit) < 1e-6
    # Acceptance floor: the batched engine is at least 5x the Python loop.
    assert speedup >= 5.0, report
