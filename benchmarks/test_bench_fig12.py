"""Bench: regenerate paper artifact fig12 (see DESIGN.md §4)."""

from conftest import bench_scale


def test_bench_fig12(run_artifact):
    run_artifact("fig12", scale=bench_scale(0.5))
