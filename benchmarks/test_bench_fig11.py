"""Bench: regenerate paper artifact fig11 (see DESIGN.md §4)."""

from conftest import bench_scale


def test_bench_fig11(run_artifact):
    run_artifact("fig11", scale=bench_scale(0.5))
