"""Bench: regenerate paper artifact fig5 (see DESIGN.md §4)."""

from conftest import bench_scale


def test_bench_fig5(run_artifact):
    run_artifact("fig5", scale=bench_scale(1.0))
