"""Bench: Fig. 13 — reward curves of 4 hubs x 4 pricing methods.

DRL training runs inside; default scale 0.5 keeps this a few minutes.
Paper scale (500 train episodes) is reachable via ECT_BENCH_SCALE.
"""

from conftest import bench_scale


def test_bench_fig13(run_artifact):
    run_artifact("fig13", scale=bench_scale(0.5))
