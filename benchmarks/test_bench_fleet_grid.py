"""Bench: regenerate the ``fleet-grid`` congestion sweep report.

Also guards the value-of-lost-load semantics: with unserved energy
charged at VoLL, the deeply-congested end of the sweep must earn *less*
than the uncongested fleet (before VoLL, skipping refused grid purchases
made deep congestion look profitable).
"""

import json

from conftest import REPORT_DIR, bench_scale


def test_bench_fleet_grid(run_artifact):
    result = run_artifact("fleet-grid", scale=bench_scale(1.0))
    data = result.data
    tightest = data["sweep"][-1]
    assert tightest["unserved_kwh"] > 0.0, "sweep never got congested"
    assert tightest["network_profit"] < data["uncongested_profit"]
    assert data["priority_at_tightest"]["network_profit"] < data["uncongested_profit"]
    # Machine-readable twin of reports/fleet-grid.txt (diffable across PRs).
    (REPORT_DIR / "fleet-grid.json").write_text(
        json.dumps(result.to_json_dict(), indent=2, sort_keys=True) + "\n"
    )
