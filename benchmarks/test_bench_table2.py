"""Bench: regenerate paper artifact table2 (see DESIGN.md §4)."""

from conftest import bench_scale


def test_bench_table2(run_artifact):
    run_artifact("table2", scale=bench_scale(1.0))
