"""Bench: regenerate paper artifact fig3 (see DESIGN.md §4)."""

from conftest import bench_scale


def test_bench_fig3(run_artifact):
    run_artifact("fig3", scale=bench_scale(1.0))
