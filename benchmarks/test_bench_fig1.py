"""Bench: regenerate paper artifact fig1 (see DESIGN.md §4)."""

from conftest import bench_scale


def test_bench_fig1(run_artifact):
    run_artifact("fig1", scale=bench_scale(1.0))
