"""Benchmark: the fleet pricing loop's occupancy re-realisation seam.

Two timings gate the city-scale pricing port. First, the raw seam: once
a :class:`~repro.spec.compiler.FleetAssembly` has cached its latent
strata, re-resolving charging occupancy against a fresh ``(n_hubs,
horizon)`` discount plane must run at numpy speed — this is what lets a
pricing study re-price the same fleet per method without re-drawing
anything. Second, the end-to-end ``run_pricing`` comparison at a scaled
fleet size, so the wall-clock of a Table III reproduction is tracked
across PRs. Reports land in ``reports/pricing.{txt,json}``.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import bench_scale, perf_relaxed, write_perf_report
from repro import api
from repro.spec.compiler import _assemble_fleet, spec_from_price_flags

#: Re-realisation throughput floors, in hub-slots/sec.
REALIZE_FLOOR = 2e6
REALIZE_FLOOR_RELAXED = 2e5


def test_bench_occupancy_rerealization():
    scale = bench_scale(1.0)
    spec = spec_from_price_flags(scale=scale)
    assembly = _assemble_fleet(spec)
    assembly.realize_strata()  # pay the one-off strata draw up front

    rng = np.random.default_rng(0)
    planes = [
        np.where(
            rng.random((assembly.n_hubs, assembly.horizon)) < 0.2, 0.2, 0.0
        )
        for _ in range(8)
    ]
    hub_slots = assembly.n_hubs * assembly.horizon

    best = float("inf")
    for _ in range(3):  # best-of-3 damps shared-runner noise
        start = time.perf_counter()
        for plane in planes:
            assembly.realize_occupancy(plane)
        best = min(best, time.perf_counter() - start)
    rate = len(planes) * hub_slots / best

    floor = REALIZE_FLOOR_RELAXED if perf_relaxed() else REALIZE_FLOOR
    report = "\n".join(
        [
            "== pricing: batched occupancy re-realisation ==",
            f"workload: {assembly.n_hubs} hubs x {assembly.horizon} slots, "
            f"{len(planes)} discount planes ({len(planes) * hub_slots} "
            "hub-slot resolves)",
            f"re-realise {rate:>12,.0f} hub-slots/sec  (best of 3: {best:.4f}s)",
            f"floor      {floor:>12,.0f} hub-slots/sec "
            f"({'relaxed' if perf_relaxed() else 'strict'})",
        ]
    )

    start = time.perf_counter()
    result = api.run_pricing(
        spec_from_price_flags(scale=min(scale, 0.25)),
        methods=("none", "evening", "oracle"),
    )
    study_s = time.perf_counter() - start
    table = result.data["per_method"]
    report += "\n" + "\n".join(
        [
            "== pricing: end-to-end method comparison ==",
            f"workload: {result.data['n_hubs']} hubs x {result.data['days']} "
            f"days, methods {','.join(result.data['methods'])}",
            f"study wall-clock {study_s:.2f}s "
            f"({study_s / len(table):.2f}s per method)",
        ]
    )

    write_perf_report(
        "pricing",
        report,
        {
            "workload": {
                "n_hubs": assembly.n_hubs,
                "slots": assembly.horizon,
                "planes": len(planes),
                "hub_slots": hub_slots,
            },
            "rerealize_hub_slots_per_sec": rate,
            "floor_hub_slots_per_sec": floor,
            "study": {
                "n_hubs": result.data["n_hubs"],
                "days": result.data["days"],
                "methods": result.data["methods"],
                "wall_clock_s": study_s,
            },
        },
    )
    print("\n" + report)

    assert rate >= floor, report
