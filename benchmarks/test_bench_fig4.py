"""Bench: regenerate paper artifact fig4 (see DESIGN.md §4)."""

from conftest import bench_scale


def test_bench_fig4(run_artifact):
    run_artifact("fig4", scale=bench_scale(1.0))
