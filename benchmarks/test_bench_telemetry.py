"""Benchmark: telemetry overhead on the fused step kernel.

The telemetry design promise is *near-zero cost when disabled*: a run
without a session pays exactly one ``is not None`` branch per slot, and
an attached session books counters per slot (not per hub-slot), so even
enabled overhead stays small on wide fleets. This bench measures both on
the canonical step-kernel workload (100 hubs x 336 slots, rule-based
scheduler):

* **disabled** — plain :class:`~repro.fleet.FleetSimulation` run, the
  rate every other bench reports; regressions here are already gated by
  the step-kernel bench's fused-vs-reference speedup guard;
* **enabled** — the same engine with a :class:`~repro.telemetry.session.
  Telemetry` session attached, guarded to stay within a bounded slowdown
  of the disabled rate.

Both runs must book identical economics (telemetry is observational
only). Thresholds relax under ``ECT_PERF_RELAXED=1`` / scaled-down
workloads, where per-slot hook cost is amplified relative to the
shrunken arithmetic and timer noise dominates.
"""

from __future__ import annotations

import os
import time

from conftest import perf_relaxed, write_perf_report
from repro.fleet import FleetRuleBasedScheduler, build_default_fleet
from repro.telemetry import Telemetry

N_HUBS = 100

#: Max tolerated enabled-telemetry slowdown vs the disabled run.
MAX_OVERHEAD = 0.15
MAX_OVERHEAD_RELAXED = 0.60


def _timed_run(sim, rounds: int = 3):
    best, book = float("inf"), None
    for _ in range(rounds):
        sim.reset()
        start = time.perf_counter()
        book = sim.run(FleetRuleBasedScheduler())
        best = min(best, time.perf_counter() - start)
    return book, best


def test_bench_telemetry_overhead():
    scale = float(os.environ.get("ECT_BENCH_SCALE", 1.0))
    n_days = max(int(round(14 * scale)), 2)
    _, sim = build_default_fleet(
        N_HUBS, n_days=n_days, seed=0, outage_probability=0.001
    )
    hub_slots = N_HUBS * sim.horizon

    disabled_book, disabled_s = _timed_run(sim)

    telemetry = Telemetry()
    sim.attach_telemetry(telemetry)
    enabled_book, enabled_s = _timed_run(sim)
    sim.attach_telemetry(None)

    disabled_rate = hub_slots / disabled_s
    enabled_rate = hub_slots / enabled_s
    overhead = enabled_s / disabled_s - 1.0
    relaxed = perf_relaxed()
    ceiling = MAX_OVERHEAD_RELAXED if relaxed else MAX_OVERHEAD

    record = telemetry.to_dict()
    step_stats = record["histograms"]["engine.step_seconds"]

    report = "\n".join(
        [
            "== telemetry: step-kernel overhead, disabled vs enabled ==",
            f"workload: {N_HUBS} hubs x {sim.horizon} slots "
            f"({hub_slots} hub-slots), rule-based scheduler",
            f"disabled  {disabled_rate:>12,.0f} hub-slots/sec  "
            f"({disabled_s:.3f}s)",
            f"enabled   {enabled_rate:>12,.0f} hub-slots/sec  "
            f"({enabled_s:.3f}s)",
            f"overhead  {overhead:>12.1%}  (guard: <= {ceiling:.0%}"
            f"{', relaxed' if relaxed else ''})",
            f"booked step histogram: {step_stats['count']} slots, "
            f"mean {step_stats['mean'] * 1e6:,.1f} us",
        ]
    )
    write_perf_report(
        "telemetry-overhead",
        report,
        {
            "workload": {
                "n_hubs": N_HUBS,
                "slots": sim.horizon,
                "hub_slots": hub_slots,
                "scheduler": "rule-based",
            },
            "disabled_hub_slots_per_sec": disabled_rate,
            "enabled_hub_slots_per_sec": enabled_rate,
            "overhead": overhead,
            "relaxed": relaxed,
        },
    )
    print("\n" + report)

    # Telemetry is observational only: identical economics either way.
    assert enabled_book.profit == disabled_book.profit

    # The session saw every slot of the timed rounds.
    assert record["counters"]["engine.slots"] == 3 * sim.horizon
    assert record["counters"]["engine.hub_slots"] == 3 * hub_slots
    assert record["counters"]["engine.resets"] == 3
    assert step_stats["count"] == 3 * sim.horizon

    assert overhead <= ceiling, report
