"""Benchmark: the fused step kernel vs the PR-3 per-slot step.

The PR-4 hot-path overhaul precomputes every action-independent slot
quantity (:class:`repro.fleet.planes.SlotPlanes`), runs the per-step
arithmetic through reusable ``out=`` buffers straight into the cost
book's storage, evaluates the blackout branch only on outage rows, and
replaces the per-step ``np.isin`` action validation with a cheap exact
check. This bench measures the payoff two ways on the canonical
``fleet.txt`` workload (100 hubs x 336 slots, rule-based scheduler):

* against :class:`ReferenceStepSimulation` — a faithful in-file copy of
  the PR-3 ``step()`` (slot-tuple rebuilds, fresh temporaries, both
  branches every slot) run on the same hardware, which is the
  hardware-independent speedup the guard asserts on; and
* against the absolute PR-3 rate recorded in ``reports/fleet.txt``
  (582,104 hub-slots/sec), reported for the cross-PR trend.

Both engines must also agree numerically (profit within 1e-6, columns
within atol 1e-9 — the same tolerance as the scalar-equivalence suite).
Thresholds relax under ``ECT_PERF_RELAXED=1`` / scaled-down workloads so
CI smoke runs guard regressions without flaky hard numbers.
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import perf_relaxed, write_perf_report
from repro.energy.battery import CHARGE, DISCHARGE, IDLE
from repro.errors import FleetError, GridError
from repro.fleet import FleetRuleBasedScheduler, FleetSimulation, build_default_fleet

N_HUBS = 100

#: PR-3 batched rate recorded in reports/fleet.txt before the overhaul.
PR3_BASELINE_RATE = 582_104.0

#: Same-hardware speedup guard over the reference step implementation.
MIN_SPEEDUP = 2.0
MIN_SPEEDUP_RELAXED = 1.2


class ReferenceStepSimulation(FleetSimulation):
    """The PR-3 step, verbatim: per-slot recomputation, no plane cache.

    Kept as the benchmark's reference so the speedup ratio is measured on
    the hardware running the bench instead of against a recorded number
    from other silicon. Only ``step`` differs; construction, the book,
    feeders, and schedulers are shared with the fused engine.
    """

    def step(self, actions: np.ndarray) -> dict[str, np.ndarray]:
        if self.done:
            raise FleetError(f"fleet horizon of {self.horizon} slots exhausted")
        actions = np.asarray(actions)
        if actions.shape != (self.n_hubs,):
            raise FleetError(
                f"actions must have shape ({self.n_hubs},), got {actions.shape}"
            )
        if not np.isin(actions, (DISCHARGE, IDLE, CHARGE)).all():
            raise FleetError("battery actions must be -1, 0, or 1")

        t = self._t
        params = self.params
        dt = params.dt_h
        blackout = self._outage[:, t]

        slot = self.inputs.slot(t)
        p_bs = params.bs_power_kw(slot.load_rate)
        rtp = slot.rtp_kwh
        srtp = params.cs_base_price_kwh * (1.0 - slot.discount)
        p_pv = slot.pv_power_kw
        p_wt = slot.wt_power_kw

        normal = self._normal_branch(actions, p_bs, p_pv, p_wt, t, dt)
        dark = self._blackout_branch(p_bs, p_pv, p_wt, dt)

        applied_action = np.where(blackout, IDLE, normal["action"])
        p_cs = np.where(blackout, 0.0, normal["p_cs_kw"])
        p_bp = np.where(blackout, dark["p_bp_kw"], normal["p_bp_kw"])
        p_grid = np.where(blackout, 0.0, normal["p_grid_kw"])
        surplus = np.where(blackout, dark["surplus_kw"], normal["surplus_kw"])
        unserved = np.where(blackout, dark["unserved_kwh"], 0.0)
        soc = np.where(blackout, dark["soc_kwh"], normal["soc_kwh"])
        throughput = np.where(
            blackout, dark["throughput_kwh"], normal["throughput_kwh"]
        )

        limit = params.import_limit_kw
        over = ~blackout & (limit > 0.0) & (p_grid > limit)
        if over.any():
            hub = int(np.argmax(over))
            raise GridError(
                f"hub {hub}: import of {p_grid[hub]:.3f} kW exceeds the "
                f"interconnection limit of {limit[hub]:.3f} kW"
            )

        shortfall_kw = np.zeros(self.n_hubs)
        if self._coupled:
            p_grid, shortfall_kw = self.feeders.allocate(p_grid, t)
            shortfall_kwh = shortfall_kw * dt
            eta = np.where(params.paper_exact, 1.0, params.discharge_efficiency)
            drawn = np.minimum(shortfall_kwh / eta, soc)
            served_kwh = drawn * eta
            p_bp = p_bp - np.where(drawn > 0.0, served_kwh / dt, 0.0)
            soc = soc - drawn
            throughput = throughput + drawn
            unserved = unserved + np.maximum(shortfall_kwh - served_kwh, 0.0)

        self.soc_kwh = soc
        self.throughput_kwh = self.throughput_kwh + throughput

        columns = {
            "action": applied_action,
            "blackout": blackout,
            "p_bs_kw": p_bs,
            "p_cs_kw": p_cs,
            "p_bp_kw": p_bp,
            "p_pv_kw": p_pv,
            "p_wt_kw": p_wt,
            "p_grid_kw": p_grid,
            "surplus_kw": surplus,
            "rtp_kwh": rtp,
            "srtp_kwh": srtp,
            "soc_kwh": self.soc_kwh,
            "grid_cost": p_grid * dt * rtp,
            "bp_cost": np.where(applied_action != IDLE, 1.0, 0.0)
            * params.c_bp_per_slot,
            "revenue": p_cs * dt * srtp,
            "unserved_kwh": unserved,
            "import_shortfall_kw": shortfall_kw,
        }
        self.book.record(t, **columns)
        self._t += 1
        return columns

    def _normal_branch(self, actions, p_bs, p_pv, p_wt, t, dt):
        params = self.params
        soc = self.soc_kwh

        eta_ch = params.charge_efficiency
        stored_requested = params.charge_rate_kw * dt * eta_ch
        headroom = np.maximum(params.soc_max_kwh - soc, 0.0)
        stored = np.where(
            stored_requested > headroom + 1e-12, headroom, stored_requested
        )
        charging = (actions == CHARGE) & (stored > 0.0)
        stored = np.where(charging, stored, 0.0)
        bus_charge_kwh = np.where(charging, stored / eta_ch, 0.0)

        eta_dch = params.discharge_efficiency
        requested_bus_kwh = params.discharge_rate_kw * dt
        drawn_requested = np.where(
            params.paper_exact,
            requested_bus_kwh * eta_dch,
            requested_bus_kwh / eta_dch,
        )
        bus_per_drawn = np.where(params.paper_exact, 1.0, eta_dch)
        available = np.maximum(soc - params.soc_min_kwh, 0.0)
        drawn = np.where(
            drawn_requested > available + 1e-12, available, drawn_requested
        )
        discharging = (actions == DISCHARGE) & (drawn > 0.0)
        drawn = np.where(discharging, drawn, 0.0)
        bus_discharge_kwh = np.where(discharging, drawn * bus_per_drawn, 0.0)

        applied = np.where(
            charging, CHARGE, np.where(discharging, DISCHARGE, IDLE)
        )
        p_bp = (bus_charge_kwh - bus_discharge_kwh) / dt
        new_soc = soc + stored - drawn

        p_cs = params.cs_power_kw(self.inputs.occupied[:, t])
        residual = p_bs + p_cs + p_bp - p_pv - p_wt
        p_grid = np.where(residual >= 0.0, residual, 0.0)
        surplus = np.where(residual >= 0.0, 0.0, -residual)

        return {
            "action": applied,
            "p_cs_kw": p_cs,
            "p_bp_kw": p_bp,
            "p_grid_kw": p_grid,
            "surplus_kw": surplus,
            "soc_kwh": new_soc,
            "throughput_kwh": stored + drawn,
        }

    def _blackout_branch(self, p_bs, p_pv, p_wt, dt):
        params = self.params
        soc = self.soc_kwh

        renewable = p_pv + p_wt
        deficit_kwh = np.maximum(p_bs - renewable, 0.0) * dt
        eta = np.where(params.paper_exact, 1.0, params.discharge_efficiency)
        drawn = np.minimum(deficit_kwh / eta, soc)
        served_kwh = drawn * eta
        return {
            "p_bp_kw": np.where(served_kwh > 0.0, -served_kwh / dt, 0.0),
            "surplus_kw": np.maximum(renewable - p_bs, 0.0),
            "soc_kwh": soc - drawn,
            "throughput_kwh": drawn,
            "unserved_kwh": deficit_kwh - served_kwh,
        }


def _timed_run(sim, rounds: int = 3):
    best, book = float("inf"), None
    for _ in range(rounds):
        sim.reset()
        start = time.perf_counter()
        book = sim.run(FleetRuleBasedScheduler())
        best = min(best, time.perf_counter() - start)
    return book, best


def test_bench_step_kernel():
    scale = float(os.environ.get("ECT_BENCH_SCALE", 1.0))
    n_days = max(int(round(14 * scale)), 2)
    scenarios, fused = build_default_fleet(
        N_HUBS, n_days=n_days, seed=0, outage_probability=0.001
    )
    reference = ReferenceStepSimulation(
        fused.params,
        fused.inputs,
        feeders=fused.feeders,
        voll_per_kwh=fused.voll_per_kwh,
    )
    hub_slots = N_HUBS * fused.horizon

    fused_book, fused_s = _timed_run(fused)
    reference_book, reference_s = _timed_run(reference)

    fused_rate = hub_slots / fused_s
    reference_rate = hub_slots / reference_s
    speedup = fused_rate / reference_rate
    vs_recorded = fused_rate / PR3_BASELINE_RATE
    relaxed = perf_relaxed()
    floor = MIN_SPEEDUP_RELAXED if relaxed else MIN_SPEEDUP

    report = "\n".join(
        [
            "== step-kernel: fused planes kernel vs PR-3 per-slot step ==",
            f"workload: {N_HUBS} hubs x {fused.horizon} slots "
            f"({hub_slots} hub-slots), rule-based scheduler",
            f"fused     {fused_rate:>12,.0f} hub-slots/sec  ({fused_s:.3f}s)",
            f"reference {reference_rate:>12,.0f} hub-slots/sec  "
            f"({reference_s:.3f}s)",
            f"speedup   {speedup:>12.2f}x  (guard: >= {floor:.1f}x"
            f"{', relaxed' if relaxed else ''})",
            f"vs PR-3 recorded rate ({PR3_BASELINE_RATE:,.0f}/s): "
            f"{vs_recorded:.2f}x",
            f"profit agreement: fused ${fused_book.profit:,.1f} vs "
            f"reference ${reference_book.profit:,.1f}",
        ]
    )
    write_perf_report(
        "step-kernel",
        report,
        {
            "workload": {
                "n_hubs": N_HUBS,
                "slots": fused.horizon,
                "hub_slots": hub_slots,
                "scheduler": "rule-based",
            },
            "fused_hub_slots_per_sec": fused_rate,
            "reference_hub_slots_per_sec": reference_rate,
            "speedup": speedup,
            "pr3_recorded_rate": PR3_BASELINE_RATE,
            "speedup_vs_pr3_recorded": vs_recorded,
            "relaxed": relaxed,
        },
    )
    print("\n" + report)

    # Numerical safety net: the fused kernel books the same run as the
    # PR-3 step, at the scalar-equivalence tolerance.
    assert abs(fused_book.profit - reference_book.profit) < 1e-6
    for name in fused_book._FLOAT_COLUMNS:
        np.testing.assert_allclose(
            getattr(fused_book, name),
            getattr(reference_book, name),
            rtol=0,
            atol=1e-9,
            err_msg=name,
        )
    assert (fused_book.action == reference_book.action).all()

    assert speedup >= floor, report
