"""Benchmark: the fused step kernel vs the PR-3 per-slot step.

The PR-4 hot-path overhaul precomputes every action-independent slot
quantity (:class:`repro.fleet.planes.SlotPlanes`), runs the per-step
arithmetic through reusable ``out=`` buffers straight into the cost
book's storage, evaluates the blackout branch only on outage rows, and
replaces the per-step ``np.isin`` action validation with a cheap exact
check. This bench measures the payoff two ways on the canonical
``fleet.txt`` workload (100 hubs x 336 slots, rule-based scheduler):

* against :class:`ReferenceStepSimulation` — a faithful in-file copy of
  the PR-3 ``step()`` (slot-tuple rebuilds, fresh temporaries, both
  branches every slot) run on the same hardware, which is the
  hardware-independent speedup the guard asserts on; and
* against the absolute PR-3 rate recorded in ``reports/fleet.txt``
  (582,104 hub-slots/sec), reported for the cross-PR trend.

Both engines must also agree numerically (profit within 1e-6, columns
within atol 1e-9 — the same tolerance as the scalar-equivalence suite).
Thresholds relax under ``ECT_PERF_RELAXED=1`` / scaled-down workloads so
CI smoke runs guard regressions without flaky hard numbers.

Since the backend seam (PR 10) the engine dispatches its hot-path array
ops through :mod:`repro.backend`. That adds a third measurement:
:class:`DirectStepSimulation`, the pre-seam ``step()`` verbatim (direct
``np.*`` calls, same buffers), run against the seamed engine to price
the dispatch indirection. The guard: the numpy backend through the seam
must stay within 5% of the direct kernel (15% relaxed), and the two
books must agree **byte-identically** — the seam is a refactor, not an
approximation. Every backend that resolves on this machine also gets a
throughput row (numpy only where numba isn't installed; the optional CI
leg adds the jitted row, checked at atol 1e-9).
"""

from __future__ import annotations

import os
import time

import numpy as np

from conftest import perf_relaxed, write_perf_report
from repro.backend import available_backends
from repro.energy.battery import CHARGE, DISCHARGE, IDLE
from repro.errors import FleetError, GridError
from repro.fleet import FleetRuleBasedScheduler, FleetSimulation, build_default_fleet

N_HUBS = 100

#: PR-3 batched rate recorded in reports/fleet.txt before the overhaul.
PR3_BASELINE_RATE = 582_104.0

#: Same-hardware speedup guard over the reference step implementation.
MIN_SPEEDUP = 2.0
MIN_SPEEDUP_RELAXED = 1.2

#: Dispatch-overhead guard: numpy-through-the-seam vs the direct kernel.
MIN_SEAM_RATIO = 0.95
MIN_SEAM_RATIO_RELAXED = 0.85


class ReferenceStepSimulation(FleetSimulation):
    """The PR-3 step, verbatim: per-slot recomputation, no plane cache.

    Kept as the benchmark's reference so the speedup ratio is measured on
    the hardware running the bench instead of against a recorded number
    from other silicon. Only ``step`` differs; construction, the book,
    feeders, and schedulers are shared with the fused engine.
    """

    def step(self, actions: np.ndarray) -> dict[str, np.ndarray]:
        if self.done:
            raise FleetError(f"fleet horizon of {self.horizon} slots exhausted")
        actions = np.asarray(actions)
        if actions.shape != (self.n_hubs,):
            raise FleetError(
                f"actions must have shape ({self.n_hubs},), got {actions.shape}"
            )
        if not np.isin(actions, (DISCHARGE, IDLE, CHARGE)).all():
            raise FleetError("battery actions must be -1, 0, or 1")

        t = self._t
        params = self.params
        dt = params.dt_h
        blackout = self._outage[:, t]

        slot = self.inputs.slot(t)
        p_bs = params.bs_power_kw(slot.load_rate)
        rtp = slot.rtp_kwh
        srtp = params.cs_base_price_kwh * (1.0 - slot.discount)
        p_pv = slot.pv_power_kw
        p_wt = slot.wt_power_kw

        normal = self._normal_branch(actions, p_bs, p_pv, p_wt, t, dt)
        dark = self._blackout_branch(p_bs, p_pv, p_wt, dt)

        applied_action = np.where(blackout, IDLE, normal["action"])
        p_cs = np.where(blackout, 0.0, normal["p_cs_kw"])
        p_bp = np.where(blackout, dark["p_bp_kw"], normal["p_bp_kw"])
        p_grid = np.where(blackout, 0.0, normal["p_grid_kw"])
        surplus = np.where(blackout, dark["surplus_kw"], normal["surplus_kw"])
        unserved = np.where(blackout, dark["unserved_kwh"], 0.0)
        soc = np.where(blackout, dark["soc_kwh"], normal["soc_kwh"])
        throughput = np.where(
            blackout, dark["throughput_kwh"], normal["throughput_kwh"]
        )

        limit = params.import_limit_kw
        over = ~blackout & (limit > 0.0) & (p_grid > limit)
        if over.any():
            hub = int(np.argmax(over))
            raise GridError(
                f"hub {hub}: import of {p_grid[hub]:.3f} kW exceeds the "
                f"interconnection limit of {limit[hub]:.3f} kW"
            )

        shortfall_kw = np.zeros(self.n_hubs)
        if self._coupled:
            p_grid, shortfall_kw = self.feeders.allocate(p_grid, t)
            shortfall_kwh = shortfall_kw * dt
            eta = np.where(params.paper_exact, 1.0, params.discharge_efficiency)
            drawn = np.minimum(shortfall_kwh / eta, soc)
            served_kwh = drawn * eta
            p_bp = p_bp - np.where(drawn > 0.0, served_kwh / dt, 0.0)
            soc = soc - drawn
            throughput = throughput + drawn
            unserved = unserved + np.maximum(shortfall_kwh - served_kwh, 0.0)

        self.soc_kwh = soc
        self.throughput_kwh = self.throughput_kwh + throughput

        columns = {
            "action": applied_action,
            "blackout": blackout,
            "p_bs_kw": p_bs,
            "p_cs_kw": p_cs,
            "p_bp_kw": p_bp,
            "p_pv_kw": p_pv,
            "p_wt_kw": p_wt,
            "p_grid_kw": p_grid,
            "surplus_kw": surplus,
            "rtp_kwh": rtp,
            "srtp_kwh": srtp,
            "soc_kwh": self.soc_kwh,
            "grid_cost": p_grid * dt * rtp,
            "bp_cost": np.where(applied_action != IDLE, 1.0, 0.0)
            * params.c_bp_per_slot,
            "revenue": p_cs * dt * srtp,
            "unserved_kwh": unserved,
            "import_shortfall_kw": shortfall_kw,
        }
        self.book.record(t, **columns)
        self._t += 1
        return columns

    def _normal_branch(self, actions, p_bs, p_pv, p_wt, t, dt):
        params = self.params
        soc = self.soc_kwh

        eta_ch = params.charge_efficiency
        stored_requested = params.charge_rate_kw * dt * eta_ch
        headroom = np.maximum(params.soc_max_kwh - soc, 0.0)
        stored = np.where(
            stored_requested > headroom + 1e-12, headroom, stored_requested
        )
        charging = (actions == CHARGE) & (stored > 0.0)
        stored = np.where(charging, stored, 0.0)
        bus_charge_kwh = np.where(charging, stored / eta_ch, 0.0)

        eta_dch = params.discharge_efficiency
        requested_bus_kwh = params.discharge_rate_kw * dt
        drawn_requested = np.where(
            params.paper_exact,
            requested_bus_kwh * eta_dch,
            requested_bus_kwh / eta_dch,
        )
        bus_per_drawn = np.where(params.paper_exact, 1.0, eta_dch)
        available = np.maximum(soc - params.soc_min_kwh, 0.0)
        drawn = np.where(
            drawn_requested > available + 1e-12, available, drawn_requested
        )
        discharging = (actions == DISCHARGE) & (drawn > 0.0)
        drawn = np.where(discharging, drawn, 0.0)
        bus_discharge_kwh = np.where(discharging, drawn * bus_per_drawn, 0.0)

        applied = np.where(
            charging, CHARGE, np.where(discharging, DISCHARGE, IDLE)
        )
        p_bp = (bus_charge_kwh - bus_discharge_kwh) / dt
        new_soc = soc + stored - drawn

        p_cs = params.cs_power_kw(self.inputs.occupied[:, t])
        residual = p_bs + p_cs + p_bp - p_pv - p_wt
        p_grid = np.where(residual >= 0.0, residual, 0.0)
        surplus = np.where(residual >= 0.0, 0.0, -residual)

        return {
            "action": applied,
            "p_cs_kw": p_cs,
            "p_bp_kw": p_bp,
            "p_grid_kw": p_grid,
            "surplus_kw": surplus,
            "soc_kwh": new_soc,
            "throughput_kwh": stored + drawn,
        }

    def _blackout_branch(self, p_bs, p_pv, p_wt, dt):
        params = self.params
        soc = self.soc_kwh

        renewable = p_pv + p_wt
        deficit_kwh = np.maximum(p_bs - renewable, 0.0) * dt
        eta = np.where(params.paper_exact, 1.0, params.discharge_efficiency)
        drawn = np.minimum(deficit_kwh / eta, soc)
        served_kwh = drawn * eta
        return {
            "p_bp_kw": np.where(served_kwh > 0.0, -served_kwh / dt, 0.0),
            "surplus_kw": np.maximum(renewable - p_bs, 0.0),
            "soc_kwh": soc - drawn,
            "throughput_kwh": drawn,
            "unserved_kwh": deficit_kwh - served_kwh,
        }


class DirectStepSimulation(FleetSimulation):
    """The pre-seam fused step, verbatim: direct ``np.*`` calls.

    This is the PR-10 baseline — the exact ``step()`` the engine ran
    before its array ops were routed through :mod:`repro.backend`. It
    shares every buffer, plane and constant with the seamed engine, so
    (seamed numpy rate) / (this rate) isolates the pure cost of the
    dispatch indirection, and the two books must match byte for byte.
    """

    def step(self, actions: np.ndarray) -> dict[str, np.ndarray]:
        from repro.fleet.simulation import _SOC_EPS

        if self.done:
            raise FleetError(f"fleet horizon of {self.horizon} slots exhausted")
        actions = np.asarray(actions)
        if actions.shape != (self.n_hubs,):
            raise FleetError(
                f"actions must have shape ({self.n_hubs},), got {actions.shape}"
            )
        self._check_actions(actions)

        tele = self._telemetry
        step_start = time.perf_counter() if tele is not None else 0.0

        t = self._t
        params = self.params
        dt = params.dt_h
        planes = self.planes
        b = self._buf
        soc = self.soc_kwh
        book = self.book
        dest = book.begin_slot(t)
        if self._windowed_book:
            inputs = self.inputs
            np.copyto(dest["blackout"], planes.outage[:, t])
            np.copyto(dest["p_bs_kw"], planes.p_bs_kw[:, t])
            np.copyto(dest["p_cs_kw"], planes.p_cs_kw[:, t])
            np.copyto(dest["p_pv_kw"], inputs.pv_power_kw[:, t])
            np.copyto(dest["p_wt_kw"], inputs.wt_power_kw[:, t])
            np.copyto(dest["rtp_kwh"], inputs.rtp_kwh[:, t])
            np.copyto(dest["srtp_kwh"], planes.srtp_kwh[:, t])
            np.copyto(dest["revenue"], planes.revenue[:, t])
            np.copyto(dest["unserved_kwh"], 0.0)
            np.copyto(dest["import_shortfall_kw"], 0.0)
        applied = dest["action"]
        p_bp = dest["p_bp_kw"]
        p_grid = dest["p_grid_kw"]
        surplus = dest["surplus_kw"]
        unserved = dest["unserved_kwh"]

        np.subtract(params.soc_max_kwh, soc, out=b.headroom)
        np.maximum(b.headroom, 0.0, out=b.headroom)
        np.add(b.headroom, _SOC_EPS, out=b.tmp)
        np.greater(self._stored_requested, b.tmp, out=b.mask)
        np.copyto(b.stored, self._stored_requested)
        np.copyto(b.stored, b.headroom, where=b.mask)
        np.equal(actions, CHARGE, out=b.charging)
        np.greater(b.stored, 0.0, out=b.mask)
        np.logical_and(b.charging, b.mask, out=b.charging)
        np.logical_not(b.charging, out=b.idle_mask)
        np.copyto(b.stored, 0.0, where=b.idle_mask)
        np.divide(b.stored, params.charge_efficiency, out=b.bus_charge_kwh)

        np.subtract(soc, params.soc_min_kwh, out=b.available)
        np.maximum(b.available, 0.0, out=b.available)
        np.add(b.available, _SOC_EPS, out=b.tmp)
        np.greater(self._drawn_requested, b.tmp, out=b.mask)
        np.copyto(b.drawn, self._drawn_requested)
        np.copyto(b.drawn, b.available, where=b.mask)
        np.equal(actions, DISCHARGE, out=b.discharging)
        np.greater(b.drawn, 0.0, out=b.mask)
        np.logical_and(b.discharging, b.mask, out=b.discharging)
        np.logical_not(b.discharging, out=b.idle_mask)
        np.copyto(b.drawn, 0.0, where=b.idle_mask)
        np.multiply(b.drawn, self._bus_per_drawn, out=b.bus_discharge_kwh)

        np.copyto(applied, IDLE)
        np.copyto(applied, CHARGE, where=b.charging)
        np.copyto(applied, DISCHARGE, where=b.discharging)

        np.subtract(b.bus_charge_kwh, b.bus_discharge_kwh, out=p_bp)
        np.divide(p_bp, dt, out=p_bp)
        np.add(soc, b.stored, out=b.new_soc)
        np.subtract(b.new_soc, b.drawn, out=b.new_soc)

        np.add(planes.residual_static_kw[:, t], p_bp, out=b.residual)
        np.maximum(b.residual, 0.0, out=p_grid)
        np.negative(b.residual, out=surplus)
        np.maximum(surplus, 0.0, out=surplus)
        np.add(b.stored, b.drawn, out=b.throughput)

        outage_now = bool(planes.outage_any[t])
        coupled = self._coupled
        if outage_now or coupled:
            np.copyto(unserved, 0.0)

        if outage_now:
            dark = np.flatnonzero(planes.outage[:, t])
            dest["p_cs_kw"][dark] = 0.0
            dest["revenue"][dark] = 0.0

            soc_pre = soc[dark]
            deficit_kwh = planes.blackout_deficit_kwh[dark, t]
            eta = self._reserve_eta[dark]
            drawn_dark = np.minimum(deficit_kwh / eta, soc_pre)
            served_kwh = drawn_dark * eta
            p_bp[dark] = np.where(served_kwh > 0.0, -served_kwh / dt, 0.0)
            p_grid[dark] = 0.0
            surplus[dark] = planes.blackout_surplus_kw[dark, t]
            b.new_soc[dark] = soc_pre - drawn_dark
            b.throughput[dark] = drawn_dark
            unserved[dark] = deficit_kwh - served_kwh
            applied[dark] = IDLE
            if tele is not None:
                tele.metrics.inc("engine.blackout_hub_slots", dark.size)
                tele.metrics.inc(
                    "engine.reserve_dispatches",
                    int(np.count_nonzero(drawn_dark > 0.0)),
                )

        if self._any_import_limit:
            np.greater(p_grid, params.import_limit_kw, out=b.mask)
            np.logical_and(b.mask, self._limit_active, out=b.mask)
            if b.mask.any():
                hub = int(np.argmax(b.mask))
                raise GridError(
                    f"hub {hub}: import of {p_grid[hub]:.3f} kW exceeds the "
                    f"interconnection limit of "
                    f"{params.import_limit_kw[hub]:.3f} kW"
                )

        if coupled:
            if tele is None:
                granted, shortfall_kw = self.feeders.allocate(p_grid, t)
            else:
                alloc_start = time.perf_counter()
                granted, shortfall_kw = self.feeders.allocate(p_grid, t)
                tele.metrics.add_time(
                    "allocation", time.perf_counter() - alloc_start
                )
            np.copyto(p_grid, granted)
            np.copyto(dest["import_shortfall_kw"], shortfall_kw)
            shortfall_kwh = shortfall_kw * dt
            eta = self._reserve_eta
            drawn_short = np.minimum(shortfall_kwh / eta, b.new_soc)
            served_kwh = drawn_short * eta
            p_bp -= np.where(drawn_short > 0.0, served_kwh / dt, 0.0)
            b.new_soc -= drawn_short
            b.throughput += drawn_short
            unserved += np.maximum(shortfall_kwh - served_kwh, 0.0)
            if tele is not None:
                congested = int(np.count_nonzero(shortfall_kw > 0.0))
                if congested:
                    tele.metrics.inc("engine.congested_hub_slots", congested)
                    tele.metrics.inc(
                        "engine.curtailed_kwh", float(shortfall_kwh.sum())
                    )
                    tele.metrics.inc(
                        "engine.reserve_dispatches",
                        int(np.count_nonzero(drawn_short > 0.0)),
                    )

        np.multiply(p_grid, planes.rtp_dt[:, t], out=dest["grid_cost"])
        np.not_equal(applied, IDLE, out=b.mask)
        np.multiply(b.mask, params.c_bp_per_slot, out=dest["bp_cost"])

        self.soc_kwh = b.new_soc.copy()
        np.copyto(dest["soc_kwh"], self.soc_kwh)
        self.throughput_kwh = self.throughput_kwh + b.throughput

        book.commit_slot(t)
        self._t += 1
        if tele is not None:
            tele.metrics.inc("engine.slots")
            tele.metrics.inc("engine.hub_slots", self.params.n_hubs)
            tele.metrics.observe(
                "engine.step_seconds", time.perf_counter() - step_start
            )
        for column in dest.values():
            column.flags.writeable = False
        return dest


def _timed_run(sim, rounds: int = 3):
    # One untimed warm-up run first: the initial pass pays page faults,
    # allocator growth and (single-core CI boxes) frequency ramp that
    # would otherwise skew whichever engine happens to be timed first.
    sim.reset()
    sim.run(FleetRuleBasedScheduler())
    best, book = float("inf"), None
    for _ in range(rounds):
        sim.reset()
        start = time.perf_counter()
        book = sim.run(FleetRuleBasedScheduler())
        best = min(best, time.perf_counter() - start)
    return book, best


def test_bench_step_kernel():
    scale = float(os.environ.get("ECT_BENCH_SCALE", 1.0))
    n_days = max(int(round(14 * scale)), 2)
    scenarios, fused = build_default_fleet(
        N_HUBS, n_days=n_days, seed=0, outage_probability=0.001
    )
    reference = ReferenceStepSimulation(
        fused.params,
        fused.inputs,
        feeders=fused.feeders,
        voll_per_kwh=fused.voll_per_kwh,
    )
    direct = DirectStepSimulation(
        fused.params,
        fused.inputs,
        feeders=fused.feeders,
        voll_per_kwh=fused.voll_per_kwh,
    )
    hub_slots = N_HUBS * fused.horizon

    fused_book, fused_s = _timed_run(fused)
    reference_book, reference_s = _timed_run(reference)
    direct_book, direct_s = _timed_run(direct)

    # One throughput row per backend that actually resolves here. The
    # numpy row re-measures the seamed default on a fresh engine; a
    # numba row appears only where the optional package is installed.
    backend_rates: dict[str, float] = {}
    backend_books: dict[str, object] = {}
    for backend in available_backends():
        sim = FleetSimulation(
            fused.params,
            fused.inputs,
            feeders=fused.feeders,
            voll_per_kwh=fused.voll_per_kwh,
            backend=backend,
        )
        backend_book, backend_s = _timed_run(sim)
        backend_rates[backend] = hub_slots / backend_s
        backend_books[backend] = backend_book

    fused_rate = hub_slots / fused_s
    reference_rate = hub_slots / reference_s
    direct_rate = hub_slots / direct_s
    speedup = fused_rate / reference_rate
    seam_ratio = fused_rate / direct_rate
    vs_recorded = fused_rate / PR3_BASELINE_RATE
    relaxed = perf_relaxed()
    floor = MIN_SPEEDUP_RELAXED if relaxed else MIN_SPEEDUP
    seam_floor = MIN_SEAM_RATIO_RELAXED if relaxed else MIN_SEAM_RATIO

    backend_lines = [
        f"backend:{name:<9} {rate:>12,.0f} hub-slots/sec"
        for name, rate in backend_rates.items()
    ]
    report = "\n".join(
        [
            "== step-kernel: fused planes kernel vs PR-3 per-slot step ==",
            f"workload: {N_HUBS} hubs x {fused.horizon} slots "
            f"({hub_slots} hub-slots), rule-based scheduler",
            f"fused     {fused_rate:>12,.0f} hub-slots/sec  ({fused_s:.3f}s)",
            f"direct    {direct_rate:>12,.0f} hub-slots/sec  "
            f"({direct_s:.3f}s, pre-seam np.* kernel)",
            f"reference {reference_rate:>12,.0f} hub-slots/sec  "
            f"({reference_s:.3f}s)",
            *backend_lines,
            f"speedup   {speedup:>12.2f}x  (guard: >= {floor:.1f}x"
            f"{', relaxed' if relaxed else ''})",
            f"seam cost {seam_ratio:>12.3f}x of direct  "
            f"(guard: >= {seam_floor:.2f}x{', relaxed' if relaxed else ''})",
            f"vs PR-3 recorded rate ({PR3_BASELINE_RATE:,.0f}/s): "
            f"{vs_recorded:.2f}x",
            f"profit agreement: fused ${fused_book.profit:,.1f} vs "
            f"reference ${reference_book.profit:,.1f}",
        ]
    )
    write_perf_report(
        "step-kernel",
        report,
        {
            "workload": {
                "n_hubs": N_HUBS,
                "slots": fused.horizon,
                "hub_slots": hub_slots,
                "scheduler": "rule-based",
            },
            "fused_hub_slots_per_sec": fused_rate,
            "direct_hub_slots_per_sec": direct_rate,
            "reference_hub_slots_per_sec": reference_rate,
            "backend_hub_slots_per_sec": backend_rates,
            "speedup": speedup,
            "seam_ratio_vs_direct": seam_ratio,
            "pr3_recorded_rate": PR3_BASELINE_RATE,
            "speedup_vs_pr3_recorded": vs_recorded,
            "relaxed": relaxed,
        },
    )
    print("\n" + report)

    # Numerical safety net: the fused kernel books the same run as the
    # PR-3 step, at the scalar-equivalence tolerance.
    assert abs(fused_book.profit - reference_book.profit) < 1e-6
    for name in fused_book._FLOAT_COLUMNS:
        np.testing.assert_allclose(
            getattr(fused_book, name),
            getattr(reference_book, name),
            rtol=0,
            atol=1e-9,
            err_msg=name,
        )
    assert (fused_book.action == reference_book.action).all()

    # The seam is a refactor, not an approximation: numpy through the
    # backend dispatch books the *identical* run the direct kernel does.
    assert direct_book.profit == fused_book.profit
    for name in fused_book._FLOAT_COLUMNS:
        assert (getattr(fused_book, name) == getattr(direct_book, name)).all(), name
    assert (fused_book.action == direct_book.action).all()

    # Per-backend agreement: numpy byte-identical, jitted within 1e-9.
    for name, backend_book in backend_books.items():
        if name == "numpy":
            assert backend_book.profit == fused_book.profit
        else:  # pragma: no cover - needs the optional numba package
            for column in fused_book._FLOAT_COLUMNS:
                np.testing.assert_allclose(
                    getattr(backend_book, column),
                    getattr(fused_book, column),
                    rtol=0,
                    atol=1e-9,
                    err_msg=f"{name}:{column}",
                )

    assert speedup >= floor, report
    assert seam_ratio >= seam_floor, report
