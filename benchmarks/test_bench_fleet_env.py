"""Benchmark: batched FleetEnv stepping vs a loop of scalar RL envs.

Steps the same action stream through one :class:`repro.rl.FleetEnv`
episode (one fused-kernel step + one observation assembly per slot for
all hubs) and through N independent :class:`~repro.rl.env.EctHubEnv`
instances, reporting hub-slots/sec; a second section times the full PPO
training loop (batched acting + per-hub GAE + minibatch updates) over
the fleet environment. Reports persist to ``reports/fleet-env.{txt,json}``
so the fleet-RL throughput trajectory is tracked across PRs. Guard: the
batched environment is at least 3x the scalar loop (relaxed under
``ECT_PERF_RELAXED`` / scaled runs).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import bench_scale, perf_relaxed, write_perf_report
from repro.config import replace
from repro.hub import ScenarioConfig, build_fleet_scenarios, fleet_behavior_model
from repro.rl import EctHubEnv, EnvConfig, FleetEnv, train_fleet_ppo
from repro.rng import RngFactory
from repro.synth.charging import ChargingConfig

#: Fleet size pinned like the engine bench; the horizon scales instead.
N_HUBS = 24


def test_bench_fleet_env_throughput():
    scale = bench_scale(1.0)
    scenario_days = max(int(round(20 * scale)), 4)
    episode_days = max(int(round(5 * scale)), 2)
    n_hours = scenario_days * 24
    episode_h = episode_days * 24

    factory = RngFactory(seed=0)
    scenario_config = ScenarioConfig(
        n_hours=n_hours,
        charging=replace(ChargingConfig(), n_stations=N_HUBS),
    )
    scenarios = build_fleet_scenarios(scenario_config, factory, n_hubs=N_HUBS)
    behavior = fleet_behavior_model(scenario_config, factory)
    env_config = EnvConfig(episode_days=episode_days)
    schedule = np.zeros(n_hours)

    actions = np.random.default_rng(7).integers(
        0, 3, size=(episode_h, N_HUBS)
    )

    fleet_env = FleetEnv(
        scenarios,
        behavior,
        schedule,
        config=env_config,
        rng=RngFactory(seed=1).stream("bench/fleet"),
    )
    fleet_env.reset()
    start = time.perf_counter()
    for t in range(episode_h):
        fleet_env.step(actions[t])
    batched_s = time.perf_counter() - start

    scalar_envs = [
        EctHubEnv(
            scenario,
            behavior,
            schedule,
            config=env_config,
            rng=RngFactory(seed=1).stream(f"bench/scalar/{i}"),
        )
        for i, scenario in enumerate(scenarios)
    ]
    for env in scalar_envs:
        env.reset()
    start = time.perf_counter()
    for t in range(episode_h):
        for i, env in enumerate(scalar_envs):
            env.step(int(actions[t, i]))
    looped_s = time.perf_counter() - start

    hub_slots = N_HUBS * episode_h
    batched_rate = hub_slots / batched_s
    looped_rate = hub_slots / looped_s
    speedup = batched_rate / looped_rate

    # Full training loop: batched acting, env stepping, and PPO updates.
    train_env = FleetEnv(
        scenarios,
        behavior,
        schedule,
        config=env_config,
        rng=RngFactory(seed=2).stream("bench/train"),
    )
    train_episodes = 3
    start = time.perf_counter()
    train_fleet_ppo(
        train_env, episodes=train_episodes, rng=RngFactory(seed=2).stream("a")
    )
    train_s = time.perf_counter() - start
    train_rate = train_episodes * hub_slots / train_s

    report = "\n".join(
        [
            "== fleet-env: batched RL environment throughput ==",
            f"workload: {N_HUBS} hubs x {episode_h}-slot episodes "
            f"({hub_slots} hub-slots/episode), random actions",
            f"batched env  {batched_rate:>12,.0f} hub-slots/sec  ({batched_s:.3f}s)",
            f"scalar loop  {looped_rate:>12,.0f} hub-slots/sec  ({looped_s:.3f}s)",
            f"speedup      {speedup:>12.1f}x",
            f"PPO training {train_rate:>12,.0f} hub-slots/sec  "
            f"({train_episodes} episodes incl. updates in {train_s:.3f}s)",
        ]
    )
    write_perf_report(
        "fleet-env",
        report,
        {
            "workload": {
                "n_hubs": N_HUBS,
                "episode_slots": episode_h,
                "hub_slots_per_episode": hub_slots,
                "train_episodes": train_episodes,
            },
            "batched_hub_slots_per_sec": batched_rate,
            "looped_hub_slots_per_sec": looped_rate,
            "speedup": speedup,
            "training_hub_slots_per_sec": train_rate,
        },
    )
    print("\n" + report)

    # The batched env must actually batch: one kernel step per slot.
    assert fleet_env.simulation.book.n_recorded == episode_h
    if not perf_relaxed():
        assert speedup >= 3.0, report
