"""Benchmark harness configuration.

Each bench regenerates one paper artifact via the experiment registry and
prints the paper-vs-measured report. ``pedantic`` single-round execution is
used because the workloads are full experiments, not micro-kernels.

Scale: set ``ECT_BENCH_SCALE`` (default shown per bench) to trade fidelity
for runtime; EXPERIMENTS.md records results at the defaults.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import run_experiment
from repro.telemetry import run_metadata

#: Rendered artifact reports are also persisted here.
REPORT_DIR = Path(__file__).parent / "reports"

#: Reports collected this session, replayed in the terminal summary.
_SESSION_REPORTS: list[str] = []


def pytest_terminal_summary(terminalreporter):
    """Print every regenerated artifact after the benchmark table."""
    for report in _SESSION_REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(report)


def bench_scale(default: float) -> float:
    """Benchmark scale factor, overridable via the environment."""
    return float(os.environ.get("ECT_BENCH_SCALE", default))


def perf_relaxed() -> bool:
    """Whether perf guards should use relaxed thresholds.

    True when ``ECT_PERF_RELAXED=1`` (the CI perf-smoke setting) or when
    the workload is scaled away from its default size — shrunken
    workloads make absolute rates and speedup ratios too noisy to gate
    on hard numbers.
    """
    return os.environ.get("ECT_PERF_RELAXED", "") == "1" or (
        "ECT_BENCH_SCALE" in os.environ and bench_scale(1.0) != 1.0
    )


def write_perf_report(name: str, text: str, payload: dict) -> None:
    """Persist one perf benchmark as twin ``reports/<name>.{txt,json}``.

    The txt file is the human-readable trend the repo has always kept;
    the JSON carries the same numbers machine-readably (workload,
    hub-slots/sec, speedups) so the perf trajectory is diffable across
    PRs without parsing prose. Every JSON report is stamped with the
    environment fingerprint (host, python/numpy versions, git commit,
    ECT_PERF_RELAXED) so numbers from different machines never get
    compared as like-for-like.
    """
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
    payload = dict(payload, meta=run_metadata())
    (REPORT_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


@pytest.fixture()
def run_artifact(benchmark):
    """Run one experiment under pytest-benchmark and print its report."""

    def _run(experiment_id: str, *, scale: float, seed: int = 0):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale, "seed": seed},
            rounds=1,
            iterations=1,
        )
        report = result.rendered()
        REPORT_DIR.mkdir(exist_ok=True)
        (REPORT_DIR / f"{experiment_id}.txt").write_text(report + "\n")
        _SESSION_REPORTS.append(report)
        return result

    return _run
