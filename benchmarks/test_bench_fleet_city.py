"""Benchmark: city-scale sharded fleet run vs the single-process engine.

The PR-9 city-scale workload: a multi-feeder fleet (default 2k hubs x 7
days, scaled by ``ECT_BENCH_SCALE``) run once through the single-process
batched engine and once sharded over worker processes via
``api.run(spec, shards=N)``. Three guards:

* **equivalence** (always): the sharded ``--out`` export must be byte
  for byte the unsharded file — sharding is an executor choice, never a
  semantics choice;
* **memory** (always): the windowed cost book must compile to at most
  25% of the dense book's bytes at this horizon (the windowed ring is
  horizon-independent, so the margin only grows with longer runs); and
* **speedup** (>=4-core hosts only): the sharded run must beat the
  single process by the floor below. Process parallelism cannot win on
  one or two cores, so there the guard is reported as skipped;
  ``ECT_PERF_RELAXED=1`` / scaled workloads relax the floor so CI smoke
  runs stay un-flaky.
"""

from __future__ import annotations

import time

from conftest import bench_scale, perf_relaxed, write_perf_report
from repro import api
from repro.experiments.base import write_results_json
from repro.parallel import _available_cpus
from repro.spec.compiler import spec_from_fleet_flags

N_HUBS = 2000
DAYS = 7
N_FEEDERS = 20
FEEDER_CAPACITY_KW = 400.0
N_SHARDS = 8

#: Sharded-vs-single speedup floor, asserted on >=4-core hosts only.
MIN_SPEEDUP = 3.0
MIN_SPEEDUP_RELAXED = 1.0
#: Windowed book bytes as a fraction of the dense book at this horizon.
MAX_WINDOWED_FRACTION = 0.25


def _spec(scale: float):
    n_hubs = max(int(round(N_HUBS * scale)), 40)
    days = max(int(round(DAYS * scale)), 2)
    return spec_from_fleet_flags(n_hubs=n_hubs, days=days).with_overrides(
        {
            "grid.n_feeders": min(N_FEEDERS, n_hubs),
            "grid.feeder_capacity_kw": FEEDER_CAPACITY_KW,
        }
    )


def test_bench_fleet_city(tmp_path):
    scale = bench_scale(1.0)
    spec = _spec(scale)
    cores = _available_cpus()

    start = time.perf_counter()
    single = api.run(spec)
    single_s = time.perf_counter() - start

    start = time.perf_counter()
    sharded = api.run(spec, shards=N_SHARDS)
    sharded_s = time.perf_counter() - start

    # Memory guard inputs: compiled-but-unrun books, dense vs windowed.
    # Always measured at the full 7-day horizon — the windowed ring is
    # horizon-independent, so shrinking the days under ECT_BENCH_SCALE
    # would shrink only the dense side and make the fraction meaningless.
    mem_spec = spec.with_overrides({"run.days": DAYS})
    dense_book = api.build(mem_spec).simulation.book
    windowed_book = api.build(
        mem_spec.with_overrides({"run.storage": "windowed"})
    ).simulation.book
    fraction = windowed_book.nbytes / dense_book.nbytes

    n_hubs = single.data["n_hubs"]
    horizon = dense_book.horizon // DAYS * spec.run.days
    hub_slots = n_hubs * horizon
    speedup = single_s / sharded_s
    relaxed = perf_relaxed()
    floor = MIN_SPEEDUP_RELAXED if relaxed else MIN_SPEEDUP
    if cores >= 4:
        guard = f">= {floor:.1f}x{' relaxed' if relaxed else ''}"
    else:
        guard = f"skipped ({cores}-core host)"

    report = "\n".join(
        [
            "== fleet-city: sharded city-scale run vs single process ==",
            f"workload: {n_hubs} hubs x {spec.run.days} days "
            f"({hub_slots:,} hub-slots), {spec.grid.n_feeders} feeders x "
            f"{FEEDER_CAPACITY_KW:,.0f} kW, {N_SHARDS} shards "
            f"({cores} cores visible)",
            f"single   {hub_slots / single_s:>12,.0f} hub-slots/sec  "
            f"({single_s:.3f}s)",
            f"sharded  {hub_slots / sharded_s:>12,.0f} hub-slots/sec  "
            f"({sharded_s:.3f}s)",
            f"speedup  {speedup:>8.2f}x  (guard: {guard})",
            f"windowed book {windowed_book.nbytes:,} B vs dense "
            f"{dense_book.nbytes:,} B at {DAYS} days ({100 * fraction:.1f}%, "
            f"guard: <= {100 * MAX_WINDOWED_FRACTION:.0f}%)",
            "sharded export byte-identical to single: checked below",
        ]
    )
    write_perf_report(
        "fleet-city",
        report,
        {
            "workload": {
                "n_hubs": n_hubs,
                "days": spec.run.days,
                "horizon": horizon,
                "n_feeders": spec.grid.n_feeders,
                "feeder_capacity_kw": FEEDER_CAPACITY_KW,
                "shards": N_SHARDS,
                "cores": cores,
            },
            "single_hub_slots_per_sec": hub_slots / single_s,
            "sharded_hub_slots_per_sec": hub_slots / sharded_s,
            "speedup": speedup,
            "speedup_guard": guard,
            "windowed_book_bytes": windowed_book.nbytes,
            "dense_book_bytes": dense_book.nbytes,
            "windowed_fraction": fraction,
            "relaxed": relaxed,
        },
    )
    print("\n" + report)

    # Equivalence guard: the export a user would diff must not change.
    single_path = tmp_path / "single.json"
    sharded_path = tmp_path / "sharded.json"
    write_results_json(single, single_path)
    write_results_json(sharded, sharded_path)
    assert single_path.read_bytes() == sharded_path.read_bytes()

    # Memory guard: windowed storage must cap the book well below dense.
    assert fraction <= MAX_WINDOWED_FRACTION, report

    if cores >= 4:
        assert speedup >= floor, report
