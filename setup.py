"""Thin setup shim so `pip install -e .` works without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables the
legacy editable-install path on offline environments.
"""
from setuptools import setup

setup()
