"""Quickstart: simulate one ECT-Hub for a week and print its books.

Builds an urban hub (rooftop PV, two base stations, a 120 kW charging
station, 200 kWh battery), drives it with synthetic weather / traffic /
price traces, and runs a simple rule-based battery schedule.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.hub import ScenarioConfig, build_fleet_scenarios, fleet_behavior_model
from repro.hub.scenario import resolve_occupancy
from repro.rl.schedulers import RuleBasedScheduler
from repro.rng import RngFactory


def main() -> None:
    factory = RngFactory(seed=42)
    config = ScenarioConfig(n_hours=24 * 7)

    # One call builds the 12-hub fleet with Eq. 6-sized batteries; we take
    # the first (urban) hub.
    scenario = build_fleet_scenarios(config, factory)[0]
    print(f"hub {scenario.site.hub_id}: {scenario.site.kind}, "
          f"PV {scenario.site.pv_kw:.0f} kW, WT {scenario.site.wt_kw:.0f} kW, "
          f"{scenario.site.n_base_stations} base stations")

    # Charging demand: latent strata realised with no discounts offered.
    behavior = fleet_behavior_model(config, factory)
    strata = behavior.sample_strata(
        scenario.site.hub_id, np.arange(scenario.n_hours), factory.stream("demo")
    )
    occupied = resolve_occupancy(strata, np.zeros(scenario.n_hours, dtype=int))

    # Simulate a week under the classic peak/off-peak battery rule.
    sim = scenario.simulation(occupied, np.zeros(scenario.n_hours))
    scheduler = RuleBasedScheduler()
    book = sim.run(scheduler)

    print(f"\nweek summary (Eqs. 8-12):")
    print(f"  charging revenue  CR = ${book.charging_revenue:9.2f}")
    print(f"  operating cost    OC = ${book.operating_cost:9.2f}")
    print(f"  profit            Ψ  = ${book.profit:9.2f}")
    print(f"  grid energy          = {book.total_grid_energy_kwh:9.1f} kWh")
    print(f"  curtailed renewables = {book.total_curtailed_kwh:9.1f} kWh")
    print("\ndaily profit:", [round(r, 1) for r in book.daily_rewards()])


if __name__ == "__main__":
    main()
