"""Pricing campaign: train ECT-Price and decide who gets discounts.

Reproduces the paper's §IV-A workflow end to end on synthetic data:
simulate a historical charging log (with latent Always/Incentive/None
strata and a confounded logging policy), train the CF-MTL model, and
compare its budgeted discount selection against the OR uplift baseline
using the verified Table II reward.

Run:  python examples/pricing_campaign.py
"""

from __future__ import annotations

from repro.causal import (
    EctPriceConfig,
    EctPriceModel,
    EctPricePolicy,
    NcfConfig,
    UpliftPolicy,
    make_baseline,
    render_table,
    score_decision,
    train_test_split_by_day,
)
from repro.rng import RngFactory
from repro.synth.charging import ChargingBehaviorModel, ChargingConfig


def main() -> None:
    factory = RngFactory(seed=7)
    behavior = ChargingBehaviorModel(ChargingConfig(), factory)

    print("simulating 210 days of fleet charging history …")
    log = behavior.simulate_log(210)
    train, test = train_test_split_by_day(
        log, n_stations=behavior.config.n_stations, boundary_day=60
    )
    budget = int(round(0.195 * len(test)))
    print(f"train {len(train)} items / test {len(test)} items, "
          f"discount budget {budget}")

    print("training ECT-Price (CF-MTL) …")
    ours = EctPriceModel(12, train.n_time_ids,
                         EctPriceConfig(epochs=20, batch_size=128),
                         factory.stream("ours"))
    ours.fit(train)

    print("training the OR uplift baseline …")
    baseline = make_baseline("OR", 12, train.n_time_ids,
                             NcfConfig(epochs=10, batch_size=128),
                             factory.stream("or"))
    baseline.fit(train)

    outcomes = []
    for policy in (EctPricePolicy(ours), UpliftPolicy(baseline)):
        for level in (0.1, 0.3, 0.6):
            decision = policy.decide(
                test.station_ids, test.time_ids,
                discount_level=level, budget=budget,
            )
            outcomes.append(score_decision(
                decision, test.stratum, method=policy.name, discount_level=level,
            ))

    print()
    print(render_table(outcomes))
    print("\nreward = #incentive-discounted − c·(#none + #always discounted)")


if __name__ == "__main__":
    main()
