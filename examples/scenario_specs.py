"""Scenario specs: describe, serialize, and sweep fleets as data.

Builds a heterogeneous two-tier city (small-battery and big-battery hub
groups behind shared feeders), runs it through ``repro.api``, proves the
JSON round trip reproduces the run, then sweeps feeder capacity.

Run:  python examples/scenario_specs.py
"""

from __future__ import annotations

from repro import api
from repro.spec import (
    FleetSpec,
    GridSpec,
    HubGroupSpec,
    RunSpec,
    ScenarioSpec,
    SweepSpec,
)


def main() -> None:
    spec = ScenarioSpec(
        name="two-tier-city",
        description="8 small-battery + 8 big-battery hubs on 4 shared feeders",
        fleet=FleetSpec(
            groups=(
                HubGroupSpec(count=8, battery_scale=0.5),
                HubGroupSpec(count=8, battery_scale=2.0),
            )
        ),
        grid=GridSpec(n_feeders=4, feeder_capacity_kw=400.0),
        run=RunSpec(days=7, seed=0, voll_per_kwh=2.0),
    )

    # The spec is pure data: JSON out, JSON in, same simulation.
    replayed = ScenarioSpec.from_json(spec.to_json())
    assert replayed == spec

    result = api.run(spec)
    print(result.rendered())

    twin = api.run(replayed)
    assert twin.data["network_profit"] == result.data["network_profit"]
    print("\nJSON round trip reproduced the run exactly.")

    # Sweep: one base spec x a capacity grid = runnable jobs.
    sweep = SweepSpec(
        base=spec,
        parameters={"grid.feeder_capacity_kw": (600.0, 400.0, 250.0)},
        name="capacity-sweep",
    )
    print(f"\nsweep over {sweep.n_jobs} capacity levels:")
    for job, job_result in zip(sweep.jobs(), api.run_sweep(sweep)):
        data = job_result.data
        print(
            f"  {job.label()}: profit ${data['network_profit']:,.0f}, "
            f"unserved {data['network_unserved_kwh']:,.1f} kWh"
        )


if __name__ == "__main__":
    main()
