"""ECT-DRL: train a PPO battery scheduler and compare against heuristics.

Reproduces the paper's §IV-B loop at example scale: a 30-day-episode
environment over one hub with evening discounts, PPO training, and an
evaluation against the rule-based / idle baselines plus the clairvoyant
DP oracle bound.

Run:  python examples/drl_scheduling.py
"""

from __future__ import annotations

import numpy as np

from repro.hub import ScenarioConfig, build_fleet_scenarios, fleet_behavior_model
from repro.hub.scenario import resolve_occupancy
from repro.rl import (
    EctHubEnv,
    EnvConfig,
    IdleScheduler,
    RuleBasedScheduler,
    evaluate_agent,
    evaluate_scheduler,
    optimal_schedule,
    train_ppo,
)
from repro.rng import RngFactory


def main() -> None:
    factory = RngFactory(seed=3)
    config = ScenarioConfig(n_hours=24 * 90)
    scenario = build_fleet_scenarios(config, factory)[1]  # a rural PV+WT hub
    behavior = fleet_behavior_model(config, factory)

    # Simple evening discount schedule (a trained ECT-Price policy would
    # normally produce this — see examples/pricing_campaign.py).
    hours = np.arange(scenario.n_hours) % 24
    discounts = np.where(hours >= 18, 0.2, 0.0)

    env = EctHubEnv(scenario, behavior, discounts,
                    config=EnvConfig(episode_days=30),
                    rng=factory.stream("env"))

    print("training PPO for 30 episodes …")
    agent, history = train_ppo(env, episodes=30, rng=factory.stream("ppo"))
    first5 = np.mean(history.episode_returns[:5])
    last5 = np.mean(history.episode_returns[-5:])
    print(f"episode return: first-5 avg {first5:.0f} -> last-5 avg {last5:.0f}")

    ppo_daily = evaluate_agent(env, agent, episodes=5).mean()
    rule_daily = evaluate_scheduler(env, RuleBasedScheduler(), episodes=5).mean()
    idle_daily = evaluate_scheduler(env, IdleScheduler(), episodes=5).mean()

    # Clairvoyant upper bound on one fixed 30-day window.
    rng = factory.stream("oracle")
    window = 30 * 24
    strata = behavior.sample_strata(scenario.site.hub_id, np.arange(window), rng)
    occupied = resolve_occupancy(strata, discounts[:window] > 0)
    inputs = scenario.inputs_with_occupancy(
        np.concatenate([occupied, np.zeros(scenario.n_hours - window, dtype=int)]),
        discounts,
    ).slice(0, window)
    oracle = optimal_schedule(scenario.build_hub(), inputs)

    print("\navg daily reward (Eq. 12):")
    print(f"  dp-oracle bound : {oracle.total_reward / 30:8.1f}")
    print(f"  ppo (ECT-DRL)   : {ppo_daily:8.1f}")
    print(f"  rule-based      : {rule_daily:8.1f}")
    print(f"  idle            : {idle_daily:8.1f}")


if __name__ == "__main__":
    main()
