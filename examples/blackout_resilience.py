"""Blackout resilience: the Eq. 6 reserve keeps base stations alive.

Demonstrates the paper's hard constraint: the battery's SoC floor is sized
so the communication function survives a grid outage of the recovery time
``T_r``. We inject an outage, watch the hub ride through it from the
reserve, then show what happens when the reserve is deliberately under-
sized.

Run:  python examples/blackout_resilience.py
"""

from __future__ import annotations

import numpy as np

from repro.config import replace
from repro.energy import BatteryConfig
from repro.hub import (
    HubConfig,
    EctHub,
    HubInputs,
    HubSimulation,
    required_reserve_kwh,
)
from repro.energy.base_station import BaseStationCluster
from repro.rng import RngFactory
from repro.synth.rtp import RtpGenerator
from repro.synth.traffic import TrafficGenerator


def run_case(soc_min_fraction: float, label: str) -> None:
    factory = RngFactory(seed=9)
    n = 48
    traffic = TrafficGenerator().generate(n, factory.stream("t"))
    prices = RtpGenerator().generate(n, factory.stream("p"), load_rate=traffic.load_rate)

    battery = replace(BatteryConfig(), soc_min_fraction=soc_min_fraction)
    hub_config = HubConfig(battery=battery, n_base_stations=2, pv=None)
    outage = np.zeros(n, dtype=bool)
    outage[20:26] = True  # six-hour outage

    inputs = HubInputs(
        load_rate=traffic.load_rate,
        rtp_kwh=prices.price_kwh,
        pv_power_kw=np.zeros(n),
        wt_power_kw=np.zeros(n),
        occupied=np.zeros(n, dtype=int),
        discount=np.zeros(n),
        outage=outage,
    )
    sim = HubSimulation(EctHub(hub_config), inputs, initial_soc_fraction=soc_min_fraction)
    book = sim.run(lambda s: 0)

    cluster = BaseStationCluster(2)
    needed = required_reserve_kwh(cluster, 6)
    print(f"{label}:")
    print(f"  reserve held  : {battery.soc_min_kwh:6.1f} kWh "
          f"(worst-case 6 h need: {needed:.1f} kWh)")
    print(f"  unserved BS energy during outage: {book.total_unserved_kwh:.2f} kWh "
          + ("-- communication survives ✓" if book.total_unserved_kwh == 0
             else "-- SERVICE LOST ✗"))


def main() -> None:
    print("six-hour blackout, two base stations, no renewables\n")
    run_case(soc_min_fraction=0.25, label="Eq. 6-sized reserve (SoC_min = 25%)")
    print()
    run_case(soc_min_fraction=0.01, label="under-sized reserve (SoC_min = 1%)")


if __name__ == "__main__":
    main()
