"""Telemetry subsystem: metrics registry, tracer, session wiring, logger.

The contracts under test:

* the registry and tracer are correct in isolation (counter/gauge/
  histogram/timer arithmetic, span nesting, export round-trips);
* attaching a session to ``api.run`` / ``api.train_fleet`` never changes
  the simulated numbers — telemetry is observational only, and the
  record's counters agree with the cost book's own aggregates;
* sweep aggregation is executor-independent: serial and parallel runs of
  the same grid produce byte-identical aggregated counters;
* worker failures carry the remote traceback (``ParallelError.
  job_traceback``) and the CLI surfaces it;
* the CLI flags (``--telemetry``, ``--trace-out``, ``-v``/``-q``) drive
  the summary, the export files, and the logger threshold.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import api
from repro.cli import main
from repro.errors import ConfigError, ParallelError
from repro.spec import SweepSpec
from repro.spec.compiler import spec_from_fleet_flags, spec_from_train_fleet_flags
from repro.telemetry import (
    HistogramStats,
    MetricsRegistry,
    Telemetry,
    Tracer,
    log,
    run_metadata,
    telemetry_sidecar_path,
    write_telemetry_json,
)


# --------------------------------------------------------------------- #
# Metrics registry                                                        #
# --------------------------------------------------------------------- #


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("events")
        registry.inc("events", 2.5)
        assert registry.counters["events"] == 3.5

    def test_counters_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigError, match="cannot decrease"):
            registry.inc("events", -1)

    def test_gauge_keeps_latest(self):
        registry = MetricsRegistry()
        registry.set_gauge("rate", 10.0)
        registry.set_gauge("rate", 20.0)
        assert registry.gauges["rate"] == 20.0

    def test_histogram_streaming_stats(self):
        registry = MetricsRegistry()
        values = [1.0, 2.0, 3.0, 4.0]
        for value in values:
            registry.observe("lat", value)
        stats = registry.histograms["lat"]
        assert stats.count == 4
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.std == pytest.approx(np.std(values))
        assert stats.min == 1.0 and stats.max == 4.0

    def test_timer_context_manager_counts_calls(self):
        registry = MetricsRegistry()
        for _ in range(3):
            with registry.time("work"):
                pass
        seconds, count = registry.timers["work"]
        assert count == 3 and seconds >= 0.0

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        registry.observe("h", 1.0)
        registry.add_time("t", 0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        json.dumps(snapshot)  # must serialize without custom encoders

    def test_merge_adds_counters_and_combines_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("n", 2)
        right.inc("n", 3)
        left.observe("h", 1.0)
        right.observe("h", 3.0)
        right.add_time("t", 0.25)
        left.merge(right.snapshot())
        assert left.counters["n"] == 5
        assert left.histograms["h"].count == 2
        assert left.histograms["h"].mean == pytest.approx(2.0)
        assert left.timers["t"] == [0.25, 1]

    def test_histogram_merge_from_dict_roundtrip(self):
        stats = HistogramStats()
        for value in (2.0, 6.0):
            stats.observe(value)
        other = HistogramStats()
        other.merge(stats.to_dict())
        assert other.to_dict() == stats.to_dict()


# --------------------------------------------------------------------- #
# Tracer                                                                  #
# --------------------------------------------------------------------- #


class TestTracer:
    def test_span_nesting_round_trip(self):
        tracer = Tracer()
        with tracer.span("run", scenario="x"):
            with tracer.span("compile"):
                pass
            with tracer.span("step", slots=48):
                pass
        trace = tracer.to_list()
        assert [span["name"] for span in trace] == ["run"]
        assert [c["name"] for c in trace[0]["children"]] == ["compile", "step"]
        assert trace[0]["fields"] == {"scenario": "x"}
        assert trace[0]["wall_s"] >= trace[0]["children"][0]["wall_s"]
        json.dumps(trace)

    def test_export_with_open_span_rejected(self):
        tracer = Tracer()
        with pytest.raises(ConfigError, match="open"):
            with tracer.span("run"):
                tracer.to_list()

    def test_phase_totals_aggregate_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("step"):
                pass
        totals = tracer.phase_totals()
        assert totals["step"]["count"] == 3
        assert totals["step"]["wall_s"] >= 0.0

    def test_attach_grafts_worker_trace(self):
        worker = Tracer()
        with worker.span("step"):
            pass
        parent = Tracer()
        parent.attach("sweep-job", worker.to_list(), index=0)
        trace = parent.to_list()
        assert trace[0]["name"] == "sweep-job"
        assert trace[0]["children"][0]["name"] == "step"
        assert parent.phase_totals()["step"]["count"] == 1

    def test_summary_lines_render_tree(self):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("step"):
                pass
        lines = tracer.summary_lines()
        assert lines[0].startswith("run:")
        assert lines[1].startswith("  step:")


# --------------------------------------------------------------------- #
# Structured logger                                                       #
# --------------------------------------------------------------------- #


class TestLog:
    @pytest.fixture(autouse=True)
    def _restore_threshold(self):
        yield
        log.configure()

    def test_default_threshold_hides_debug(self, capsys):
        log.configure()
        log.debug("hidden")
        log.info("shown")
        captured = capsys.readouterr()
        assert "hidden" not in captured.out and "shown" in captured.out

    def test_verbose_shows_debug_with_fields(self, capsys):
        log.configure(verbose=True)
        log.debug("expanding sweep", jobs=4)
        assert "[debug] expanding sweep jobs=4" in capsys.readouterr().out

    def test_quiet_keeps_warnings_on_stderr(self, capsys):
        log.configure(quiet=True)
        log.info("silenced")
        log.warning("kept")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "[warning] kept" in captured.err

    def test_verbose_wins_over_quiet(self):
        assert log.configure(verbose=True, quiet=True) == log.DEBUG


# --------------------------------------------------------------------- #
# Run metadata                                                            #
# --------------------------------------------------------------------- #


class TestRunMetadata:
    def test_fingerprint_fields_present(self):
        meta = run_metadata()
        assert set(meta) == {
            "hostname",
            "platform",
            "python_version",
            "numpy_version",
            "git_commit",
            "ect_perf_relaxed",
            "backend",
            "peak_rss_mb",
        }
        assert meta["backend"] is None  # no engine ran under this call
        assert run_metadata(backend="numpy")["backend"] == "numpy"
        json.dumps(meta)

    def test_static_part_cached_live_gauge_fresh(self):
        # The expensive fields (git subprocess) are computed once; the
        # record itself is a fresh dict so the peak-RSS gauge is live.
        first, second = run_metadata(), run_metadata()
        assert first is not second
        static = {k: v for k, v in first.items() if k != "peak_rss_mb"}
        assert static == {k: v for k, v in second.items() if k != "peak_rss_mb"}

    def test_peak_rss_is_positive_where_supported(self):
        from repro.telemetry.runinfo import peak_rss_mb

        peak = peak_rss_mb()
        if peak is not None:
            assert peak > 0
            # Monotone high-water mark.
            assert peak_rss_mb() >= peak


# --------------------------------------------------------------------- #
# api.run integration                                                     #
# --------------------------------------------------------------------- #


def fleet_spec(**overrides):
    return spec_from_fleet_flags(n_hubs=6, days=2, **overrides)


class TestApiRunTelemetry:
    def test_record_attached_and_phases_traced(self):
        telemetry = Telemetry()
        result = api.run(fleet_spec(), telemetry=telemetry)
        record = result.telemetry
        assert record is not None
        assert {"compile", "reset", "step"} <= set(record["phases"])
        assert [span["name"] for span in record["trace"]] == [
            "compile",
            "reset",
            "step",
        ]
        assert record["meta"]["numpy_version"] == np.__version__

    def test_results_identical_with_and_without_telemetry(self):
        plain = api.run(fleet_spec())
        traced = api.run(fleet_spec(), telemetry=Telemetry())
        assert json.dumps(plain.to_json_dict(), sort_keys=True) == json.dumps(
            traced.to_json_dict(), sort_keys=True
        )

    def test_telemetry_stays_out_of_json_export(self):
        result = api.run(fleet_spec(), telemetry=Telemetry())
        assert result.telemetry is not None
        assert "telemetry" not in result.to_json_dict()

    def test_counters_agree_with_the_cost_book(self):
        telemetry = Telemetry()
        result = api.run(fleet_spec(), telemetry=telemetry)
        counters = result.telemetry["counters"]
        horizon = 2 * 24
        assert counters["engine.slots"] == horizon
        assert counters["engine.hub_slots"] == 6 * horizon
        assert counters.get("engine.blackout_hub_slots", 0) == result.data[
            "blackout_slots"
        ]
        assert counters["engine.unserved_kwh"] == pytest.approx(
            result.data["network_unserved_kwh"]
        )
        assert counters["engine.congested_feeder_slots"] == result.data[
            "congested_feeder_slots"
        ]

    def test_congestion_counters_on_a_coupled_fleet(self):
        telemetry = Telemetry()
        result = api.run(
            fleet_spec(n_feeders=2, feeder_capacity_kw=30.0),
            telemetry=telemetry,
        )
        counters = result.telemetry["counters"]
        assert counters["engine.congested_hub_slots"] > 0
        assert counters["engine.curtailed_kwh"] == pytest.approx(
            result.data["import_shortfall_kwh"]
        )
        assert counters["engine.reserve_dispatches"] > 0
        # Coupled runs time the per-slot feeder allocation.
        assert result.telemetry["timers"]["allocation"]["count"] == 2 * 24

    def test_throughput_gauge_booked(self):
        result = api.run(fleet_spec(), telemetry=Telemetry())
        assert result.telemetry["gauges"]["engine.hub_slots_per_sec"] > 0.0


# --------------------------------------------------------------------- #
# Sweep aggregation                                                       #
# --------------------------------------------------------------------- #


def small_sweep(n_jobs: int = 3) -> SweepSpec:
    return SweepSpec(
        base=fleet_spec(),
        parameters={"run.seed": tuple(range(n_jobs))},
        name="telemetry-sweep",
    )


class TestSweepAggregation:
    def test_serial_counters_sum_over_jobs(self):
        telemetry = Telemetry()
        results = api.run_sweep(small_sweep(3), telemetry=telemetry)
        record = telemetry.to_dict()
        assert record["counters"]["runs"] == 3
        assert record["counters"]["sweep-jobs"] == 3
        assert record["counters"]["engine.hub_slots"] == 3 * 6 * 48
        assert record["phases"]["sweep-job"]["count"] == 3
        assert all(r.telemetry is not None for r in results)

    def test_serial_and_parallel_counters_byte_identical(self):
        serial, parallel = Telemetry(), Telemetry()
        api.run_sweep(small_sweep(3), telemetry=serial)
        api.run_sweep(small_sweep(3), jobs=3, telemetry=parallel)
        serial_record, parallel_record = serial.to_dict(), parallel.to_dict()
        for section in ("counters", "histograms"):
            # Timings differ run to run; the deterministic sections must
            # not. Histogram counts are deterministic, sums are not.
            if section == "counters":
                assert json.dumps(
                    serial_record[section], sort_keys=True
                ) == json.dumps(parallel_record[section], sort_keys=True)
        assert (
            serial_record["histograms"]["engine.step_seconds"]["count"]
            == parallel_record["histograms"]["engine.step_seconds"]["count"]
        )
        assert parallel_record["workers"] == 3

    def test_sweep_without_telemetry_attaches_nothing(self):
        results = api.run_sweep(small_sweep(2))
        assert all(r.telemetry is None for r in results)


# --------------------------------------------------------------------- #
# Worker failure traceback                                                #
# --------------------------------------------------------------------- #


def doomed_sweep() -> SweepSpec:
    # 999 feeders for 5 hubs compiles past SweepSpec validation but
    # fails inside the worker (same trigger as test_parallel.py).
    return SweepSpec(
        base=spec_from_fleet_flags(n_hubs=5, days=2),
        parameters={"grid.n_feeders": (3, 999)},
        name="doomed",
    )


class TestWorkerTraceback:
    def test_parallel_error_carries_remote_traceback(self):
        with pytest.raises(ParallelError) as excinfo:
            api.run_sweep(doomed_sweep(), jobs=2)
        trace = excinfo.value.job_traceback
        assert trace is not None
        assert "Traceback" in trace
        assert "feeders" in trace  # the worker-side raise site

    def test_cli_surfaces_worker_traceback_on_stderr(self, capsys):
        code = main(
            [
                "sweep",
                "--preset",
                "paper-default",
                "--set",
                "fleet.n_hubs=5",
                "--set",
                "run.days=2",
                "--param",
                "grid.n_feeders=3,999",
                "--jobs",
                "2",
            ]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "failed in a worker" in err
        assert "worker traceback" in err and "Traceback" in err


# --------------------------------------------------------------------- #
# RL training metrics                                                     #
# --------------------------------------------------------------------- #


class TestTrainFleetTelemetry:
    @pytest.fixture(scope="class")
    def trained(self):
        telemetry = Telemetry()
        spec = spec_from_train_fleet_flags(
            n_hubs=3, days=2, train_episodes=2, eval_episodes=1
        )
        result = api.train_fleet(spec, telemetry=telemetry)
        return result, telemetry

    def test_one_rl_record_per_update(self, trained):
        result, _ = trained
        record = result.telemetry
        assert len(record["rl"]) == result.data["train_episodes"] == 2
        expected_keys = {
            "approx_kl",
            "clip_fraction",
            "entropy",
            "policy_loss",
            "reward_mean",
            "reward_std",
            "value_loss",
        }
        assert all(set(update) == expected_keys for update in record["rl"])

    def test_rl_metrics_agree_with_history(self, trained):
        result, _ = trained
        last = result.telemetry["rl"][-1]
        assert last["entropy"] == pytest.approx(result.data["final_entropy"])
        assert last["clip_fraction"] == pytest.approx(
            result.data["final_clip_fraction"]
        )
        assert np.isfinite(last["approx_kl"])

    def test_train_phases_and_counters(self, trained):
        result, _ = trained
        record = result.telemetry
        assert {"compile", "eval", "train", "ppo-update"} <= set(
            record["phases"]
        )
        assert record["phases"]["ppo-update"]["count"] == 2
        assert record["timers"]["rl.rollout"]["count"] == 2
        assert record["counters"]["rl.train_episodes"] == 2
        assert record["gauges"]["rl.train_hub_slots_per_sec"] > 0.0

    def test_seeded_rl_metrics_deterministic(self):
        def run_once():
            telemetry = Telemetry()
            spec = spec_from_train_fleet_flags(
                n_hubs=3, days=2, train_episodes=2, eval_episodes=1, seed=7
            )
            api.train_fleet(spec, telemetry=telemetry)
            return telemetry.to_dict()["rl"]

        assert json.dumps(run_once()) == json.dumps(run_once())

    def test_training_identical_with_and_without_telemetry(self):
        spec = spec_from_train_fleet_flags(
            n_hubs=3, days=2, train_episodes=2, eval_episodes=1
        )
        plain = api.train_fleet(spec)
        traced = api.train_fleet(spec, telemetry=Telemetry())
        assert json.dumps(plain.to_json_dict(), sort_keys=True) == json.dumps(
            traced.to_json_dict(), sort_keys=True
        )


# --------------------------------------------------------------------- #
# CLI flags and exports                                                   #
# --------------------------------------------------------------------- #


FLEET_ARGV = ["fleet", "--n-hubs", "5", "--days", "2"]


class TestCliTelemetry:
    def test_telemetry_flag_prints_summary(self, capsys):
        assert main([*FLEET_ARGV, "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "-- telemetry --" in out
        assert "phase compile" in out and "phase step" in out
        assert "counter engine.hub_slots = 240" in out

    def test_trace_out_writes_nested_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main([*FLEET_ARGV, "--trace-out", str(trace_path)]) == 0
        assert f"wrote {trace_path}" in capsys.readouterr().out
        record = json.loads(trace_path.read_text())
        assert [span["name"] for span in record["trace"]] == [
            "compile",
            "reset",
            "step",
        ]
        assert record["counters"]["engine.slots"] == 48

    def test_out_gains_telemetry_sidecar(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        assert main([*FLEET_ARGV, "--telemetry", "--out", str(out_path)]) == 0
        sidecar = telemetry_sidecar_path(out_path)
        assert sidecar == tmp_path / "results.telemetry.json"
        assert sidecar.exists()
        # The --out payload itself stays telemetry-free (deterministic).
        assert "telemetry" not in json.loads(out_path.read_text())
        assert f"wrote {sidecar}" in capsys.readouterr().out

    def test_no_flag_means_no_telemetry_output(self, capsys):
        assert main(FLEET_ARGV) == 0
        assert "-- telemetry --" not in capsys.readouterr().out

    def test_quiet_suppresses_report(self, capsys):
        assert main([*FLEET_ARGV, "--quiet"]) == 0
        assert capsys.readouterr().out == ""
        log.configure()

    def test_verbose_shows_debug_lines(self, capsys):
        assert main([*FLEET_ARGV, "--verbose"]) == 0
        assert "[debug] compiled scenario" in capsys.readouterr().out
        log.configure()

    def test_run_experiment_telemetry_passthrough(self, capsys):
        assert (
            main(["run", "fleet", "--scale", "0.1", "--telemetry"]) == 0
        )
        assert "-- telemetry --" in capsys.readouterr().out

    def test_run_experiment_without_support_rejects_flag(self, capsys):
        assert main(["run", "fig5", "--telemetry"]) == 1
        assert "does not support --telemetry" in capsys.readouterr().err


class TestExportHelpers:
    def test_write_telemetry_json_round_trips(self, tmp_path):
        record = {"counters": {"runs": 1.0}, "trace": []}
        path = write_telemetry_json(record, tmp_path / "sub" / "t.json")
        assert json.loads(path.read_text()) == record

    def test_sidecar_path_rewrites_suffix(self):
        assert (
            telemetry_sidecar_path("a/b/results.json").as_posix()
            == "a/b/results.telemetry.json"
        )
