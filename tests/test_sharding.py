"""Hub sharding + windowed cost book: byte-identity and planning laws.

The city-scale contract under test has three legs:

* ``api.run(spec, shards=N)`` is an *executor* choice, never a
  *semantics* choice — the ``--out`` export is byte for byte the file
  the unsharded run writes, across feeder coupling, priority
  allocation, blackouts, VoLL, the random scheduler, and the pricing
  loop (randomized over shard counts, seeds, and topologies).
* :func:`~repro.fleet.sharding.plan_shards` is a deterministic,
  feeder-closed partition of the hub index space.
* ``storage="windowed"`` books match dense aggregates to 1e-9 while
  refusing the per-slot surfaces they no longer hold, and merge across
  shards bit-identically to an unsharded windowed run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import api
from repro.cli import main
from repro.errors import ConfigError, FleetError
from repro.experiments.base import write_results_json
from repro.fleet.costs import FleetCostBook
from repro.fleet.grid import FeederGroup
from repro.fleet.sharding import ShardTask, plan_shards, run_shard
from repro.spec.compiler import spec_from_fleet_flags
from repro.spec.scenario import RunSpec, ScenarioSpec


def base_spec(**overrides) -> ScenarioSpec:
    spec = spec_from_fleet_flags(n_hubs=10, days=2)
    return spec.with_overrides(overrides) if overrides else spec


def export_bytes(result, tmp_path, name) -> bytes:
    path = tmp_path / f"{name}.json"
    write_results_json(result, path)
    return path.read_bytes()


# --------------------------------------------------------------------- #
# plan_shards                                                             #
# --------------------------------------------------------------------- #


def synthetic_feeders(assignment, capacities) -> FeederGroup:
    return FeederGroup(
        assignment=np.asarray(assignment),
        import_capacity_kw=np.asarray(capacities, dtype=float),
        policy="proportional",
    )


class TestPlanShards:
    def test_partitions_exactly_once(self):
        feeders = synthetic_feeders([0, 1, 2, 0, 1, 2, 0], [np.inf, 40.0, np.inf])
        plan = plan_shards(feeders, 3)
        merged = np.concatenate(plan)
        assert sorted(merged.tolist()) == list(range(7))
        assert len(merged) == len(set(merged.tolist()))

    def test_coupled_feeders_stay_whole(self):
        feeders = synthetic_feeders([0, 1, 0, 1, 0, 1], [50.0, 60.0])
        for n_shards in (2, 3, 5):
            plan = plan_shards(feeders, n_shards)
            for members in plan:
                present = set(feeders.assignment[members].tolist())
                for feeder in present:
                    expected = np.flatnonzero(feeders.assignment == feeder)
                    assert set(expected.tolist()) <= set(members.tolist())

    def test_unlimited_hubs_split_freely(self):
        feeders = synthetic_feeders([0] * 8, [np.inf])
        plan = plan_shards(feeders, 4)
        assert len(plan) == 4
        assert sorted(len(p) for p in plan) == [2, 2, 2, 2]

    def test_split_unlimited_false_keeps_feeders_atomic(self):
        feeders = synthetic_feeders([0] * 8, [np.inf])
        plan = plan_shards(feeders, 4, split_unlimited=False)
        assert len(plan) == 1
        assert plan[0].tolist() == list(range(8))

    def test_shards_are_sorted_and_ordered_by_first_hub(self):
        feeders = synthetic_feeders([0, 1, 2, 0, 1, 2], [30.0, 30.0, 30.0])
        plan = plan_shards(feeders, 3)
        for members in plan:
            assert (np.diff(members) > 0).all()
        firsts = [int(p[0]) for p in plan]
        assert firsts == sorted(firsts)

    def test_deterministic(self):
        feeders = synthetic_feeders(
            [0, 1, 2, 3, 0, 1, 2, 3, 0], [np.inf, 25.0, np.inf, 70.0]
        )
        first = plan_shards(feeders, 3)
        second = plan_shards(feeders, 3)
        assert len(first) == len(second)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_one_shard_is_everything(self):
        feeders = synthetic_feeders([0, 1, 0, 1], [np.inf, 40.0])
        plan = plan_shards(feeders, 1)
        assert len(plan) == 1
        assert plan[0].tolist() == [0, 1, 2, 3]

    def test_bad_counts_rejected(self):
        feeders = synthetic_feeders([0, 0], [np.inf])
        with pytest.raises(FleetError):
            plan_shards(feeders, 0)
        with pytest.raises(FleetError):
            plan_shards(feeders, True)

    def test_randomized_partition_law(self):
        """Any topology: exact cover, finite-feeder closure, determinism."""
        rng = np.random.default_rng(20240817)
        for _ in range(25):
            n_hubs = int(rng.integers(2, 30))
            n_feeders = int(rng.integers(1, min(n_hubs, 6) + 1))
            assignment = rng.integers(0, n_feeders, size=n_hubs)
            assignment[:n_feeders] = np.arange(n_feeders)  # no empty feeder
            capacities = np.where(
                rng.random(n_feeders) < 0.5, np.inf, rng.uniform(10, 200, n_feeders)
            )
            feeders = synthetic_feeders(assignment, capacities)
            n_shards = int(rng.integers(1, 9))
            plan = plan_shards(feeders, n_shards)
            merged = np.concatenate(plan)
            assert sorted(merged.tolist()) == list(range(n_hubs))
            assert 1 <= len(plan) <= n_shards
            for members in plan:
                for feeder in set(assignment[members].tolist()):
                    if np.isinf(capacities[feeder]):
                        continue
                    expected = np.flatnonzero(assignment == feeder)
                    assert set(expected.tolist()) <= set(members.tolist())


# --------------------------------------------------------------------- #
# FeederGroup.subgroup                                                    #
# --------------------------------------------------------------------- #


class TestSubgroup:
    def test_renumbers_compactly_and_keeps_capacity_rows(self):
        feeders = synthetic_feeders([0, 1, 2, 1, 2], [10.0, 20.0, 30.0])
        sub, feeder_ids = feeders.subgroup(np.array([1, 3, 4]))
        assert feeder_ids.tolist() == [1, 2]
        assert sub.assignment.tolist() == [0, 0, 1]
        assert sub.import_capacity_kw.tolist() == [20.0, 30.0]
        assert sub.n_hubs == 3

    def test_rejects_unsorted_duplicate_or_out_of_range(self):
        feeders = synthetic_feeders([0, 1, 0, 1], [10.0, 20.0])
        for bad in ([2, 1], [1, 1], [3, 4], []):
            with pytest.raises(FleetError):
                feeders.subgroup(np.asarray(bad, dtype=int))


# --------------------------------------------------------------------- #
# Sharded api.run byte-identity                                           #
# --------------------------------------------------------------------- #

SCENARIOS = {
    "uncoupled": {},
    "coupled": {"grid.n_feeders": 3, "grid.feeder_capacity_kw": 250.0},
    "priority-voll": {
        "grid.n_feeders": 2,
        "grid.feeder_capacity_kw": 200.0,
        "grid.allocation": "priority",
        "run.voll_per_kwh": 5.0,
    },
    "random-scheduler": {"scheduler.name": "random"},
    "windowed": {
        "run.storage": "windowed",
        "grid.n_feeders": 3,
        "grid.feeder_capacity_kw": 250.0,
    },
}


class TestShardedByteIdentity:
    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    @pytest.mark.parametrize("n_shards", [2, 7])
    def test_export_matches_unsharded(self, tmp_path, scenario, n_shards):
        spec = base_spec(**SCENARIOS[scenario])
        reference = export_bytes(api.run(spec), tmp_path, "ref")
        sharded = export_bytes(
            api.run(spec, shards=n_shards), tmp_path, f"s{n_shards}"
        )
        assert sharded == reference

    def test_one_shard_matches_too(self, tmp_path):
        spec = base_spec()
        assert export_bytes(api.run(spec, shards=1), tmp_path, "one") == (
            export_bytes(api.run(spec), tmp_path, "ref")
        )

    def test_pricing_run_matches(self, tmp_path):
        spec = base_spec(
            **{
                "pricing.policy": "evening",
                "pricing.train_days": 3,
                "grid.n_feeders": 2,
                "grid.feeder_capacity_kw": 250.0,
            }
        )
        reference = export_bytes(api.run(spec), tmp_path, "ref")
        assert export_bytes(api.run(spec, shards=3), tmp_path, "s3") == reference

    def test_randomized_specs_match(self, tmp_path):
        """Random topology/seed/scheduler: sharded export == unsharded."""
        rng = np.random.default_rng(7)
        schedulers = ("idle", "random", "rule-based", "greedy-renewable")
        for trial in range(4):
            n_hubs = int(rng.integers(5, 14))
            overrides = {
                "fleet.n_hubs": n_hubs,
                "run.seed": int(rng.integers(0, 1000)),
                "scheduler.name": schedulers[int(rng.integers(len(schedulers)))],
                "run.storage": "windowed" if rng.random() < 0.5 else "dense",
            }
            if rng.random() < 0.7:
                overrides["grid.n_feeders"] = int(rng.integers(1, 4))
                overrides["grid.feeder_capacity_kw"] = float(
                    rng.uniform(100, 400)
                )
            spec = base_spec(**overrides)
            n_shards = int(rng.integers(2, 8))
            reference = export_bytes(api.run(spec), tmp_path, f"ref{trial}")
            sharded = export_bytes(
                api.run(spec, shards=n_shards), tmp_path, f"sh{trial}"
            )
            assert sharded == reference, (overrides, n_shards)

    def test_spec_run_shards_knob_drives_sharding(self, tmp_path):
        """run.shards in the spec shards too — and because the spec rides
        inside data["spec"], that export intentionally differs from the
        shards-argument one only in that embedded knob."""
        spec = base_spec()
        via_arg = api.run(spec, shards=2)
        via_knob = api.run(spec.with_overrides({"run.shards": 2}))
        assert via_arg.data["spec"]["run"]["shards"] == 1
        assert via_knob.data["spec"]["run"]["shards"] == 2
        assert via_arg.data["network_profit"] == via_knob.data["network_profit"]
        np.testing.assert_array_equal(
            via_arg.data["profit_per_hub"], via_knob.data["profit_per_hub"]
        )

    def test_cli_shards_flag_export_matches(self, tmp_path):
        argv = [
            "fleet",
            "--preset",
            "fleet-default",
            "--set",
            "fleet.n_hubs=8",
            "--set",
            "run.days=2",
        ]
        plain = tmp_path / "plain.json"
        sharded = tmp_path / "sharded.json"
        assert main([*argv, "--out", str(plain)]) == 0
        assert main([*argv, "--shards", "3", "--out", str(sharded)]) == 0
        assert plain.read_bytes() == sharded.read_bytes()

    def test_shard_telemetry_absorbed_in_order(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        api.run(base_spec(), telemetry=telemetry, shards=3)
        record = telemetry.to_dict()
        assert record["counters"]["shards"] == 3
        assert "shard-compile" in record["phases"]
        assert "shard-step" in record["phases"]
        assert "shard-merge" in record["phases"]

    def test_invalid_shards_rejected(self):
        with pytest.raises(ConfigError):
            api.run(base_spec(), shards=0)


# --------------------------------------------------------------------- #
# run_shard worker unit                                                   #
# --------------------------------------------------------------------- #


class TestRunShard:
    def test_rows_match_unsharded_book(self):
        spec = base_spec()
        full = api.build(spec)
        full_book = full.execute()
        idx = np.array([2, 5, 7])
        result = run_shard(
            ShardTask(spec_json=spec.to_json(), hub_indices=idx, shard_index=0)
        )
        np.testing.assert_array_equal(
            result.book.profit_per_hub, full_book.profit_per_hub[idx]
        )
        np.testing.assert_array_equal(
            result.book.grid_cost[:, :], full_book.grid_cost[idx, :]
        )


# --------------------------------------------------------------------- #
# Windowed cost book                                                      #
# --------------------------------------------------------------------- #


def run_pair(**overrides):
    spec = base_spec(
        **{"grid.n_feeders": 2, "grid.feeder_capacity_kw": 220.0, **overrides}
    )
    dense = api.build(spec).execute()
    windowed = api.build(spec.with_overrides({"run.storage": "windowed"})).execute()
    return dense, windowed


class TestWindowedBook:
    def test_aggregates_match_dense_to_1e_minus_9(self):
        dense, windowed = run_pair(**{"run.voll_per_kwh": 3.0})
        for name in (
            "profit_per_hub",
            "operating_cost_per_hub",
            "charging_revenue_per_hub",
            "voll_cost_per_hub",
            "unserved_per_hub_kwh",
            "feeder_import_kwh",
            "feeder_shortfall_kwh",
            "feeder_peak_import_kw",
        ):
            np.testing.assert_allclose(
                getattr(windowed, name),
                getattr(dense, name),
                rtol=1e-9,
                atol=1e-9,
                err_msg=name,
            )
        assert windowed.congested_feeder_slots == dense.congested_feeder_slots
        assert windowed.blackout_hub_slots == dense.blackout_hub_slots
        np.testing.assert_allclose(
            windowed.daily_rewards(), dense.daily_rewards(), rtol=1e-9, atol=1e-9
        )

    def test_memory_does_not_scale_with_horizon(self):
        short = api.build(
            base_spec(**{"run.storage": "windowed", "run.days": 2})
        ).simulation.book
        long = api.build(
            base_spec(**{"run.storage": "windowed", "run.days": 8})
        ).simulation.book
        dense_long = api.build(base_spec(**{"run.days": 8})).simulation.book
        # Ring is horizon-independent; only the (n_hubs, n_days) daily
        # fold grows, by a few hundred bytes here.
        assert long.nbytes - short.nbytes < 1024
        assert long.nbytes < 0.25 * dense_long.nbytes

    def test_per_slot_surfaces_refused(self):
        _, windowed = run_pair()
        with pytest.raises(FleetError, match="dense"):
            windowed.hub_book(0)
        with pytest.raises(FleetError, match="dense"):
            windowed.feeder_import_kw()
        with pytest.raises(FleetError, match="dense"):
            _ = windowed.grid_cost
        with pytest.raises(FleetError):
            windowed.daily_rewards(slots_per_day=12)

    def test_recent_serves_the_window(self):
        dense, windowed = run_pair()
        np.testing.assert_array_equal(
            windowed.recent("grid_cost", 12), dense.recent("grid_cost", 12)
        )
        np.testing.assert_array_equal(
            windowed.recent("action", 5), dense.recent("action", 5)
        )
        assert windowed.recent("grid_cost").shape[1] == windowed.window

    def test_windowed_merge_requires_feeder_closure(self):
        spec = base_spec(**{"run.storage": "windowed"})
        full = api.build(spec)
        horizon = full.simulation.horizon
        books, indices = [], []
        # Deliberately split the single unlimited feeder across shards.
        for idx in (np.arange(0, 5), np.arange(5, 10)):
            result = run_shard(
                ShardTask(
                    spec_json=spec.to_json(), hub_indices=idx, shard_index=0
                )
            )
            books.append(result.book)
            indices.append(idx)
        with pytest.raises(FleetError, match="feeder-closed"):
            FleetCostBook.merge_shards(
                books, indices, feeders=full.simulation.feeders
            )
        assert horizon == books[0].horizon


# --------------------------------------------------------------------- #
# RunSpec knobs                                                           #
# --------------------------------------------------------------------- #


class TestRunSpecKnobs:
    def test_defaults(self):
        run = RunSpec()
        assert run.shards == 1
        assert run.storage == "dense"

    def test_round_trip(self):
        spec = base_spec(**{"run.shards": 4, "run.storage": "windowed"})
        again = ScenarioSpec.from_json(spec.to_json())
        assert again.run.shards == 4
        assert again.run.storage == "windowed"

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "2"])
    def test_invalid_shards_rejected(self, bad):
        with pytest.raises(ConfigError):
            RunSpec(shards=bad)

    @pytest.mark.parametrize("bad", ["sparse", "", None, 3])
    def test_invalid_storage_rejected(self, bad):
        with pytest.raises(ConfigError):
            RunSpec(storage=bad)

    def test_dotted_overrides(self):
        spec = base_spec().with_overrides(
            {"run.shards": 3, "run.storage": "windowed"}
        )
        assert spec.run.shards == 3
        assert spec.run.storage == "windowed"
        payload = json.loads(spec.to_json())
        assert payload["run"]["shards"] == 3
        assert payload["run"]["storage"] == "windowed"
