"""The pricing-loop lockdown suite: ECT-Price over the batched fleet engine.

Pins the properties that make fleet-scale pricing trustworthy: an
``n_hubs=1`` priced fleet run is bit-identical in occupancy draws and
within atol 1e-9 in profit to the scalar path; the zero-discount refactor
of the compiler reproduces the pre-refactor occupancy loop byte-for-byte
on every preset; randomized schedules respect monotonicity (more
discounts never lose charging sessions) and the Eq. 7 conservation laws;
priced runs are byte-identically deterministic and serial/parallel
``run_pricing`` exports agree; and the ``pricing:`` spec section
round-trips through JSON with unknown keys rejected.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import api
from repro.causal import (
    EctPriceConfig,
    EctPriceModel,
    EctPricePolicy,
    OraclePolicy,
    discount_schedule_for_hub,
    time_ids_for_slots,
)
from repro.cli import main
from repro.errors import ConfigError, FleetError
from repro.experiments.base import write_results_json
from repro.hub.scenario import resolve_occupancy
from repro.rl.schedulers import RuleBasedScheduler
from repro.rng import RngFactory
from repro.spec import (
    FleetSpec,
    HubGroupSpec,
    PricingSpec,
    RunSpec,
    ScenarioSpec,
    available_presets,
    build,
    get_preset,
)
from repro.spec.compiler import _assemble_fleet, spec_from_price_flags
from repro.spec.pricing import compile_pricing, congestion_signal

ATOL = 1e-9
BALANCE_ATOL = 1e-8

#: Cheap training protocol shared by every test that actually fits a model.
FAST_PRICING = dict(train_days=7, epochs=2)


def price_spec(policy: str = "oracle", *, n_hubs: int = 3, days: int = 2,
               seed: int = 0, **pricing_kwargs) -> ScenarioSpec:
    """A small fleet spec with a ``pricing:`` section (no blackouts)."""
    kwargs = {**FAST_PRICING, **pricing_kwargs}
    return ScenarioSpec(
        name="price-test",
        fleet=FleetSpec(n_hubs=n_hubs),
        run=RunSpec(days=days, seed=seed),
        pricing=PricingSpec(policy=policy, **kwargs),
    )


def assert_energy_balance(book, params) -> None:
    """Eq. 7 closes on every recorded (hub, slot)."""
    dt = params.dt_h
    lhs = book.p_grid_kw + book.p_pv_kw + book.p_wt_kw + book.unserved_kwh / dt
    rhs = book.p_bs_kw + book.p_cs_kw + book.p_bp_kw + book.surplus_kw
    np.testing.assert_allclose(lhs, rhs, rtol=0, atol=BALANCE_ATOL)


# --------------------------------------------------------------------- #
# Tentpole: n_hubs=1 fleet pricing == the scalar path                     #
# --------------------------------------------------------------------- #


class TestScalarEquivalence:
    """One-hub fleet pricing is the scalar pricing pipeline, exactly."""

    @pytest.mark.parametrize("policy", ["oracle", "ours"])
    def test_schedule_occupancy_and_profit_match_scalar(self, policy):
        spec = price_spec(policy, n_hubs=1)
        compiled = build(spec)
        fleet_book = compiled.execute()

        # Scalar mirror: same behaviour model, same name-keyed streams,
        # same training protocol — built outside the fleet compiler.
        assembly = _assemble_fleet(spec)
        scenario = assembly.scenarios[0]
        hub_id = scenario.site.hub_id
        slots = np.arange(assembly.horizon)
        strata = assembly.behavior.sample_strata(
            hub_id,
            slots,
            RngFactory(seed=spec.run.seed).stream(f"fleet/occupancy/{hub_id}"),
        )
        if policy == "oracle":
            hub_policy = OraclePolicy(strata)
        else:
            log = assembly.behavior.simulate_log(spec.pricing.train_days)
            from repro.causal import dataset_from_log

            train = dataset_from_log(log, n_stations=1)
            model = EctPriceModel(
                1,
                train.n_time_ids,
                EctPriceConfig(
                    epochs=spec.pricing.epochs,
                    batch_size=spec.pricing.batch_size,
                    learning_rate=spec.pricing.learning_rate,
                ),
                RngFactory(seed=spec.run.seed).stream("pricing/ours"),
            )
            model.fit(train)
            hub_policy = EctPricePolicy(
                model,
                always_avoidance_threshold=(
                    spec.pricing.always_avoidance_threshold
                ),
            )
        schedule = discount_schedule_for_hub(
            hub_policy,
            hub_id,
            time_ids_for_slots(
                assembly.horizon, calendar=assembly.behavior.calendar
            ),
            discount_level=spec.pricing.discount_level,
            budget_fraction=spec.pricing.budget_fraction,
        )

        # Bit-identical schedule and occupancy draws.
        assert compiled.pricing is not None
        assert compiled.pricing.policy == policy
        assert compiled.pricing.discount[0].tobytes() == schedule.tobytes()
        occupied = resolve_occupancy(strata, schedule > 0.0)
        assert (
            compiled.simulation.inputs.occupied[0].tobytes()
            == occupied.tobytes()
        )

        # Profit within atol 1e-9 of the scalar engine on the same inputs.
        scalar = scenario.simulation(occupied, schedule)
        scalar.run(RuleBasedScheduler())
        np.testing.assert_allclose(
            fleet_book.profit_per_hub[0], scalar.book.profit, rtol=0, atol=ATOL
        )
        np.testing.assert_allclose(
            fleet_book.daily_rewards()[0],
            scalar.book.daily_rewards(),
            rtol=0,
            atol=ATOL,
        )

    def test_priced_run_is_byte_identical_across_repeats(self, tmp_path):
        paths = []
        for repeat in range(2):
            result = api.run(price_spec("ours"))
            paths.append(tmp_path / f"run{repeat}.json")
            write_results_json(result, paths[-1])
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_pricing_leaves_baseline_streams_untouched(self):
        """Training + schedule draws never perturb the engine's streams."""
        baseline = build(price_spec("none"))
        priced = build(price_spec("oracle"))
        base_inputs, priced_inputs = baseline.simulation.inputs, priced.simulation.inputs
        for name in ("load_rate", "rtp_kwh", "pv_power_kw", "wt_power_kw"):
            assert (
                getattr(base_inputs, name).tobytes()
                == getattr(priced_inputs, name).tobytes()
            ), name


# --------------------------------------------------------------------- #
# Satellite: the zero-discount compiler refactor is byte-identical        #
# --------------------------------------------------------------------- #


class TestCompilerRefactorRegression:
    """``FleetAssembly.realize_occupancy`` reproduces the old inline loop."""

    @pytest.mark.parametrize("name", sorted(available_presets()))
    def test_preset_occupancy_byte_identical_to_pre_refactor_loop(self, name):
        spec = get_preset(name).with_overrides({"run.scale": 0.25})
        assembly = _assemble_fleet(spec)
        # The pre-refactor build() loop, verbatim: per-hub strata draw +
        # scalar zero-discount resolve, stacked.
        factory = RngFactory(seed=spec.run.seed)
        slots = np.arange(assembly.horizon)
        old = np.stack(
            [
                resolve_occupancy(
                    assembly.behavior.sample_strata(
                        scenario.site.hub_id,
                        slots,
                        factory.stream(
                            f"fleet/occupancy/{scenario.site.hub_id}"
                        ),
                    ),
                    np.zeros(assembly.horizon, dtype=bool),
                )
                for scenario in assembly.scenarios
            ]
        )
        assert assembly.realize_occupancy(None).tobytes() == old.tobytes()

    def test_discount_injection_reuses_cached_strata(self):
        assembly = _assemble_fleet(price_spec("none"))
        baseline = assembly.realize_occupancy(None)
        schedule = np.zeros((assembly.n_hubs, assembly.horizon))
        schedule[:, ::3] = 0.2
        discounted = assembly.realize_occupancy(schedule)
        # Re-realising with another plane is pure: no rng state involved.
        assert assembly.realize_occupancy(None).tobytes() == baseline.tobytes()
        assert assembly.realize_occupancy(schedule).tobytes() == discounted.tobytes()

    def test_fleet_inputs_with_occupancy_swaps_only_the_demand_planes(self):
        compiled = build(price_spec("none"))
        inputs = compiled.simulation.inputs
        occupied = 1 - inputs.occupied
        swapped = inputs.with_occupancy(occupied, np.full_like(inputs.discount, 0.1))
        assert swapped.occupied.tobytes() == occupied.tobytes()
        assert (swapped.discount == 0.1).all()
        for name in ("load_rate", "rtp_kwh", "pv_power_kw", "wt_power_kw"):
            assert np.shares_memory(
                getattr(swapped, name), getattr(inputs, name)
            ), name

    def test_fleet_inputs_with_occupancy_broadcasts_1d_discount(self):
        inputs = build(price_spec("none")).simulation.inputs
        horizon = inputs.occupied.shape[1]
        swapped = inputs.with_occupancy(
            inputs.occupied, np.linspace(0.0, 0.3, horizon)
        )
        assert swapped.discount.shape == inputs.discount.shape
        assert (swapped.discount == swapped.discount[0]).all()

    def test_fleet_inputs_with_occupancy_rejects_bad_shapes(self):
        inputs = build(price_spec("none")).simulation.inputs
        with pytest.raises(FleetError):
            inputs.with_occupancy(inputs.occupied[:, :-1], inputs.discount)
        with pytest.raises(FleetError):
            inputs.with_occupancy(inputs.occupied, inputs.discount[:, :-1])

    def test_discount_rows_validates_shape(self):
        assembly = _assemble_fleet(price_spec("none"))
        with pytest.raises(ConfigError):
            assembly.discount_rows(np.zeros((assembly.n_hubs + 1, assembly.horizon)))


# --------------------------------------------------------------------- #
# Randomized properties of the priced engine                              #
# --------------------------------------------------------------------- #


class TestPricingProperties:
    def test_zero_discount_level_inputs_identical_to_baseline(self):
        baseline = build(price_spec("none"))
        zeroed = build(price_spec("oracle", discount_level=0.0))
        base_inputs, zero_inputs = baseline.simulation.inputs, zeroed.simulation.inputs
        for name in ("load_rate", "rtp_kwh", "pv_power_kw", "wt_power_kw",
                     "occupied", "discount"):
            assert (
                getattr(base_inputs, name).tobytes()
                == getattr(zero_inputs, name).tobytes()
            ), name

    @pytest.mark.parametrize("seed", range(4))
    def test_occupancy_monotone_in_discount_mask(self, seed):
        assembly = _assemble_fleet(price_spec("none", seed=seed))
        rng = np.random.default_rng(seed)
        shape = (assembly.n_hubs, assembly.horizon)
        small = rng.random(shape) < 0.2
        large = small | (rng.random(shape) < 0.3)
        occ_small = assembly.realize_occupancy(np.where(small, 0.2, 0.0))
        occ_large = assembly.realize_occupancy(np.where(large, 0.2, 0.0))
        assert (occ_large >= occ_small).all()
        # And discounts only ever *add* sessions over the baseline.
        occ_base = assembly.realize_occupancy(None)
        assert (occ_small >= occ_base).all()

    @pytest.mark.parametrize("seed", range(3))
    def test_conservation_under_random_schedules(self, seed):
        spec = price_spec("none", seed=seed)
        rng = np.random.default_rng(100 + seed)
        assembly = _assemble_fleet(spec)
        schedule = np.where(
            rng.random((assembly.n_hubs, assembly.horizon)) < 0.3,
            rng.uniform(0.05, 0.5),
            0.0,
        )
        compiled = build(spec, discount=schedule)
        book = compiled.execute()
        assert_energy_balance(book, compiled.simulation.params)
        # The injected plane is what the engine actually priced with.
        assert compiled.simulation.inputs.discount.tobytes() == schedule.tobytes()

    def test_injected_discount_bypasses_pricing_section(self):
        spec = price_spec("ours")
        schedule = np.zeros(spec.run.days * 24)
        compiled = build(spec, discount=schedule)
        assert compiled.pricing is None
        assert (compiled.simulation.inputs.discount == 0.0).all()


# --------------------------------------------------------------------- #
# Satellite: per-group strata overrides                                   #
# --------------------------------------------------------------------- #


class TestGroupStrataScales:
    def grouped_spec(self, **group_kwargs) -> ScenarioSpec:
        return ScenarioSpec(
            name="strata-test",
            fleet=FleetSpec(
                groups=(
                    HubGroupSpec(count=2),
                    HubGroupSpec(count=2, **group_kwargs),
                )
            ),
            run=RunSpec(days=2, seed=0),
        )

    def test_scales_shift_only_their_groups_rows(self):
        plain = _assemble_fleet(self.grouped_spec())
        scaled = _assemble_fleet(
            self.grouped_spec(incentive_scale=3.0, always_scale=0.2)
        )
        base, shifted = plain.realize_strata(), scaled.realize_strata()
        assert base[:2].tobytes() == shifted[:2].tobytes()
        assert base[2:].tobytes() != shifted[2:].tobytes()

    def test_unit_scales_are_byte_identical_to_no_scales(self):
        plain = _assemble_fleet(self.grouped_spec())
        unit = _assemble_fleet(
            self.grouped_spec(incentive_scale=1.0, always_scale=1.0)
        )
        assert plain.realize_strata().tobytes() == unit.realize_strata().tobytes()

    def test_invalid_scales_rejected(self):
        with pytest.raises(ConfigError):
            HubGroupSpec(count=1, incentive_scale=0.0)
        with pytest.raises(ConfigError):
            HubGroupSpec(count=1, always_scale=float("nan"))

    def test_group_scale_override_round_trips(self):
        spec = self.grouped_spec(incentive_scale=2.0)
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        bumped = spec.with_overrides({"fleet.groups.1.incentive_scale": 4.0})
        assert bumped.fleet.groups[1].incentive_scale == 4.0


# --------------------------------------------------------------------- #
# Feeder-aware pricing                                                    #
# --------------------------------------------------------------------- #


class TestFeederAware:
    def congested_spec(self, policy: str = "evening", **pricing_kwargs):
        spec = price_spec(policy, **pricing_kwargs)
        return spec.with_overrides({"grid.feeder_capacity_kw": 40.0})

    def test_unlimited_feeders_disable_feeder_awareness(self):
        compiled = build(price_spec("evening", feeder_aware=True))
        plain = build(price_spec("evening", feeder_aware=False))
        assert compiled.pricing.feeder_aware is False
        assert (
            compiled.pricing.discount.tobytes()
            == plain.pricing.discount.tobytes()
        )

    def test_congestion_signal_shape_and_range(self):
        assembly = _assemble_fleet(self.congested_spec())
        signal = congestion_signal(assembly)
        assert signal.shape == (assembly.n_hubs, assembly.horizon)
        assert (signal >= 0.0).all() and (signal <= 1.0).all()
        assert signal.max() > 0.0  # 40 kW per feeder really binds

    def test_congestion_penalty_never_adds_discounts(self):
        aware = build(self.congested_spec(feeder_aware=True))
        blind = build(self.congested_spec(feeder_aware=False))
        assert aware.pricing.feeder_aware is True
        assert (
            aware.pricing.discounted_hub_slots
            <= blind.pricing.discounted_hub_slots
        )

    def test_congestion_weight_zero_matches_blind_schedule(self):
        aware = build(self.congested_spec(feeder_aware=True, congestion_weight=0.0))
        blind = build(self.congested_spec(feeder_aware=False))
        assert (
            aware.pricing.discount.tobytes() == blind.pricing.discount.tobytes()
        )


# --------------------------------------------------------------------- #
# run_pricing: the Table III comparison over the fleet                    #
# --------------------------------------------------------------------- #


class TestRunPricing:
    CHEAP_METHODS = ("none", "oracle", "evening")

    def test_serial_parallel_byte_identical(self, tmp_path):
        spec = price_spec("ours", n_hubs=4)
        serial = api.run_pricing(spec, methods=self.CHEAP_METHODS)
        parallel = api.run_pricing(spec, methods=self.CHEAP_METHODS, jobs=2)
        serial_path, parallel_path = tmp_path / "s.json", tmp_path / "p.json"
        write_results_json(serial, serial_path)
        write_results_json(parallel, parallel_path)
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_table_covers_every_method(self):
        result = api.run_pricing(price_spec("ours"), methods=self.CHEAP_METHODS)
        assert result.data["methods"] == list(self.CHEAP_METHODS)
        for name in self.CHEAP_METHODS:
            row = result.data["per_method"][name]
            assert np.isfinite(row["network_profit"])
            assert np.isfinite(row["avg_daily_reward_per_hub"])
        assert result.data["per_method"]["none"]["discounted_hub_slots"] == 0

    def test_oracle_never_loses_to_no_discount(self):
        # The clairvoyant policy only discounts slots whose expected
        # reward beats the margin cost — Table III's upper-bound row.
        result = api.run_pricing(price_spec("ours"), methods=("none", "oracle"))
        table = result.data["per_method"]
        assert (
            table["oracle"]["network_profit"]
            >= table["none"]["network_profit"] - ATOL
        )

    def test_validates_methods(self):
        spec = price_spec("ours")
        with pytest.raises(ConfigError):
            api.run_pricing(spec, methods=("none", "bogus"))
        with pytest.raises(ConfigError):
            api.run_pricing(spec, methods=())
        with pytest.raises(ConfigError):
            api.run_pricing(spec, methods=("none", "none"))

    def test_table3_at_city_scale(self):
        # The acceptance bar: the fleet path prices >= 100 hubs end to end.
        spec = spec_from_price_flags(
            n_hubs=100, days=2, train_days=7, epochs=2
        )
        result = api.run_pricing(spec, methods=("none", "evening", "ours"))
        assert result.data["n_hubs"] == 100
        table = result.data["per_method"]
        assert set(table) == {"none", "evening", "ours"}
        assert table["ours"]["discounted_hub_slots"] > 0
        for row in table.values():
            assert np.isfinite(row["network_profit"])


# --------------------------------------------------------------------- #
# Spec round-trips and the price CLI                                      #
# --------------------------------------------------------------------- #


class TestPricingSpecSerialization:
    GOLDEN = {
        "policy": "ours",
        "discount_level": 0.2,
        "budget_fraction": 0.195,
        "train_days": 60,
        "epochs": 30,
        "batch_size": 128,
        "learning_rate": 0.01,
        "always_avoidance_threshold": 0.5,
        "feeder_aware": False,
        "congestion_weight": 1.0,
    }

    def test_golden_pricing_dict(self):
        spec = ScenarioSpec(name="golden", pricing=PricingSpec(policy="ours"))
        assert spec.to_dict()["pricing"] == self.GOLDEN

    def test_json_round_trip(self):
        spec = price_spec("dr", feeder_aware=True, congestion_weight=2.5)
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.pricing.policy == "dr"

    def test_unknown_pricing_key_rejected(self):
        payload = ScenarioSpec(name="x").to_dict()
        payload["pricing"]["bogus"] = 1
        with pytest.raises(ConfigError, match="bogus"):
            ScenarioSpec.from_dict(payload)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PricingSpec(policy="surge")
        with pytest.raises(ConfigError):
            PricingSpec(discount_level=1.0)
        with pytest.raises(ConfigError):
            PricingSpec(budget_fraction=0.0)
        with pytest.raises(ConfigError):
            PricingSpec(train_days=0)
        with pytest.raises(ConfigError):
            PricingSpec(congestion_weight=-1.0)

    def test_dotted_overrides_reach_pricing(self):
        spec = ScenarioSpec(name="x").with_overrides(
            {"pricing.policy": "evening", "pricing.discount_level": 0.3}
        )
        assert spec.pricing.policy == "evening"
        assert spec.pricing.discount_level == 0.3

    def test_compile_pricing_rejects_none_policy(self):
        with pytest.raises(ConfigError):
            compile_pricing(_assemble_fleet(price_spec("none")))


class TestPriceCli:
    def test_price_subcommand_writes_table(self, tmp_path, capsys):
        out = tmp_path / "price.json"
        code = main(
            [
                "price",
                "--n-hubs", "3",
                "--days", "2",
                "--train-days", "7",
                "--epochs", "2",
                "--methods", "none,evening",
                "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["data"]["n_hubs"] == 3
        assert set(payload["data"]["per_method"]) == {"none", "evening"}

    def test_price_flags_conflict_with_preset(self, capsys):
        assert main(["price", "--preset", "fleet-default", "--n-hubs", "5"]) == 1

    def test_bad_methods_fail_cleanly(self, capsys):
        assert main(["price", "--n-hubs", "2", "--methods", "bogus"]) == 1

    def test_fleet_price_experiment_registered(self, capsys):
        from repro.experiments import run_experiment

        result = run_experiment(
            "fleet-price", scale=0.05, seed=0, jobs=None
        )
        assert result.experiment_id == "fleet-price"
        assert "per_method" in result.data
