"""Tests for the physical energy models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import (
    CHARGE,
    DISCHARGE,
    IDLE,
    BaseStation,
    BaseStationCluster,
    BaseStationConfig,
    BatteryConfig,
    BatteryPack,
    BlackoutConfig,
    BlackoutModel,
    ChargingStation,
    ChargingStationConfig,
    DegradationConfig,
    GridConfig,
    GridConnection,
    PvArray,
    PvConfig,
    WindTurbine,
    WindTurbineConfig,
    capacity_fade,
    cell_voltage,
    operation_cost_per_slot,
    simulate_voltage_traces,
)
from repro.errors import BatteryError, ConfigError, GridError


class TestBattery:
    def test_charge_step_physical(self):
        pack = BatteryPack(BatteryConfig(), initial_soc_fraction=0.5)
        result = pack.step(CHARGE)
        assert result.bus_power_kw == pytest.approx(50.0)
        assert result.delta_soc_kwh == pytest.approx(50.0 * 0.95)
        assert result.loss_kwh == pytest.approx(50.0 * 0.05)

    def test_discharge_step_physical(self):
        pack = BatteryPack(BatteryConfig(), initial_soc_fraction=0.5)
        result = pack.step(DISCHARGE)
        assert result.bus_power_kw == pytest.approx(-50.0)
        assert result.delta_soc_kwh == pytest.approx(-50.0 / 0.95)

    def test_paper_exact_discharge(self):
        pack = BatteryPack(BatteryConfig(paper_exact=True), initial_soc_fraction=0.5)
        result = pack.step(DISCHARGE)
        # Eq. 3 literal: SoC moves by η·R and the bus receives the same.
        assert result.delta_soc_kwh == pytest.approx(-50.0 * 0.95)
        assert result.bus_power_kw == pytest.approx(-50.0 * 0.95)
        assert result.loss_kwh == pytest.approx(0.0)

    def test_idle_is_free(self):
        pack = BatteryPack()
        result = pack.step(IDLE)
        assert result.bus_power_kw == 0.0 and result.delta_soc_kwh == 0.0

    def test_charge_clips_at_soc_max(self):
        pack = BatteryPack(BatteryConfig(), initial_soc_fraction=0.95)
        result = pack.step(CHARGE)
        assert result.curtailed
        assert pack.soc_kwh <= BatteryConfig().soc_max_kwh + 1e-9

    def test_discharge_clips_at_soc_min(self):
        pack = BatteryPack(BatteryConfig(), initial_soc_fraction=0.10)
        result = pack.step(DISCHARGE)
        assert result.action == IDLE or result.curtailed
        assert pack.soc_kwh >= BatteryConfig().soc_min_kwh - 1e-9

    def test_strict_mode_raises(self):
        pack = BatteryPack(BatteryConfig(), initial_soc_fraction=0.95)
        with pytest.raises(BatteryError):
            pack.step(CHARGE, strict=True)

    def test_invalid_action(self):
        with pytest.raises(BatteryError):
            BatteryPack().step(5)

    def test_reset_clamps_to_bounds(self):
        pack = BatteryPack()
        pack.reset(0.0)
        assert pack.soc_kwh == pytest.approx(BatteryConfig().soc_min_kwh)

    def test_throughput_and_cycles_accumulate(self):
        pack = BatteryPack(BatteryConfig(), initial_soc_fraction=0.5)
        pack.step(CHARGE)
        pack.step(DISCHARGE)
        assert pack.throughput_kwh > 0
        assert pack.equivalent_full_cycles > 0

    def test_emergency_supply_uses_reserve(self):
        pack = BatteryPack(BatteryConfig(), initial_soc_fraction=0.10)
        delivered = pack.emergency_supply(10.0)
        assert delivered == pytest.approx(10.0)
        assert pack.soc_kwh < BatteryConfig().soc_min_kwh

    def test_emergency_supply_capped_by_energy(self):
        config = BatteryConfig(capacity_kwh=10.0)
        pack = BatteryPack(config, initial_soc_fraction=0.10)
        delivered = pack.emergency_supply(100.0)
        assert delivered <= 10.0
        assert pack.soc_kwh == pytest.approx(0.0)

    @given(
        actions=st.lists(st.sampled_from([CHARGE, IDLE, DISCHARGE]), min_size=1, max_size=60),
        start=st.floats(0.0, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_soc_always_in_bounds_property(self, actions, start):
        config = BatteryConfig()
        pack = BatteryPack(config, initial_soc_fraction=start)
        for action in actions:
            pack.step(action)
            assert config.soc_min_kwh - 1e-9 <= pack.soc_kwh <= config.soc_max_kwh + 1e-9

    @given(actions=st.lists(st.sampled_from([CHARGE, DISCHARGE]), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_energy_conservation_property(self, actions):
        """SoC change equals bus energy minus losses, per step."""
        pack = BatteryPack(BatteryConfig(), initial_soc_fraction=0.5)
        for action in actions:
            before = pack.soc_kwh
            result = pack.step(action)
            bus_kwh = result.bus_power_kw * 1.0
            assert pack.soc_kwh - before == pytest.approx(result.delta_soc_kwh)
            # Charging: stored = bus - loss. Discharging: bus = drawn - loss.
            if result.action == CHARGE:
                assert result.delta_soc_kwh == pytest.approx(bus_kwh - result.loss_kwh)
            elif result.action == DISCHARGE:
                assert -bus_kwh == pytest.approx(-result.delta_soc_kwh - result.loss_kwh)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            BatteryConfig(soc_min_fraction=0.9, soc_max_fraction=0.5)


class TestDegradation:
    def test_capacity_fade_monotone(self):
        config = DegradationConfig()
        assert capacity_fade(config, days=100) < capacity_fade(config, days=300)

    def test_cycle_fade_adds(self):
        config = DegradationConfig()
        idle = capacity_fade(config, days=100)
        cycled = capacity_fade(config, days=100, equivalent_full_cycles=100)
        assert cycled > idle

    def test_fade_capped_at_one(self):
        assert capacity_fade(DegradationConfig(), days=1e9) == 1.0

    def test_cell_voltage_declines(self):
        config = DegradationConfig()
        assert cell_voltage(config, 0.2) < cell_voltage(config, 0.0)

    def test_voltage_traces_shape_and_trend(self, rng):
        traces = simulate_voltage_traces(350, rng, n_cells=2)
        assert traces["cell_voltages"].shape == (2, 350)
        for cell in traces["cell_voltages"]:
            slope = np.polyfit(traces["days"], cell, 1)[0]
            assert slope < 0
        assert 50.0 < traces["group_voltage"][0] < 58.0

    def test_operation_cost_positive(self):
        cost = operation_cost_per_slot(pack_capital_cost=20000.0, capacity_kwh=200.0)
        assert cost > 0

    def test_invalid_inputs(self, rng):
        with pytest.raises(ConfigError):
            simulate_voltage_traces(0, rng)
        with pytest.raises(ConfigError):
            capacity_fade(DegradationConfig(), days=-1)


class TestPlants:
    def test_pv_linear_in_irradiance(self):
        pv = PvArray(PvConfig(rated_kw=10.0, performance_ratio=0.8))
        assert pv.power_kw(500.0) == pytest.approx(4.0)
        assert pv.power_kw(0.0) == 0.0

    def test_pv_clips_at_rating(self):
        pv = PvArray(PvConfig(rated_kw=10.0, performance_ratio=1.0))
        assert pv.power_kw(2000.0) == pytest.approx(10.0)

    def test_pv_rejects_negative_irradiance(self):
        with pytest.raises(ConfigError):
            PvArray().power_kw(-1.0)

    def test_wt_power_curve_regions(self):
        wt = WindTurbine(WindTurbineConfig(rated_kw=20.0))
        assert wt.power_kw(1.0) == 0.0  # below cut-in
        assert wt.power_kw(30.0) == 0.0  # beyond cut-out
        assert wt.power_kw(12.0) == pytest.approx(20.0)  # rated
        assert 0.0 < wt.power_kw(7.0) < 20.0  # ramp

    def test_wt_monotone_on_ramp(self):
        wt = WindTurbine(WindTurbineConfig())
        speeds = np.linspace(3.0, 12.0, 20)
        power = np.asarray(wt.power_kw(speeds))
        assert np.all(np.diff(power) >= 0)

    def test_wt_invalid_speeds_config(self):
        with pytest.raises(ConfigError):
            WindTurbineConfig(cut_in_m_s=15.0, rated_speed_m_s=12.0)


class TestBaseStation:
    def test_eq1_endpoints(self):
        bs = BaseStation(BaseStationConfig(p_min_kw=2.0, p_max_kw=4.0))
        assert bs.power_kw(0.0) == pytest.approx(2.0)
        assert bs.power_kw(1.0) == pytest.approx(4.0)
        assert bs.power_kw(0.5) == pytest.approx(3.0)

    def test_cluster_scales(self):
        cluster = BaseStationCluster(3)
        assert cluster.power_kw(0.0) == pytest.approx(6.0)
        assert cluster.max_power_kw == pytest.approx(12.0)

    def test_load_out_of_range(self):
        with pytest.raises(ConfigError):
            BaseStation().power_kw(1.5)

    def test_invalid_envelope(self):
        with pytest.raises(ConfigError):
            BaseStationConfig(p_min_kw=4.0, p_max_kw=4.0)


class TestChargingStation:
    def test_eq2_power(self):
        cs = ChargingStation(ChargingStationConfig(rate_kw=60.0))
        assert cs.power_kw(1) == pytest.approx(60.0)
        assert cs.power_kw(0) == 0.0

    def test_occupancy_must_be_binary(self):
        with pytest.raises(ConfigError):
            ChargingStation().power_kw(np.array([0, 2]))

    def test_discounted_price(self):
        cs = ChargingStation(ChargingStationConfig(base_price_kwh=0.40))
        assert cs.selling_price_kwh(0.25) == pytest.approx(0.30)

    def test_revenue(self):
        cs = ChargingStation(ChargingStationConfig(rate_kw=100.0, base_price_kwh=0.50))
        assert cs.revenue(True, 1.0) == pytest.approx(50.0)
        assert cs.revenue(False, 1.0) == 0.0

    def test_invalid_discount(self):
        with pytest.raises(ConfigError):
            ChargingStation().selling_price_kwh(1.0)


class TestGrid:
    def test_import_passthrough(self):
        grid = GridConnection()
        assert grid.draw_power(12.5) == pytest.approx(12.5)

    def test_surplus_curtailed(self):
        assert GridConnection().draw_power(-5.0) == 0.0

    def test_surplus_strict_raises(self):
        with pytest.raises(GridError):
            GridConnection().draw_power(-5.0, strict=True)

    def test_export_allowed_when_enabled(self):
        grid = GridConnection(GridConfig(allow_export=True))
        assert grid.draw_power(-5.0) == pytest.approx(-5.0)

    def test_import_limit(self):
        grid = GridConnection(GridConfig(import_limit_kw=10.0))
        with pytest.raises(GridError):
            grid.draw_power(11.0)

    def test_cost_eq9(self):
        assert GridConnection().cost(100.0, 0.08) == pytest.approx(8.0)

    def test_cost_rejects_negative(self):
        with pytest.raises(GridError):
            GridConnection().cost(-1.0, 0.08)

    def test_blackout_durations(self, rng):
        model = BlackoutModel(BlackoutConfig(outage_probability_per_hour=0.05))
        mask = model.sample_outages(24 * 90, rng)
        assert mask.dtype == bool
        assert mask.any()

    def test_blackout_zero_probability(self, rng):
        model = BlackoutModel(BlackoutConfig(outage_probability_per_hour=0.0))
        assert not model.sample_outages(1000, rng).any()
