"""Tests for units, timeutils, rng, and config plumbing."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import config as config_mod
from repro import timeutils, units
from repro.errors import ConfigError, UnitsError
from repro.rng import RngFactory


class TestUnits:
    def test_mwh_to_kwh_price(self):
        assert units.mwh_price_to_kwh(120.0) == pytest.approx(0.12)

    def test_kwh_to_mwh_roundtrip(self):
        assert units.kwh_price_to_mwh(units.mwh_price_to_kwh(87.5)) == pytest.approx(87.5)

    def test_watts_kw_roundtrip(self):
        assert units.kw_to_watts(units.watts_to_kw(1500.0)) == pytest.approx(1500.0)

    def test_energy_kwh(self):
        assert units.energy_kwh(50.0, 0.5) == pytest.approx(25.0)

    def test_energy_negative_power_allowed(self):
        assert units.energy_kwh(-10.0, 2.0) == pytest.approx(-20.0)

    def test_energy_negative_duration_rejected(self):
        with pytest.raises(UnitsError):
            units.energy_kwh(10.0, -1.0)

    def test_require_positive_rejects_zero(self):
        with pytest.raises(UnitsError):
            units.require_positive("x", 0.0)

    def test_require_positive_rejects_nan(self):
        with pytest.raises(UnitsError):
            units.require_positive("x", float("nan"))

    def test_require_fraction_bounds(self):
        assert units.require_fraction("f", 0.0) == 0.0
        assert units.require_fraction("f", 1.0) == 1.0
        with pytest.raises(UnitsError):
            units.require_fraction("f", 1.01)

    def test_require_fractions_array(self):
        arr = units.require_fractions("fs", [0.1, 0.9])
        assert arr.tolist() == [0.1, 0.9]
        with pytest.raises(UnitsError):
            units.require_fractions("fs", [0.1, -0.2])


class TestSlotCalendar:
    def test_hour_of_day_wraps(self):
        cal = timeutils.SlotCalendar()
        assert cal.hour_of_day(25) == 1
        assert cal.hour_of_day(np.array([0, 24, 47])).tolist() == [0, 0, 23]

    def test_day_index(self):
        cal = timeutils.SlotCalendar()
        assert cal.day_index(47) == 1

    def test_day_of_year_wraps_year(self):
        cal = timeutils.SlotCalendar(start_day_of_year=364)
        assert cal.day_of_year(24) == 0

    def test_day_of_week_and_weekend(self):
        cal = timeutils.SlotCalendar(start_day_of_week=4)  # Friday
        assert cal.day_of_week(0) == 4
        assert not cal.is_weekend(0)
        assert cal.is_weekend(24)  # Saturday

    def test_period_6h(self):
        cal = timeutils.SlotCalendar()
        assert cal.period_6h(5) == 0
        assert cal.period_6h(23) == 3

    def test_invalid_start_day_rejected(self):
        with pytest.raises(ConfigError):
            timeutils.SlotCalendar(start_day_of_year=365)

    def test_hours_helper(self):
        assert timeutils.hours(3) == 72
        with pytest.raises(ConfigError):
            timeutils.hours(-1)

    def test_diurnal_harmonic_peaks_at_peak_hour(self):
        hours = np.arange(24)
        values = timeutils.diurnal_harmonic(hours, peak_hour=15.0)
        assert values.argmax() == 15
        assert values.max() == pytest.approx(1.0)
        assert values.min() >= 0.0

    @given(peak=st.floats(0, 23.99), sharp=st.floats(0.5, 5))
    @settings(max_examples=25, deadline=None)
    def test_diurnal_harmonic_bounded(self, peak, sharp):
        values = timeutils.diurnal_harmonic(np.arange(24), peak, sharpness=sharp)
        assert np.all(values >= 0.0) and np.all(values <= 1.0 + 1e-12)


class TestRngFactory:
    def test_same_name_same_stream(self):
        f = RngFactory(seed=5)
        a = f.stream("weather").normal(size=10)
        b = f.stream("weather").normal(size=10)
        assert np.allclose(a, b)

    def test_different_names_differ(self):
        f = RngFactory(seed=5)
        a = f.stream("weather").normal(size=10)
        b = f.stream("traffic").normal(size=10)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(seed=1).stream("x").normal(size=10)
        b = RngFactory(seed=2).stream("x").normal(size=10)
        assert not np.allclose(a, b)

    def test_substreams_independent(self):
        f = RngFactory(seed=5)
        streams = list(f.substreams("hub", 3))
        values = [s.normal(size=5) for s in streams]
        assert not np.allclose(values[0], values[1])
        assert not np.allclose(values[1], values[2])

    def test_child_factory_disjoint(self):
        f = RngFactory(seed=5)
        child = f.child("pricing")
        assert not np.allclose(
            f.stream("x").normal(size=5), child.stream("x").normal(size=5)
        )

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            RngFactory(seed=0).stream("")

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ConfigError):
            RngFactory(seed="abc")  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class _Inner:
    value: float = 1.0


@dataclasses.dataclass(frozen=True)
class _Outer:
    name: str = "x"
    inner: _Inner = dataclasses.field(default_factory=_Inner)
    sizes: tuple = (1, 2)


class TestConfigPlumbing:
    def test_round_trip(self):
        outer = _Outer(name="hub", inner=_Inner(value=2.5), sizes=(3, 4))
        payload = config_mod.to_dict(outer)
        restored = config_mod.from_dict(_Outer, payload)
        assert restored == outer

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            config_mod.from_dict(_Outer, {"nope": 1})

    def test_non_dataclass_rejected(self):
        with pytest.raises(ConfigError):
            config_mod.to_dict(42)

    def test_json_round_trip(self, tmp_path):
        outer = _Outer(name="io")
        path = tmp_path / "cfg.json"
        config_mod.save_json(outer, path)
        assert config_mod.load_json(_Outer, path) == outer

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError):
            config_mod.load_json(_Outer, path)

    def test_replace(self):
        outer = _Outer()
        assert config_mod.replace(outer, name="y").name == "y"
        with pytest.raises(ConfigError):
            config_mod.replace(outer, bogus=1)
