"""Randomized invariant + determinism suite for the fleet engines.

Property-style tests over seeded random scenarios: whatever the
parameters, traces, blackout pattern, feeder topology, and actions, every
recorded slot must satisfy the conservation laws the engines are built
on — feeder-group imports never exceed capacity, the Eq. 7 energy balance
closes (grid + PV + WT + unserved = BS + CS + battery + curtailment), and
SoC stays inside its legal window. The scalar :class:`HubSimulation` is
held to the same invariants so the two engines cannot drift apart in
what they conserve. A determinism class pins byte-identical re-runs and
byte-identical ``ect-hub fleet --out`` JSON exports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.energy.battery import BatteryConfig, IDLE
from repro.fleet import (
    FeederGroup,
    FleetInputs,
    FleetParams,
    FleetRandomScheduler,
    FleetRuleBasedScheduler,
    FleetSimulation,
    build_default_fleet,
)
from repro.hub.hub import EctHub, HubConfig
from repro.hub.simulation import HubSimulation
from repro.rng import RngFactory

#: Conservation tolerance — loose enough for kW-scale float accumulation.
BALANCE_ATOL = 1e-8


# --------------------------------------------------------------------- #
# Random scenario generation                                              #
# --------------------------------------------------------------------- #


def random_hub_config(rng: np.random.Generator) -> HubConfig:
    capacity = float(rng.uniform(8.0, 60.0))
    battery = BatteryConfig(
        capacity_kwh=capacity,
        charge_rate_kw=float(rng.uniform(2.0, 15.0)),
        discharge_rate_kw=float(rng.uniform(2.0, 15.0)),
        charge_efficiency=float(rng.uniform(0.8, 1.0)),
        discharge_efficiency=float(rng.uniform(0.8, 1.0)),
        soc_min_fraction=float(rng.uniform(0.0, 0.2)),
        soc_max_fraction=float(rng.uniform(0.8, 1.0)),
        paper_exact=bool(rng.integers(0, 2)),
    )
    return HubConfig(
        battery=battery,
        n_base_stations=int(rng.integers(1, 5)),
        pv=None,
    )


def random_fleet_inputs(
    rng: np.random.Generator, n_hubs: int, horizon: int
) -> FleetInputs:
    return FleetInputs(
        load_rate=rng.uniform(0.0, 1.0, (n_hubs, horizon)),
        rtp_kwh=rng.uniform(0.02, 0.7, (n_hubs, horizon)),
        pv_power_kw=rng.uniform(0.0, 9.0, (n_hubs, horizon)),
        wt_power_kw=rng.uniform(0.0, 6.0, (n_hubs, horizon)),
        occupied=rng.integers(0, 2, (n_hubs, horizon)),
        discount=rng.uniform(0.0, 0.6, (n_hubs, horizon)),
        outage=rng.random((n_hubs, horizon)) < 0.05,
    )


def random_feeders(rng: np.random.Generator, n_hubs: int) -> FeederGroup:
    """A sometimes-binding, sometimes-unlimited random feeder topology."""
    n_feeders = int(rng.integers(1, min(n_hubs, 4) + 1))
    capacity = np.where(
        rng.random(n_feeders) < 0.3,
        np.inf,
        rng.uniform(5.0, 45.0, n_feeders),
    )
    policy = "priority" if rng.random() < 0.5 else "proportional"
    return FeederGroup(
        assignment=rng.integers(0, n_feeders, n_hubs),
        import_capacity_kw=capacity,
        policy=policy,
        priority=rng.uniform(0.5, 5.0, n_hubs) if policy == "priority" else None,
    )


def random_case(seed: int):
    rng = np.random.default_rng(seed)
    n_hubs = int(rng.integers(3, 9))
    horizon = int(rng.integers(24, 73))
    configs = [random_hub_config(rng) for _ in range(n_hubs)]
    params = FleetParams.from_hub_configs(configs)
    inputs = random_fleet_inputs(rng, n_hubs, horizon)
    feeders = random_feeders(rng, n_hubs)
    actions = rng.integers(-1, 2, (horizon, n_hubs))
    return configs, params, inputs, feeders, actions


# --------------------------------------------------------------------- #
# Invariant assertions                                                    #
# --------------------------------------------------------------------- #


def assert_fleet_invariants(sim: FleetSimulation) -> None:
    book = sim.book
    params = sim.params
    dt = params.dt_h
    feeders = sim.feeders

    for name in ("p_bs_kw", "p_cs_kw", "p_grid_kw", "surplus_kw",
                 "unserved_kwh", "import_shortfall_kw"):
        assert getattr(book, name).min() >= 0.0, f"{name} went negative"

    # A slot never both imports and curtails surplus.
    assert np.minimum(book.p_grid_kw, book.surplus_kw).max() <= 1e-12

    # Eq. 7 conservation, shortfalls and blackouts included:
    # grid + PV + WT + unserved == BS + CS + battery + curtailment.
    lhs = book.p_grid_kw + book.p_pv_kw + book.p_wt_kw + book.unserved_kwh / dt
    rhs = book.p_bs_kw + book.p_cs_kw + book.p_bp_kw + book.surplus_kw
    np.testing.assert_allclose(lhs, rhs, rtol=0, atol=BALANCE_ATOL)

    # Feeder-group imports never exceed the feeder limit.
    imports = book.feeder_import_kw()
    for t in range(imports.shape[1]):
        capacity = feeders.capacity_at(t)
        assert (
            imports[:, t] <= capacity * (1 + 1e-12) + 1e-9
        ).all(), f"feeder over capacity at slot {t}"

    # SoC bounds: always within [0, SoC_max]; above SoC_min until the
    # first slot where the Eq. 6 reserve was tapped (blackout/shortfall).
    assert book.soc_kwh.min() >= -1e-9
    assert (book.soc_kwh <= params.soc_max_kwh[:, None] + 1e-9).all()
    reserve_tapped = np.logical_or.accumulate(
        book.blackout | (book.import_shortfall_kw > 0.0), axis=1
    )
    above_min = book.soc_kwh >= params.soc_min_kwh[:, None] - 1e-9
    assert (above_min | reserve_tapped).all()

    # Ledger formulas (Eqs. 8, 9, 11).
    np.testing.assert_allclose(
        book.grid_cost, book.p_grid_kw * dt * book.rtp_kwh, rtol=0, atol=1e-9
    )
    np.testing.assert_allclose(
        book.revenue, book.p_cs_kw * dt * book.srtp_kwh, rtol=0, atol=1e-9
    )
    np.testing.assert_allclose(
        book.bp_cost,
        (book.action != IDLE) * params.c_bp_per_slot[:, None],
        rtol=0,
        atol=1e-12,
    )

    # Blackout slots: no import, no charging revenue, action overridden.
    dark = book.blackout
    assert book.p_grid_kw[dark].max(initial=0.0) == 0.0
    assert book.p_cs_kw[dark].max(initial=0.0) == 0.0
    assert (book.action[dark] == IDLE).all()

    if feeders.is_unlimited:
        assert book.total_import_shortfall_kwh == 0.0
        assert book.congested_feeder_slots == 0


def assert_scalar_invariants(sim: HubSimulation) -> None:
    cfg = sim.hub.config
    dt = cfg.dt_h
    for ledger in sim.book.ledgers:
        lhs = (
            ledger.p_grid_kw
            + ledger.p_pv_kw
            + ledger.p_wt_kw
            + ledger.unserved_kwh / dt
        )
        rhs = (
            ledger.p_bs_kw + ledger.p_cs_kw + ledger.p_bp_kw + ledger.surplus_kw
        )
        assert abs(lhs - rhs) <= BALANCE_ATOL, f"slot {ledger.slot} imbalance"
        assert min(ledger.p_grid_kw, ledger.surplus_kw) <= 1e-12
        assert -1e-9 <= ledger.soc_kwh <= cfg.battery.soc_max_kwh + 1e-9
        assert ledger.grid_cost == pytest.approx(
            ledger.p_grid_kw * dt * ledger.rtp_kwh, abs=1e-9
        )
        if ledger.blackout:
            assert ledger.p_grid_kw == 0.0 and ledger.p_cs_kw == 0.0


# --------------------------------------------------------------------- #
# Randomized invariant suite                                              #
# --------------------------------------------------------------------- #


class TestRandomizedInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_coupled_fleet_under_random_actions(self, seed):
        _, params, inputs, feeders, actions = random_case(seed)
        sim = FleetSimulation(params, inputs, feeders=feeders)
        for t in range(inputs.horizon):
            sim.step(actions[t])
        assert_fleet_invariants(sim)

    @pytest.mark.parametrize("seed", range(8))
    def test_uncoupled_fleet_under_random_actions(self, seed):
        _, params, inputs, _, actions = random_case(seed)
        sim = FleetSimulation(params, inputs)
        for t in range(inputs.horizon):
            sim.step(actions[t])
        assert_fleet_invariants(sim)

    @pytest.mark.parametrize("seed", range(4))
    def test_coupled_fleet_under_schedulers(self, seed):
        _, params, inputs, feeders, _ = random_case(seed)
        sim = FleetSimulation(params, inputs, feeders=feeders)
        sim.run(FleetRuleBasedScheduler())
        assert_fleet_invariants(sim)
        sim.reset()
        sim.run(FleetRandomScheduler.from_factory(RngFactory(seed=seed), sim.n_hubs))
        assert_fleet_invariants(sim)

    @pytest.mark.parametrize("seed", range(4))
    def test_scalar_engine_under_random_actions(self, seed):
        configs, _, inputs, _, actions = random_case(seed)
        for index, config in enumerate(configs):
            sim = HubSimulation(EctHub(config), inputs.hub(index))
            for t in range(inputs.horizon):
                sim.step(int(actions[t, index]))
            assert_scalar_invariants(sim)

    def test_default_fleet_scenarios_satisfy_invariants(self):
        # The generative scenario path (renewables, strata occupancy,
        # sampled outages), congested on purpose.
        _, sim = build_default_fleet(
            10,
            n_days=5,
            seed=7,
            outage_probability=0.01,
            n_feeders=3,
            feeder_capacity_kw=120.0,
        )
        sim.run(FleetRuleBasedScheduler())
        assert sim.book.total_import_shortfall_kwh > 0.0  # capacity binds
        assert_fleet_invariants(sim)


# --------------------------------------------------------------------- #
# Determinism: same seed, byte-identical results                          #
# --------------------------------------------------------------------- #


def book_bytes(book) -> bytes:
    chunks = [book.action.tobytes(), book.blackout.tobytes()]
    chunks.extend(getattr(book, name).tobytes() for name in book._FLOAT_COLUMNS)
    return b"".join(chunks)


class TestDeterminism:
    def _run_once(self, scheduler_seed: int):
        _, sim = build_default_fleet(
            8,
            n_days=5,
            seed=11,
            outage_probability=0.01,
            n_feeders=2,
            feeder_capacity_kw=150.0,
        )
        sim.run(
            FleetRandomScheduler.from_factory(
                RngFactory(seed=scheduler_seed), sim.n_hubs
            )
        )
        return sim.book

    def test_fleet_runs_are_byte_identical(self):
        first = self._run_once(5)
        second = self._run_once(5)
        assert book_bytes(first) == book_bytes(second)

    def test_rule_based_runs_are_byte_identical(self):
        books = []
        for _ in range(2):
            _, sim = build_default_fleet(
                8, n_days=5, seed=11, n_feeders=2, feeder_capacity_kw=150.0
            )
            books.append(sim.run(FleetRuleBasedScheduler()))
        assert book_bytes(books[0]) == book_bytes(books[1])

    @pytest.mark.parametrize(
        "argv",
        [
            ["fleet", "--n-hubs", "5", "--days", "7", "--scheduler", "random"],
            [
                "fleet",
                "--n-hubs",
                "6",
                "--days",
                "7",
                "--n-feeders",
                "2",
                "--feeder-capacity",
                "130",
            ],
            ["run", "fleet-grid", "--scale", "0.25"],
        ],
    )
    def test_cli_exports_are_byte_identical(self, argv, tmp_path):
        paths = [tmp_path / "first.json", tmp_path / "second.json"]
        for path in paths:
            assert main([*argv, "--out", str(path)]) == 0
        first, second = (path.read_bytes() for path in paths)
        assert first == second

    def test_cli_spec_exports_are_byte_identical(self, tmp_path):
        """Golden check for the declarative path: ``fleet --spec … --out``."""
        from repro.spec import get_preset

        spec_path = tmp_path / "scenario.json"
        get_preset("heterogeneous-batteries").with_overrides(
            {"run.days": 2, "grid.n_feeders": 3, "grid.feeder_capacity_kw": 150.0}
        ).save(spec_path)
        paths = [tmp_path / "first.json", tmp_path / "second.json"]
        for path in paths:
            assert main(["fleet", "--spec", str(spec_path), "--out", str(path)]) == 0
        first, second = (path.read_bytes() for path in paths)
        assert first == second

    def test_cli_preset_export_matches_its_spec_file_export(self, tmp_path):
        """``--preset NAME`` and the preset saved to disk are the same run."""
        from repro.spec import get_preset

        spec_path = tmp_path / "scenario.json"
        get_preset("rural-microgrid").with_overrides({"run.days": 2}).save(spec_path)
        by_preset = tmp_path / "preset.json"
        by_file = tmp_path / "file.json"
        assert (
            main(
                [
                    "fleet", "--preset", "rural-microgrid",
                    "--set", "run.days=2", "--out", str(by_preset),
                ]
            )
            == 0
        )
        assert main(["fleet", "--spec", str(spec_path), "--out", str(by_file)]) == 0
        assert by_preset.read_bytes() == by_file.read_bytes()
