"""Tests for the synthetic data substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, DataError
from repro.rng import RngFactory
from repro.synth import (
    ChargingBehaviorModel,
    ChargingConfig,
    RoadNetworkConfig,
    RtpConfig,
    RtpGenerator,
    SolarConfig,
    Stratum,
    TrafficConfig,
    TrafficGenerator,
    WeatherConfig,
    WeatherGenerator,
    WindConfig,
    build_road_network,
    default_fleet,
    generate_irradiance,
    generate_wind_speed,
    near_road_fraction,
    place_stations,
    point_segment_distance,
    weibull_mean,
)
from repro.timeutils import SlotCalendar


class TestSolar:
    def test_night_is_dark(self, factory):
        ghi, _ = generate_irradiance(48, SolarConfig(), factory.stream("s"))
        # Midnight hours (slot 0 and 24) must be zero.
        assert ghi[0] == 0.0 and ghi[24] == 0.0

    def test_noon_is_bright(self, factory):
        ghi, _ = generate_irradiance(48, SolarConfig(), factory.stream("s"))
        assert ghi[12] > 100.0

    def test_non_negative_everywhere(self, factory):
        ghi, cover = generate_irradiance(24 * 30, SolarConfig(), factory.stream("s"))
        assert ghi.min() >= 0.0
        assert 0.0 <= cover.min() and cover.max() <= 1.0

    def test_seasonality(self, factory):
        config = SolarConfig(latitude_deg=45.0, cloud_volatility=0.0, mean_cloud_cover=0.0)
        summer = generate_irradiance(
            24, config, factory.stream("x"), calendar=SlotCalendar(start_day_of_year=172)
        )[0]
        winter = generate_irradiance(
            24, config, factory.stream("x"), calendar=SlotCalendar(start_day_of_year=355)
        )[0]
        assert summer.max() > winter.max()

    def test_invalid_latitude(self):
        with pytest.raises(ConfigError):
            SolarConfig(latitude_deg=100.0)


class TestWind:
    def test_non_negative(self, factory):
        speeds = generate_wind_speed(24 * 30, WindConfig(), factory.stream("w"))
        assert speeds.min() >= 0.0

    def test_mean_close_to_weibull(self, factory):
        config = WindConfig(diurnal_amplitude=0.0)
        speeds = generate_wind_speed(24 * 200, config, factory.stream("w"))
        assert speeds.mean() == pytest.approx(weibull_mean(config), rel=0.1)

    def test_persistence_creates_autocorrelation(self, factory):
        config = WindConfig(persistence=0.95, diurnal_amplitude=0.0)
        speeds = generate_wind_speed(2000, config, factory.stream("w"))
        lag1 = np.corrcoef(speeds[:-1], speeds[1:])[0, 1]
        assert lag1 > 0.6

    def test_zero_hours(self, factory):
        assert len(generate_wind_speed(0, WindConfig(), factory.stream("w"))) == 0

    def test_invalid_shape(self):
        with pytest.raises(ConfigError):
            WindConfig(weibull_shape=0.0)


class TestWeather:
    def test_trace_consistency(self, factory):
        trace = WeatherGenerator(WeatherConfig(), factory).generate(72)
        assert len(trace) == 72
        assert trace.normalized_features().shape == (72, 2)

    def test_slice(self, factory):
        trace = WeatherGenerator(WeatherConfig(), factory).generate(48)
        sub = trace.slice(10, 20)
        assert len(sub) == 10
        assert np.allclose(sub.irradiance_w_m2, trace.irradiance_w_m2[10:20])

    def test_bad_slice(self, factory):
        trace = WeatherGenerator(WeatherConfig(), factory).generate(10)
        with pytest.raises(DataError):
            trace.slice(5, 20)

    def test_deterministic_under_seed(self):
        a = WeatherGenerator(WeatherConfig(), RngFactory(seed=9)).generate(24)
        b = WeatherGenerator(WeatherConfig(), RngFactory(seed=9)).generate(24)
        assert np.allclose(a.irradiance_w_m2, b.irradiance_w_m2)


class TestTraffic:
    def test_range_and_load(self, factory):
        trace = TrafficGenerator(TrafficConfig()).generate(24 * 14, factory.stream("t"))
        assert trace.volume_gb.min() > 0
        assert 0.0 <= trace.load_rate.min() and trace.load_rate.max() <= 1.0

    def test_evening_peak(self, factory):
        gen = TrafficGenerator(TrafficConfig())
        profile = gen.expected_profile(24)
        assert profile.argmax() in range(18, 24)

    def test_weekend_reduction(self):
        cal = SlotCalendar(start_day_of_week=0)
        gen = TrafficGenerator(TrafficConfig(weekend_factor=0.5), calendar=cal)
        profile = gen.expected_profile(24 * 7)
        weekday_mean = profile[: 24 * 5].mean()
        weekend_mean = profile[24 * 5 :].mean()
        assert weekend_mean < weekday_mean

    def test_slice(self, factory):
        trace = TrafficGenerator().generate(48, factory.stream("t"))
        assert len(trace.slice(0, 24)) == 24


class TestRtp:
    def test_band(self, factory):
        trace = RtpGenerator(RtpConfig()).generate(24 * 30, factory.stream("p"))
        assert trace.price_mwh.min() >= RtpConfig().price_floor_mwh
        assert trace.price_mwh.max() <= RtpConfig().price_cap_mwh

    def test_load_coupling_creates_correlation(self, factory):
        traffic = TrafficGenerator().generate(24 * 20, factory.stream("t"))
        prices = RtpGenerator().generate(
            24 * 20, factory.stream("p"), load_rate=traffic.load_rate
        )
        corr = np.corrcoef(traffic.load_rate, prices.price_mwh)[0, 1]
        assert corr > 0.4

    def test_price_kwh_conversion(self, factory):
        trace = RtpGenerator().generate(24, factory.stream("p"))
        assert np.allclose(trace.price_kwh, trace.price_mwh / 1000.0)

    def test_load_shape_mismatch(self, factory):
        with pytest.raises(DataError):
            RtpGenerator().generate(24, factory.stream("p"), load_rate=np.zeros(10))


class TestCharging:
    def test_log_shape_and_semantics(self, factory):
        model = ChargingBehaviorModel(ChargingConfig(), factory)
        log = model.simulate_log(30)
        assert len(log) == 30 * 24 * 12
        # Stratum semantics: Always => charged; None => not charged;
        # Incentive => charged iff treated.
        always = log.stratum == int(Stratum.ALWAYS)
        none = log.stratum == int(Stratum.NONE)
        incentive = log.stratum == int(Stratum.INCENTIVE)
        assert (log.charged[always] == 1).all()
        assert (log.charged[none] == 0).all()
        assert (log.charged[incentive] == log.treated[incentive]).all()

    def test_energy_only_when_charged(self, factory):
        log = ChargingBehaviorModel(ChargingConfig(), factory).simulate_log(10)
        assert (log.energy_kwh[log.charged == 0] == 0).all()
        assert (log.energy_kwh[log.charged == 1] > 0).all()

    def test_evening_incentive_concentration(self, factory):
        model = ChargingBehaviorModel(ChargingConfig(), factory)
        log = model.simulate_log(200)
        evening = (log.hour_of_day >= 18) & (log.stratum == int(Stratum.INCENTIVE))
        daytime = (log.hour_of_day < 18) & (log.stratum == int(Stratum.INCENTIVE))
        evening_rate = evening.sum() / (log.hour_of_day >= 18).sum()
        daytime_rate = daytime.sum() / (log.hour_of_day < 18).sum()
        assert evening_rate > 2 * daytime_rate

    def test_cell_types_persistent(self, factory):
        model = ChargingBehaviorModel(ChargingConfig(), factory)
        assert np.array_equal(model.cell_type_map(), model.cell_type_map())

    def test_split_by_day(self, factory):
        log = ChargingBehaviorModel(ChargingConfig(), factory).simulate_log(20)
        train, test = log.split_by_day(15)
        assert len(train) + len(test) == len(log)
        assert train.slot.max() < 15 * 24 <= test.slot.min()

    def test_counts_by_hour_shape(self, factory):
        log = ChargingBehaviorModel(ChargingConfig(), factory).simulate_log(30)
        counts = log.counts_by_hour()
        assert counts.shape == (24,)
        assert counts.sum() == log.n_sessions

    def test_stratum_probabilities_simplex(self, factory):
        model = ChargingBehaviorModel(ChargingConfig(), factory)
        probs = model.stratum_probabilities(0, np.arange(24))
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs.min() >= 0.0

    def test_propensity_bounds(self, factory):
        model = ChargingBehaviorModel(ChargingConfig(), factory)
        p = model.propensity(np.arange(24))
        assert p.min() >= 0.02 and p.max() <= 0.98

    def test_invalid_station(self, factory):
        model = ChargingBehaviorModel(ChargingConfig(), factory)
        with pytest.raises(ConfigError):
            model.stratum_probabilities(99, np.arange(24))

    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_outcome_semantics_property(self, seed):
        model = ChargingBehaviorModel(ChargingConfig(), RngFactory(seed=seed))
        log = model.simulate_log(5)
        implied = np.where(
            log.stratum == int(Stratum.ALWAYS),
            1,
            np.where(log.stratum == int(Stratum.INCENTIVE), log.treated, 0),
        )
        assert np.array_equal(log.charged, implied)


class TestRoads:
    def test_point_segment_distance_basics(self):
        segments = np.array([[0.0, 0.0, 10.0, 0.0]])
        points = np.array([[5.0, 3.0], [12.0, 0.0], [0.0, 0.0]])
        dist = point_segment_distance(points, segments)
        assert dist[0] == pytest.approx(3.0)
        assert dist[1] == pytest.approx(2.0)
        assert dist[2] == pytest.approx(0.0)

    def test_biased_placement_nearer_roads(self, factory):
        network = build_road_network(RoadNetworkConfig(), factory.stream("r"))
        biased = place_stations(network, 400, factory.stream("b"), road_bias=0.9)
        uniform = place_stations(network, 400, factory.stream("u"), road_bias=0.0)
        assert near_road_fraction(network, biased) > near_road_fraction(
            network, uniform
        )

    def test_stations_inside_region(self, factory):
        network = build_road_network(RoadNetworkConfig(), factory.stream("r"))
        pts = place_stations(network, 200, factory.stream("b"))
        assert pts.min() >= 0.0 and pts.max() <= network.region_km

    def test_network_connected_size(self, factory):
        network = build_road_network(RoadNetworkConfig(grid_size=4), factory.stream("r"))
        assert network.graph.number_of_nodes() == 16
        assert network.total_length_km > 0


class TestCatalog:
    def test_default_fleet_size_and_mix(self):
        sites = default_fleet(12)
        assert len(sites) == 12
        kinds = {site.kind for site in sites}
        assert kinds == {"urban", "rural"}

    def test_urban_has_no_wt(self):
        for site in default_fleet(12):
            if site.kind == "urban":
                assert site.wt_kw == 0.0
            else:
                assert site.wt_kw > 0.0

    def test_deterministic(self):
        a = default_fleet(6, rng_factory=RngFactory(seed=3))
        b = default_fleet(6, rng_factory=RngFactory(seed=3))
        assert a == b

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            default_fleet(0)
