"""End-to-end integration tests: the full pipeline at miniature scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.causal import (
    EctPriceConfig,
    EctPriceModel,
    EctPricePolicy,
    score_decision,
    train_test_split_by_day,
)
from repro.causal.policy import discount_schedule_for_hub
from repro.experiments.pricing_common import run_pricing_study
from repro.experiments.scheduling_common import time_ids_for_slots
from repro.hub import ScenarioConfig, build_fleet_scenarios, fleet_behavior_model
from repro.rl import EctHubEnv, EnvConfig, evaluate_agent, train_ppo
from repro.rng import RngFactory
from repro.synth.charging import ChargingBehaviorModel, ChargingConfig


class TestPricingPipeline:
    def test_pricing_study_miniature(self):
        study = run_pricing_study(seed=1, scale=0.1)
        assert len(study.policies) == 4
        names = [p.name for p in study.policies]
        assert names == ["Ours", "OR", "IPS", "DR"]
        # every policy produces a bounded decision
        for policy in study.policies:
            decision = policy.decide(
                study.test.station_ids,
                study.test.time_ids,
                discount_level=0.2,
                budget=study.budget,
            )
            assert decision.n_discounted <= study.budget
            outcome = score_decision(
                decision, study.test.stratum, method=policy.name, discount_level=0.2
            )
            assert outcome.n_discounted == decision.n_discounted

    def test_trained_model_beats_random_selection(self, factory):
        """ECT-Price's selection must beat a random same-size selection."""
        behavior = ChargingBehaviorModel(ChargingConfig(), factory)
        log = behavior.simulate_log(80)
        train, test = train_test_split_by_day(log, n_stations=12, boundary_day=40)
        model = EctPriceModel(
            12, 48, EctPriceConfig(epochs=6, batch_size=256), factory.stream("m")
        )
        model.fit(train)
        budget = int(0.195 * len(test))
        decision = EctPricePolicy(model).decide(
            test.station_ids, test.time_ids, discount_level=0.1, budget=budget
        )
        ours = score_decision(
            decision, test.stratum, method="Ours", discount_level=0.1
        )
        rng = factory.stream("rand")
        random_mask = np.zeros(len(test), dtype=bool)
        random_mask[rng.choice(len(test), size=budget, replace=False)] = True
        random_inc = (test.stratum[random_mask] == 1).sum()
        assert ours.n_incentive > 1.5 * random_inc


class TestFullLoop:
    def test_pricing_to_scheduling_loop(self):
        """Discount schedule from a trained policy drives the DRL env."""
        seed = 11
        factory = RngFactory(seed=seed)
        study = run_pricing_study(seed=seed, scale=0.1)
        config = ScenarioConfig(n_hours=24 * 40, charging=study.behavior.config)
        scenario = build_fleet_scenarios(config, factory)[0]
        time_ids = time_ids_for_slots(config.n_hours)
        schedule = discount_schedule_for_hub(
            study.policies[0],
            scenario.site.hub_id,
            time_ids,
            discount_level=0.2,
            budget_fraction=0.195,
        )
        assert schedule.shape == (config.n_hours,)
        assert set(np.unique(schedule)) <= {0.0, 0.2}

        env = EctHubEnv(
            scenario,
            study.behavior,
            schedule,
            config=EnvConfig(episode_days=5),
            rng=factory.stream("loop/env"),
        )
        agent, history = train_ppo(env, episodes=2, rng=factory.stream("loop/ppo"))
        daily = evaluate_agent(env, agent, episodes=1)
        assert np.all(np.isfinite(daily))
        assert daily.mean() > 0  # the hub is profitable

    def test_blackout_resilience_end_to_end(self, factory):
        """With the Eq. 6 reserve, a blackout causes zero unserved BS energy."""
        config = ScenarioConfig(n_hours=24 * 3)
        scenario = build_fleet_scenarios(config, factory)[0]
        behavior = fleet_behavior_model(config, factory)
        n = scenario.n_hours
        outage = np.zeros(n, dtype=bool)
        outage[30 : 30 + config.recovery_time_h] = True
        strata = behavior.sample_strata(0, np.arange(n), factory.stream("bk"))
        from repro.hub.scenario import resolve_occupancy

        occupied = resolve_occupancy(strata, np.zeros(n, dtype=int))
        sim = scenario.simulation(
            occupied, np.zeros(n), initial_soc_fraction=0.15, outage=outage
        )
        book = sim.run(lambda s: 0)
        assert book.total_unserved_kwh == pytest.approx(0.0)
        blackout_slots = [l for l in book.ledgers if l.blackout]
        assert len(blackout_slots) == config.recovery_time_h
