"""Parallel sweep executor: serial/parallel byte-identity + failure modes.

The contract under test: ``api.run_sweep(sweep, jobs=N)`` is an
*executor* choice, never a *semantics* choice — the same jobs run, the
same scheduler lifecycle applies (one ``reset`` per job), the results
come back in job-index order, and even the ``--out`` JSON export is byte
for byte the file the serial path writes. Failures must name the job
that died, not just propagate a bare worker traceback.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import api
from repro.cli import main
from repro.errors import ConfigError, ParallelError
from repro.experiments.base import write_results_json
from repro.fleet.schedulers import FleetIdleScheduler
from repro.parallel import resolve_chunk_size, resolve_jobs
from repro.spec import SweepSpec
from repro.spec.compiler import spec_from_fleet_flags


def small_sweep(n_jobs: int = 4, *, n_hubs: int = 5, days: int = 2) -> SweepSpec:
    base = spec_from_fleet_flags(n_hubs=n_hubs, days=days)
    return SweepSpec(
        base=base,
        parameters={"run.seed": tuple(range(n_jobs))},
        name="parallel-test",
    )


class TestResolveJobs:
    def test_default_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_zero_means_affinity_set(self, monkeypatch):
        """jobs=0 honours the scheduler affinity mask, not the raw count.

        A container pinned to 2 of 64 cores must get 2 workers.
        """
        from repro import parallel

        if hasattr(os, "sched_getaffinity"):
            monkeypatch.setattr(
                os, "sched_getaffinity", lambda pid: {0, 5}, raising=True
            )
            assert resolve_jobs(0) == 2
        else:  # pragma: no cover - non-Linux fallback
            assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert parallel._available_cpus() == resolve_jobs(0)

    def test_zero_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-1)


class TestResolveChunkSize:
    def test_explicit_passes_through(self):
        assert resolve_chunk_size(7, n_jobs=100, workers=4) == 7

    def test_auto_targets_four_chunks_per_worker(self):
        assert resolve_chunk_size(None, n_jobs=32, workers=4) == 2
        assert resolve_chunk_size(None, n_jobs=100, workers=4) == 7

    def test_auto_never_below_one(self):
        assert resolve_chunk_size(None, n_jobs=2, workers=8) == 1

    def test_invalid_rejected(self):
        with pytest.raises(ConfigError):
            resolve_chunk_size(0, n_jobs=4, workers=2)


class TestSerialParallelEquivalence:
    def test_results_byte_identical_and_ordered(self, tmp_path):
        sweep = small_sweep(4)
        serial = api.run_sweep(sweep)
        parallel = api.run_sweep(sweep, jobs=4)

        assert [r.experiment_id for r in parallel] == [
            f"fleet[{i}]" for i in range(4)
        ]
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        write_results_json(serial, serial_path)
        write_results_json(parallel, parallel_path)
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, None])
    def test_chunked_executor_byte_identical(self, tmp_path, chunk_size):
        """Chunk size is pure batching — any size matches serial exactly."""
        sweep = small_sweep(5)
        serial = api.run_sweep(sweep)
        chunked = api.run_sweep(sweep, jobs=2, chunk_size=chunk_size)
        serial_path = tmp_path / "serial.json"
        chunked_path = tmp_path / "chunked.json"
        write_results_json(serial, serial_path)
        write_results_json(chunked, chunked_path)
        assert serial_path.read_bytes() == chunked_path.read_bytes()

    def test_cli_sweep_jobs_export_matches_serial(self, tmp_path):
        argv = [
            "sweep",
            "--preset",
            "paper-default",
            "--set",
            "run.days=2",
            "--set",
            "fleet.n_hubs=4",
            "--param",
            "run.seed=0,1",
        ]
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main([*argv, "--out", str(serial_path)]) == 0
        assert main([*argv, "--jobs", "2", "--out", str(parallel_path)]) == 0
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_empty_parameter_grid_runs_the_base_once(self):
        sweep = SweepSpec(base=small_sweep(1).base, parameters={}, name="solo")
        serial = api.run_sweep(sweep)
        parallel = api.run_sweep(sweep, jobs=4)
        assert len(serial) == len(parallel) == 1
        assert json.dumps(serial[0].to_json_dict(), sort_keys=True) == json.dumps(
            parallel[0].to_json_dict(), sort_keys=True
        )
        assert parallel[0].data["sweep_overrides"] == {}

    def test_fleet_grid_experiment_matches_serial(self):
        from repro.experiments import run_experiment
        from repro.experiments.base import jsonable

        serial = run_experiment("fleet-grid", scale=0.25)
        parallel = run_experiment("fleet-grid", scale=0.25, jobs=2)
        assert json.dumps(jsonable(serial.data), sort_keys=True) == json.dumps(
            jsonable(parallel.data), sort_keys=True
        )

    def test_non_sweep_experiment_rejects_jobs(self):
        from repro.errors import ExperimentError
        from repro.experiments import run_experiment

        with pytest.raises(ExperimentError, match="does not support"):
            run_experiment("fleet", scale=0.25, jobs=2)


class TestWorkerFailure:
    def test_failure_names_the_job_and_its_overrides(self):
        base = spec_from_fleet_flags(n_hubs=5, days=2)
        sweep = SweepSpec(
            base=base,
            # 3 feeders compiles; 999 feeders for 5 hubs fails in the
            # worker (SweepSpec's own validation only checks key paths).
            parameters={"grid.n_feeders": (3, 999)},
            name="doomed",
        )
        with pytest.raises(ParallelError) as excinfo:
            api.run_sweep(sweep, jobs=2)
        message = str(excinfo.value)
        assert "grid.n_feeders=999" in message
        assert "job 1" in message
        assert isinstance(excinfo.value.__cause__, ConfigError)

    def test_failure_inside_a_chunk_names_the_right_job(self):
        """With several jobs per chunk, the *offset* job is named, the
        completed jobs before it are not blamed."""
        base = spec_from_fleet_flags(n_hubs=5, days=2)
        sweep = SweepSpec(
            base=base,
            parameters={"grid.n_feeders": (1, 2, 999, 3)},
            name="doomed-chunk",
        )
        with pytest.raises(ParallelError) as excinfo:
            api.run_sweep(sweep, jobs=2, chunk_size=4)
        message = str(excinfo.value)
        assert "job 2" in message
        assert "grid.n_feeders=999" in message
        assert isinstance(excinfo.value.__cause__, ConfigError)
        assert excinfo.value.job_traceback


class TestWorkerAssemblyCache:
    def test_cache_hits_on_shared_fleet_fingerprint(self):
        """Jobs differing only in scheduler/pricing knobs reuse the
        worker's cached assembly; a fleet change evicts it."""
        from repro import parallel
        from repro.spec.compiler import assembly_fingerprint

        parallel._WORKER_ASSEMBLY = None
        base = spec_from_fleet_flags(n_hubs=4, days=2)
        first = parallel._cached_assembly(base)
        same_fleet = base.with_overrides({"scheduler.name": "idle"})
        assert parallel._cached_assembly(same_fleet) is first
        other_fleet = base.with_overrides({"fleet.n_hubs": 5})
        assert assembly_fingerprint(other_fleet) != assembly_fingerprint(base)
        evicted = parallel._cached_assembly(other_fleet)
        assert evicted is not first
        assert evicted.n_hubs == 5
        parallel._WORKER_ASSEMBLY = None

    def test_seed_change_evicts(self):
        from repro import parallel

        parallel._WORKER_ASSEMBLY = None
        base = spec_from_fleet_flags(n_hubs=4, days=2)
        first = parallel._cached_assembly(base)
        reseeded = base.with_overrides({"run.seed": 7})
        assert parallel._cached_assembly(reseeded) is not first
        parallel._WORKER_ASSEMBLY = None

    def test_cached_assembly_runs_byte_identical(self, tmp_path):
        """api.run with a rebound cached assembly matches a cold compile."""
        from repro import parallel

        parallel._WORKER_ASSEMBLY = None
        base = spec_from_fleet_flags(n_hubs=4, days=2)
        variant = base.with_overrides({"scheduler.name": "greedy-renewable"})
        cold = api.run(variant)
        warm = api.run(variant, assembly=parallel._cached_assembly(base))
        cold_path = tmp_path / "cold.json"
        warm_path = tmp_path / "warm.json"
        write_results_json(cold, cold_path)
        write_results_json(warm, warm_path)
        assert cold_path.read_bytes() == warm_path.read_bytes()
        parallel._WORKER_ASSEMBLY = None

    def test_mismatched_assembly_rejected(self):
        from repro.spec.compiler import _assemble_fleet, build

        base = spec_from_fleet_flags(n_hubs=4, days=2)
        other = spec_from_fleet_flags(n_hubs=5, days=2)
        with pytest.raises(ConfigError, match="cached assembly"):
            build(other, assembly=_assemble_fleet(base))


class TestSchedulerLifecycle:
    def test_reset_hook_invoked_exactly_once_per_job(self, monkeypatch):
        """Each sweep job gets a fresh scheduler, reset exactly once.

        Instrumented on the serial executor (worker processes cannot be
        monkeypatched from here); the parallel path runs the identical
        ``api.run`` per job, which the byte-identity tests above pin.
        """
        from repro.spec import compiler

        counters: list[list[int]] = []

        class CountingScheduler(FleetIdleScheduler):
            def __init__(self):
                self.resets = [0]
                counters.append(self.resets)

            def reset(self, sim):
                self.resets[0] += 1
                super().reset(sim)

        monkeypatch.setattr(
            compiler, "make_scheduler", lambda *a, **k: CountingScheduler()
        )
        api.run_sweep(small_sweep(3))
        assert len(counters) == 3
        assert all(resets == [1] for resets in counters)
