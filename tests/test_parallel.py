"""Parallel sweep executor: serial/parallel byte-identity + failure modes.

The contract under test: ``api.run_sweep(sweep, jobs=N)`` is an
*executor* choice, never a *semantics* choice — the same jobs run, the
same scheduler lifecycle applies (one ``reset`` per job), the results
come back in job-index order, and even the ``--out`` JSON export is byte
for byte the file the serial path writes. Failures must name the job
that died, not just propagate a bare worker traceback.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import api
from repro.cli import main
from repro.errors import ConfigError, ParallelError
from repro.experiments.base import write_results_json
from repro.fleet.schedulers import FleetIdleScheduler
from repro.parallel import resolve_jobs
from repro.spec import SweepSpec
from repro.spec.compiler import spec_from_fleet_flags


def small_sweep(n_jobs: int = 4, *, n_hubs: int = 5, days: int = 2) -> SweepSpec:
    base = spec_from_fleet_flags(n_hubs=n_hubs, days=days)
    return SweepSpec(
        base=base,
        parameters={"run.seed": tuple(range(n_jobs))},
        name="parallel-test",
    )


class TestResolveJobs:
    def test_default_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-1)


class TestSerialParallelEquivalence:
    def test_results_byte_identical_and_ordered(self, tmp_path):
        sweep = small_sweep(4)
        serial = api.run_sweep(sweep)
        parallel = api.run_sweep(sweep, jobs=4)

        assert [r.experiment_id for r in parallel] == [
            f"fleet[{i}]" for i in range(4)
        ]
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        write_results_json(serial, serial_path)
        write_results_json(parallel, parallel_path)
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_cli_sweep_jobs_export_matches_serial(self, tmp_path):
        argv = [
            "sweep",
            "--preset",
            "paper-default",
            "--set",
            "run.days=2",
            "--set",
            "fleet.n_hubs=4",
            "--param",
            "run.seed=0,1",
        ]
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main([*argv, "--out", str(serial_path)]) == 0
        assert main([*argv, "--jobs", "2", "--out", str(parallel_path)]) == 0
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_empty_parameter_grid_runs_the_base_once(self):
        sweep = SweepSpec(base=small_sweep(1).base, parameters={}, name="solo")
        serial = api.run_sweep(sweep)
        parallel = api.run_sweep(sweep, jobs=4)
        assert len(serial) == len(parallel) == 1
        assert json.dumps(serial[0].to_json_dict(), sort_keys=True) == json.dumps(
            parallel[0].to_json_dict(), sort_keys=True
        )
        assert parallel[0].data["sweep_overrides"] == {}

    def test_fleet_grid_experiment_matches_serial(self):
        from repro.experiments import run_experiment
        from repro.experiments.base import jsonable

        serial = run_experiment("fleet-grid", scale=0.25)
        parallel = run_experiment("fleet-grid", scale=0.25, jobs=2)
        assert json.dumps(jsonable(serial.data), sort_keys=True) == json.dumps(
            jsonable(parallel.data), sort_keys=True
        )

    def test_non_sweep_experiment_rejects_jobs(self):
        from repro.errors import ExperimentError
        from repro.experiments import run_experiment

        with pytest.raises(ExperimentError, match="does not support"):
            run_experiment("fleet", scale=0.25, jobs=2)


class TestWorkerFailure:
    def test_failure_names_the_job_and_its_overrides(self):
        base = spec_from_fleet_flags(n_hubs=5, days=2)
        sweep = SweepSpec(
            base=base,
            # 3 feeders compiles; 999 feeders for 5 hubs fails in the
            # worker (SweepSpec's own validation only checks key paths).
            parameters={"grid.n_feeders": (3, 999)},
            name="doomed",
        )
        with pytest.raises(ParallelError) as excinfo:
            api.run_sweep(sweep, jobs=2)
        message = str(excinfo.value)
        assert "grid.n_feeders=999" in message
        assert "job 1" in message
        assert isinstance(excinfo.value.__cause__, ConfigError)


class TestSchedulerLifecycle:
    def test_reset_hook_invoked_exactly_once_per_job(self, monkeypatch):
        """Each sweep job gets a fresh scheduler, reset exactly once.

        Instrumented on the serial executor (worker processes cannot be
        monkeypatched from here); the parallel path runs the identical
        ``api.run`` per job, which the byte-identity tests above pin.
        """
        from repro.spec import compiler

        counters: list[list[int]] = []

        class CountingScheduler(FleetIdleScheduler):
            def __init__(self):
                self.resets = [0]
                counters.append(self.resets)

            def reset(self, sim):
                self.resets[0] += 1
                super().reset(sim)

        monkeypatch.setattr(
            compiler, "make_scheduler", lambda *a, **k: CountingScheduler()
        )
        api.run_sweep(small_sweep(3))
        assert len(counters) == 3
        assert all(resets == [1] for resets in counters)
