"""Tests for the experiment registry, fast runners, and the CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.experiments import available_experiments, run_experiment
from repro.experiments.base import ExperimentResult, scaled, series_line

ALL_IDS = {
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig11",
    "fig12",
    "fig13",
    "table2",
    "table3",
    "abl-sched",
    "abl-cbp",
    "abl-loss",
    "fleet",
    "fleet-grid",
    "fleet-price",
    "train-fleet",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(available_experiments()) == ALL_IDS

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")


class TestBaseHelpers:
    def test_scaled(self):
        assert scaled(100, 0.5) == 50
        assert scaled(100, 0.001, minimum=3) == 3
        with pytest.raises(ExperimentError):
            scaled(100, 0.0)

    def test_series_line_wraps(self):
        lines = series_line("x", range(25), per_line=10)
        assert lines[0] == "x:"
        assert len(lines) == 4

    def test_result_rendering(self):
        result = ExperimentResult("idx", "title", lines=["a", "b"])
        text = result.rendered()
        assert text.splitlines() == ["== idx: title ==", "a", "b"]


class TestFastRunners:
    """Smoke-run the cheap experiments end to end at tiny scale."""

    def test_fig1(self):
        result = run_experiment("fig1", scale=0.2)
        assert result.data["ratio"] > 1.0

    def test_fig2(self):
        result = run_experiment("fig2")
        assert len(result.data["pv_w"]) == 48
        assert max(result.data["total_w"]) > 0

    def test_fig3(self):
        result = run_experiment("fig3", scale=0.05)
        assert len(result.data["counts"]) == 24
        assert result.data["n_sessions"] > 0

    def test_fig4(self):
        result = run_experiment("fig4", scale=0.3)
        assert len(result.data["cells"]) == 2

    def test_fig5(self):
        result = run_experiment("fig5")
        assert result.data["correlation"] > 0.3

    def test_determinism_same_seed(self):
        a = run_experiment("fig5", seed=3)
        b = run_experiment("fig5", seed=3)
        assert a.data["correlation"] == b.data["correlation"]

    def test_different_seed_differs(self):
        a = run_experiment("fig5", seed=3)
        b = run_experiment("fig5", seed=4)
        assert a.data["correlation"] != b.data["correlation"]


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig13" in out

    def test_run_fig5(self, capsys):
        assert main(["run", "fig5"]) == 0
        assert "correlation" in capsys.readouterr().out

    def test_run_with_scale_seed(self, capsys):
        assert main(["run", "fig1", "--scale", "0.2", "--seed", "7"]) == 0
        assert "road" in capsys.readouterr().out

    def test_bad_experiment_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["run", "bogus"])
