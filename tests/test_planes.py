"""SlotPlanes: the precomputed planes must equal the per-step formulas.

The fused kernel's correctness rests on each plane column being exactly
the value the PR-1 engine recomputed from ``inputs.slot(t)`` — these
tests pin that equality bit-for-bit, plus the engine-level consequences
(``available_import_kw`` from the cache, blackout fast path, buffer
reuse across ``reset``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import (
    FeederGroup,
    FleetInputs,
    FleetParams,
    FleetRuleBasedScheduler,
    FleetSimulation,
    SlotPlanes,
    build_default_fleet,
)
from repro.hub.hub import HubConfig
from repro.energy.battery import BatteryConfig


def build_case(seed: int = 3, n_hubs: int = 6, horizon: int = 48):
    rng = np.random.default_rng(seed)
    configs = []
    for _ in range(n_hubs):
        configs.append(
            HubConfig(
                battery=BatteryConfig(
                    capacity_kwh=float(rng.uniform(10.0, 50.0)),
                    charge_rate_kw=float(rng.uniform(2.0, 10.0)),
                    discharge_rate_kw=float(rng.uniform(2.0, 10.0)),
                    charge_efficiency=float(rng.uniform(0.85, 1.0)),
                    discharge_efficiency=float(rng.uniform(0.85, 1.0)),
                ),
                n_base_stations=int(rng.integers(1, 4)),
                pv=None,
            )
        )
    params = FleetParams.from_hub_configs(configs)
    inputs = FleetInputs(
        load_rate=rng.uniform(0.0, 1.0, (n_hubs, horizon)),
        rtp_kwh=rng.uniform(0.02, 0.7, (n_hubs, horizon)),
        pv_power_kw=rng.uniform(0.0, 8.0, (n_hubs, horizon)),
        wt_power_kw=rng.uniform(0.0, 5.0, (n_hubs, horizon)),
        occupied=rng.integers(0, 2, (n_hubs, horizon)),
        discount=rng.uniform(0.0, 0.5, (n_hubs, horizon)),
        outage=rng.random((n_hubs, horizon)) < 0.08,
    )
    return params, inputs


class TestPlaneFormulas:
    """Each plane column equals the per-slot expression it replaced."""

    @pytest.fixture(scope="class")
    def case(self):
        params, inputs = build_case()
        return params, inputs, SlotPlanes(params, inputs)

    def test_bs_power_plane(self, case):
        params, inputs, planes = case
        for t in range(inputs.horizon):
            expected = params.bs_power_kw(inputs.load_rate[:, t])
            assert (planes.p_bs_kw[:, t] == expected).all()

    def test_cs_power_plane(self, case):
        params, inputs, planes = case
        for t in range(inputs.horizon):
            expected = params.cs_power_kw(inputs.occupied[:, t])
            assert (planes.p_cs_kw[:, t] == expected).all()

    def test_srtp_and_revenue_planes(self, case):
        params, inputs, planes = case
        for t in range(0, inputs.horizon, 7):
            srtp = params.cs_base_price_kwh * (1.0 - inputs.discount[:, t])
            assert (planes.srtp_kwh[:, t] == srtp).all()
            revenue = planes.p_cs_kw[:, t] * params.dt_h * srtp
            assert (planes.revenue[:, t] == revenue).all()

    def test_blackout_planes(self, case):
        params, inputs, planes = case
        renewable = inputs.pv_power_kw + inputs.wt_power_kw
        p_bs = planes.p_bs_kw
        deficit = np.maximum(p_bs - renewable, 0.0) * params.dt_h
        surplus = np.maximum(renewable - p_bs, 0.0)
        assert (planes.blackout_deficit_kwh == deficit).all()
        assert (planes.blackout_surplus_kw == surplus).all()

    def test_base_import_plane_matches_old_per_step_signal(self, case):
        params, inputs, planes = case
        # The pre-planes engine rebuilt this from inputs.slot(t) per call.
        for t in range(0, inputs.horizon, 5):
            slot = inputs.slot(t)
            base = np.maximum(
                params.bs_power_kw(slot.load_rate)
                + params.cs_power_kw(slot.occupied)
                - slot.pv_power_kw
                - slot.wt_power_kw,
                0.0,
            )
            base = np.where(planes.outage[:, t], 0.0, base)
            assert (planes.base_import_kw[:, t] == base).all()

    def test_outage_fast_path_mask(self, case):
        _, inputs, planes = case
        assert (planes.outage_any == inputs.outage_mask().any(axis=0)).all()

    def test_shapes_and_memory_accounting(self, case):
        params, inputs, planes = case
        assert planes.n_hubs == inputs.n_hubs
        assert planes.horizon == inputs.horizon
        assert planes.nbytes > 0


class TestEngineUsesPlanes:
    def test_available_import_kw_matches_rebuilt_signal(self):
        params, inputs = build_case(seed=9)
        feeders = FeederGroup.uniform(params.n_hubs, 2, 30.0)
        sim = FleetSimulation(params, inputs, feeders=feeders)
        for t in range(inputs.horizon):
            slot = inputs.slot(t)
            base = np.maximum(
                params.bs_power_kw(slot.load_rate)
                + params.cs_power_kw(slot.occupied)
                - slot.pv_power_kw
                - slot.wt_power_kw,
                0.0,
            )
            base = np.where(sim.planes.outage[:, t], 0.0, base)
            expected = feeders.available_import_kw(base, t)
            assert (sim.available_import_kw() == expected).all()
            sim.step(np.zeros(sim.n_hubs, dtype=int))

    def test_planes_and_buffers_survive_reset(self):
        _, sim = build_default_fleet(6, n_days=2, seed=1)
        planes = sim.planes
        first = sim.run(FleetRuleBasedScheduler())
        first_bytes = first.p_grid_kw.tobytes()
        sim.reset()
        assert sim.planes is planes  # not recomputed
        second = sim.run(FleetRuleBasedScheduler())
        assert second.p_grid_kw.tobytes() == first_bytes

    def test_soc_snapshots_are_stable_across_later_steps(self):
        """Caller-held soc_kwh references must never be mutated in place."""
        _, sim = build_default_fleet(5, n_days=2, seed=4)
        charge = np.ones(sim.n_hubs, dtype=int)
        history, copies = [], []
        for _ in range(6):
            sim.step(charge)
            history.append(sim.soc_kwh)
            copies.append(sim.soc_kwh.copy())
        for held, copied in zip(history, copies):
            assert (held == copied).all()

    def test_step_columns_are_stable_across_later_steps(self):
        """Returned columns must not be clobbered by subsequent steps."""
        _, sim = build_default_fleet(5, n_days=2, seed=2)
        idle = np.zeros(sim.n_hubs, dtype=int)
        charge = np.ones(sim.n_hubs, dtype=int)
        first = sim.step(charge)
        held = {name: values.copy() for name, values in first.items()}
        sim.step(idle)
        sim.step(charge)
        for name, values in first.items():
            assert (values == held[name]).all(), name

    def test_float_and_bool_action_dtypes_still_validated(self):
        params, inputs = build_case(seed=5)
        sim = FleetSimulation(params, inputs)
        sim.step(np.zeros(sim.n_hubs))  # float zeros are legal
        sim.step(np.ones(sim.n_hubs, dtype=bool))  # bools coerce to CHARGE
        from repro.errors import FleetError

        with pytest.raises(FleetError, match="must be -1, 0, or 1"):
            sim.step(np.full(sim.n_hubs, 0.5))
        with pytest.raises(FleetError, match="must be -1, 0, or 1"):
            sim.step(np.full(sim.n_hubs, 2))
        with pytest.raises(FleetError, match="must be -1, 0, or 1"):
            sim.step(np.full(sim.n_hubs, np.nan))
