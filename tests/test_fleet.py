"""Tests for the vectorized fleet engine (repro.fleet).

The centrepiece is the property-style equivalence suite: a batched
:class:`FleetSimulation` run must agree with N independent scalar
:class:`HubSimulation` runs within atol 1e-9 for every shared scheduler,
including blackout slots. Also covers the struct-of-arrays containers, the
shared NaN/inf trace validation, blackout edge cases on both engines, and
the fleet CLI/experiment plumbing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.energy.battery import BatteryConfig, CHARGE, DISCHARGE, IDLE
from repro.errors import ConfigError, DataError, FleetError
from repro.fleet import (
    FleetInputs,
    FleetParams,
    FleetSimulation,
    FleetGreedyRenewableScheduler,
    FleetIdleScheduler,
    FleetRandomScheduler,
    FleetRuleBasedScheduler,
    build_default_fleet,
    fleet_simulation_from_scenarios,
    make_fleet_scheduler,
)
from repro.hub.hub import HubConfig
from repro.hub.simulation import HubInputs, HubSimulation
from repro.rl.schedulers import (
    GreedyRenewableScheduler,
    IdleScheduler,
    RandomScheduler,
    RuleBasedScheduler,
)
from repro.rng import RngFactory

ATOL = 1e-9


def small_hub_config(**battery_kwargs) -> HubConfig:
    """A hub with a small battery so SoC bounds are reached quickly."""
    battery = BatteryConfig(
        capacity_kwh=10.0,
        charge_rate_kw=5.0,
        discharge_rate_kw=5.0,
        **battery_kwargs,
    )
    return HubConfig(battery=battery, n_base_stations=2, pv=None)


def flat_inputs(
    horizon: int = 6,
    *,
    outage: np.ndarray | None = None,
    occupied: np.ndarray | None = None,
) -> HubInputs:
    """Deterministic traces: constant BS idle load, no renewables."""
    return HubInputs(
        load_rate=np.zeros(horizon),
        rtp_kwh=np.full(horizon, 0.1),
        pv_power_kw=np.zeros(horizon),
        wt_power_kw=np.zeros(horizon),
        occupied=np.zeros(horizon, dtype=int) if occupied is None else occupied,
        discount=np.zeros(horizon),
        outage=outage,
    )


# --------------------------------------------------------------------- #
# Trace validation (shared by both engines)                              #
# --------------------------------------------------------------------- #


class TestTraceValidation:
    def test_hub_inputs_reject_nan(self):
        load = np.zeros(4)
        load[2] = np.nan
        with pytest.raises(DataError, match="NaN"):
            HubInputs(
                load_rate=load,
                rtp_kwh=np.zeros(4),
                pv_power_kw=np.zeros(4),
                wt_power_kw=np.zeros(4),
                occupied=np.zeros(4, dtype=int),
                discount=np.zeros(4),
            )

    def test_hub_inputs_reject_inf(self):
        rtp = np.zeros(4)
        rtp[0] = np.inf
        with pytest.raises(DataError, match="NaN or inf"):
            HubInputs(
                load_rate=np.zeros(4),
                rtp_kwh=rtp,
                pv_power_kw=np.zeros(4),
                wt_power_kw=np.zeros(4),
                occupied=np.zeros(4, dtype=int),
                discount=np.zeros(4),
            )

    def test_fleet_inputs_reject_nan(self):
        pv = np.zeros((2, 4))
        pv[1, 3] = np.nan
        with pytest.raises(DataError, match="pv_power_kw"):
            FleetInputs(
                load_rate=np.zeros((2, 4)),
                rtp_kwh=np.zeros((2, 4)),
                pv_power_kw=pv,
                wt_power_kw=np.zeros((2, 4)),
                occupied=np.zeros((2, 4), dtype=int),
                discount=np.zeros((2, 4)),
            )

    def test_fleet_inputs_range_checks(self):
        with pytest.raises(DataError, match="load_rate"):
            FleetInputs(
                load_rate=np.full((2, 4), 1.5),
                rtp_kwh=np.zeros((2, 4)),
                pv_power_kw=np.zeros((2, 4)),
                wt_power_kw=np.zeros((2, 4)),
                occupied=np.zeros((2, 4), dtype=int),
                discount=np.zeros((2, 4)),
            )

    def test_fleet_inputs_must_be_2d(self):
        with pytest.raises(FleetError, match="2-D"):
            FleetInputs(
                load_rate=np.zeros(4),
                rtp_kwh=np.zeros(4),
                pv_power_kw=np.zeros(4),
                wt_power_kw=np.zeros(4),
                occupied=np.zeros(4, dtype=int),
                discount=np.zeros(4),
            )


# --------------------------------------------------------------------- #
# Containers                                                             #
# --------------------------------------------------------------------- #


class TestContainers:
    def test_stack_and_hub_round_trip(self):
        rows = [flat_inputs(5), flat_inputs(5, outage=np.array([0, 1, 0, 0, 1], dtype=bool))]
        fleet = FleetInputs.from_hub_inputs(rows)
        assert fleet.n_hubs == 2 and fleet.horizon == 5
        back = fleet.hub(1)
        np.testing.assert_array_equal(back.outage, rows[1].outage)
        np.testing.assert_array_equal(fleet.outage_mask()[0], np.zeros(5, dtype=bool))

    def test_stack_rejects_mixed_horizons(self):
        with pytest.raises(FleetError, match="horizon"):
            FleetInputs.from_hub_inputs([flat_inputs(5), flat_inputs(6)])

    def test_params_from_configs(self):
        params = FleetParams.from_hub_configs([small_hub_config(), HubConfig()])
        assert params.n_hubs == 2
        assert params.capacity_kwh[0] == 10.0
        assert params.paper_exact.dtype == bool

    def test_params_reject_mixed_dt(self):
        with pytest.raises(FleetError, match="slot length"):
            FleetParams.from_hub_configs([HubConfig(), HubConfig(dt_h=0.5)])

    def test_simulation_rejects_mismatched_shapes(self):
        params = FleetParams.from_hub_configs([small_hub_config()])
        fleet = FleetInputs.from_hub_inputs([flat_inputs(4), flat_inputs(4)])
        with pytest.raises(FleetError, match="hubs"):
            FleetSimulation(params, fleet)

    def test_bad_initial_soc_rejected(self):
        params = FleetParams.from_hub_configs([small_hub_config()])
        fleet = FleetInputs.from_hub_inputs([flat_inputs(4)])
        with pytest.raises(ConfigError):
            FleetSimulation(params, fleet, initial_soc_fraction=1.5)


# --------------------------------------------------------------------- #
# Equivalence: batched engine == N independent scalar engines            #
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def fleet_case():
    """≥10 hubs x ≥7 days with outages, shared by every scheduler check."""
    scenarios, sim = build_default_fleet(10, n_days=7, seed=3, outage_probability=0.01)
    assert sim.inputs.outage is not None and sim.inputs.outage.any()
    return scenarios, sim


def run_scalar_fleet(scenarios, fleet_inputs, scheduler_for):
    """N independent HubSimulation runs over the same stacked traces."""
    books = []
    for index, scenario in enumerate(scenarios):
        sim = HubSimulation(scenario.build_hub(), fleet_inputs.hub(index))
        sim.run(scheduler_for(index))
        books.append(sim.book)
    return books


def assert_books_match(fleet_book, scalar_books):
    """Totals, per-slot ledgers, and daily rewards agree within ATOL."""
    for name, scalar_value in (
        ("operating_cost_per_hub", [b.operating_cost for b in scalar_books]),
        ("charging_revenue_per_hub", [b.charging_revenue for b in scalar_books]),
        ("profit_per_hub", [b.profit for b in scalar_books]),
        ("grid_energy_per_hub_kwh", [b.total_grid_energy_kwh for b in scalar_books]),
        ("curtailed_per_hub_kwh", [b.total_curtailed_kwh for b in scalar_books]),
        ("unserved_per_hub_kwh", [b.total_unserved_kwh for b in scalar_books]),
    ):
        np.testing.assert_allclose(
            getattr(fleet_book, name), scalar_value, rtol=0, atol=ATOL, err_msg=name
        )
    np.testing.assert_allclose(
        fleet_book.daily_rewards(),
        [b.daily_rewards() for b in scalar_books],
        rtol=0,
        atol=ATOL,
    )
    # Slot-level spot check: actions and SoC trajectories line up exactly.
    for index, book in enumerate(scalar_books):
        np.testing.assert_array_equal(
            fleet_book.action[index], [l.action for l in book.ledgers]
        )
        np.testing.assert_allclose(
            fleet_book.soc_kwh[index],
            [l.soc_kwh for l in book.ledgers],
            rtol=0,
            atol=ATOL,
        )


class TestEquivalence:
    def test_idle(self, fleet_case):
        scenarios, sim = fleet_case
        sim.reset()
        fleet_book = sim.run(FleetIdleScheduler())
        scalar = run_scalar_fleet(scenarios, sim.inputs, lambda i: IdleScheduler())
        assert_books_match(fleet_book, scalar)

    def test_rule_based(self, fleet_case):
        scenarios, sim = fleet_case
        sim.reset()
        fleet_book = sim.run(FleetRuleBasedScheduler())
        scalar = run_scalar_fleet(scenarios, sim.inputs, lambda i: RuleBasedScheduler())
        assert_books_match(fleet_book, scalar)
        # Both branches of the rule fired somewhere in the fleet.
        assert (fleet_book.action == CHARGE).any()
        assert (fleet_book.action == DISCHARGE).any()

    def test_random_shared_seeds(self, fleet_case):
        scenarios, sim = fleet_case
        sim.reset()
        fleet_book = sim.run(
            FleetRandomScheduler.from_factory(RngFactory(seed=11), sim.n_hubs)
        )
        scalar = run_scalar_fleet(
            scenarios,
            sim.inputs,
            lambda i: RandomScheduler(RngFactory(seed=11).stream(f"fleet/random/{i}")),
        )
        assert_books_match(fleet_book, scalar)

    def test_greedy_renewable(self, fleet_case):
        scenarios, sim = fleet_case
        sim.reset()
        fleet_book = sim.run(FleetGreedyRenewableScheduler())
        scalar = run_scalar_fleet(
            scenarios, sim.inputs, lambda i: GreedyRenewableScheduler()
        )
        assert_books_match(fleet_book, scalar)

    def test_paper_exact_battery_convention(self):
        configs = [
            small_hub_config(paper_exact=True),
            small_hub_config(paper_exact=True),
        ]
        outage = np.zeros(24, dtype=bool)
        outage[5:8] = True
        rows = [flat_inputs(24, outage=outage), flat_inputs(24)]
        fleet = FleetInputs.from_hub_inputs(rows)
        sim = FleetSimulation(FleetParams.from_hub_configs(configs), fleet)
        fleet_book = sim.run(FleetRuleBasedScheduler())
        from repro.hub.hub import EctHub

        scalar = []
        for index, config in enumerate(configs):
            one = HubSimulation(EctHub(config), fleet.hub(index))
            one.run(RuleBasedScheduler())
            scalar.append(one.book)
        assert_books_match(fleet_book, scalar)


# --------------------------------------------------------------------- #
# Blackout edge cases, exercised on BOTH engines                         #
# --------------------------------------------------------------------- #


def engines_for(config: HubConfig, inputs: HubInputs, *, soc: float = 0.5):
    """(scalar sim, fleet sim) over identical single-hub state."""
    from repro.hub.hub import EctHub

    scalar = HubSimulation(EctHub(config), inputs, initial_soc_fraction=soc)
    fleet = FleetSimulation(
        FleetParams.from_hub_configs([config]),
        FleetInputs.from_hub_inputs([inputs]),
        initial_soc_fraction=soc,
    )
    return scalar, fleet


class TestBlackoutEdges:
    def test_blackout_on_slot_zero(self):
        config = small_hub_config()
        outage = np.zeros(4, dtype=bool)
        outage[0] = True
        scalar, fleet = engines_for(config, flat_inputs(4, outage=outage))

        ledger = scalar.step(CHARGE)
        columns = fleet.step(np.array([CHARGE]))
        # The scheduled charge is overridden; the reserve carries the BS.
        assert ledger.blackout and ledger.action == IDLE
        assert ledger.p_grid_kw == 0.0 and ledger.revenue == 0.0
        assert columns["action"][0] == IDLE
        assert columns["p_grid_kw"][0] == 0.0
        np.testing.assert_allclose(
            columns["soc_kwh"][0], ledger.soc_kwh, rtol=0, atol=ATOL
        )
        assert ledger.soc_kwh < 5.0  # battery dipped to serve the BS

    def test_back_to_back_outages_drain_then_recover(self):
        config = small_hub_config()
        outage = np.zeros(6, dtype=bool)
        outage[1:4] = True  # three consecutive dark slots
        inputs = flat_inputs(6, outage=outage, occupied=np.ones(6, dtype=int))
        scalar, fleet = engines_for(config, inputs, soc=1.0)
        scalar.run(IdleScheduler())
        fleet_book = fleet.run(FleetIdleScheduler())

        socs = [l.soc_kwh for l in scalar.book.ledgers]
        assert socs[0] > socs[1] > socs[2] > socs[3]  # monotone drain when dark
        # Charging and grid import are suspended during every outage slot.
        for t, ledger in enumerate(scalar.book.ledgers):
            if outage[t]:
                assert ledger.revenue == 0.0
                assert ledger.p_cs_kw == 0.0 and ledger.p_grid_kw == 0.0
        np.testing.assert_allclose(
            fleet_book.soc_kwh[0], socs, rtol=0, atol=ATOL
        )
        np.testing.assert_array_equal(fleet_book.blackout[0], outage)

    def test_emergency_reserve_exhaustion_reports_unserved(self):
        # Tiny battery + long outage: the Eq. 6 reserve empties and the
        # remaining BS demand is booked as unserved energy.
        config = small_hub_config(soc_min_fraction=0.05)
        outage = np.ones(8, dtype=bool)
        scalar, fleet = engines_for(config, flat_inputs(8, outage=outage), soc=0.2)
        scalar.run(IdleScheduler())
        fleet_book = fleet.run(FleetIdleScheduler())

        assert scalar.book.total_unserved_kwh > 0.0
        assert scalar.book.ledgers[-1].soc_kwh == pytest.approx(0.0, abs=1e-12)
        assert fleet_book.soc_kwh[0, -1] == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(
            fleet_book.unserved_per_hub_kwh[0],
            scalar.book.total_unserved_kwh,
            rtol=0,
            atol=ATOL,
        )
        # Battery never goes negative on either engine.
        assert min(l.soc_kwh for l in scalar.book.ledgers) >= 0.0
        assert fleet_book.soc_kwh.min() >= 0.0


# --------------------------------------------------------------------- #
# Fleet cost book + engine surface                                       #
# --------------------------------------------------------------------- #


class TestFleetBook:
    def test_network_totals_are_hub_sums(self, fleet_case):
        _, sim = fleet_case
        sim.reset()
        book = sim.run(FleetRuleBasedScheduler())
        assert book.profit == pytest.approx(book.profit_per_hub.sum())
        assert book.operating_cost == pytest.approx(book.operating_cost_per_hub.sum())
        assert book.daily_rewards().shape == (sim.n_hubs, 7)

    def test_hub_book_reconstruction(self, fleet_case):
        _, sim = fleet_case
        sim.reset()
        book = sim.run(FleetIdleScheduler())
        hub0 = book.hub_book(0)
        assert len(hub0) == sim.horizon
        assert hub0.profit == pytest.approx(book.profit_per_hub[0])

    def test_step_guards(self):
        params = FleetParams.from_hub_configs([small_hub_config()])
        sim = FleetSimulation(params, FleetInputs.from_hub_inputs([flat_inputs(2)]))
        with pytest.raises(FleetError, match="shape"):
            sim.step(np.zeros(3, dtype=int))
        with pytest.raises(FleetError, match="-1, 0, or 1"):
            sim.step(np.array([5]))
        sim.step(np.array([IDLE]))
        sim.step(np.array([IDLE]))
        assert sim.done
        with pytest.raises(FleetError, match="exhausted"):
            sim.step(np.array([IDLE]))

    def test_reset_restores_initial_state(self, fleet_case):
        _, sim = fleet_case
        sim.reset()
        first = sim.run(FleetRuleBasedScheduler()).profit
        sim.reset()
        second = sim.run(FleetRuleBasedScheduler()).profit
        assert first == second


class TestSchedulerFactory:
    def test_names(self):
        for name in ("idle", "random", "rule-based", "greedy-renewable"):
            sched = make_fleet_scheduler(name, n_hubs=3)
            assert sched.name == name
        with pytest.raises(FleetError, match="unknown fleet scheduler"):
            make_fleet_scheduler("dp-oracle", n_hubs=3)


# --------------------------------------------------------------------- #
# Experiment + CLI plumbing                                              #
# --------------------------------------------------------------------- #


class TestFleetExperimentCli:
    def test_fleet_experiment_runs(self):
        from repro.experiments import run_experiment

        result = run_experiment("fleet", scale=0.2)
        assert result.data["n_hubs"] >= 4
        assert len(result.data["profit_per_hub"]) == result.data["n_hubs"]
        # data must stay deterministic (diffable via --out); timing is
        # reported in the rendered lines only.
        assert "hub_slots_per_sec" not in result.data
        again = run_experiment("fleet", scale=0.2)
        assert result.to_json_dict() == again.to_json_dict()

    def test_cli_fleet_with_out(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        assert (
            main(
                [
                    "fleet",
                    "--n-hubs",
                    "5",
                    "--days",
                    "7",
                    "--scheduler",
                    "idle",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert "network profit" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["experiment_id"] == "fleet"
        assert payload["data"]["n_hubs"] == 5
        assert len(payload["data"]["profit_per_hub"]) == 5

    def test_cli_reports_library_errors_cleanly(self, capsys):
        assert main(["fleet", "--n-hubs", "0"]) == 1
        err = capsys.readouterr().err
        assert "n_hubs must be positive" in err and "Traceback" not in err

    def test_cli_run_with_out(self, tmp_path, capsys):
        out = tmp_path / "fig5.json"
        assert main(["run", "fig5", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["experiment_id"] == "fig5"
        assert "correlation" in payload["data"]
