"""Tests for the vectorized fleet engine (repro.fleet).

The centrepiece is the property-style equivalence suite: a batched
:class:`FleetSimulation` run must agree with N independent scalar
:class:`HubSimulation` runs within atol 1e-9 for every shared scheduler,
including blackout slots. Also covers the struct-of-arrays containers, the
shared NaN/inf trace validation, blackout edge cases on both engines, and
the fleet CLI/experiment plumbing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.energy.battery import BatteryConfig, CHARGE, DISCHARGE, IDLE
from repro.errors import ConfigError, DataError, FleetError
from repro.fleet import (
    FeederGroup,
    FleetInputs,
    FleetParams,
    FleetSimulation,
    FleetGreedyRenewableScheduler,
    FleetIdleScheduler,
    FleetRandomScheduler,
    FleetRuleBasedScheduler,
    build_default_fleet,
    fleet_simulation_from_scenarios,
    make_fleet_scheduler,
)
from repro.hub.hub import HubConfig
from repro.hub.simulation import HubInputs, HubSimulation
from repro.rl.schedulers import (
    GreedyRenewableScheduler,
    IdleScheduler,
    RandomScheduler,
    RuleBasedScheduler,
)
from repro.rng import RngFactory

ATOL = 1e-9


def small_hub_config(**battery_kwargs) -> HubConfig:
    """A hub with a small battery so SoC bounds are reached quickly."""
    battery = BatteryConfig(
        capacity_kwh=10.0,
        charge_rate_kw=5.0,
        discharge_rate_kw=5.0,
        **battery_kwargs,
    )
    return HubConfig(battery=battery, n_base_stations=2, pv=None)


def flat_inputs(
    horizon: int = 6,
    *,
    outage: np.ndarray | None = None,
    occupied: np.ndarray | None = None,
) -> HubInputs:
    """Deterministic traces: constant BS idle load, no renewables."""
    return HubInputs(
        load_rate=np.zeros(horizon),
        rtp_kwh=np.full(horizon, 0.1),
        pv_power_kw=np.zeros(horizon),
        wt_power_kw=np.zeros(horizon),
        occupied=np.zeros(horizon, dtype=int) if occupied is None else occupied,
        discount=np.zeros(horizon),
        outage=outage,
    )


# --------------------------------------------------------------------- #
# Trace validation (shared by both engines)                              #
# --------------------------------------------------------------------- #


class TestTraceValidation:
    def test_hub_inputs_reject_nan(self):
        load = np.zeros(4)
        load[2] = np.nan
        with pytest.raises(DataError, match="NaN"):
            HubInputs(
                load_rate=load,
                rtp_kwh=np.zeros(4),
                pv_power_kw=np.zeros(4),
                wt_power_kw=np.zeros(4),
                occupied=np.zeros(4, dtype=int),
                discount=np.zeros(4),
            )

    def test_hub_inputs_reject_inf(self):
        rtp = np.zeros(4)
        rtp[0] = np.inf
        with pytest.raises(DataError, match="NaN or inf"):
            HubInputs(
                load_rate=np.zeros(4),
                rtp_kwh=rtp,
                pv_power_kw=np.zeros(4),
                wt_power_kw=np.zeros(4),
                occupied=np.zeros(4, dtype=int),
                discount=np.zeros(4),
            )

    def test_fleet_inputs_reject_nan(self):
        pv = np.zeros((2, 4))
        pv[1, 3] = np.nan
        with pytest.raises(DataError, match="pv_power_kw"):
            FleetInputs(
                load_rate=np.zeros((2, 4)),
                rtp_kwh=np.zeros((2, 4)),
                pv_power_kw=pv,
                wt_power_kw=np.zeros((2, 4)),
                occupied=np.zeros((2, 4), dtype=int),
                discount=np.zeros((2, 4)),
            )

    def test_fleet_inputs_range_checks(self):
        with pytest.raises(DataError, match="load_rate"):
            FleetInputs(
                load_rate=np.full((2, 4), 1.5),
                rtp_kwh=np.zeros((2, 4)),
                pv_power_kw=np.zeros((2, 4)),
                wt_power_kw=np.zeros((2, 4)),
                occupied=np.zeros((2, 4), dtype=int),
                discount=np.zeros((2, 4)),
            )

    def test_fleet_inputs_must_be_2d(self):
        with pytest.raises(FleetError, match="2-D"):
            FleetInputs(
                load_rate=np.zeros(4),
                rtp_kwh=np.zeros(4),
                pv_power_kw=np.zeros(4),
                wt_power_kw=np.zeros(4),
                occupied=np.zeros(4, dtype=int),
                discount=np.zeros(4),
            )


# --------------------------------------------------------------------- #
# Containers                                                             #
# --------------------------------------------------------------------- #


class TestContainers:
    def test_stack_and_hub_round_trip(self):
        rows = [flat_inputs(5), flat_inputs(5, outage=np.array([0, 1, 0, 0, 1], dtype=bool))]
        fleet = FleetInputs.from_hub_inputs(rows)
        assert fleet.n_hubs == 2 and fleet.horizon == 5
        back = fleet.hub(1)
        np.testing.assert_array_equal(back.outage, rows[1].outage)
        np.testing.assert_array_equal(fleet.outage_mask()[0], np.zeros(5, dtype=bool))

    def test_stack_rejects_mixed_horizons(self):
        with pytest.raises(FleetError, match="horizon"):
            FleetInputs.from_hub_inputs([flat_inputs(5), flat_inputs(6)])

    def test_params_from_configs(self):
        params = FleetParams.from_hub_configs([small_hub_config(), HubConfig()])
        assert params.n_hubs == 2
        assert params.capacity_kwh[0] == 10.0
        assert params.paper_exact.dtype == bool

    def test_params_reject_mixed_dt(self):
        with pytest.raises(FleetError, match="slot length"):
            FleetParams.from_hub_configs([HubConfig(), HubConfig(dt_h=0.5)])

    def test_simulation_rejects_mismatched_shapes(self):
        params = FleetParams.from_hub_configs([small_hub_config()])
        fleet = FleetInputs.from_hub_inputs([flat_inputs(4), flat_inputs(4)])
        with pytest.raises(FleetError, match="hubs"):
            FleetSimulation(params, fleet)

    def test_bad_initial_soc_rejected(self):
        params = FleetParams.from_hub_configs([small_hub_config()])
        fleet = FleetInputs.from_hub_inputs([flat_inputs(4)])
        with pytest.raises(ConfigError):
            FleetSimulation(params, fleet, initial_soc_fraction=1.5)


# --------------------------------------------------------------------- #
# Equivalence: batched engine == N independent scalar engines            #
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def fleet_case():
    """≥10 hubs x ≥7 days with outages, shared by every scheduler check."""
    scenarios, sim = build_default_fleet(10, n_days=7, seed=3, outage_probability=0.01)
    assert sim.inputs.outage is not None and sim.inputs.outage.any()
    return scenarios, sim


def run_scalar_fleet(scenarios, fleet_inputs, scheduler_for):
    """N independent HubSimulation runs over the same stacked traces."""
    books = []
    for index, scenario in enumerate(scenarios):
        sim = HubSimulation(scenario.build_hub(), fleet_inputs.hub(index))
        sim.run(scheduler_for(index))
        books.append(sim.book)
    return books


def assert_books_match(fleet_book, scalar_books):
    """Totals, per-slot ledgers, and daily rewards agree within ATOL."""
    for name, scalar_value in (
        ("operating_cost_per_hub", [b.operating_cost for b in scalar_books]),
        ("charging_revenue_per_hub", [b.charging_revenue for b in scalar_books]),
        ("profit_per_hub", [b.profit for b in scalar_books]),
        ("grid_energy_per_hub_kwh", [b.total_grid_energy_kwh for b in scalar_books]),
        ("curtailed_per_hub_kwh", [b.total_curtailed_kwh for b in scalar_books]),
        ("unserved_per_hub_kwh", [b.total_unserved_kwh for b in scalar_books]),
    ):
        np.testing.assert_allclose(
            getattr(fleet_book, name), scalar_value, rtol=0, atol=ATOL, err_msg=name
        )
    np.testing.assert_allclose(
        fleet_book.daily_rewards(),
        [b.daily_rewards() for b in scalar_books],
        rtol=0,
        atol=ATOL,
    )
    # Slot-level spot check: actions and SoC trajectories line up exactly.
    for index, book in enumerate(scalar_books):
        np.testing.assert_array_equal(
            fleet_book.action[index], [l.action for l in book.ledgers]
        )
        np.testing.assert_allclose(
            fleet_book.soc_kwh[index],
            [l.soc_kwh for l in book.ledgers],
            rtol=0,
            atol=ATOL,
        )


class TestEquivalence:
    def test_idle(self, fleet_case):
        scenarios, sim = fleet_case
        sim.reset()
        fleet_book = sim.run(FleetIdleScheduler())
        scalar = run_scalar_fleet(scenarios, sim.inputs, lambda i: IdleScheduler())
        assert_books_match(fleet_book, scalar)

    def test_rule_based(self, fleet_case):
        scenarios, sim = fleet_case
        sim.reset()
        fleet_book = sim.run(FleetRuleBasedScheduler())
        scalar = run_scalar_fleet(scenarios, sim.inputs, lambda i: RuleBasedScheduler())
        assert_books_match(fleet_book, scalar)
        # Both branches of the rule fired somewhere in the fleet.
        assert (fleet_book.action == CHARGE).any()
        assert (fleet_book.action == DISCHARGE).any()

    def test_random_shared_seeds(self, fleet_case):
        scenarios, sim = fleet_case
        sim.reset()
        fleet_book = sim.run(
            FleetRandomScheduler.from_factory(RngFactory(seed=11), sim.n_hubs)
        )
        scalar = run_scalar_fleet(
            scenarios,
            sim.inputs,
            lambda i: RandomScheduler(RngFactory(seed=11).stream(f"fleet/random/{i}")),
        )
        assert_books_match(fleet_book, scalar)

    def test_greedy_renewable(self, fleet_case):
        scenarios, sim = fleet_case
        sim.reset()
        fleet_book = sim.run(FleetGreedyRenewableScheduler())
        scalar = run_scalar_fleet(
            scenarios, sim.inputs, lambda i: GreedyRenewableScheduler()
        )
        assert_books_match(fleet_book, scalar)

    def test_paper_exact_battery_convention(self):
        configs = [
            small_hub_config(paper_exact=True),
            small_hub_config(paper_exact=True),
        ]
        outage = np.zeros(24, dtype=bool)
        outage[5:8] = True
        rows = [flat_inputs(24, outage=outage), flat_inputs(24)]
        fleet = FleetInputs.from_hub_inputs(rows)
        sim = FleetSimulation(FleetParams.from_hub_configs(configs), fleet)
        fleet_book = sim.run(FleetRuleBasedScheduler())
        from repro.hub.hub import EctHub

        scalar = []
        for index, config in enumerate(configs):
            one = HubSimulation(EctHub(config), fleet.hub(index))
            one.run(RuleBasedScheduler())
            scalar.append(one.book)
        assert_books_match(fleet_book, scalar)


# --------------------------------------------------------------------- #
# Blackout edge cases, exercised on BOTH engines                         #
# --------------------------------------------------------------------- #


def engines_for(config: HubConfig, inputs: HubInputs, *, soc: float = 0.5):
    """(scalar sim, fleet sim) over identical single-hub state."""
    from repro.hub.hub import EctHub

    scalar = HubSimulation(EctHub(config), inputs, initial_soc_fraction=soc)
    fleet = FleetSimulation(
        FleetParams.from_hub_configs([config]),
        FleetInputs.from_hub_inputs([inputs]),
        initial_soc_fraction=soc,
    )
    return scalar, fleet


class TestBlackoutEdges:
    def test_blackout_on_slot_zero(self):
        config = small_hub_config()
        outage = np.zeros(4, dtype=bool)
        outage[0] = True
        scalar, fleet = engines_for(config, flat_inputs(4, outage=outage))

        ledger = scalar.step(CHARGE)
        columns = fleet.step(np.array([CHARGE]))
        # The scheduled charge is overridden; the reserve carries the BS.
        assert ledger.blackout and ledger.action == IDLE
        assert ledger.p_grid_kw == 0.0 and ledger.revenue == 0.0
        assert columns["action"][0] == IDLE
        assert columns["p_grid_kw"][0] == 0.0
        np.testing.assert_allclose(
            columns["soc_kwh"][0], ledger.soc_kwh, rtol=0, atol=ATOL
        )
        assert ledger.soc_kwh < 5.0  # battery dipped to serve the BS

    def test_back_to_back_outages_drain_then_recover(self):
        config = small_hub_config()
        outage = np.zeros(6, dtype=bool)
        outage[1:4] = True  # three consecutive dark slots
        inputs = flat_inputs(6, outage=outage, occupied=np.ones(6, dtype=int))
        scalar, fleet = engines_for(config, inputs, soc=1.0)
        scalar.run(IdleScheduler())
        fleet_book = fleet.run(FleetIdleScheduler())

        socs = [l.soc_kwh for l in scalar.book.ledgers]
        assert socs[0] > socs[1] > socs[2] > socs[3]  # monotone drain when dark
        # Charging and grid import are suspended during every outage slot.
        for t, ledger in enumerate(scalar.book.ledgers):
            if outage[t]:
                assert ledger.revenue == 0.0
                assert ledger.p_cs_kw == 0.0 and ledger.p_grid_kw == 0.0
        np.testing.assert_allclose(
            fleet_book.soc_kwh[0], socs, rtol=0, atol=ATOL
        )
        np.testing.assert_array_equal(fleet_book.blackout[0], outage)

    def test_emergency_reserve_exhaustion_reports_unserved(self):
        # Tiny battery + long outage: the Eq. 6 reserve empties and the
        # remaining BS demand is booked as unserved energy.
        config = small_hub_config(soc_min_fraction=0.05)
        outage = np.ones(8, dtype=bool)
        scalar, fleet = engines_for(config, flat_inputs(8, outage=outage), soc=0.2)
        scalar.run(IdleScheduler())
        fleet_book = fleet.run(FleetIdleScheduler())

        assert scalar.book.total_unserved_kwh > 0.0
        assert scalar.book.ledgers[-1].soc_kwh == pytest.approx(0.0, abs=1e-12)
        assert fleet_book.soc_kwh[0, -1] == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(
            fleet_book.unserved_per_hub_kwh[0],
            scalar.book.total_unserved_kwh,
            rtol=0,
            atol=ATOL,
        )
        # Battery never goes negative on either engine.
        assert min(l.soc_kwh for l in scalar.book.ledgers) >= 0.0
        assert fleet_book.soc_kwh.min() >= 0.0


# --------------------------------------------------------------------- #
# Fleet cost book + engine surface                                       #
# --------------------------------------------------------------------- #


class TestFleetBook:
    def test_network_totals_are_hub_sums(self, fleet_case):
        _, sim = fleet_case
        sim.reset()
        book = sim.run(FleetRuleBasedScheduler())
        assert book.profit == pytest.approx(book.profit_per_hub.sum())
        assert book.operating_cost == pytest.approx(book.operating_cost_per_hub.sum())
        assert book.daily_rewards().shape == (sim.n_hubs, 7)

    def test_hub_book_reconstruction(self, fleet_case):
        _, sim = fleet_case
        sim.reset()
        book = sim.run(FleetIdleScheduler())
        hub0 = book.hub_book(0)
        assert len(hub0) == sim.horizon
        assert hub0.profit == pytest.approx(book.profit_per_hub[0])

    def test_step_guards(self):
        params = FleetParams.from_hub_configs([small_hub_config()])
        sim = FleetSimulation(params, FleetInputs.from_hub_inputs([flat_inputs(2)]))
        with pytest.raises(FleetError, match="shape"):
            sim.step(np.zeros(3, dtype=int))
        with pytest.raises(FleetError, match="-1, 0, or 1"):
            sim.step(np.array([5]))
        sim.step(np.array([IDLE]))
        sim.step(np.array([IDLE]))
        assert sim.done
        with pytest.raises(FleetError, match="exhausted"):
            sim.step(np.array([IDLE]))

    def test_reset_restores_initial_state(self, fleet_case):
        _, sim = fleet_case
        sim.reset()
        first = sim.run(FleetRuleBasedScheduler()).profit
        sim.reset()
        second = sim.run(FleetRuleBasedScheduler()).profit
        assert first == second


class TestSchedulerFactory:
    def test_names(self):
        for name in ("idle", "random", "rule-based", "greedy-renewable"):
            sched = make_fleet_scheduler(name, n_hubs=3)
            assert sched.name == name
        with pytest.raises(FleetError, match="unknown fleet scheduler"):
            make_fleet_scheduler("dp-oracle", n_hubs=3)


# --------------------------------------------------------------------- #
# Experiment + CLI plumbing                                              #
# --------------------------------------------------------------------- #


class TestFleetExperimentCli:
    def test_fleet_experiment_runs(self):
        from repro.experiments import run_experiment

        result = run_experiment("fleet", scale=0.2)
        assert result.data["n_hubs"] >= 4
        assert len(result.data["profit_per_hub"]) == result.data["n_hubs"]
        # data must stay deterministic (diffable via --out); timing is
        # reported in the rendered lines only.
        assert "hub_slots_per_sec" not in result.data
        again = run_experiment("fleet", scale=0.2)
        assert result.to_json_dict() == again.to_json_dict()

    def test_cli_fleet_with_out(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        assert (
            main(
                [
                    "fleet",
                    "--n-hubs",
                    "5",
                    "--days",
                    "7",
                    "--scheduler",
                    "idle",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        assert "network profit" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["experiment_id"] == "fleet"
        assert payload["data"]["n_hubs"] == 5
        assert len(payload["data"]["profit_per_hub"]) == 5

    def test_cli_reports_library_errors_cleanly(self, capsys):
        assert main(["fleet", "--n-hubs", "0"]) == 1
        err = capsys.readouterr().err
        assert "n_hubs must be positive" in err and "Traceback" not in err

    def test_cli_run_with_out(self, tmp_path, capsys):
        out = tmp_path / "fig5.json"
        assert main(["run", "fig5", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["experiment_id"] == "fig5"
        assert "correlation" in payload["data"]


# --------------------------------------------------------------------- #
# Shared-grid coupling: FeederGroup model                                 #
# --------------------------------------------------------------------- #


class TestFeederGroup:
    def test_unlimited_is_passthrough(self):
        feeders = FeederGroup.unlimited(3)
        assert feeders.is_unlimited and feeders.n_feeders == 1
        demand = np.array([4.0, 0.0, 9.5])
        granted, shortfall = feeders.allocate(demand, 0)
        np.testing.assert_array_equal(granted, demand)
        np.testing.assert_array_equal(shortfall, np.zeros(3))
        assert np.isinf(feeders.available_import_kw(demand, 0)).all()

    def test_uniform_round_robin(self):
        feeders = FeederGroup.uniform(5, 2, 100.0)
        np.testing.assert_array_equal(feeders.assignment, [0, 1, 0, 1, 0])
        np.testing.assert_array_equal(feeders.members, [3, 2])
        assert not feeders.is_unlimited

    def test_proportional_allocation(self):
        feeders = FeederGroup(
            assignment=np.array([0, 0, 1]),
            import_capacity_kw=np.array([10.0, np.inf]),
        )
        granted, shortfall = feeders.allocate(np.array([8.0, 8.0, 5.0]), 0)
        np.testing.assert_allclose(granted, [5.0, 5.0, 5.0])
        np.testing.assert_allclose(shortfall, [3.0, 3.0, 0.0])

    def test_priority_allocation(self):
        feeders = FeederGroup(
            assignment=np.zeros(3, dtype=int),
            import_capacity_kw=np.array([7.0]),
            policy="priority",
            priority=np.array([1.0, 3.0, 2.0]),
        )
        granted, shortfall = feeders.allocate(np.array([5.0, 5.0, 5.0]), 0)
        # Highest priority served first, then the next, then nothing left.
        np.testing.assert_allclose(granted, [0.0, 5.0, 2.0])
        np.testing.assert_allclose(shortfall, [5.0, 0.0, 3.0])

    def test_priority_ties_break_by_hub_index(self):
        feeders = FeederGroup(
            assignment=np.zeros(2, dtype=int),
            import_capacity_kw=np.array([4.0]),
            policy="priority",
        )
        granted, _ = feeders.allocate(np.array([3.0, 3.0]), 0)
        np.testing.assert_allclose(granted, [3.0, 1.0])

    def test_per_slot_capacity(self):
        feeders = FeederGroup(
            assignment=np.zeros(1, dtype=int),
            import_capacity_kw=np.array([[10.0, 2.0]]),
        )
        assert feeders.horizon == 2
        np.testing.assert_allclose(feeders.allocate(np.array([3.0]), 0)[0], [3.0])
        np.testing.assert_allclose(feeders.allocate(np.array([3.0]), 1)[0], [2.0])
        with pytest.raises(FleetError, match="horizon"):
            feeders.capacity_at(2)

    def test_available_import_fair_share(self):
        feeders = FeederGroup(
            assignment=np.array([0, 0, 1]),
            import_capacity_kw=np.array([10.0, 1.0]),
        )
        available = feeders.available_import_kw(np.array([4.0, 2.0, 5.0]), 0)
        np.testing.assert_allclose(available, [2.0, 2.0, 0.0])

    def test_validation_errors(self):
        with pytest.raises(FleetError, match="assignment"):
            FeederGroup(
                assignment=np.array([0, 2]),
                import_capacity_kw=np.array([1.0]),
            )
        with pytest.raises(FleetError, match="non-negative"):
            FeederGroup(
                assignment=np.array([0]),
                import_capacity_kw=np.array([-1.0]),
            )
        with pytest.raises(FleetError, match="NaN"):
            FeederGroup(
                assignment=np.array([0]),
                import_capacity_kw=np.array([np.nan]),
            )
        with pytest.raises(FleetError, match="policy"):
            FeederGroup(
                assignment=np.array([0]),
                import_capacity_kw=np.array([1.0]),
                policy="auction",
            )
        with pytest.raises(FleetError, match="priority"):
            FeederGroup(
                assignment=np.array([0, 0]),
                import_capacity_kw=np.array([1.0]),
                policy="priority",
                priority=np.array([1.0, -2.0]),
            )
        with pytest.raises(FleetError, match="empty"):
            FeederGroup.uniform(2, 3, 10.0)

    def test_simulation_rejects_mismatched_feeders(self):
        params = FleetParams.from_hub_configs([small_hub_config()])
        fleet = FleetInputs.from_hub_inputs([flat_inputs(4)])
        with pytest.raises(FleetError, match="feeder group"):
            FleetSimulation(params, fleet, feeders=FeederGroup.unlimited(2))
        with pytest.raises(FleetError, match="capacity horizon"):
            FleetSimulation(
                params,
                fleet,
                feeders=FeederGroup(
                    assignment=np.zeros(1, dtype=int),
                    import_capacity_kw=np.full((1, 3), 5.0),
                ),
            )


# --------------------------------------------------------------------- #
# Coupled engine with unlimited capacity == uncoupled engine              #
# --------------------------------------------------------------------- #


def seeded_fleet_inputs(n_hubs: int, horizon: int, seed: int) -> FleetInputs:
    """Diverse random-but-valid traces, including a few blackout slots."""
    rng = np.random.default_rng(seed)
    return FleetInputs(
        load_rate=rng.uniform(0.0, 1.0, (n_hubs, horizon)),
        rtp_kwh=rng.uniform(0.05, 0.6, (n_hubs, horizon)),
        pv_power_kw=rng.uniform(0.0, 8.0, (n_hubs, horizon)),
        wt_power_kw=rng.uniform(0.0, 5.0, (n_hubs, horizon)),
        occupied=rng.integers(0, 2, (n_hubs, horizon)),
        discount=rng.uniform(0.0, 0.5, (n_hubs, horizon)),
        outage=rng.random((n_hubs, horizon)) < 0.03,
    )


def assert_fleet_books_identical(one, two, atol=ATOL):
    """Every recorded column agrees slot-for-slot."""
    np.testing.assert_array_equal(one.action, two.action)
    np.testing.assert_array_equal(one.blackout, two.blackout)
    for name in one._FLOAT_COLUMNS:
        np.testing.assert_allclose(
            getattr(one, name), getattr(two, name), rtol=0, atol=atol, err_msg=name
        )


def scheduler_by_name(name: str, n_hubs: int):
    if name == "random":
        return FleetRandomScheduler.from_factory(RngFactory(seed=17), n_hubs)
    return make_fleet_scheduler(name, n_hubs=n_hubs)


class TestCoupledUnlimitedEquivalence:
    """Satellite: unlimited-capacity coupling changes nothing, slot-for-slot."""

    N_HUBS = 8
    HORIZON = 72

    @pytest.mark.parametrize("paper_exact", [False, True])
    @pytest.mark.parametrize(
        "scheduler_name", ["idle", "random", "rule-based", "greedy-renewable"]
    )
    def test_matches_uncoupled_slot_for_slot(self, scheduler_name, paper_exact):
        configs = [
            small_hub_config(paper_exact=paper_exact) for _ in range(self.N_HUBS)
        ]
        params = FleetParams.from_hub_configs(configs)
        inputs = seeded_fleet_inputs(self.N_HUBS, self.HORIZON, seed=5)

        uncoupled = FleetSimulation(params, inputs)
        baseline = uncoupled.run(scheduler_by_name(scheduler_name, self.N_HUBS))

        # Finite-but-huge capacity exercises the full allocation path.
        for capacity in (np.inf, 1e12):
            coupled = FleetSimulation(
                params,
                inputs,
                feeders=FeederGroup.uniform(self.N_HUBS, 3, capacity),
            )
            book = coupled.run(scheduler_by_name(scheduler_name, self.N_HUBS))
            assert_fleet_books_identical(baseline, book)
            assert book.total_import_shortfall_kwh == 0.0
            assert book.congested_feeder_slots == 0


# --------------------------------------------------------------------- #
# Congestion behaviour under binding feeder limits                        #
# --------------------------------------------------------------------- #


class TestCongestion:
    @pytest.fixture(scope="class")
    def congested_case(self):
        """A fleet whose 3 feeders are capped at half the uncongested peak."""
        _, free = build_default_fleet(12, n_days=7, seed=3, outage_probability=0.01)
        free_book = free.run(FleetRuleBasedScheduler())
        peak = float(free_book.feeder_import_kw().max())
        capacity = peak / 3 * 0.5
        _, sim = build_default_fleet(
            12,
            n_days=7,
            seed=3,
            outage_probability=0.01,
            n_feeders=3,
            feeder_capacity_kw=capacity,
        )
        book = sim.run(FleetRuleBasedScheduler())
        return free_book, sim, book, capacity

    def test_congestion_is_booked(self, congested_case):
        free_book, sim, book, capacity = congested_case
        assert book.total_import_shortfall_kwh > 0.0
        assert book.total_unserved_kwh > 0.0
        assert book.congested_feeder_slots > 0
        assert (book.feeder_shortfall_kwh > 0.0).any()
        # The unlimited run records no congestion anywhere.
        assert free_book.total_import_shortfall_kwh == 0.0
        assert free_book.congested_feeder_slots == 0

    def test_feeder_imports_respect_capacity(self, congested_case):
        _, sim, book, capacity = congested_case
        assert (book.feeder_import_kw() <= capacity + 1e-9).all()
        assert (book.feeder_peak_import_kw <= capacity + 1e-9).all()

    def test_energy_balance_closes_under_curtailment(self, congested_case):
        _, sim, book, _ = congested_case
        dt = sim.params.dt_h
        lhs = book.p_grid_kw + book.p_pv_kw + book.p_wt_kw + book.unserved_kwh / dt
        rhs = book.p_bs_kw + book.p_cs_kw + book.p_bp_kw + book.surplus_kw
        np.testing.assert_allclose(lhs, rhs, rtol=0, atol=1e-9)

    def test_grid_cost_prices_granted_import_only(self, congested_case):
        _, sim, book, _ = congested_case
        np.testing.assert_allclose(
            book.grid_cost, book.p_grid_kw * book.rtp_kwh, rtol=0, atol=1e-9
        )

    def test_congestion_aware_scheduler_sheds_charges(self):
        _, free = build_default_fleet(12, n_days=7, seed=3)
        peak = float(free.run(FleetRuleBasedScheduler()).feeder_import_kw().max())
        builds = {}
        for aware in (True, False):
            _, sim = build_default_fleet(
                12, n_days=7, seed=3, n_feeders=3, feeder_capacity_kw=peak / 3 * 0.8
            )
            builds[aware] = sim.run(
                FleetRuleBasedScheduler(congestion_aware=aware)
            )
        aware_book, naive_book = builds[True], builds[False]
        assert (aware_book.action == CHARGE).sum() < (naive_book.action == CHARGE).sum()
        assert (
            aware_book.total_import_shortfall_kwh
            <= naive_book.total_import_shortfall_kwh
        )

    def test_priority_hub_served_first(self):
        # One feeder, two identical hubs, idle batteries, no renewables:
        # each hub demands its BS load every slot; capacity fits 1.5 hubs.
        configs = [small_hub_config(), small_hub_config()]
        params = FleetParams.from_hub_configs(configs)
        inputs = FleetInputs.from_hub_inputs([flat_inputs(6), flat_inputs(6)])
        p_bs = float(params.bs_power_kw(np.zeros(2))[0])
        feeders = FeederGroup(
            assignment=np.zeros(2, dtype=int),
            import_capacity_kw=np.array([1.5 * p_bs]),
            policy="priority",
            priority=np.array([1.0, 10.0]),
        )
        sim = FleetSimulation(params, inputs, feeders=feeders)
        book = sim.run(FleetIdleScheduler())
        np.testing.assert_allclose(book.p_grid_kw[1], np.full(6, p_bs))
        np.testing.assert_allclose(book.p_grid_kw[0], np.full(6, 0.5 * p_bs))

    def test_cli_feeder_flags(self, tmp_path):
        out = tmp_path / "coupled.json"
        assert (
            main(
                [
                    "fleet",
                    "--n-hubs",
                    "6",
                    "--days",
                    "7",
                    "--n-feeders",
                    "2",
                    "--feeder-capacity",
                    "120",
                    "--allocation",
                    "priority",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert payload["data"]["n_feeders"] == 2
        assert payload["data"]["allocation"] == "priority"
        assert payload["data"]["import_shortfall_kwh"] >= 0.0
        assert len(payload["data"]["feeder_import_kwh"]) == 2

    def test_fleet_grid_experiment_runs(self):
        from repro.experiments import run_experiment

        result = run_experiment("fleet-grid", scale=0.3)
        sweep = result.data["sweep"]
        assert len(sweep) == 4
        # Tightest capacity shows congestion; near-peak shows none.
        assert sweep[-1]["import_shortfall_kwh"] > 0.0
        assert sweep[0]["import_shortfall_kwh"] == 0.0
        again = run_experiment("fleet-grid", scale=0.3)
        assert result.to_json_dict() == again.to_json_dict()
