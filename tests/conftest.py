"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import RngFactory


@pytest.fixture()
def factory() -> RngFactory:
    """A seeded stream factory; every test gets the same root seed."""
    return RngFactory(seed=1234)


@pytest.fixture()
def rng(factory: RngFactory) -> np.random.Generator:
    """A generic random generator for ad-hoc sampling in tests."""
    return factory.stream("test")
