"""The array-backend seam: registry policy + cross-backend equivalence.

Two contracts live here. The *registry* contract: unknown backend names
fail loudly with the available list, the optional numba backend degrades
to the numpy reference with a logged warning (never a crash), and specs
carry ``run.backend`` through JSON and dotted overrides untouched. The
*equivalence* contract: the numpy backend is the engine — running any
preset through the seam is **byte-identical** to the pre-seam defaults,
sharded and parallel children re-resolve the parent's backend from the
spec JSON, and every backend that actually resolves on this machine
agrees with the numpy golden run (byte-identical for numpy itself,
atol 1e-9 for jitted backends — exercised for real on the CI leg that
installs numba).
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest

from repro import api
from repro.backend import (
    ArrayOps,
    BACKEND_NAMES,
    NumpyOps,
    available_backends,
    get_backend,
)
from repro.backend.numba_backend import HAVE_NUMBA
from repro.cli import main
from repro.errors import ConfigError
from repro.experiments.base import jsonable, write_results_json
from repro.spec import SweepSpec, available_presets, get_preset
from repro.spec.compiler import build, spec_from_fleet_flags
from repro.spec.scenario import BACKENDS, RunSpec, ScenarioSpec
from repro.telemetry import Telemetry


def base_spec(**overrides) -> ScenarioSpec:
    spec = spec_from_fleet_flags(n_hubs=8, days=2)
    return spec.with_overrides(overrides) if overrides else spec


def export_bytes(result, tmp_path, name) -> bytes:
    path = tmp_path / f"{name}.json"
    write_results_json(result, path)
    return path.read_bytes()


def data_without_spec(result) -> dict:
    """The economics payload alone — the spec echoes the *requested*
    backend, so backend-pinned twins differ there by construction.
    ``jsonable`` is the ``--out`` serializer — comparing its output is
    comparing what the export would say."""
    data = dict(result.data)
    data.pop("spec")
    return jsonable(data)


# --------------------------------------------------------------------- #
# Registry                                                                #
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_default_is_numpy(self):
        ops = get_backend()
        assert isinstance(ops, NumpyOps)
        assert ops.name == "numpy"
        assert ops.jit is False

    def test_resolution_is_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_instances_pass_through(self):
        ops = get_backend("numpy")
        assert get_backend(ops) is ops

    def test_unknown_name_lists_available(self):
        with pytest.raises(ConfigError, match="unknown array backend 'cupy'"):
            get_backend("cupy")
        with pytest.raises(ConfigError, match="numpy, numba"):
            get_backend("cupy")

    def test_available_backends_always_has_numpy(self):
        names = available_backends()
        assert "numpy" in names
        assert set(names) <= set(BACKEND_NAMES)

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba is installed here")
    def test_missing_numba_falls_back_with_warning(self, capsys):
        """Asking for numba without the package warns and degrades —
        crashing would make ``run.backend`` pins non-portable."""
        ops = get_backend("numba")
        assert ops.name == "numpy"
        assert ops is get_backend("numpy")
        err = capsys.readouterr().err
        assert "[warning]" in err
        assert "numba backend unavailable" in err
        assert "falling back to numpy" in err
        assert "numba" not in available_backends()

    @pytest.mark.skipif(not HAVE_NUMBA, reason="needs the optional numba")
    def test_numba_resolves_when_installed(self):  # pragma: no cover
        ops = get_backend("numba")
        assert ops.name == "numba"
        assert ops.jit is True
        assert "numba" in available_backends()


# --------------------------------------------------------------------- #
# Spec plumbing                                                           #
# --------------------------------------------------------------------- #


class TestSpecBackendField:
    def test_default_backend_is_numpy(self):
        assert RunSpec().backend == "numpy"

    def test_spec_constant_mirrors_registry(self):
        """scenario.BACKENDS is kept engine-import-free; it must never
        drift from the registry's canonical tuple."""
        assert BACKENDS == BACKEND_NAMES

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="unknown run backend 'cupy'"):
            RunSpec(backend="cupy")

    def test_json_round_trip_preserves_backend(self):
        spec = base_spec(**{"run.backend": "numba"})
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt.run.backend == "numba"
        assert rebuilt == spec

    def test_dotted_override_sets_backend(self):
        spec = base_spec().with_overrides({"run.backend": "numba"})
        assert spec.run.backend == "numba"

    def test_dotted_override_validates(self):
        with pytest.raises(ConfigError, match="unknown run backend"):
            base_spec().with_overrides({"run.backend": "cupy"})

    def test_every_preset_defaults_to_numpy(self):
        for name in available_presets():
            assert get_preset(name).run.backend == "numpy"

    def test_compiled_engine_reports_resolved_backend(self):
        """A "numba" pin on a numba-less machine *resolves* to numpy:
        the simulation records what actually runs, the spec what was
        asked for."""
        from repro.spec.compiler import _assemble_fleet

        spec = base_spec(**{"run.backend": "numba"})
        compiled = build(spec)
        resolved = get_backend("numba").name
        assert compiled.simulation.backend == resolved
        assert _assemble_fleet(spec).backend == "numba"


# --------------------------------------------------------------------- #
# Cross-backend equivalence                                               #
# --------------------------------------------------------------------- #


def preset_for_equivalence(name: str) -> ScenarioSpec:
    """Every preset, shortened to 2 days so the full matrix stays fast."""
    return get_preset(name).with_overrides({"run.days": 2})


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("preset", available_presets())
    def test_numpy_seam_is_byte_identical(self, tmp_path, preset):
        """Pinning backend="numpy" explicitly IS the default path: the
        golden ``--out`` export must match byte for byte."""
        spec = preset_for_equivalence(preset)
        golden = export_bytes(api.run(spec), tmp_path, "golden")
        pinned = export_bytes(
            api.run(spec.with_overrides({"run.backend": "numpy"})),
            tmp_path,
            "pinned",
        )
        assert pinned == golden

    @pytest.mark.parametrize("preset", available_presets())
    @pytest.mark.parametrize("backend", available_backends())
    def test_available_backends_agree_with_golden(self, preset, backend):
        """Every backend that resolves here reproduces the numpy golden
        run: numpy byte-identically, jitted backends within atol 1e-9.

        Locally this usually covers numpy only; the CI leg that installs
        numba runs the full matrix.
        """
        spec = preset_for_equivalence(preset)
        golden = data_without_spec(api.run(spec))
        other = data_without_spec(
            api.run(spec.with_overrides({"run.backend": backend}))
        )
        assert other.keys() == golden.keys()
        jit = get_backend(backend).jit
        for key, expected in golden.items():
            actual = other[key]
            if isinstance(expected, (list, float, int)) and not isinstance(
                expected, bool
            ):
                if jit:
                    np.testing.assert_allclose(
                        np.asarray(actual, dtype=float),
                        np.asarray(expected, dtype=float),
                        atol=1e-9,
                        rtol=0.0,
                        err_msg=f"{preset}/{backend}: {key}",
                    )
                else:
                    assert actual == expected, f"{preset}/{backend}: {key}"
            else:
                assert actual == expected, f"{preset}/{backend}: {key}"

    def test_numba_pin_falls_back_to_numpy_results(self, tmp_path, capsys):
        """On a numba-less machine a "numba" spec runs the numpy
        reference — economics byte-identical, only the echoed spec
        differs."""
        if HAVE_NUMBA:  # pragma: no cover - exercised on the numba CI leg
            pytest.skip("fallback only happens without numba")
        spec = base_spec()
        golden = api.run(spec)
        pinned = api.run(spec.with_overrides({"run.backend": "numba"}))
        assert "falling back to numpy" in capsys.readouterr().err
        assert data_without_spec(pinned) == data_without_spec(golden)
        assert pinned.data["spec"]["run"]["backend"] == "numba"


# --------------------------------------------------------------------- #
# Inheritance: shards, sweeps, pickling                                   #
# --------------------------------------------------------------------- #


class TestBackendInheritance:
    def test_sharded_run_matches_unsharded_per_backend(self, tmp_path):
        """Shard workers rebuild from the spec JSON, so they re-resolve
        the parent's backend; the merged export stays byte-identical."""
        for backend in available_backends():
            spec = base_spec(**{"run.backend": backend})
            whole = export_bytes(api.run(spec), tmp_path, f"whole-{backend}")
            sharded = export_bytes(
                api.run(spec, shards=2), tmp_path, f"sharded-{backend}"
            )
            assert sharded == whole

    def test_sharded_numba_fallback_matches(self, tmp_path):
        spec = base_spec(**{"run.backend": "numba"})
        whole = export_bytes(api.run(spec), tmp_path, "whole")
        sharded = export_bytes(api.run(spec, shards=2), tmp_path, "sharded")
        assert sharded == whole

    def test_parallel_sweep_inherits_backend(self, tmp_path):
        """Sweep workers compile from spec JSON too — a backend-pinned
        base must come back byte-identical to the serial executor."""
        sweep = SweepSpec(
            base=base_spec(**{"run.backend": "numba"}),
            parameters={"run.seed": (0, 1)},
            name="backend-inherit",
        )
        serial = api.run_sweep(sweep)
        parallel = api.run_sweep(sweep, jobs=2)
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        write_results_json(serial, serial_path)
        write_results_json(parallel, parallel_path)
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        for result in serial:
            assert result.data["spec"]["run"]["backend"] == "numba"

    def test_cost_book_pickles_by_backend_name(self):
        """Books cross process boundaries (shard merge); they carry the
        backend *name* and re-resolve ops lazily on the far side."""
        compiled = build(base_spec())
        book = compiled.execute()
        assert book.backend == "numpy"
        clone = pickle.loads(pickle.dumps(book))
        assert clone.backend == "numpy"
        assert isinstance(clone.ops, ArrayOps)
        np.testing.assert_array_equal(clone.daily_rewards(), book.daily_rewards())


# --------------------------------------------------------------------- #
# CLI + telemetry surfaces                                                #
# --------------------------------------------------------------------- #


class TestCliBackendFlag:
    def test_backend_flag_matches_default_export(self, tmp_path):
        argv = [
            "fleet",
            "--preset",
            "paper-default",
            "--set",
            "run.days=2",
            "--set",
            "fleet.n_hubs=4",
        ]
        default_path = tmp_path / "default.json"
        flagged_path = tmp_path / "flagged.json"
        assert main([*argv, "--out", str(default_path)]) == 0
        assert (
            main([*argv, "--backend", "numpy", "--out", str(flagged_path)]) == 0
        )
        assert flagged_path.read_bytes() == default_path.read_bytes()

    def test_backend_flag_is_spec_override_sugar(self, tmp_path):
        """``--backend numba`` must equal ``--set run.backend=numba``."""
        argv = [
            "fleet",
            "--preset",
            "paper-default",
            "--set",
            "run.days=2",
            "--set",
            "fleet.n_hubs=4",
        ]
        flag_path = tmp_path / "flag.json"
        dotted_path = tmp_path / "dotted.json"
        assert main([*argv, "--backend", "numba", "--out", str(flag_path)]) == 0
        assert (
            main(
                [*argv, "--set", "run.backend=numba", "--out", str(dotted_path)]
            )
            == 0
        )
        assert flag_path.read_bytes() == dotted_path.read_bytes()
        doc = json.loads(flag_path.read_text())
        assert doc["data"]["spec"]["run"]["backend"] == "numba"

    def test_backend_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--backend", "cupy"])
        assert "invalid choice" in capsys.readouterr().err


class TestTelemetryBackendStamp:
    def test_meta_records_resolved_backend(self):
        telemetry = Telemetry()
        api.run(base_spec(), telemetry=telemetry)
        assert telemetry.to_dict()["meta"]["backend"] == "numpy"

    def test_numba_fallback_stamps_what_ran(self):
        """The fingerprint records the backend that *executed*, not the
        one the spec asked for."""
        telemetry = Telemetry()
        api.run(base_spec(**{"run.backend": "numba"}), telemetry=telemetry)
        assert telemetry.to_dict()["meta"]["backend"] == get_backend("numba").name

    def test_no_engine_means_no_backend(self):
        assert Telemetry().to_dict()["meta"]["backend"] is None
