"""Tests for the ECT-Hub core: balance, costs, constraints, simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import BaseStationCluster, BatteryConfig
from repro.errors import ConstraintViolation, DataError, HubError
from repro.hub import (
    CostBook,
    EctHub,
    HubConfig,
    HubInputs,
    HubSimulation,
    ScenarioConfig,
    build_fleet_scenarios,
    build_scenario,
    check_soc_bounds,
    compute_slot_ledger,
    fleet_behavior_model,
    forecast_reserve_satisfied,
    required_reserve_kwh,
    reserve_satisfied,
    resolve_occupancy,
    rolling_bs_energy_kwh,
    sized_battery_config,
    validate_reserve,
)
from repro.rng import RngFactory
from repro.synth.catalog import default_fleet
from repro.synth.charging import Stratum


def _inputs(n=24, occupied=None, outage=None, rng=None):
    rng = rng or np.random.default_rng(0)
    return HubInputs(
        load_rate=rng.uniform(0.2, 0.9, n),
        rtp_kwh=rng.uniform(0.05, 0.13, n),
        pv_power_kw=rng.uniform(0, 15, n),
        wt_power_kw=rng.uniform(0, 10, n),
        occupied=occupied if occupied is not None else rng.integers(0, 2, n),
        discount=np.zeros(n),
        outage=outage,
    )


class TestPowerBalance:
    def test_eq7_import(self):
        hub = EctHub(HubConfig())
        balance = hub.power_balance(
            p_bs_kw=6.0, p_cs_kw=60.0, p_bp_kw=50.0, p_pv_kw=10.0, p_wt_kw=0.0
        )
        assert balance.grid_import_kw == pytest.approx(106.0)
        assert balance.surplus_kw == 0.0

    def test_eq7_surplus_curtailed(self):
        hub = EctHub(HubConfig())
        balance = hub.power_balance(
            p_bs_kw=4.0, p_cs_kw=0.0, p_bp_kw=0.0, p_pv_kw=20.0, p_wt_kw=0.0
        )
        assert balance.grid_import_kw == 0.0
        assert balance.surplus_kw == pytest.approx(16.0)

    def test_discharge_reduces_import(self):
        hub = EctHub(HubConfig())
        with_discharge = hub.power_balance(
            p_bs_kw=6.0, p_cs_kw=60.0, p_bp_kw=-50.0, p_pv_kw=0.0, p_wt_kw=0.0
        )
        assert with_discharge.grid_import_kw == pytest.approx(16.0)

    def test_negative_load_rejected(self):
        hub = EctHub(HubConfig())
        with pytest.raises(HubError):
            hub.power_balance(
                p_bs_kw=-1.0, p_cs_kw=0.0, p_bp_kw=0.0, p_pv_kw=0.0, p_wt_kw=0.0
            )

    @given(
        p_bs=st.floats(0, 20),
        p_cs=st.floats(0, 120),
        p_bp=st.floats(-50, 50),
        p_pv=st.floats(0, 40),
        p_wt=st.floats(0, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_balance_identity_property(self, p_bs, p_cs, p_bp, p_pv, p_wt):
        hub = EctHub(HubConfig())
        balance = hub.power_balance(
            p_bs_kw=p_bs, p_cs_kw=p_cs, p_bp_kw=p_bp, p_pv_kw=p_pv, p_wt_kw=p_wt
        )
        residual = p_bs + p_cs + p_bp - p_pv - p_wt
        assert balance.grid_import_kw - balance.surplus_kw == pytest.approx(residual)
        assert balance.grid_import_kw >= 0 and balance.surplus_kw >= 0


class TestCosts:
    def test_slot_ledger_eqs_8_9_11(self):
        ledger = compute_slot_ledger(
            slot=0, action=1, p_bs_kw=6.0, p_cs_kw=120.0, p_bp_kw=50.0,
            p_pv_kw=0.0, p_wt_kw=0.0, p_grid_kw=176.0, surplus_kw=0.0,
            rtp_kwh=0.10, srtp_kwh=0.45, soc_kwh=100.0,
            c_bp_per_slot=0.01, dt_h=1.0,
        )
        assert ledger.grid_cost == pytest.approx(17.6)
        assert ledger.bp_cost == pytest.approx(0.01)
        assert ledger.revenue == pytest.approx(54.0)
        assert ledger.reward == pytest.approx(54.0 - 17.6 - 0.01)

    def test_bp_cost_only_when_active(self):
        idle = compute_slot_ledger(
            slot=0, action=0, p_bs_kw=0, p_cs_kw=0, p_bp_kw=0, p_pv_kw=0,
            p_wt_kw=0, p_grid_kw=0, surplus_kw=0, rtp_kwh=0.1, srtp_kwh=0.4,
            soc_kwh=0, c_bp_per_slot=0.01, dt_h=1.0,
        )
        assert idle.bp_cost == 0.0

    def test_cost_book_aggregates_eq10_12(self):
        book = CostBook()
        for slot in range(48):
            book.add(
                compute_slot_ledger(
                    slot=slot, action=1 if slot % 2 else 0, p_bs_kw=4.0,
                    p_cs_kw=60.0 if slot % 3 == 0 else 0.0, p_bp_kw=0.0,
                    p_pv_kw=0.0, p_wt_kw=0.0, p_grid_kw=4.0, surplus_kw=0.0,
                    rtp_kwh=0.1, srtp_kwh=0.45, soc_kwh=50.0,
                    c_bp_per_slot=0.01, dt_h=1.0,
                )
            )
        assert book.profit == pytest.approx(book.charging_revenue - book.operating_cost)
        assert len(book.daily_rewards()) == 2
        assert sum(book.daily_rewards()) == pytest.approx(book.profit)

    def test_invalid_prices(self):
        with pytest.raises(HubError):
            compute_slot_ledger(
                slot=0, action=0, p_bs_kw=0, p_cs_kw=0, p_bp_kw=0, p_pv_kw=0,
                p_wt_kw=0, p_grid_kw=0, surplus_kw=0, rtp_kwh=-0.1,
                srtp_kwh=0.4, soc_kwh=0, c_bp_per_slot=0.01, dt_h=1.0,
            )


class TestConstraints:
    def test_required_reserve(self):
        cluster = BaseStationCluster(2)
        assert required_reserve_kwh(cluster, 4) == pytest.approx(2 * 4.0 * 4)

    def test_reserve_satisfied_and_violated(self):
        cluster = BaseStationCluster(2)
        ok = BatteryConfig(capacity_kwh=200.0, soc_min_fraction=0.2)
        bad = BatteryConfig(capacity_kwh=200.0, soc_min_fraction=0.05)
        assert reserve_satisfied(ok, cluster, 4)
        assert not reserve_satisfied(bad, cluster, 4)
        with pytest.raises(ConstraintViolation):
            validate_reserve(bad, cluster, 4)

    def test_sized_battery_config_raises_min(self):
        cluster = BaseStationCluster(2)
        base = BatteryConfig(capacity_kwh=200.0, soc_min_fraction=0.01)
        sized = sized_battery_config(base, cluster, 4)
        assert reserve_satisfied(sized, cluster, 4)

    def test_sized_battery_impossible(self):
        cluster = BaseStationCluster(10)
        tiny = BatteryConfig(capacity_kwh=20.0)
        with pytest.raises(ConstraintViolation):
            sized_battery_config(tiny, cluster, 8)

    def test_rolling_bs_energy(self):
        power = np.array([1.0, 2.0, 3.0, 4.0])
        rolling = rolling_bs_energy_kwh(power, 2)
        assert rolling.tolist() == [3.0, 5.0, 7.0, 4.0]

    def test_forecast_reserve(self):
        config = BatteryConfig(capacity_kwh=200.0, soc_min_fraction=0.10)
        assert forecast_reserve_satisfied(config, np.full(48, 4.0), 4)
        assert not forecast_reserve_satisfied(config, np.full(48, 8.0), 4)

    def test_check_soc_bounds(self):
        config = BatteryConfig()
        check_soc_bounds(100.0, config)
        with pytest.raises(ConstraintViolation):
            check_soc_bounds(1.0, config)


class TestSimulation:
    def test_run_to_completion(self):
        sim = HubSimulation(EctHub(HubConfig()), _inputs(48))
        book = sim.run(lambda s: 0)
        assert len(book) == 48
        assert sim.done

    def test_step_past_horizon_raises(self):
        sim = HubSimulation(EctHub(HubConfig()), _inputs(2))
        sim.step(0)
        sim.step(0)
        with pytest.raises(HubError):
            sim.step(0)

    def test_energy_balance_closes_every_slot(self):
        sim = HubSimulation(EctHub(HubConfig()), _inputs(72))
        book = sim.run(lambda s: [1, 0, -1][s.t % 3])
        for ledger in book.ledgers:
            assert abs(ledger.energy_balance_error_kwh()) < 1e-9

    def test_blackout_suspends_charging_and_grid(self):
        outage = np.zeros(24, dtype=bool)
        outage[5:9] = True
        inputs = _inputs(24, occupied=np.ones(24, dtype=int), outage=outage)
        sim = HubSimulation(EctHub(HubConfig()), inputs, initial_soc_fraction=0.9)
        book = sim.run(lambda s: 0)
        for ledger in book.ledgers:
            if ledger.blackout:
                assert ledger.p_grid_kw == 0.0
                assert ledger.p_cs_kw == 0.0
                assert ledger.revenue == 0.0

    def test_blackout_served_from_reserve(self):
        outage = np.zeros(8, dtype=bool)
        outage[2:6] = True
        inputs = HubInputs(
            load_rate=np.full(8, 1.0),
            rtp_kwh=np.full(8, 0.1),
            pv_power_kw=np.zeros(8),
            wt_power_kw=np.zeros(8),
            occupied=np.zeros(8, dtype=int),
            discount=np.zeros(8),
            outage=outage,
        )
        sim = HubSimulation(EctHub(HubConfig()), inputs, initial_soc_fraction=0.5)
        book = sim.run(lambda s: 0)
        assert book.total_unserved_kwh == pytest.approx(0.0)

    def test_reset_rewinds(self):
        sim = HubSimulation(EctHub(HubConfig()), _inputs(10))
        sim.run(lambda s: 1)
        sim.reset()
        assert sim.t == 0 and len(sim.book) == 0

    def test_inputs_validation(self):
        with pytest.raises(DataError):
            HubInputs(
                load_rate=np.zeros(4),
                rtp_kwh=np.zeros(3),
                pv_power_kw=np.zeros(4),
                wt_power_kw=np.zeros(4),
                occupied=np.zeros(4, dtype=int),
                discount=np.zeros(4),
            )

    def test_inputs_slice(self):
        inputs = _inputs(24)
        sub = inputs.slice(6, 18)
        assert len(sub) == 12


class TestScenario:
    def test_fleet_build(self, factory):
        scenarios = build_fleet_scenarios(ScenarioConfig(n_hours=48), factory)
        assert len(scenarios) == 12
        for scenario in scenarios:
            assert scenario.n_hours == 48
            if scenario.site.kind == "urban":
                assert scenario.wt_power_kw.max() == 0.0

    def test_reserve_sized_for_every_hub(self, factory):
        config = ScenarioConfig(n_hours=24)
        for scenario in build_fleet_scenarios(config, factory):
            cluster = BaseStationCluster(
                scenario.site.n_base_stations, config.base_station
            )
            assert reserve_satisfied(
                scenario.hub_config.battery, cluster, config.recovery_time_h
            )

    def test_resolve_occupancy_semantics(self):
        strata = np.array(
            [int(Stratum.NONE), int(Stratum.INCENTIVE), int(Stratum.ALWAYS)] * 2
        )
        discounted = np.array([1, 1, 1, 0, 0, 0])
        occ = resolve_occupancy(strata, discounted)
        assert occ.tolist() == [0, 1, 1, 0, 0, 1]

    def test_scenario_simulation_end_to_end(self, factory):
        config = ScenarioConfig(n_hours=48)
        scenario = build_fleet_scenarios(config, factory)[0]
        behavior = fleet_behavior_model(config, factory)
        strata = behavior.sample_strata(
            0, np.arange(48), factory.stream("occ")
        )
        occupied = resolve_occupancy(strata, np.zeros(48, dtype=int))
        sim = scenario.simulation(occupied, np.zeros(48))
        book = sim.run(lambda s: 0)
        assert len(book) == 48
        assert np.isfinite(book.profit)

    def test_deterministic_scenarios(self):
        a = build_scenario(
            default_fleet(2)[0], ScenarioConfig(n_hours=24), RngFactory(seed=4)
        )
        b = build_scenario(
            default_fleet(2)[0], ScenarioConfig(n_hours=24), RngFactory(seed=4)
        )
        assert np.allclose(a.rtp_kwh, b.rtp_kwh)
        assert np.allclose(a.pv_power_kw, b.pv_power_kw)
