"""Tests for ECT-Price, baselines, policies, and the Table II metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.causal import (
    DiscountDecision,
    EctPriceConfig,
    EctPriceModel,
    EctPricePolicy,
    EveningHeuristicPolicy,
    NcfConfig,
    NcfRegressor,
    OraclePolicy,
    PricingDataset,
    UpliftPolicy,
    dataset_from_log,
    ground_truth_labels,
    heuristic_strata_labels,
    label_agreement,
    make_baseline,
    pretrain_rating_model,
    render_table,
    score_decision,
    time_ids_for_slots,
    train_test_split_by_day,
)
from repro.causal.baselines import PROPENSITY_CLIP
from repro.causal.policy import expected_discount_reward, select_with_budget
from repro.errors import ConfigError, DataError, NotFittedError
from repro.rng import RngFactory
from repro.synth.charging import ChargingBehaviorModel, ChargingConfig, Stratum


@pytest.fixture(scope="module")
def small_log():
    model = ChargingBehaviorModel(ChargingConfig(), RngFactory(seed=77))
    return model.simulate_log(40), model


@pytest.fixture(scope="module")
def small_split(small_log):
    log, _ = small_log
    return train_test_split_by_day(log, n_stations=12, boundary_day=25)


class TestDataset:
    def test_from_log_layout(self, small_log):
        log, _ = small_log
        ds = dataset_from_log(log, n_stations=12)
        assert len(ds) == len(log)
        assert ds.n_time_ids == 48
        assert ds.has_ground_truth

    def test_without_weekend_flag(self, small_log):
        log, _ = small_log
        ds = dataset_from_log(log, n_stations=12, use_weekend_flag=False)
        assert ds.n_time_ids == 24
        assert ds.time_ids.max() < 24

    def test_split_is_chronological(self, small_split):
        train, test = small_split
        assert len(train) > 0 and len(test) > 0

    def test_empty_split_rejected(self, small_log):
        log, _ = small_log
        with pytest.raises(DataError):
            train_test_split_by_day(log, n_stations=12, boundary_day=0)

    def test_subset_and_batches(self, small_split):
        train, _ = small_split
        subset = train.subset(train.treated == 1)
        assert (subset.treated == 1).all()
        batches = list(subset.batches(64, np.random.default_rng(0)))
        assert sum(len(b) for b in batches) == len(subset)

    def test_invalid_ids_rejected(self):
        with pytest.raises(DataError):
            PricingDataset(
                station_ids=np.array([0, 5]),
                time_ids=np.array([0, 1]),
                treated=np.array([0, 1]),
                charged=np.array([0, 1]),
                stratum=np.array([0, 0]),
                n_stations=2,
                n_time_ids=24,
            )


class TestNcf:
    def test_regressor_learns_separable_signal(self, factory):
        rng = factory.stream("ncf")
        stations = rng.integers(0, 4, 3000)
        times = rng.integers(0, 8, 3000)
        target = ((stations + times) % 2).astype(float)
        model = NcfRegressor(4, 8, NcfConfig(epochs=20, batch_size=128), rng)
        model.fit(stations, times, target)
        pred = model.predict(stations[:500], times[:500])
        accuracy = ((pred > 0.5) == (target[:500] > 0.5)).mean()
        assert accuracy > 0.9

    def test_predict_before_fit_raises(self, factory):
        model = NcfRegressor(2, 2, NcfConfig(), factory.stream("x"))
        with pytest.raises(NotFittedError):
            model.predict(np.array([0]), np.array([0]))

    def test_pretrain_rating_model(self, small_split, factory):
        train, _ = small_split
        model = pretrain_rating_model(
            train, NcfConfig(epochs=2, batch_size=256), factory.stream("rate")
        )
        ratings = model.predict(train.station_ids[:100], train.time_ids[:100])
        assert ratings.shape == (100,)
        assert np.all((0 <= ratings) & (ratings <= 1))


class TestEctPrice:
    def test_recovers_known_cells(self):
        """CF-MTL recovers (f00, f01, f11, g) of a 2x2 exactly-known problem."""
        truth = {
            (0, 0): (0.2, 0.7, 0.1, 0.3),
            (0, 1): (0.8, 0.1, 0.1, 0.6),
            (1, 0): (0.1, 0.1, 0.8, 0.5),
            (1, 1): (0.5, 0.3, 0.2, 0.8),
        }
        rng = np.random.default_rng(0)
        rows = []
        for (s, t), (f00, f01, f11, g) in truth.items():
            for _ in range(1500):
                z = rng.choice(3, p=[f00, f01, f11])
                treated = int(rng.random() < g)
                charged = 1 if z == 2 else (treated if z == 1 else 0)
                rows.append((s, t, treated, charged, z))
        arr = np.array(rows)
        ds = PricingDataset(
            station_ids=arr[:, 0], time_ids=arr[:, 1], treated=arr[:, 2],
            charged=arr[:, 3], stratum=arr[:, 4], n_stations=2, n_time_ids=2,
        )
        model = EctPriceModel(
            2, 2, EctPriceConfig(epochs=10, batch_size=128), np.random.default_rng(1)
        )
        model.fit(ds)
        probs = model.predict_strata(np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1]))
        g_est = model.predict_propensity(np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1]))
        for i, key in enumerate([(0, 0), (0, 1), (1, 0), (1, 1)]):
            assert probs[i] == pytest.approx(truth[key][:3], abs=0.12)
            assert g_est[i] == pytest.approx(truth[key][3], abs=0.08)

    def test_strata_sum_to_one(self, small_split, factory):
        train, test = small_split
        model = EctPriceModel(
            12, 48, EctPriceConfig(epochs=2, batch_size=512), factory.stream("ep")
        )
        model.fit(train)
        probs = model.predict_strata(test.station_ids[:50], test.time_ids[:50])
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_predict_before_fit(self, factory):
        model = EctPriceModel(2, 2, EctPriceConfig(), factory.stream("x"))
        with pytest.raises(NotFittedError):
            model.predict_strata(np.array([0]), np.array([0]))

    def test_mse_form_trains(self, small_split, factory):
        train, _ = small_split
        model = EctPriceModel(
            12, 48,
            EctPriceConfig(epochs=2, batch_size=512, loss_form="mse"),
            factory.stream("mse"),
        )
        history = model.fit(train)
        assert history[-1] <= history[0] + 1e-6

    def test_invalid_loss_form(self):
        with pytest.raises(ConfigError):
            EctPriceConfig(loss_form="huber")


class TestBaselines:
    @pytest.mark.parametrize("name", ["OR", "IPS", "DR"])
    def test_fit_predict(self, name, small_split, factory):
        train, test = small_split
        model = make_baseline(
            name, 12, 48, NcfConfig(epochs=1, batch_size=512), factory.stream(name)
        )
        model.fit(train)
        prediction = model.predict(test.station_ids[:100], test.time_ids[:100])
        assert prediction.uplift.shape == (100,)
        assert np.all(np.isfinite(prediction.uplift))

    def test_or_exposes_baseline_outcome(self, small_split, factory):
        train, test = small_split
        model = make_baseline(
            "OR", 12, 48, NcfConfig(epochs=1, batch_size=512), factory.stream("orb")
        )
        model.fit(train)
        prediction = model.predict(test.station_ids[:10], test.time_ids[:10])
        assert prediction.baseline_outcome is not None

    def test_unknown_baseline(self):
        with pytest.raises(ConfigError):
            make_baseline("XYZ", 2, 2)

    def test_predict_before_fit(self, factory):
        model = make_baseline("IPS", 2, 2, NcfConfig(), factory.stream("i"))
        with pytest.raises(NotFittedError):
            model.predict(np.array([0]), np.array([0]))


class TestPolicy:
    def test_expected_reward_formula(self):
        scores = expected_discount_reward(np.array([1.0, 0.0, 0.5]), 0.2)
        assert scores == pytest.approx([1.0, -0.2, 0.4])

    def test_select_with_budget_caps(self):
        score = np.array([0.9, 0.5, 0.1, -0.3])
        mask = select_with_budget(score, budget=2)
        assert mask.tolist() == [True, True, False, False]

    def test_select_without_budget_keeps_positive(self):
        score = np.array([0.9, -0.1, 0.2])
        assert select_with_budget(score, None).tolist() == [True, False, True]

    def test_select_budget_zero(self):
        assert not select_with_budget(np.array([1.0]), 0).any()

    def test_oracle_policy_perfect(self):
        strata = np.array([0, 1, 2, 1])
        policy = OraclePolicy(strata)
        decision = policy.decide(
            np.zeros(4, dtype=int), np.zeros(4, dtype=int), discount_level=0.1
        )
        assert decision.discounted.tolist() == [False, True, False, True]

    def test_oracle_wrong_length(self):
        policy = OraclePolicy(np.array([1]))
        with pytest.raises(ConfigError):
            policy.decide(np.zeros(3, dtype=int), np.zeros(3, dtype=int))

    def test_ect_price_policy_avoids_always(self, small_split, factory):
        train, test = small_split
        model = EctPriceModel(
            12, 48, EctPriceConfig(epochs=4, batch_size=512), factory.stream("pol")
        )
        model.fit(train)
        strict = EctPricePolicy(model, always_avoidance_threshold=0.2)
        lax = EctPricePolicy(model, always_avoidance_threshold=1.0)
        n = min(len(test), 5000)
        d_strict = strict.decide(
            test.station_ids[:n], test.time_ids[:n], discount_level=0.1
        )
        d_lax = lax.decide(
            test.station_ids[:n], test.time_ids[:n], discount_level=0.1
        )
        assert d_strict.n_discounted <= d_lax.n_discounted

    def test_uplift_policy_name(self, small_split, factory):
        train, _ = small_split
        model = make_baseline(
            "DR", 12, 48, NcfConfig(epochs=1, batch_size=512), factory.stream("up")
        )
        model.fit(train)
        assert UpliftPolicy(model).name == "DR"


class TestEvaluation:
    def test_reward_matches_paper_cells(self):
        """The reverse-engineered formula reproduces published Table II cells."""
        cases = [
            # (none, incentive, always, level, published_reward)
            (2078, 5936, 412, 0.1, 5687),
            (2079, 5972, 375, 0.1, 5727),
            (2053, 6066, 307, 0.1, 5830),
            (1946, 6398, 82, 0.1, 6195),
            (1990, 6373, 63, 0.2, 5963),
            (1995, 6355, 76, 0.3, 5734),
            (1969, 6330, 127, 0.6, 5072),
            (1510, 5342, 0, 0.6, 4437),
        ]
        for none, inc, alw, level, published in cases:
            decision_reward = inc - level * (none + alw)
            assert decision_reward == pytest.approx(published, abs=1.0)

    def test_score_decision_counts(self):
        strata = np.array([0, 1, 2, 1, 0])
        decision = DiscountDecision(
            discounted=np.array([True, True, True, False, False]),
            score=np.ones(5),
        )
        outcome = score_decision(decision, strata, method="t", discount_level=0.5)
        assert (outcome.n_none, outcome.n_incentive, outcome.n_always) == (1, 1, 1)
        assert outcome.reward == pytest.approx(1 - 0.5 * 2)

    def test_score_shape_mismatch(self):
        decision = DiscountDecision(discounted=np.array([True]), score=np.ones(1))
        with pytest.raises(DataError):
            score_decision(decision, np.array([0, 1]), method="t", discount_level=0.1)

    def test_render_table_contains_methods(self):
        decision = DiscountDecision(discounted=np.array([True]), score=np.ones(1))
        outcome = score_decision(
            decision, np.array([1]), method="Ours", discount_level=0.1
        )
        text = render_table([outcome])
        assert "Ours" in text and "10%" in text


class TestStrataLabels:
    def test_heuristic_labels_cover_all_strata(self, small_split, factory):
        train, _ = small_split
        labels = heuristic_strata_labels(
            train, factory.stream("lab"), ncf_config=NcfConfig(epochs=1, batch_size=512)
        )
        assert set(np.unique(labels)) <= {0, 1, 2}
        # Charged items split roughly half/half between Always and Incentive.
        charged = labels[train.charged == 1]
        assert abs((charged == int(Stratum.ALWAYS)).mean() - 0.5) < 0.2
        # Uncharged items are all None.
        assert (labels[train.charged == 0] == int(Stratum.NONE)).all()

    def test_ground_truth_accessor(self, small_split):
        train, _ = small_split
        labels = ground_truth_labels(train)
        assert np.array_equal(labels, train.stratum)

    def test_label_agreement(self):
        assert label_agreement(np.array([1, 2]), np.array([1, 0])) == 0.5
        with pytest.raises(DataError):
            label_agreement(np.array([1]), np.array([1, 2]))


class TestDatasetEdgeCases:
    """Day-split boundaries and strata availability on degenerate logs."""

    def test_single_day_log_cannot_split(self):
        model = ChargingBehaviorModel(ChargingConfig(), RngFactory(seed=3))
        log = model.simulate_log(1)
        assert len(log) > 0
        # Every boundary leaves one side empty on a one-day log.
        for boundary in (0, 1):
            with pytest.raises(DataError):
                train_test_split_by_day(
                    log, n_stations=12, boundary_day=boundary
                )
        # But it still makes a perfectly valid (unsplit) dataset.
        ds = dataset_from_log(log, n_stations=12)
        assert len(ds) == len(log)
        assert ds.time_ids.max() < ds.n_time_ids

    def test_empty_log_has_no_ground_truth(self):
        model = ChargingBehaviorModel(ChargingConfig(), RngFactory(seed=3))
        ds = dataset_from_log(model.simulate_log(0), n_stations=12)
        assert len(ds) == 0
        assert not ds.has_ground_truth
        with pytest.raises(DataError):
            ground_truth_labels(ds)

    def test_unknown_strata_have_no_ground_truth(self):
        ds = PricingDataset(
            station_ids=np.array([0, 1]),
            time_ids=np.array([0, 1]),
            treated=np.array([0, 1]),
            charged=np.array([0, 1]),
            stratum=np.array([-1, -1]),
            n_stations=2,
            n_time_ids=24,
        )
        assert not ds.has_ground_truth
        with pytest.raises(DataError):
            ground_truth_labels(ds)


class TestPropensityClip:
    """IPS/DR stay finite when the logged treatment is near-deterministic."""

    @staticmethod
    def deterministic_treatment_dataset() -> PricingDataset:
        # Treatment is a function of the time id: the raw propensity
        # estimate saturates at 0 or 1 in every cell, so only the clip
        # keeps the inverse weights bounded.
        rng = np.random.default_rng(9)
        n = 2000
        times = rng.integers(0, 8, n)
        treated = (times < 4).astype(int)
        charged = rng.integers(0, 2, n)
        return PricingDataset(
            station_ids=rng.integers(0, 3, n),
            time_ids=times,
            treated=treated,
            charged=charged,
            stratum=np.zeros(n, dtype=int),
            n_stations=3,
            n_time_ids=8,
        )

    def test_clip_band(self):
        low, high = PROPENSITY_CLIP
        assert 0.0 < low < high < 1.0

    @pytest.mark.parametrize("name", ["IPS", "DR"])
    def test_deterministic_propensity_stays_finite(self, name, factory):
        ds = self.deterministic_treatment_dataset()
        model = make_baseline(
            name, 3, 8, NcfConfig(epochs=2, batch_size=256), factory.stream(name)
        )
        model.fit(ds)
        prediction = model.predict(ds.station_ids, ds.time_ids)
        assert np.all(np.isfinite(prediction.uplift))
        # The clip bounds the transformed training targets by 1/low; the
        # fitted effect head tracks them, so predictions stay in that
        # ballpark instead of diverging with the raw inverse weights.
        assert np.abs(prediction.uplift).max() <= 2.0 / PROPENSITY_CLIP[0]


class TestOracleAgainstGroundTruth:
    def test_oracle_decisions_are_the_incentive_stratum(self, small_split):
        train, _ = small_split
        labels = ground_truth_labels(train)
        policy = OraclePolicy(labels)
        decision = policy.decide(
            train.station_ids, train.time_ids, discount_level=0.2
        )
        expected = labels == int(Stratum.INCENTIVE)
        assert np.array_equal(decision.discounted, expected)
        assert label_agreement(
            np.where(decision.discounted, int(Stratum.INCENTIVE), labels),
            labels,
        ) == 1.0


class TestEveningHeuristic:
    def test_discounts_exactly_the_evening_hours(self):
        policy = EveningHeuristicPolicy()
        time_ids = np.arange(48)  # hour x weekend crossing
        decision = policy.decide(
            np.zeros(48, dtype=int), time_ids, discount_level=0.2
        )
        hours = time_ids % 24
        assert np.array_equal(decision.discounted, (hours >= 18) & (hours < 24))

    def test_custom_window(self):
        policy = EveningHeuristicPolicy(evening_hours=(6, 9))
        probs = policy.incentive_probability(
            np.zeros(24, dtype=int), np.arange(24)
        )
        assert probs.sum() == 3.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigError):
            EveningHeuristicPolicy(evening_hours=(20, 20))
        with pytest.raises(ConfigError):
            EveningHeuristicPolicy(evening_hours=(-1, 5))


class TestScoreOffset:
    def test_offset_vetoes_selected_slots(self):
        strata = np.array([1, 1, 0, 2])
        policy = OraclePolicy(strata)
        offset = np.array([10.0, 0.0, 0.0, 0.0])
        decision = policy.decide(
            np.zeros(4, dtype=int),
            np.zeros(4, dtype=int),
            discount_level=0.2,
            score_offset=offset,
        )
        assert decision.discounted.tolist() == [False, True, False, False]

    def test_zero_offset_is_identity(self):
        strata = np.array([1, 0, 1])
        policy = OraclePolicy(strata)
        plain = policy.decide(
            np.zeros(3, dtype=int), np.zeros(3, dtype=int), discount_level=0.2
        )
        offset = policy.decide(
            np.zeros(3, dtype=int),
            np.zeros(3, dtype=int),
            discount_level=0.2,
            score_offset=np.zeros(3),
        )
        assert np.array_equal(plain.discounted, offset.discounted)

    def test_shape_mismatch_rejected(self):
        policy = OraclePolicy(np.array([1, 0]))
        with pytest.raises(ConfigError):
            policy.decide(
                np.zeros(2, dtype=int),
                np.zeros(2, dtype=int),
                score_offset=np.zeros(3),
            )


class TestTimeIdsForSlots:
    def test_matches_the_log_crossing(self):
        model = ChargingBehaviorModel(ChargingConfig(), RngFactory(seed=5))
        log = model.simulate_log(9)  # spans a weekend
        ds = dataset_from_log(log, n_stations=12)
        by_slot = time_ids_for_slots(9 * 24, calendar=model.calendar)
        assert np.array_equal(by_slot[log.slot], ds.time_ids)

    def test_without_weekend_flag(self):
        ids = time_ids_for_slots(48, use_weekend_flag=False)
        assert ids.max() < 24
        assert np.array_equal(ids, np.arange(48) % 24)
