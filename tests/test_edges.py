"""Edge-case coverage across packages: windows, ledgers, schedules, misc."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.causal import EctPriceConfig, EctPriceModel, EctPricePolicy
from repro.causal.policy import discount_schedule_for_hub
from repro.errors import ConfigError, ModelError
from repro.hub import CostBook, ScenarioConfig, build_fleet_scenarios, fleet_behavior_model
from repro.rl import EctHubEnv, EnvConfig
from repro.rng import RngFactory
from repro.synth.charging import ChargingBehaviorModel, ChargingConfig
from repro.causal.dataset import dataset_from_log


class TestEnvWindows:
    def test_window_edge_padding(self, factory):
        """State windows at the horizon edge are edge-padded, not truncated."""
        config = ScenarioConfig(n_hours=24 * 35)
        scenario = build_fleet_scenarios(config, factory)[0]
        behavior = fleet_behavior_model(config, factory)
        env = EctHubEnv(
            scenario,
            behavior,
            np.zeros(scenario.n_hours),
            config=EnvConfig(episode_days=35, random_initial_soc=False),
            rng=factory.stream("edge"),
        )
        state = env.reset()
        # Walk to the second-to-last slot; the observation must stay full-size.
        for _ in range(env.episode_length - 1):
            state, _, done, _ = env.step(0)
        assert not done or state.shape == (env.state_dim(),)

    def test_fixed_initial_soc(self, factory):
        config = ScenarioConfig(n_hours=24 * 30)
        scenario = build_fleet_scenarios(config, factory)[0]
        behavior = fleet_behavior_model(config, factory)
        env = EctHubEnv(
            scenario,
            behavior,
            np.zeros(scenario.n_hours),
            config=EnvConfig(episode_days=30, random_initial_soc=False),
            rng=factory.stream("soc"),
        )
        socs = {round(env.reset()[-1], 6) for _ in range(3)}
        assert len(socs) == 1


class TestCostBookEdges:
    def test_empty_book(self):
        book = CostBook()
        assert book.profit == 0.0
        assert book.daily_rewards() == []

    def test_daily_rewards_partial_day(self):
        from repro.hub import compute_slot_ledger

        book = CostBook()
        for slot in range(30):  # 1.25 days
            book.add(
                compute_slot_ledger(
                    slot=slot, action=0, p_bs_kw=1.0, p_cs_kw=0.0, p_bp_kw=0.0,
                    p_pv_kw=0.0, p_wt_kw=0.0, p_grid_kw=1.0, surplus_kw=0.0,
                    rtp_kwh=0.1, srtp_kwh=0.4, soc_kwh=10.0,
                    c_bp_per_slot=0.01, dt_h=1.0,
                )
            )
        rewards = book.daily_rewards()
        assert len(rewards) == 2
        assert sum(rewards) == pytest.approx(book.profit)

    def test_daily_rewards_bad_slots(self):
        from repro.errors import HubError

        with pytest.raises(HubError):
            CostBook().daily_rewards(slots_per_day=0)


class TestDiscountSchedules:
    def test_schedule_values_and_budget(self, factory):
        behavior = ChargingBehaviorModel(ChargingConfig(), factory)
        log = behavior.simulate_log(40)
        ds = dataset_from_log(log, n_stations=12)
        model = EctPriceModel(
            12, 48, EctPriceConfig(epochs=2, batch_size=512), factory.stream("m")
        )
        model.fit(ds)
        time_ids = np.arange(24 * 14) % 24
        schedule = discount_schedule_for_hub(
            EctPricePolicy(model), 0, time_ids,
            discount_level=0.3, budget_fraction=0.1,
        )
        assert set(np.unique(schedule)) <= {0.0, 0.3}
        assert (schedule > 0).sum() <= int(round(0.1 * len(time_ids)))

    def test_invalid_level(self, factory):
        with pytest.raises(ConfigError):
            discount_schedule_for_hub(
                object(), 0, np.zeros(4, dtype=int), discount_level=1.0
            )


class TestNnEdges:
    def test_concat_empty_rejected(self):
        with pytest.raises(ModelError):
            nn.concat([])

    def test_stack_empty_rejected(self):
        with pytest.raises(ModelError):
            nn.stack([])

    def test_gather_rows_rejects_2d_indices(self, rng):
        t = nn.Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        with pytest.raises(ModelError):
            t.gather_rows(np.zeros((2, 2), dtype=int))

    def test_pow_rejects_tensor_exponent(self, rng):
        t = nn.Tensor(rng.normal(size=3))
        with pytest.raises(ModelError):
            t ** nn.Tensor(np.ones(3))  # type: ignore[operator]

    def test_log_floors_non_positive(self):
        out = nn.Tensor(np.array([0.0, -1.0])).log().numpy()
        assert np.all(np.isfinite(out))

    def test_weighted_regressor_fit(self, factory):
        """NcfRegressor supports per-sample weights (IPS-style reweighting)."""
        from repro.causal import NcfConfig, NcfRegressor

        rng = factory.stream("w")
        stations = rng.integers(0, 3, 600)
        times = rng.integers(0, 4, 600)
        target = (stations == 0).astype(float)
        model = NcfRegressor(3, 4, NcfConfig(epochs=4, batch_size=128), rng)
        history = model.fit(
            stations, times, target, sample_weight=np.ones(600)
        )
        assert history[-1] < history[0]


class TestBehaviorModelEdges:
    def test_zero_day_log(self, factory):
        model = ChargingBehaviorModel(ChargingConfig(), factory)
        log = model.simulate_log(0)
        assert len(log) == 0
        assert log.n_sessions == 0

    def test_negative_days_rejected(self, factory):
        model = ChargingBehaviorModel(ChargingConfig(), factory)
        with pytest.raises(ConfigError):
            model.simulate_log(-1)

    def test_subset_of_stations(self, factory):
        model = ChargingBehaviorModel(ChargingConfig(), factory)
        log = model.simulate_log(5, stations=[2, 7])
        assert set(np.unique(log.station_id)) == {2, 7}

    def test_activity_map_in_bounds(self, factory):
        model = ChargingBehaviorModel(ChargingConfig(), factory)
        act = model.cell_activity_map()
        assert act.min() >= 0.15 and act.max() <= 0.98

    def test_confounder_raises_always_activity(self, factory):
        model = ChargingBehaviorModel(ChargingConfig(), factory)
        hours = np.arange(24)
        low = model.stratum_probabilities(0, hours, confounder=-0.2)
        high = model.stratum_probabilities(0, hours, confounder=0.2)
        assert high[:, 2].sum() > low[:, 2].sum()
