"""Autograd engine tests: op correctness via numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ModelError
from repro.nn import Tensor, check_gradients, concat, stack


def _t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestBasicOps:
    def test_add_broadcast_gradcheck(self, rng):
        a = _t(rng, 3, 4)
        b = _t(rng, 4)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_mul_gradcheck(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 2, 3)
        check_gradients(lambda: (a * b).sum(), [a, b])

    def test_div_gradcheck(self, rng):
        a = _t(rng, 2, 3)
        b = Tensor(rng.uniform(1.0, 2.0, size=(2, 3)), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_pow_gradcheck(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda: (a**3).sum(), [a])

    def test_matmul_gradcheck(self, rng):
        a, b = _t(rng, 3, 4), _t(rng, 4, 2)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matvec_gradcheck(self, rng):
        a, v = _t(rng, 3, 4), _t(rng, 4)
        check_gradients(lambda: (a @ v).sum(), [a, v])

    def test_dot_gradcheck(self, rng):
        a, b = _t(rng, 4), _t(rng, 4)
        check_gradients(lambda: a @ b, [a, b])

    def test_rsub_rdiv(self, rng):
        a = Tensor(rng.uniform(1.0, 2.0, size=(3,)), requires_grad=True)
        check_gradients(lambda: (1.0 - a).sum() + (1.0 / a).sum(), [a])

    def test_neg(self, rng):
        a = _t(rng, 3)
        check_gradients(lambda: (-a).sum(), [a])


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "tanh", "sigmoid", "relu"])
    def test_elementwise_gradcheck(self, rng, op):
        a = _t(rng, 3, 3)
        check_gradients(lambda: getattr(a, op)().sum(), [a])

    def test_log_gradcheck(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, size=(4,)), requires_grad=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor(np.array([-1000.0, 1000.0]))
        out = t.sigmoid().numpy()
        assert np.all(np.isfinite(out))
        assert out[0] < 1e-10 and out[1] > 1 - 1e-10

    def test_clip_gradient_masks_outside(self, rng):
        a = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert a.grad.tolist() == [0.0, 1.0, 0.0]

    def test_maximum_minimum_gradcheck(self, rng):
        a, b = _t(rng, 5), _t(rng, 5)
        check_gradients(lambda: a.maximum(b).sum() + a.minimum(b).sum(), [a, b])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, rng):
        a = _t(rng, 2, 3)
        check_gradients(lambda: (a.sum(axis=0, keepdims=True) ** 2).sum(), [a])

    def test_mean_gradcheck(self, rng):
        a = _t(rng, 4, 2)
        check_gradients(lambda: a.mean(), [a])

    def test_mean_axis_value(self, rng):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(a.mean(axis=1).numpy(), [1.0, 4.0])

    def test_reshape_transpose_gradcheck(self, rng):
        a = _t(rng, 2, 6)
        check_gradients(lambda: (a.reshape(3, 4).T ** 2).sum(), [a])

    def test_gather_rows_gradcheck(self, rng):
        a = _t(rng, 5, 3)
        idx = np.array([0, 2, 2, 4])
        check_gradients(lambda: (a.gather_rows(idx) ** 2).sum(), [a])

    def test_gather_rows_repeated_accumulates(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        a.gather_rows(np.array([1, 1])).sum().backward()
        assert a.grad[1].tolist() == [2.0, 2.0]
        assert a.grad[0].tolist() == [0.0, 0.0]

    def test_select_columns_gradcheck(self, rng):
        a = _t(rng, 4, 3)
        idx = np.array([0, 1, 2, 1])
        check_gradients(lambda: (a.select_columns(idx) ** 2).sum(), [a])

    def test_select_columns_shape_validation(self, rng):
        a = _t(rng, 4, 3)
        with pytest.raises(ModelError):
            a.select_columns(np.array([0, 1]))

    def test_log_softmax_gradcheck(self, rng):
        a = _t(rng, 3, 4)
        check_gradients(lambda: (a.log_softmax() ** 2).sum(), [a])

    def test_softmax_sums_to_one(self, rng):
        a = _t(rng, 5, 3)
        probs = a.softmax().numpy()
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_concat_gradcheck(self, rng):
        a, b = _t(rng, 2, 3), _t(rng, 2, 2)
        check_gradients(lambda: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack_gradcheck(self, rng):
        a, b = _t(rng, 3), _t(rng, 3)
        check_gradients(lambda: (stack([a, b]) ** 2).sum(), [a, b])


class TestEngineSemantics:
    def test_backward_requires_scalar(self, rng):
        a = _t(rng, 3)
        with pytest.raises(ModelError):
            (a * 2).backward()

    def test_backward_with_seed_gradient(self, rng):
        a = _t(rng, 3)
        (a * 2).backward(np.ones(3))
        assert np.allclose(a.grad, 2.0)

    def test_grad_accumulates_across_backwards(self, rng):
        a = _t(rng, 2)
        (a.sum()).backward()
        (a.sum()).backward()
        assert np.allclose(a.grad, 2.0)

    def test_zero_grad(self, rng):
        a = _t(rng, 2)
        a.sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_detach_cuts_graph(self, rng):
        a = _t(rng, 2)
        (a.detach() * 3).sum().backward()
        assert a.grad is None

    def test_diamond_graph_gradient(self, rng):
        a = _t(rng, 3)
        b = a * 2
        check_gradients(lambda: (a * 2 + a * 3).sum(), [a])
        del b

    def test_item_on_non_scalar_raises(self, rng):
        with pytest.raises(ModelError):
            _t(rng, 2).item()

    @given(
        data=hnp.arrays(
            float,
            hnp.array_shapes(min_dims=1, max_dims=2, max_side=4),
            elements=st.floats(-3, 3),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_tanh_identity_property(self, data):
        # tanh(x)^2 + sech(x)^2 == 1 surrogate: output bounded in (-1, 1)
        out = Tensor(data).tanh().numpy()
        assert np.all(np.abs(out) <= 1.0)

    @given(shape=st.tuples(st.integers(1, 4), st.integers(1, 4)))
    @settings(max_examples=20, deadline=None)
    def test_softmax_rows_normalized_property(self, shape):
        rng = np.random.default_rng(0)
        probs = Tensor(rng.normal(size=shape)).softmax(axis=-1).numpy()
        assert np.allclose(probs.sum(axis=-1), 1.0)
