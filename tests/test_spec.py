"""Tests for the declarative spec layer: round-trips, overrides, sweeps,
the compiler, presets, the VoLL penalty, and the repro.api facade.

The load-bearing guarantees:

* every preset survives ``to_dict → json → from_dict`` bit-identically
  and still *builds*;
* unknown keys anywhere in a spec payload raise :class:`ConfigError`;
* the legacy flag shim (``ect-hub fleet --n-hubs …``) and its spec-built
  twin produce identical results;
* a heterogeneous-fleet spec (per-hub battery/feeder overrides) runs
  through ``repro.api.run`` with results reproduced byte-identically from
  its serialized JSON.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import api
from repro.energy.battery import BatteryConfig
from repro.errors import ConfigError
from repro.experiments.base import jsonable
from repro.spec import (
    BlackoutSpec,
    FleetSpec,
    GridSpec,
    HubGroupSpec,
    RunSpec,
    ScenarioSpec,
    SchedulerSpec,
    SweepSpec,
    apply_overrides,
    available_presets,
    build,
    get_preset,
    parse_assignments,
    spec_from_fleet_flags,
    verify_roundtrips,
)

#: A tiny heterogeneous scenario reused across tests (fast to run).
HETERO_SPEC = ScenarioSpec(
    name="hetero-test",
    fleet=FleetSpec(
        groups=(
            HubGroupSpec(count=2, battery_scale=0.5, feeder=1),
            HubGroupSpec(count=2),
            HubGroupSpec(
                count=2,
                kind="rural",
                battery=BatteryConfig(capacity_kwh=400.0, charge_rate_kw=80.0),
            ),
        )
    ),
    grid=GridSpec(n_feeders=2, feeder_capacity_kw=180.0),
    scheduler=SchedulerSpec(name="rule-based"),
    blackout=BlackoutSpec(outage_probability_per_hour=0.01),
    run=RunSpec(days=3, seed=7, voll_per_kwh=1.5),
)


class TestRoundTrip:
    def test_default_spec_round_trips(self):
        spec = ScenarioSpec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("name", available_presets())
    def test_every_preset_round_trips_through_json(self, name):
        spec = get_preset(name)
        rebuilt = ScenarioSpec.from_json(json.dumps(spec.to_dict()))
        assert rebuilt == spec

    def test_verify_roundtrips_reports_all_presets(self):
        assert verify_roundtrips() == available_presets()

    def test_heterogeneous_spec_round_trips(self):
        rebuilt = ScenarioSpec.from_json(HETERO_SPEC.to_json())
        assert rebuilt == HETERO_SPEC
        assert rebuilt.fleet.groups[0].battery_scale == 0.5
        assert isinstance(rebuilt.fleet.groups[2].battery, BatteryConfig)

    def test_save_and_load(self, tmp_path):
        path = tmp_path / "spec.json"
        HETERO_SPEC.save(path)
        assert ScenarioSpec.load(path) == HETERO_SPEC

    def test_sweep_round_trips(self):
        sweep = SweepSpec(
            base=HETERO_SPEC,
            parameters={"run.seed": (0, 1), "grid.feeder_capacity_kw": (100.0, 50.0)},
        )
        rebuilt = SweepSpec.from_dict(
            json.loads(json.dumps(sweep.to_dict()))
        )
        assert rebuilt == sweep


class TestUnknownKeys:
    def test_top_level_unknown_key_raises(self):
        payload = ScenarioSpec().to_dict()
        payload["n_hubs"] = 4
        with pytest.raises(ConfigError, match="unknown key"):
            ScenarioSpec.from_dict(payload)

    def test_nested_unknown_key_raises(self):
        payload = ScenarioSpec().to_dict()
        payload["grid"]["feeder_capacity"] = 100.0
        with pytest.raises(ConfigError, match="unknown key"):
            ScenarioSpec.from_dict(payload)

    def test_group_level_unknown_key_raises(self):
        payload = HETERO_SPEC.to_dict()
        payload["fleet"]["groups"][0]["battery_size"] = 2.0
        with pytest.raises(ConfigError, match="unknown key"):
            ScenarioSpec.from_dict(payload)


class TestValidation:
    def test_bad_scheduler_name(self):
        with pytest.raises(ConfigError, match="unknown fleet scheduler"):
            SchedulerSpec(name="nope")

    def test_bad_allocation(self):
        with pytest.raises(ConfigError, match="allocation"):
            GridSpec(allocation="first-come")

    def test_profile_requires_capacity(self):
        with pytest.raises(ConfigError, match="capacity_profile"):
            GridSpec(capacity_profile=(1.0, 0.5))

    def test_group_counts_must_match_n_hubs(self):
        with pytest.raises(ConfigError, match="group counts"):
            FleetSpec(n_hubs=5, groups=(HubGroupSpec(count=2),))

    def test_battery_override_exclusivity(self):
        with pytest.raises(ConfigError, match="mutually exclusive"):
            HubGroupSpec(battery=BatteryConfig(), battery_scale=2.0)

    def test_negative_voll_rejected(self):
        with pytest.raises(ConfigError, match="voll_per_kwh"):
            RunSpec(voll_per_kwh=-1.0)

    def test_non_finite_run_knobs_rejected(self):
        with pytest.raises(ConfigError, match="voll_per_kwh"):
            RunSpec(voll_per_kwh=float("nan"))
        with pytest.raises(ConfigError, match="scale"):
            RunSpec(scale=float("inf"))
        with pytest.raises(ConfigError, match="feeder_capacity_kw"):
            GridSpec(feeder_capacity_kw=float("nan"))

    def test_scalar_costbook_rejects_non_finite_voll(self):
        from repro.errors import ReproError
        from repro.hub.costs import CostBook

        with pytest.raises(ReproError, match="voll_per_kwh"):
            CostBook(voll_per_kwh=float("nan"))

    def test_scheduler_rejects_inapplicable_quantiles(self):
        with pytest.raises(ConfigError, match="does not take"):
            SchedulerSpec(name="idle", expensive_quantile=0.9)
        with pytest.raises(ConfigError, match="does not take"):
            SchedulerSpec(name="greedy-renewable", cheap_quantile=0.1)
        from repro.fleet import make_fleet_scheduler

        with pytest.raises(ConfigError, match="does not take"):
            make_fleet_scheduler("random", n_hubs=2, cheap_quantile=0.1)

    def test_feeder_out_of_range_fails_at_build(self):
        spec = ScenarioSpec(
            fleet=FleetSpec(groups=(HubGroupSpec(count=4, feeder=3),)),
            grid=GridSpec(n_feeders=2),
            run=RunSpec(days=1),
        )
        with pytest.raises(ConfigError, match="feeder 3 out of range"):
            build(spec)


class TestOverrides:
    def test_dotted_leaf_override(self):
        spec = ScenarioSpec().with_overrides({"run.seed": 9})
        assert spec.run.seed == 9

    def test_int_widens_to_float(self):
        spec = ScenarioSpec().with_overrides({"run.scale": 2})
        assert spec.run.scale == 2.0 and isinstance(spec.run.scale, float)

    def test_group_index_override(self):
        spec = HETERO_SPEC.with_overrides({"fleet.groups.0.battery_scale": 0.25})
        assert spec.fleet.groups[0].battery_scale == 0.25
        assert HETERO_SPEC.fleet.groups[0].battery_scale == 0.5  # frozen base

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigError, match="unknown key"):
            ScenarioSpec().with_overrides({"grid.capacity": 1.0})

    def test_bad_index_raises(self):
        with pytest.raises(ConfigError, match="out of range"):
            HETERO_SPEC.with_overrides({"fleet.groups.9.count": 1})

    def test_validation_reruns_on_override(self):
        with pytest.raises(ConfigError, match="n_feeders"):
            ScenarioSpec().with_overrides({"grid.n_feeders": 0})

    def test_dict_payload_rebuilds_nested_config(self):
        """A --set JSON object lands as a real config, not a raw dict."""
        spec = HETERO_SPEC.with_overrides(
            {"fleet.groups.1.battery": {"capacity_kwh": 333.0}}
        )
        group = spec.fleet.groups[1]
        assert isinstance(group.battery, BatteryConfig)
        assert group.battery.capacity_kwh == 333.0
        # The documented invariant survives the override path too.
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert build(spec).simulation.params.capacity_kwh[2] == 333.0

    def test_dict_payload_replaces_whole_group(self):
        spec = HETERO_SPEC.with_overrides(
            {"fleet.groups.1": {"count": 2, "battery_scale": 3.0}}
        )
        assert spec.fleet.groups[1] == HubGroupSpec(count=2, battery_scale=3.0)

    def test_parse_assignments(self):
        overrides = parse_assignments(
            ["run.seed=3", "grid.feeder_capacity_kw=400", "fleet.n_hubs=null",
             "scheduler.name=idle"]
        )
        assert overrides == {
            "run.seed": 3,
            "grid.feeder_capacity_kw": 400,
            "fleet.n_hubs": None,
            "scheduler.name": "idle",
        }

    def test_parse_assignment_requires_equals(self):
        with pytest.raises(ConfigError, match="key.path=value"):
            parse_assignments(["run.seed"])


class TestSweep:
    def test_grid_expansion_order(self):
        sweep = SweepSpec(
            base=ScenarioSpec(run=RunSpec(days=1)),
            parameters={"run.seed": (0, 1), "run.days": (1, 2, 3)},
        )
        assert sweep.n_jobs == 6
        jobs = sweep.jobs()
        assert [job.overrides["run.seed"] for job in jobs] == [0, 0, 0, 1, 1, 1]
        assert jobs[4].spec.run.days == 2 and jobs[4].spec.run.seed == 1

    def test_typo_key_fails_at_construction(self):
        with pytest.raises(ConfigError, match="unknown key"):
            SweepSpec(base=ScenarioSpec(), parameters={"run.sed": (0, 1)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError, match="no values"):
            SweepSpec(base=ScenarioSpec(), parameters={"run.seed": ()})

    def test_run_sweep_tags_results(self):
        sweep = SweepSpec(
            base=ScenarioSpec(
                fleet=FleetSpec(n_hubs=4), run=RunSpec(days=1)
            ),
            parameters={"run.seed": (0, 1)},
        )
        results = api.run_sweep(sweep)
        assert [r.experiment_id for r in results] == ["fleet[0]", "fleet[1]"]
        assert results[1].data["sweep_overrides"] == {"run.seed": 1}
        assert results[0].data["network_profit"] != results[1].data["network_profit"]


class TestCompiler:
    def test_default_spec_matches_flag_shim_fleet(self):
        """A spec-built fleet and the legacy flag path are the same run."""
        from repro.experiments.fleet_sim import run as run_fleet

        flag_result = run_fleet(n_hubs=6, days=3, seed=5, scheduler="greedy-renewable")
        spec = spec_from_fleet_flags(
            n_hubs=6, days=3, seed=5, scheduler="greedy-renewable"
        )
        spec_result = api.run(spec)
        assert jsonable(flag_result.data) == jsonable(spec_result.data)

    def test_flag_shim_scale_defaults(self):
        spec = spec_from_fleet_flags(scale=0.5)
        assert spec.fleet.n_hubs == 12 and spec.run.days == 7
        tiny = spec_from_fleet_flags(scale=0.01)
        assert tiny.fleet.n_hubs == 4 and tiny.run.days == 7  # legacy floors

    def test_run_scale_applies_to_groups(self):
        spec = HETERO_SPEC.with_overrides({"run.scale": 0.5})
        compiled = build(spec)
        assert compiled.n_hubs == 3  # 1 + 1 + 1 after per-group scaling

    def test_heterogeneous_battery_compilation(self):
        compiled = build(HETERO_SPEC)
        caps = compiled.simulation.params.capacity_kwh
        assert compiled.n_hubs == 6
        # Group 0: half-size packs; group 2: explicit 400 kWh packs.
        assert np.allclose(caps[0:2], caps[2:4] * 0.5)
        assert np.allclose(caps[4:6], 400.0)
        # Group 0 pinned to feeder 1; others round-robined over 2 feeders.
        assert compiled.simulation.feeders.assignment.tolist() == [1, 1, 0, 1, 0, 1]
        # Kind override reaches the generated sites.
        assert [s.site.kind for s in compiled.scenarios[4:6]] == ["rural", "rural"]

    def test_heterogeneous_run_reproduced_from_json(self):
        """Acceptance: serialized spec ⇒ byte-identical results."""
        direct = api.run(HETERO_SPEC)
        replayed = api.run(ScenarioSpec.from_json(HETERO_SPEC.to_json()))
        direct_bytes = json.dumps(jsonable(direct.data), sort_keys=True)
        replayed_bytes = json.dumps(jsonable(replayed.data), sort_keys=True)
        assert direct_bytes == replayed_bytes

    def test_capacity_profile_tiles_over_horizon(self):
        spec = ScenarioSpec(
            fleet=FleetSpec(n_hubs=4),
            grid=GridSpec(
                n_feeders=2,
                feeder_capacity_kw=100.0,
                capacity_profile=(1.0, 0.5),
            ),
            run=RunSpec(days=1),
        )
        feeders = build(spec).simulation.feeders
        assert feeders.import_capacity_kw.shape == (2, 24)
        assert feeders.import_capacity_kw[0, :4].tolist() == [100.0, 50.0, 100.0, 50.0]

    def test_preset_name_accepted_by_api(self):
        compiled = api.build("paper-default")
        assert compiled.n_hubs == 12
        with pytest.raises(ConfigError, match="unknown preset"):
            api.build("no-such-preset")

    def test_scheduler_quantiles_flow_through(self):
        spec = ScenarioSpec(
            fleet=FleetSpec(n_hubs=4),
            scheduler=SchedulerSpec(
                name="rule-based", cheap_quantile=0.1, expensive_quantile=0.9
            ),
            run=RunSpec(days=1),
        )
        scheduler = build(spec).scheduler
        assert scheduler.cheap_quantile == 0.1
        assert scheduler.expensive_quantile == 0.9


class TestVoll:
    def test_voll_charges_unserved_energy(self):
        base = ScenarioSpec(
            fleet=FleetSpec(n_hubs=4),
            blackout=BlackoutSpec(outage_probability_per_hour=0.05),
            run=RunSpec(days=3),
        )
        free = build(base).execute()
        priced = build(base.with_overrides({"run.voll_per_kwh": 2.0})).execute()
        assert free.total_unserved_kwh > 0.0
        assert priced.voll_cost == pytest.approx(2.0 * priced.total_unserved_kwh)
        assert priced.profit == pytest.approx(
            free.profit - 2.0 * free.total_unserved_kwh
        )

    def test_voll_zero_is_the_paper_objective(self):
        book = build(
            ScenarioSpec(fleet=FleetSpec(n_hubs=4), run=RunSpec(days=2))
        ).execute()
        assert book.voll_cost == 0.0
        assert book.profit == pytest.approx(
            book.charging_revenue - book.operating_cost
        )

    def test_daily_rewards_include_voll(self):
        spec = ScenarioSpec(
            fleet=FleetSpec(n_hubs=4),
            blackout=BlackoutSpec(outage_probability_per_hour=0.05),
            run=RunSpec(days=3, voll_per_kwh=2.0),
        )
        book = build(spec).execute()
        assert book.daily_rewards().sum() == pytest.approx(book.profit)

    def test_hub_book_carries_voll(self):
        spec = ScenarioSpec(
            fleet=FleetSpec(n_hubs=4),
            blackout=BlackoutSpec(outage_probability_per_hour=0.05),
            run=RunSpec(days=3, voll_per_kwh=2.0),
        )
        book = build(spec).execute()
        scalar = book.hub_book(0)
        assert scalar.voll_per_kwh == 2.0
        assert scalar.profit == pytest.approx(float(book.profit_per_hub[0]))


class TestCliSpecMode:
    def test_fleet_preset_flag(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--preset", "paper-default", "--set", "run.days=1"]) == 0
        out = capsys.readouterr().out
        assert "scenario=paper-default" in out and "12 hubs x 1 days" in out

    def test_fleet_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "spec.json"
        HETERO_SPEC.with_overrides({"run.days": 1}).save(path)
        assert main(["fleet", "--spec", str(path)]) == 0
        assert "6 hubs x 1 days" in capsys.readouterr().out

    def test_fleet_rejects_spec_plus_engine_flags(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--preset", "paper-default", "--n-hubs", "4"]) == 1
        assert "--set overrides" in capsys.readouterr().err

    def test_fleet_rejects_spec_plus_preset(self, capsys):
        from repro.cli import main

        assert main(["fleet", "--preset", "a", "--spec", "b.json"]) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_presets_listing_and_show(self, capsys):
        from repro.cli import main

        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "congested-city" in out and "paper-default" in out
        assert main(["presets", "--show", "congested-city"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert ScenarioSpec.from_dict(shown) == get_preset("congested-city")

    def test_presets_check(self, capsys):
        from repro.cli import main

        assert main(["presets", "--check"]) == 0
        assert "round-trip and compile" in capsys.readouterr().out

    def test_sweep_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "sweep.json"
        assert (
            main(
                [
                    "sweep",
                    "--preset",
                    "paper-default",
                    "--set",
                    "run.days=1",
                    "--set",
                    "fleet.n_hubs=4",
                    "--param",
                    "run.seed=0,1",
                    "--out",
                    str(out),
                ]
            )
            == 0
        )
        printed = capsys.readouterr().out
        assert "2 jobs" in printed
        payload = json.loads(out.read_text())
        assert len(payload) == 2
        assert payload[0]["experiment_id"] == "fleet[0]"
        assert payload[1]["data"]["sweep_overrides"] == {"run.seed": 1}

    def test_sweep_requires_one_source(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--param", "run.seed=0,1"]) == 1
        assert "exactly one" in capsys.readouterr().err

    def test_flag_shim_cli_matches_spec_cli(self, tmp_path):
        """The satellite guarantee: flag runs == their spec-built twins."""
        from repro.cli import main

        flag_out = tmp_path / "flags.json"
        spec_out = tmp_path / "spec.json"
        spec_path = tmp_path / "scenario.json"
        spec_from_fleet_flags(n_hubs=5, days=2, seed=3, scheduler="idle").save(
            spec_path
        )
        assert (
            main(
                [
                    "fleet", "--n-hubs", "5", "--days", "2", "--seed", "3",
                    "--scheduler", "idle", "--out", str(flag_out),
                ]
            )
            == 0
        )
        assert main(["fleet", "--spec", str(spec_path), "--out", str(spec_out)]) == 0
        assert flag_out.read_bytes() == spec_out.read_bytes()
