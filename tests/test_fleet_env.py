"""Tests for the batched fleet RL stack: FleetEnv, fleet buffer, fleet PPO.

The anchor is the equivalence chain: a ``FleetEnv`` at ``n_hubs=1`` must
reproduce ``EctHubEnv`` episodes (observations bit-for-bit, rewards within
the engines' atol-1e-9 bound), and per-hub fleet rewards must match the
``FleetCostBook`` slot for slot. On top sit episode-sampling edges
(max-start flush, seeded determinism, invalid actions), the feeder-aware
observation block, per-hub GAE, and the train-fleet schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import api
from repro.errors import EnvError, ModelError
from repro.hub import ScenarioConfig, build_fleet_scenarios, fleet_behavior_model
from repro.rng import RngFactory
from repro.rl import (
    FEEDER_OBS_CLIP,
    EctHubEnv,
    EnvConfig,
    FleetEnv,
    FleetRolloutBuffer,
    PpoAgent,
    PpoConfig,
    RolloutBuffer,
    evaluate_fleet_agent,
    train_fleet_ppo,
)
from repro.spec import (
    FleetSpec,
    GridSpec,
    RlSpec,
    RunSpec,
    ScenarioSpec,
    spec_from_train_fleet_flags,
)

N_HOURS = 24 * 12
EPISODE_DAYS = 3


@pytest.fixture(scope="module")
def fleet_setup():
    factory = RngFactory(seed=11)
    config = ScenarioConfig(n_hours=N_HOURS)
    scenarios = build_fleet_scenarios(config, factory, n_hubs=3)
    behavior = fleet_behavior_model(config, factory)
    return scenarios, behavior


def make_fleet_env(scenarios, behavior, *, seed=5, n_hubs=None, **kwargs):
    subset = scenarios if n_hubs is None else scenarios[:n_hubs]
    kwargs.setdefault("config", EnvConfig(episode_days=EPISODE_DAYS))
    return FleetEnv(
        subset,
        behavior,
        np.zeros(N_HOURS),
        rng=RngFactory(seed=seed).stream("env"),
        **kwargs,
    )


class TestScalarEquivalence:
    """FleetEnv(n_hubs=1) episodes == EctHubEnv episodes."""

    def _pair(self, fleet_setup, *, outage=None, seed=5):
        scenarios, behavior = fleet_setup
        scalar = EctHubEnv(
            scenarios[0],
            behavior,
            np.zeros(N_HOURS),
            config=EnvConfig(episode_days=EPISODE_DAYS),
            rng=RngFactory(seed=seed).stream("env"),
            outage=outage,
        )
        fleet = make_fleet_env(
            scenarios, behavior, seed=seed, n_hubs=1, outage=outage
        )
        return scalar, fleet

    def test_episode_rewards_and_observations_match(self, fleet_setup):
        scalar, fleet = self._pair(fleet_setup)
        s1, sN = scalar.reset(), fleet.reset()
        assert scalar._start == fleet._start
        assert np.array_equal(s1, sN[0])
        action_rng = np.random.default_rng(2)
        done = False
        while not done:
            action = int(action_rng.integers(0, 3))
            s1, r1, done, _ = scalar.step(action)
            sN, rN, fleet_done, _ = fleet.step(np.array([action]))
            assert done == fleet_done
            assert rN[0] == pytest.approx(r1, abs=1e-9)
            if not done:
                assert np.allclose(s1, sN[0], atol=1e-9)

    def test_equivalence_holds_under_blackouts(self, fleet_setup):
        outage = np.zeros(N_HOURS, dtype=bool)
        outage[::7] = True  # outages scattered through every episode window
        scalar, fleet = self._pair(fleet_setup, outage=outage)
        scalar.reset()
        fleet.reset()
        total_scalar, total_fleet = 0.0, 0.0
        done = False
        while not done:
            _, r1, done, i1 = scalar.step(1)
            _, rN, _, iN = fleet.step(np.array([1]))
            total_scalar += i1["reward_raw"]
            total_fleet += float(iN["reward_raw"][0])
        assert fleet.simulation.book.blackout[:, : fleet.episode_length].any()
        assert total_fleet == pytest.approx(total_scalar, abs=1e-9)

    def test_rewards_match_cost_book_slot_for_slot(self, fleet_setup):
        scenarios, behavior = fleet_setup
        env = make_fleet_env(scenarios, behavior, voll_per_kwh=2.0)
        env.reset()
        rng = np.random.default_rng(0)
        collected = []
        done = False
        while not done:
            _, _, done, info = env.step(rng.integers(0, 3, size=env.n_hubs))
            collected.append(info["reward_raw"])
        rewards = np.stack(collected, axis=1)
        book = env.simulation.book
        n = book.n_recorded
        expected = (
            book.revenue[:, :n]
            - book.grid_cost[:, :n]
            - book.bp_cost[:, :n]
            - 2.0 * book.unserved_kwh[:, :n]
        )
        assert rewards.shape == expected.shape
        assert np.array_equal(rewards, expected)
        # And the per-hub episode totals equal the book's daily rollup.
        assert np.allclose(
            rewards.sum(axis=1), book.daily_rewards().sum(axis=1), atol=1e-9
        )


class TestEpisodeSampling:
    def test_seeded_determinism(self, fleet_setup):
        """Same seed => byte-identical episode traces, obs, and rewards."""
        scenarios, behavior = fleet_setup
        envs = [make_fleet_env(scenarios, behavior, seed=9) for _ in range(2)]
        states = [env.reset() for env in envs]
        assert np.array_equal(states[0], states[1])
        inputs = [env.simulation.inputs for env in envs]
        for name in ("load_rate", "rtp_kwh", "occupied", "discount"):
            assert np.array_equal(
                getattr(inputs[0], name), getattr(inputs[1], name)
            )
        action_rng = np.random.default_rng(4)
        done = False
        while not done:
            actions = action_rng.integers(0, 3, size=envs[0].n_hubs)
            s0, r0, done, _ = envs[0].step(actions)
            s1, r1, _, _ = envs[1].step(actions.copy())
            assert np.array_equal(r0, r1)
            assert np.array_equal(s0, s1)

    def test_different_seeds_differ(self, fleet_setup):
        scenarios, behavior = fleet_setup
        starts = set()
        for seed in range(8):
            env = make_fleet_env(scenarios, behavior, seed=seed)
            env.reset()
            starts.add(env._start)
        assert len(starts) > 1

    def test_reset_at_max_start_flushes_against_horizon(self, fleet_setup):
        """Episode == scenario horizon forces start == max_start == 0."""
        scenarios, behavior = fleet_setup
        env = make_fleet_env(
            scenarios,
            behavior,
            config=EnvConfig(episode_days=N_HOURS // 24),
        )
        state = env.reset()
        assert env._start == 0
        assert state.shape == (env.n_hubs, env.state_dim())
        steps = 0
        done = False
        while not done:
            state, _, done, _ = env.step(np.zeros(env.n_hubs, dtype=int))
            steps += 1
        assert steps == env.episode_length == N_HOURS
        # Final observed windows were edge-padded to exactly window_h.
        w = env.config.window_h
        tail = env._windows(env._obs_rtp, N_HOURS - 1)
        assert tail.shape == (env.n_hubs, w)
        assert np.all(tail == env._obs_rtp[:, -1:])

    def test_episode_longer_than_scenario_rejected(self, fleet_setup):
        scenarios, behavior = fleet_setup
        with pytest.raises(EnvError):
            make_fleet_env(
                scenarios,
                behavior,
                config=EnvConfig(episode_days=N_HOURS // 24 + 1),
            )

    def test_step_before_reset_raises(self, fleet_setup):
        scenarios, behavior = fleet_setup
        env = make_fleet_env(scenarios, behavior)
        with pytest.raises(EnvError):
            env.step(np.zeros(env.n_hubs, dtype=int))


class TestActionValidation:
    @pytest.fixture()
    def env(self, fleet_setup):
        scenarios, behavior = fleet_setup
        env = make_fleet_env(scenarios, behavior)
        env.reset()
        return env

    def test_wrong_shape_rejected(self, env):
        with pytest.raises(EnvError):
            env.step(np.zeros(env.n_hubs + 1, dtype=int))
        with pytest.raises(EnvError):
            env.step(np.zeros((env.n_hubs, 1), dtype=int))

    def test_out_of_range_rejected(self, env):
        bad = np.zeros(env.n_hubs, dtype=int)
        bad[0] = 3
        with pytest.raises(EnvError):
            env.step(bad)
        bad[0] = -1
        with pytest.raises(EnvError):
            env.step(bad)

    def test_float_actions_rejected(self, env):
        with pytest.raises(EnvError):
            env.step(np.zeros(env.n_hubs))

    def test_bool_actions_rejected(self, env):
        # A bool vector would mask-index the S_BP lookup, not map codes.
        with pytest.raises(EnvError):
            env.step(np.ones(env.n_hubs, dtype=bool))


class TestFeederAwareObservations:
    def _coupled_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="rl-coupled",
            fleet=FleetSpec(n_hubs=4),
            grid=GridSpec(n_feeders=2, feeder_capacity_kw=150.0),
            run=RunSpec(days=6, seed=3),
            rl=RlSpec(episode_days=3),
        )

    def test_uncoupled_fleet_has_no_feeder_feature(self, fleet_setup):
        scenarios, behavior = fleet_setup
        env = make_fleet_env(scenarios, behavior)
        assert not env.feeder_aware
        assert env.state_dim() == 5 * env.config.window_h + 1

    def test_coupled_spec_appends_normalized_headroom(self):
        compiled, env = api.build_fleet_env(self._coupled_spec())
        assert env.feeder_aware
        assert env.state_dim() == 5 * env.config.window_h + 2
        state = env.reset()
        headroom = state[:, -1]
        assert np.all(np.isfinite(headroom))
        assert np.all(headroom <= FEEDER_OBS_CLIP)
        assert np.all(headroom >= 0.0)
        # The feature tracks the engine's congestion signal exactly.
        sim = env.simulation
        expected = np.minimum(
            sim.available_import_kw() / env.params.charge_rate_kw,
            FEEDER_OBS_CLIP,
        )
        assert np.array_equal(headroom, expected)

    def test_feeder_aware_off_by_spec(self):
        spec = self._coupled_spec().with_overrides({"rl.feeder_aware": False})
        _, env = api.build_fleet_env(spec)
        assert not env.feeder_aware
        assert env.state_dim() == 5 * env.config.window_h + 1

    def test_feeder_aware_without_feeders_rejected(self, fleet_setup):
        scenarios, behavior = fleet_setup
        with pytest.raises(EnvError):
            make_fleet_env(scenarios, behavior, feeder_aware=True)

    def test_episode_slices_per_slot_feeder_capacity(self):
        spec = self._coupled_spec().with_overrides(
            {"grid.capacity_profile": [1.0] * 18 + [0.5] * 6}
        )
        _, env = api.build_fleet_env(spec)
        env.reset()
        capacity = env.simulation.feeders.import_capacity_kw
        assert capacity.shape == (2, env.episode_length)


class TestFleetRolloutBuffer:
    def test_per_hub_gae_matches_scalar_buffer(self, rng):
        n_steps, n_envs = 6, 3
        fleet = FleetRolloutBuffer(n_steps, n_envs, 2)
        scalars = [RolloutBuffer(n_steps, 2) for _ in range(n_envs)]
        data_rng = np.random.default_rng(0)
        for t in range(n_steps):
            rewards = data_rng.normal(size=n_envs)
            values = data_rng.normal(size=n_envs)
            dones = np.zeros(n_envs, dtype=bool)
            if t == n_steps - 1:
                dones[:] = True
            fleet.add(np.zeros((n_envs, 2)), np.zeros(n_envs, dtype=int),
                      np.zeros(n_envs), values, rewards, dones)
            for i, buf in enumerate(scalars):
                buf.add(np.zeros(2), 0, 0.0, values[i], rewards[i], bool(dones[i]))
        fleet.compute_advantages(0.0, gamma=0.9, gae_lambda=0.8, normalize=False)
        for i, buf in enumerate(scalars):
            buf.compute_advantages(0.0, gamma=0.9, gae_lambda=0.8, normalize=False)
            assert fleet._advantages[:, i] == pytest.approx(
                buf.advantages[:n_steps]
            )
            assert fleet._returns[:, i] == pytest.approx(buf.returns[:n_steps])

    def test_per_hub_bootstrap_values(self):
        fleet = FleetRolloutBuffer(1, 2, 1)
        fleet.add(np.zeros((2, 1)), np.zeros(2, dtype=int), np.zeros(2),
                  np.zeros(2), np.array([1.0, 1.0]), np.array([False, True]))
        fleet.compute_advantages(
            np.array([10.0, 10.0]), gamma=0.5, gae_lambda=1.0, normalize=False
        )
        # Hub 0 bootstraps its last value; hub 1 terminated.
        assert fleet._advantages[0] == pytest.approx([6.0, 1.0])

    def test_flat_views_are_time_major(self):
        fleet = FleetRolloutBuffer(2, 2, 1)
        for t in range(2):
            fleet.add(
                np.full((2, 1), t), np.array([t, t]), np.zeros(2),
                np.zeros(2), np.array([10.0 * t, 10.0 * t + 1]),
                t == 1,
            )
        assert len(fleet) == 4
        fleet.compute_advantages(0.0, normalize=False)
        assert fleet.states[:, 0].tolist() == [0.0, 0.0, 1.0, 1.0]
        assert fleet.actions.tolist() == [0, 0, 1, 1]

    def test_add_rejects_malformed_batches(self):
        fleet = FleetRolloutBuffer(2, 2, 3)
        good = dict(
            states=np.zeros((2, 3)), actions=np.zeros(2, dtype=int),
            log_probs=np.zeros(2), values=np.zeros(2), rewards=np.zeros(2),
        )
        with pytest.raises(ModelError):  # missing hub axis
            fleet.add(**{**good, "states": np.zeros(3)}, dones=False)
        with pytest.raises(ModelError):  # scalar column would broadcast
            fleet.add(**{**good, "rewards": 0.0}, dones=False)
        with pytest.raises(ModelError):  # wrong hub count
            fleet.add(**{**good, "actions": np.zeros(3, dtype=int)}, dones=False)
        with pytest.raises(ModelError):  # mis-shaped dones
            fleet.add(**good, dones=np.zeros(3, dtype=bool))
        fleet.add(**good, dones=False)
        fleet.add(**good, dones=np.array([True, False]))
        assert len(fleet) == 4

    def test_capacity_and_validation(self, rng):
        fleet = FleetRolloutBuffer(1, 2, 1)
        with pytest.raises(ModelError):
            fleet.compute_advantages(0.0)
        fleet.add(np.zeros((2, 1)), np.zeros(2, dtype=int), np.zeros(2),
                  np.zeros(2), np.zeros(2), True)
        assert fleet.full
        with pytest.raises(ModelError):
            fleet.add(np.zeros((2, 1)), np.zeros(2, dtype=int), np.zeros(2),
                      np.zeros(2), np.zeros(2), True)
        with pytest.raises(ModelError):
            list(fleet.minibatches(2, rng))
        fleet.compute_advantages(0.0)
        batches = list(fleet.minibatches(3, rng))
        assert sorted(np.concatenate(batches).tolist()) == [0, 1]
        fleet.clear()
        assert len(fleet) == 0


class TestBatchedActing:
    def test_act_batch_shapes_and_ranges(self, factory):
        agent = PpoAgent(4, 3, PpoConfig(), factory.stream("a"))
        states = np.zeros((5, 4))
        actions, log_probs, values = agent.act_batch(states)
        assert actions.shape == log_probs.shape == values.shape == (5,)
        assert set(actions.tolist()) <= {0, 1, 2}
        assert np.all(log_probs <= 0.0)
        greedy = agent.greedy_actions(states)
        assert greedy.shape == (5,)
        # Identical rows => identical greedy actions.
        assert len(set(greedy.tolist())) == 1


class TestFleetTraining:
    def test_train_and_evaluate_smoke(self, fleet_setup, factory):
        scenarios, behavior = fleet_setup
        env = make_fleet_env(scenarios, behavior)
        agent, history = train_fleet_ppo(
            env, episodes=2, rng=factory.stream("t")
        )
        assert len(history.episode_returns) == 2
        assert history.episode_returns[0].shape == (env.n_hubs,)
        assert len(history.mean_episode_returns) == 2
        assert np.isfinite(history.best_mean_return)
        returns = evaluate_fleet_agent(env, agent, episodes=2)
        assert returns.shape == (2, env.n_hubs)
        assert np.all(np.isfinite(returns))

    def test_invalid_episode_counts(self, fleet_setup, factory):
        scenarios, behavior = fleet_setup
        env = make_fleet_env(scenarios, behavior)
        with pytest.raises(ModelError):
            train_fleet_ppo(env, episodes=0)
        agent = PpoAgent(env.state_dim(), 3, rng=factory.stream("a"))
        with pytest.raises(ModelError):
            evaluate_fleet_agent(env, agent, episodes=0)


class TestTrainFleetExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        # The seeded smoke run of the acceptance criterion: scale-1
        # defaults, seed 0 — fully deterministic end to end.
        return api.train_fleet(spec_from_train_fleet_flags())

    def test_smoke_run_improves_over_untrained_policy(self, result):
        assert result.data["improvement"] > 0.0
        assert (
            result.data["trained_mean_reward"]
            > result.data["untrained_mean_reward"]
        )

    def test_report_shape(self, result):
        data = result.data
        assert data["n_hubs"] == 6
        assert data["train_episodes"] == 40
        assert len(data["training_curve"]) == 40
        assert data["state_dim"] == 121 and not data["feeder_aware"]
        assert data["spec"]["rl"]["gamma"] == 0.95
        assert "train-fleet" in result.rendered()

    def test_spec_round_trips_through_rl_section(self):
        spec = spec_from_train_fleet_flags(scale=0.5, seed=3)
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.rl.train_episodes == 20
        override = spec.with_overrides({"rl.train_episodes": 7})
        assert override.rl.train_episodes == 7

    def test_scaled_run_clamps_episode_to_horizon(self):
        spec = spec_from_train_fleet_flags(scale=0.25)
        _, env = api.build_fleet_env(spec)
        # 3-day horizon < the 5-day episode default => clamped.
        assert env.episode_length == 3 * 24

    def test_run_scale_shrinks_declarative_schedule(self):
        """--scale on a preset/spec must shrink the PPO schedule too,
        matching what the flag shim resolves at build time."""
        spec = spec_from_train_fleet_flags().with_overrides({"run.scale": 0.1})
        result = api.train_fleet(spec)
        assert result.data["train_episodes"] == 4  # 40 x 0.1
        assert result.data["eval_episodes"] == 1
        assert len(result.data["training_curve"]) == 4

    def test_cli_flag_run_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "tf.json"
        code = main(
            ["train-fleet", "--n-hubs", "2", "--days", "3",
             "--episodes", "2", "--eval-episodes", "1", "--out", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "train-fleet" in printed and "hub-slots/sec" in printed
        import json

        payload = json.loads(out.read_text())
        assert payload["experiment_id"] == "train-fleet"
        assert payload["data"]["n_hubs"] == 2
        assert payload["data"]["train_episodes"] == 2
        # The embedded spec replays the run.
        assert payload["data"]["spec"]["rl"]["train_episodes"] == 2

    def test_cli_flags_rejected_with_preset(self, capsys):
        from repro.cli import main

        code = main(
            ["train-fleet", "--preset", "fleet-default", "--episodes", "5"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "--episodes" in err and "--set" in err

    def test_cli_spec_and_preset_mutually_exclusive(self, capsys):
        from repro.cli import main

        assert main(["train-fleet", "--spec", "x.json", "--preset", "y"]) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_cli_set_overrides_and_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "spec.json"
        spec_from_train_fleet_flags(
            n_hubs=2, days=3, train_episodes=2, eval_episodes=1
        ).save(spec_path)
        code = main(
            ["train-fleet", "--spec", str(spec_path),
             "--set", "rl.train_episodes=3", "--seed", "2"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "3 training episodes" in printed

    def test_cli_unknown_rl_key_rejected(self, capsys):
        from repro.cli import main

        assert main(["train-fleet", "--set", "rl.bogus=1"]) == 1
        assert "unknown key 'bogus'" in capsys.readouterr().err

    def test_rl_spec_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            RlSpec(train_episodes=0)
        with pytest.raises(ConfigError):
            RlSpec(clip_epsilon=1.5)
        with pytest.raises(ConfigError):
            RlSpec(gamma=0.0)
        with pytest.raises(ConfigError):
            RlSpec(hidden_sizes=())
        with pytest.raises(ConfigError):
            RlSpec(hidden_sizes=(64, -1))
        # Lists from JSON payloads normalise to tuples.
        assert RlSpec(hidden_sizes=[32, 32]).hidden_sizes == (32, 32)
