"""Tests for layers, losses, optimizers, module plumbing, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.errors import ModelError


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = nn.Linear(4, 3, rng)
        out = layer(nn.Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 3)

    def test_linear_no_bias(self, rng):
        layer = nn.Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_invalid_dims(self, rng):
        with pytest.raises(ModelError):
            nn.Linear(0, 3, rng)

    def test_embedding_lookup(self, rng):
        emb = nn.Embedding(10, 4, rng)
        out = emb(np.array([1, 1, 9]))
        assert out.shape == (3, 4)
        assert np.allclose(out.numpy()[0], out.numpy()[1])

    def test_embedding_out_of_range(self, rng):
        emb = nn.Embedding(10, 4, rng)
        with pytest.raises(ModelError):
            emb(np.array([10]))

    def test_dropout_eval_identity(self, rng):
        drop = nn.Dropout(0.5, rng)
        drop.eval()
        x = nn.Tensor(rng.normal(size=(4, 4)))
        assert np.allclose(drop(x).numpy(), x.numpy())

    def test_dropout_train_masks(self, rng):
        drop = nn.Dropout(0.5, rng)
        x = nn.Tensor(np.ones((100, 10)))
        out = drop(x).numpy()
        assert (out == 0).any()
        assert out.mean() == pytest.approx(1.0, abs=0.25)

    def test_mlp_structure_and_forward(self, rng):
        mlp = nn.MLP((3, 8, 2), rng)
        out = mlp(nn.Tensor(rng.normal(size=(5, 3))))
        assert out.shape == (5, 2)

    def test_mlp_needs_two_sizes(self, rng):
        with pytest.raises(ModelError):
            nn.MLP((3,), rng)

    def test_sequential_indexing(self, rng):
        seq = nn.Sequential(nn.Linear(2, 2, rng), nn.ReLU())
        assert len(seq) == 2
        assert isinstance(seq[1], nn.ReLU)


class TestLosses:
    def test_mse_value(self):
        pred = nn.Tensor(np.array([1.0, 2.0]))
        target = nn.Tensor(np.array([0.0, 0.0]))
        assert nn.mse_loss(pred, target).item() == pytest.approx(2.5)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ModelError):
            nn.mse_loss(nn.Tensor(np.zeros(2)), nn.Tensor(np.zeros(3)))

    def test_bce_matches_manual(self, rng):
        p = np.array([0.3, 0.8])
        y = np.array([1.0, 0.0])
        expected = -np.mean(y * np.log(p) + (1 - y) * np.log(1 - p))
        got = nn.bce_loss(nn.Tensor(p), nn.Tensor(y)).item()
        assert got == pytest.approx(expected, rel=1e-6)

    def test_bce_with_logits_matches_bce(self, rng):
        logits = rng.normal(size=(6,))
        y = (rng.random(6) > 0.5).astype(float)
        via_logits = nn.bce_with_logits(nn.Tensor(logits), nn.Tensor(y)).item()
        probs = 1 / (1 + np.exp(-logits))
        via_probs = nn.bce_loss(nn.Tensor(probs), nn.Tensor(y)).item()
        assert via_logits == pytest.approx(via_probs, rel=1e-5)

    def test_cross_entropy_gradcheck(self, rng):
        logits = nn.Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        ids = np.array([0, 2, 1, 1])
        nn.check_gradients(lambda: nn.cross_entropy(logits, ids), [logits])

    def test_entropy_of_uniform_logits(self):
        logits = nn.Tensor(np.zeros((2, 4)))
        assert nn.entropy_of_logits(logits).item() == pytest.approx(np.log(4))


class TestOptimizers:
    def _quadratic_problem(self, opt_cls, rng, **kwargs):
        target = np.array([3.0, -2.0])
        w = nn.Tensor(np.zeros(2), requires_grad=True)
        opt = opt_cls([w], **kwargs)
        for _ in range(300):
            opt.zero_grad()
            loss = ((w - nn.Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        return w.numpy(), target

    def test_sgd_converges(self, rng):
        w, target = self._quadratic_problem(nn.SGD, rng, lr=0.05)
        assert np.allclose(w, target, atol=1e-3)

    def test_sgd_momentum_converges(self, rng):
        w, target = self._quadratic_problem(nn.SGD, rng, lr=0.02, momentum=0.9)
        assert np.allclose(w, target, atol=1e-3)

    def test_adam_converges(self, rng):
        w, target = self._quadratic_problem(nn.Adam, rng, lr=0.1)
        assert np.allclose(w, target, atol=1e-2)

    def test_adamw_decay_shrinks_weights(self, rng):
        w = nn.Tensor(np.ones(3) * 5.0, requires_grad=True)
        opt = nn.AdamW([w], lr=0.01, weight_decay=0.5)
        for _ in range(50):
            opt.zero_grad()
            (w.sum() * 0.0).backward()
            opt.step()
        assert np.all(np.abs(w.numpy()) < 5.0)

    def test_optimizer_rejects_empty(self):
        with pytest.raises(ModelError):
            nn.Adam([], lr=0.1)

    def test_optimizer_rejects_bad_lr(self, rng):
        w = nn.Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ModelError):
            nn.SGD([w], lr=0.0)

    def test_clip_grad_norm(self, rng):
        w = nn.Tensor(np.ones(4), requires_grad=True)
        (w.sum() * 100.0).backward()
        norm = nn.clip_grad_norm([w], max_norm=1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0, rel=1e-6)


class TestModuleAndSerialization:
    def test_named_parameters_nested(self, rng):
        mlp = nn.MLP((2, 4, 1), rng)
        names = [name for name, _ in mlp.named_parameters()]
        assert len(names) == len(set(names)) == 4  # 2 layers x (W, b)

    def test_num_parameters(self, rng):
        mlp = nn.MLP((2, 4, 1), rng)
        assert mlp.num_parameters() == 2 * 4 + 4 + 4 * 1 + 1

    def test_train_eval_propagates(self, rng):
        seq = nn.Sequential(nn.Dropout(0.5, rng), nn.Linear(2, 2, rng))
        seq.eval()
        assert not seq[0].training
        seq.train()
        assert seq[0].training

    def test_state_dict_round_trip(self, rng):
        a = nn.MLP((3, 5, 2), rng)
        b = nn.MLP((3, 5, 2), np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = np.random.default_rng(0).normal(size=(4, 3))
        assert np.allclose(a(nn.Tensor(x)).numpy(), b(nn.Tensor(x)).numpy())

    def test_load_state_dict_validates_names(self, rng):
        a = nn.MLP((3, 5, 2), rng)
        state = a.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(ModelError):
            a.load_state_dict(state)

    def test_load_state_dict_validates_shapes(self, rng):
        a = nn.MLP((3, 5, 2), rng)
        state = a.state_dict()
        first = next(iter(state))
        state[first] = np.zeros((1, 1))
        with pytest.raises(ModelError):
            a.load_state_dict(state)

    def test_save_load_module(self, rng, tmp_path):
        a = nn.MLP((3, 4, 1), rng)
        path = tmp_path / "weights.npz"
        nn.save_module(a, path)
        b = nn.MLP((3, 4, 1), np.random.default_rng(7))
        nn.load_module(b, path)
        x = np.random.default_rng(1).normal(size=(2, 3))
        assert np.allclose(a(nn.Tensor(x)).numpy(), b(nn.Tensor(x)).numpy())

    def test_load_missing_file_raises(self, rng, tmp_path):
        with pytest.raises(ModelError):
            nn.load_module(nn.MLP((2, 2), rng), tmp_path / "nope.npz")

    def test_xor_training_end_to_end(self, rng):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], float)
        y = np.array([[0], [1], [1], [0]], float)
        net = nn.MLP((2, 16, 1), rng)
        opt = nn.Adam(net.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            loss = nn.mse_loss(net(nn.Tensor(X)).sigmoid(), nn.Tensor(y))
            loss.backward()
            opt.step()
        assert loss.item() < 0.01
