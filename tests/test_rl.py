"""Tests for the ECT-DRL stack: env, buffer, PPO, schedulers, oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, EnvError, ModelError
from repro.hub import ScenarioConfig, build_fleet_scenarios, fleet_behavior_model
from repro.hub.scenario import resolve_occupancy
from repro.rl import (
    ActorCritic,
    Box,
    Discrete,
    EctHubEnv,
    EnvConfig,
    GreedyRenewableScheduler,
    IdleScheduler,
    PpoAgent,
    PpoConfig,
    RandomScheduler,
    RolloutBuffer,
    RuleBasedScheduler,
    evaluate_agent,
    evaluate_scheduler,
    optimal_schedule,
    train_ppo,
)
from repro.rng import RngFactory


@pytest.fixture(scope="module")
def env_setup():
    factory = RngFactory(seed=21)
    config = ScenarioConfig(n_hours=24 * 40)
    scenario = build_fleet_scenarios(config, factory)[0]
    behavior = fleet_behavior_model(config, factory)
    return factory, scenario, behavior


@pytest.fixture()
def env(env_setup):
    factory, scenario, behavior = env_setup
    return EctHubEnv(
        scenario,
        behavior,
        np.zeros(scenario.n_hours),
        config=EnvConfig(episode_days=5),
        rng=factory.stream("env-test"),
    )


class TestSpaces:
    def test_discrete(self, rng):
        space = Discrete(3)
        assert space.contains(2) and not space.contains(3)
        assert space.sample(rng) in (0, 1, 2)

    def test_discrete_invalid(self):
        with pytest.raises(EnvError):
            Discrete(0)

    def test_box(self):
        box = Box(low=-1.0, high=1.0, shape=(3,))
        assert box.contains(np.zeros(3))
        assert not box.contains(np.full(3, 2.0))

    def test_box_invalid_bounds(self):
        with pytest.raises(EnvError):
            Box(low=1.0, high=0.0, shape=(2,))


class TestEnv:
    def test_reset_returns_state(self, env):
        state = env.reset()
        assert state.shape == (env.state_dim(),)
        assert env.state_dim() == 5 * 24 + 1

    def test_step_before_reset_raises(self, env):
        with pytest.raises(EnvError):
            env.step(0)

    def test_episode_runs_to_done(self, env):
        env.reset()
        steps = 0
        done = False
        while not done:
            _, reward, done, info = env.step(0)
            assert np.isfinite(reward)
            assert "reward_raw" in info
            steps += 1
        assert steps == env.episode_length == 5 * 24

    def test_invalid_action_rejected(self, env):
        env.reset()
        with pytest.raises(EnvError):
            env.step(7)

    def test_reward_scaling(self, env):
        env.reset()
        _, scaled_reward, _, info = env.step(0)
        assert scaled_reward == pytest.approx(
            info["reward_raw"] / env.config.reward_scale
        )

    def test_soc_in_state_tracks_battery(self, env):
        state = env.reset()
        assert state[-1] == pytest.approx(env.simulation.hub.battery.soc_fraction)

    def test_schedule_length_validated(self, env_setup):
        factory, scenario, behavior = env_setup
        with pytest.raises(EnvError):
            EctHubEnv(scenario, behavior, np.zeros(10))

    def test_outage_mask_reaches_simulation(self, env_setup):
        """Regression: reset() must not silently drop the blackout mask.

        The episode inputs are rebuilt after slicing; the old field-by-field
        reconstruction discarded ``outage``, so the RL env never trained on
        blackouts even when given a mask.
        """
        factory, scenario, behavior = env_setup
        outage = np.ones(scenario.n_hours, dtype=bool)
        env = EctHubEnv(
            scenario,
            behavior,
            np.zeros(scenario.n_hours),
            config=EnvConfig(episode_days=2),
            rng=factory.stream("outage-test"),
            outage=outage,
        )
        env.reset()
        sim_outage = env.simulation.inputs.outage
        assert sim_outage is not None
        assert sim_outage.shape == (env.episode_length,)
        assert sim_outage.all()
        _, _, _, info = env.step(1)
        ledger = info["ledger"]
        assert ledger.blackout
        assert ledger.p_grid_kw == 0.0 and ledger.revenue == 0.0

    def test_outage_mask_length_validated(self, env_setup):
        factory, scenario, behavior = env_setup
        with pytest.raises(EnvError):
            EctHubEnv(
                scenario,
                behavior,
                np.zeros(scenario.n_hours),
                outage=np.ones(10, dtype=bool),
            )

    def test_windows_edge_padded_for_both_trace_lengths(self, env):
        """Regression: _window must clamp against the trace it is given.

        The SRTP window reads the episode-length trace; clamping against
        the scenario horizon only worked through numpy slice truncation.
        Both trace lengths must yield exactly ``window_h`` values with
        edge padding past the end.
        """
        env.reset()
        w = env.config.window_h
        episode_trace = env._episode_srtp
        assert len(episode_trace) == env.episode_length
        near_end = env._window(episode_trace, env.episode_length - 1)
        assert near_end.shape == (w,)
        assert np.all(near_end == episode_trace[-1])

        scenario_trace = env.scenario.rtp_kwh
        at_horizon = env._window(scenario_trace, env.scenario.n_hours - 1)
        assert at_horizon.shape == (w,)
        assert np.all(at_horizon == scenario_trace[-1])
        # Interior windows are untouched slices of the trace.
        interior = env._window(episode_trace, 0)
        assert np.array_equal(interior, episode_trace[:w])

    def test_reset_at_max_start_flushes_against_horizon(self, env_setup):
        """An episode as long as the scenario forces start == max_start == 0."""
        factory, scenario, behavior = env_setup
        env = EctHubEnv(
            scenario,
            behavior,
            np.zeros(scenario.n_hours),
            config=EnvConfig(episode_days=scenario.n_hours // 24),
            rng=factory.stream("flush-test"),
        )
        state = env.reset()
        assert env._start == 0
        assert state.shape == (env.state_dim(),)
        steps = 0
        done = False
        while not done:
            state, _, done, _ = env.step(0)
            steps += 1
        assert steps == env.episode_length == scenario.n_hours

    def test_discounts_increase_occupancy(self, env_setup):
        """Evening discounts attract Incentive cells => more occupied slots."""
        factory, scenario, behavior = env_setup
        hours = np.arange(scenario.n_hours) % 24
        evening = np.where(hours >= 18, 0.2, 0.0)
        occupancies = {}
        for name, schedule in (("none", np.zeros(scenario.n_hours)), ("evening", evening)):
            env = EctHubEnv(
                scenario, behavior, schedule,
                config=EnvConfig(episode_days=20, random_initial_soc=False),
                rng=factory.stream("occ-test"),
            )
            env.reset()
            done = False
            total = 0
            while not done:
                _, _, done, info = env.step(0)
                total += info["ledger"].p_cs_kw > 0
            occupancies[name] = total
        assert occupancies["evening"] > occupancies["none"]


class TestBuffer:
    def test_add_and_capacity(self):
        buffer = RolloutBuffer(2, 3)
        buffer.add(np.zeros(3), 0, 0.0, 0.0, 1.0, False)
        buffer.add(np.zeros(3), 1, 0.0, 0.0, 1.0, True)
        assert buffer.full
        with pytest.raises(ModelError):
            buffer.add(np.zeros(3), 0, 0.0, 0.0, 1.0, False)

    def test_gae_matches_hand_computation(self):
        buffer = RolloutBuffer(3, 1)
        rewards = [1.0, 0.0, 2.0]
        values = [0.5, 0.4, 0.3]
        for r, v in zip(rewards, values):
            buffer.add(np.zeros(1), 0, 0.0, v, r, False)
        gamma, lam = 0.9, 0.8
        buffer.compute_advantages(
            last_value=0.2, gamma=gamma, gae_lambda=lam, normalize=False
        )
        deltas = [
            rewards[0] + gamma * values[1] - values[0],
            rewards[1] + gamma * values[2] - values[1],
            rewards[2] + gamma * 0.2 - values[2],
        ]
        a2 = deltas[2]
        a1 = deltas[1] + gamma * lam * a2
        a0 = deltas[0] + gamma * lam * a1
        assert buffer.advantages[:3] == pytest.approx([a0, a1, a2])
        assert buffer.returns[:3] == pytest.approx(
            [a0 + values[0], a1 + values[1], a2 + values[2]]
        )

    def test_done_cuts_bootstrap(self):
        buffer = RolloutBuffer(2, 1)
        buffer.add(np.zeros(1), 0, 0.0, 0.0, 1.0, True)
        buffer.add(np.zeros(1), 0, 0.0, 0.0, 1.0, True)
        buffer.compute_advantages(last_value=100.0, normalize=False)
        assert buffer.advantages[0] == pytest.approx(1.0)

    def test_minibatches_require_finalize(self, rng):
        buffer = RolloutBuffer(4, 1)
        buffer.add(np.zeros(1), 0, 0.0, 0.0, 1.0, False)
        with pytest.raises(ModelError):
            list(buffer.minibatches(2, rng))

    def test_normalized_advantages(self, rng):
        buffer = RolloutBuffer(8, 1)
        for i in range(8):
            buffer.add(np.zeros(1), 0, 0.0, 0.0, float(i), i == 7)
        buffer.compute_advantages(0.0)
        adv = buffer.advantages[:8]
        assert abs(adv.mean()) < 1e-9
        assert adv.std() == pytest.approx(1.0, abs=1e-6)


class TestActorCriticAndPpo:
    def test_forward_shapes(self, rng):
        net = ActorCritic(6, 3, rng)
        logits, values = net.forward(np.zeros((4, 6)))
        assert logits.shape == (4, 3) and values.shape == (4, 1)

    def test_act_returns_valid(self, rng):
        net = ActorCritic(6, 3, rng)
        action, log_prob, value = net.act(np.zeros(6), rng)
        assert action in (0, 1, 2)
        assert log_prob <= 0.0
        assert np.isfinite(value)

    def test_evaluate_actions_gradients_flow(self, rng):
        net = ActorCritic(4, 3, rng)
        log_probs, values, entropy = net.evaluate_actions(
            np.zeros((5, 4)), np.array([0, 1, 2, 1, 0])
        )
        loss = -log_probs.mean() + values.mean() + entropy
        loss.backward()
        assert any(p.grad is not None for p in net.parameters())

    def test_ppo_learns_bandit(self, rng):
        """PPO should learn to pick the rewarded action in a trivial bandit."""
        agent = PpoAgent(2, 3, PpoConfig(learning_rate=0.01), rng)
        buffer = RolloutBuffer(64, 2)
        state = np.ones(2)
        for _ in range(30):
            for _ in range(64):
                action, log_prob, value = agent.act(state)
                reward = 1.0 if action == 2 else 0.0
                buffer.add(state, action, log_prob, value, reward, True)
            agent.update(buffer)
        counts = np.bincount(
            [agent.act(state)[0] for _ in range(100)], minlength=3
        )
        assert counts[2] > 60

    def test_update_stats_fields(self, rng):
        agent = PpoAgent(2, 3, PpoConfig(), rng)
        buffer = RolloutBuffer(8, 2)
        for i in range(8):
            action, lp, v = agent.act(np.zeros(2))
            buffer.add(np.zeros(2), action, lp, v, 1.0, i == 7)
        stats = agent.update(buffer)
        assert np.isfinite(stats.policy_loss)
        assert np.isfinite(stats.value_loss)
        assert stats.entropy > 0
        assert len(buffer) == 0  # cleared after update

    def test_invalid_ppo_config(self):
        with pytest.raises(ModelError):
            PpoConfig(clip_epsilon=1.5)


class TestSchedulersAndTraining:
    def test_schedulers_return_valid_actions(self, env, factory):
        env.reset()
        for scheduler in (
            IdleScheduler(),
            RandomScheduler(factory.stream("rs")),
            RuleBasedScheduler(),
            GreedyRenewableScheduler(),
        ):
            scheduler.reset()
            action = scheduler(env.simulation)
            assert action in (-1, 0, 1)

    def test_rule_based_charges_cheap_discharges_expensive(self, env):
        env.reset()
        scheduler = RuleBasedScheduler()
        scheduler.reset()
        sim = env.simulation
        prices = sim.inputs.rtp_kwh
        cheap_slot = int(np.argmin(prices))
        expensive_slot = int(np.argmax(prices))
        sim._t = cheap_slot
        assert scheduler(sim) == 1
        sim._t = expensive_slot
        assert scheduler(sim) == -1
        sim._t = 0

    def test_train_and_evaluate_smoke(self, env, factory):
        agent, history = train_ppo(env, episodes=2, rng=factory.stream("t"))
        assert len(history.episode_returns) == 2
        daily = evaluate_agent(env, agent, episodes=1)
        assert daily.shape == (1, 5)
        assert np.all(np.isfinite(daily))

    def test_evaluate_scheduler_smoke(self, env):
        daily = evaluate_scheduler(env, IdleScheduler(), episodes=1)
        assert daily.shape == (1, 5)

    def test_invalid_episode_counts(self, env, factory):
        with pytest.raises(ModelError):
            train_ppo(env, episodes=0)
        agent = PpoAgent(env.state_dim(), 3, rng=factory.stream("a"))
        with pytest.raises(ModelError):
            evaluate_agent(env, agent, episodes=0)


class TestDpOracle:
    def _inputs(self, env_setup, n=48):
        factory, scenario, behavior = env_setup
        strata = behavior.sample_strata(0, np.arange(n), factory.stream("or"))
        occupied = resolve_occupancy(strata, np.zeros(n, dtype=int))
        full_occ = np.concatenate(
            [occupied, np.zeros(scenario.n_hours - n, dtype=int)]
        )
        return scenario, scenario.inputs_with_occupancy(
            full_occ, np.zeros(scenario.n_hours)
        ).slice(0, n)

    def test_oracle_beats_every_heuristic(self, env_setup):
        scenario, inputs = self._inputs(env_setup)
        oracle = optimal_schedule(scenario.build_hub(), inputs, n_soc_levels=21)
        from repro.hub.simulation import HubSimulation

        for policy in (lambda s: 0, lambda s: 1, lambda s: -1, lambda s: [1, -1][s.t % 2]):
            sim = HubSimulation(scenario.build_hub(), inputs, initial_soc_fraction=0.5)
            book = sim.run(policy)
            assert oracle.total_reward >= book.profit - 1e-6

    def test_oracle_schedule_is_feasible(self, env_setup):
        scenario, inputs = self._inputs(env_setup)
        oracle = optimal_schedule(scenario.build_hub(), inputs, n_soc_levels=21)
        from repro.hub.simulation import HubSimulation

        sim = HubSimulation(scenario.build_hub(), inputs, initial_soc_fraction=0.5)
        book = sim.run(lambda s: int(oracle.actions[s.t]))
        # Executing the oracle schedule in the real engine lands close to
        # the oracle value (exact up to SoC-grid snapping).
        assert book.profit == pytest.approx(oracle.total_reward, rel=0.05, abs=5.0)

    def test_oracle_rejects_outages(self, env_setup):
        scenario, inputs = self._inputs(env_setup, n=24)
        bad = type(inputs)(
            load_rate=inputs.load_rate,
            rtp_kwh=inputs.rtp_kwh,
            pv_power_kw=inputs.pv_power_kw,
            wt_power_kw=inputs.wt_power_kw,
            occupied=inputs.occupied,
            discount=inputs.discount,
            outage=np.ones(24, dtype=bool),
        )
        with pytest.raises(ConfigError):
            optimal_schedule(scenario.build_hub(), bad)
