"""Span-based phase tracing: nested wall/CPU timings as a JSON tree.

A :class:`Tracer` records *spans* — named intervals with wall and CPU
durations — on an explicit stack, so ``with tracer.span("step"):`` nested
inside ``with tracer.span("run"):`` shows up as a child in the exported
tree. The canonical phase names used across the codebase are ``compile``,
``reset``, ``step``, ``sweep-job``, ``ppo-update`` and ``eval``
(sub-phase costs too fine for a span, like per-slot feeder
``allocation``, live in :class:`~repro.telemetry.metrics.MetricsRegistry`
timers instead).

Exports: :meth:`Tracer.to_list` is the JSON trace (round-trippable —
plain dicts and floats, nesting preserved), :meth:`Tracer.phase_totals`
aggregates spans by name for the RunTelemetry phase table, and
:meth:`Tracer.summary_lines` renders the human-readable indented tree.
Start offsets are relative to the tracer's construction epoch, so traces
shipped back from worker processes stay meaningful without a shared
clock.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from ..errors import ConfigError


class Span:
    """One named interval: wall/CPU duration, metadata, child spans."""

    __slots__ = ("name", "start_s", "wall_s", "cpu_s", "fields", "children")

    def __init__(self, name: str, start_s: float, **fields) -> None:
        if not name:
            raise ConfigError("span name must be non-empty")
        self.name = name
        self.start_s = start_s
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.fields = fields
        self.children: list[Span | dict] = []

    def to_dict(self) -> dict:
        payload = {
            "name": self.name,
            "start_s": self.start_s,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "children": [
                child.to_dict() if isinstance(child, Span) else child
                for child in self.children
            ],
        }
        if self.fields:
            payload["fields"] = dict(self.fields)
        return payload


class Tracer:
    """Collects a tree of :class:`Span` timings for one run."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **fields):
        """Open a span; nests under whichever span is currently live."""
        opened = Span(name, time.perf_counter() - self._epoch, **fields)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self.roots).append(opened)
        self._stack.append(opened)
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield opened
        finally:
            opened.wall_s = time.perf_counter() - wall0
            opened.cpu_s = time.process_time() - cpu0
            self._stack.pop()

    def attach(self, name: str, child_trace: list[dict], **fields) -> Span:
        """Graft an exported trace (e.g. from a worker) under a new span.

        The synthetic span's durations are the sum of the grafted roots,
        so sweep-level phase totals still account for worker time; the
        grafted dicts keep their own (worker-relative) start offsets.
        """
        span = Span(name, time.perf_counter() - self._epoch, **fields)
        span.wall_s = sum(child.get("wall_s", 0.0) for child in child_trace)
        span.cpu_s = sum(child.get("cpu_s", 0.0) for child in child_trace)
        span.children = list(child_trace)
        parent = self._stack[-1] if self._stack else None
        (parent.children if parent else self.roots).append(span)
        return span

    # ------------------------------------------------------------------ #
    # Export                                                               #
    # ------------------------------------------------------------------ #

    def to_list(self) -> list[dict]:
        """The JSON trace: a list of root span dicts, nesting intact."""
        if self._stack:
            raise ConfigError(
                f"cannot export while span {self._stack[-1].name!r} is open"
            )
        return [span.to_dict() for span in self.roots]

    def phase_totals(self) -> dict[str, dict]:
        """Aggregate spans by name: ``{name: {wall_s, cpu_s, count}}``."""
        totals: dict[str, dict] = {}
        stack = [span.to_dict() for span in self.roots]
        while stack:
            node = stack.pop()
            entry = totals.setdefault(
                node["name"], {"wall_s": 0.0, "cpu_s": 0.0, "count": 0}
            )
            entry["wall_s"] += node.get("wall_s", 0.0)
            entry["cpu_s"] += node.get("cpu_s", 0.0)
            entry["count"] += 1
            stack.extend(node.get("children", ()))
        return {name: totals[name] for name in sorted(totals)}

    def summary_lines(self, *, min_wall_s: float = 0.0) -> list[str]:
        """Human-readable indented tree of span durations."""
        lines: list[str] = []

        def render(node: dict, depth: int) -> None:
            if node.get("wall_s", 0.0) < min_wall_s and depth > 0:
                return
            fields = node.get("fields")
            suffix = (
                " [" + " ".join(f"{k}={v}" for k, v in fields.items()) + "]"
                if fields
                else ""
            )
            lines.append(
                f"{'  ' * depth}{node['name']}{suffix}: "
                f"{node.get('wall_s', 0.0) * 1e3:,.1f} ms wall, "
                f"{node.get('cpu_s', 0.0) * 1e3:,.1f} ms cpu"
            )
            for child in node.get("children", ()):
                render(child, depth + 1)

        for span in self.to_list():
            render(span, 0)
        return lines
