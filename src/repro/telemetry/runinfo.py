"""Run metadata: the environment fingerprint stamped onto exports.

Benchmark reports and telemetry exports are only interpretable across
machines and PRs when they say *where* they ran: the same workload does
1.9M hub-slots/sec on one box and 600k on another, and a relaxed-perf CI
run must not be confused with a strict local one. :func:`run_metadata`
collects the short list the bench trajectory needs — hostname, python
and numpy versions, the git commit, and the ``ECT_PERF_RELAXED`` flag —
and caches it per process (the git subprocess runs once, not per
report).
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
from functools import lru_cache


def _git_commit() -> str | None:
    """The repo HEAD commit, or None outside a git checkout."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = output.stdout.strip()
    return commit if output.returncode == 0 and commit else None


@lru_cache(maxsize=1)
def run_metadata() -> dict:
    """The environment fingerprint, cached for the process lifetime.

    Returns a fresh copy-safe dict of plain strings/bools so callers can
    embed it straight into JSON payloads.
    """
    import numpy

    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python_version": platform.python_version(),
        "numpy_version": numpy.__version__,
        "git_commit": _git_commit(),
        "ect_perf_relaxed": os.environ.get("ECT_PERF_RELAXED", "") == "1",
    }
