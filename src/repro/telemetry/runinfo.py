"""Run metadata: the environment fingerprint stamped onto exports.

Benchmark reports and telemetry exports are only interpretable across
machines and PRs when they say *where* they ran: the same workload does
1.9M hub-slots/sec on one box and 600k on another, and a relaxed-perf CI
run must not be confused with a strict local one. :func:`run_metadata`
collects the short list the bench trajectory needs — hostname, python
and numpy versions, the git commit, and the ``ECT_PERF_RELAXED`` flag —
and caches it per process (the git subprocess runs once, not per
report). One live gauge rides along: :func:`peak_rss_mb`, the process's
peak resident set so far — what the windowed cost-book's memory ceiling
is measured against in the ``fleet-city`` benchmark.
"""

from __future__ import annotations

import os
import platform
import socket
import subprocess
import sys
from functools import lru_cache


def _git_commit() -> str | None:
    """The repo HEAD commit, or None outside a git checkout."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = output.stdout.strip()
    return commit if output.returncode == 0 and commit else None


def peak_rss_mb() -> float | None:
    """Peak resident set size of this process so far, in MiB.

    Reads ``getrusage(RUSAGE_SELF).ru_maxrss`` — KiB on Linux, bytes on
    macOS — and returns ``None`` where the :mod:`resource` module is
    unavailable (non-POSIX platforms). A high-water mark, not a current
    reading: it only ever grows, which is exactly what a memory-ceiling
    guard wants.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024 * 1024 if sys.platform == "darwin" else 1024
    return round(ru_maxrss / divisor, 1)


@lru_cache(maxsize=1)
def _static_metadata() -> dict:
    """The immutable part of the fingerprint, cached for the process."""
    import numpy

    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python_version": platform.python_version(),
        "numpy_version": numpy.__version__,
        "git_commit": _git_commit(),
        "ect_perf_relaxed": os.environ.get("ECT_PERF_RELAXED", "") == "1",
    }


def run_metadata(*, backend: str | None = None) -> dict:
    """The environment fingerprint plus the live peak-RSS gauge.

    The static fields are cached (the git subprocess runs once per
    process); ``peak_rss_mb`` is re-read every call, so a record
    snapshotted at the end of a run carries that run's memory
    high-water mark. ``backend`` stamps the array backend that actually
    executed the run (the *resolved* name — a "numba" spec that fell
    back records "numpy"); ``None`` means no engine ran under this
    session. Returns a fresh dict each call — mutate freely.
    """
    return {
        **_static_metadata(),
        "backend": backend,
        "peak_rss_mb": peak_rss_mb(),
    }
