"""The telemetry session: one object threaded through a whole run.

:class:`Telemetry` ties the two recording surfaces together — a
:class:`~repro.telemetry.metrics.MetricsRegistry` for counters/gauges/
histograms/timers and a :class:`~repro.telemetry.trace.Tracer` for
nested phase spans — plus the per-update RL metric list. ``api.run``,
``api.run_sweep`` and ``api.train_fleet`` accept an optional session;
when one is passed, the completed run's **RunTelemetry record**
(:meth:`Telemetry.to_dict`) is attached to the returned
:class:`~repro.experiments.base.ExperimentResult` as
``result.telemetry`` and can be exported with
:func:`write_telemetry_json`.

The record layout::

    {
      "meta":     {hostname, python/numpy versions, git commit, ...},
      "phases":   {name: {wall_s, cpu_s, count}},   # from trace spans
      "counters": {...}, "gauges": {...},
      "histograms": {...}, "timers": {...},
      "rl":       [per-update metrics],             # training runs only
      "workers":  N,                                # sweep aggregation
      "trace":    [nested span dicts],
    }

Sweeps aggregate per-job records with :meth:`Telemetry.absorb`: counters,
timers and histograms add, each job's trace is grafted under a
``sweep-job`` span, and because jobs are absorbed in index order the
aggregated counters are byte-identical between serial and parallel
executors (test-enforced). Everything except the timings is
deterministic; the JSON therefore separates *what happened* (counters)
from *how long it took* (phases/timers/trace).
"""

from __future__ import annotations

import json
from pathlib import Path

from .metrics import MetricsRegistry
from .runinfo import run_metadata
from .trace import Tracer


class Telemetry:
    """One run's metrics + trace, and the export/aggregation surface.

    ``include_meta=False`` skips the environment fingerprint — worker
    processes use it so per-job records stay lean and the (cached) git
    lookup runs only in the parent.
    """

    def __init__(self, *, include_meta: bool = True) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.rl_updates: list[dict] = []
        self._include_meta = include_meta
        self._workers = 1
        self._backend: str | None = None

    def span(self, name: str, **fields):
        """Open a phase span (delegates to the tracer)."""
        return self.tracer.span(name, **fields)

    def record_rl_update(self, **metrics: float) -> None:
        """Append one PPO update's diagnostics to the RL metric list."""
        self.rl_updates.append({k: float(v) for k, v in sorted(metrics.items())})

    def set_workers(self, n_workers: int) -> None:
        """Record how many worker processes fed this session's record."""
        self._workers = int(n_workers)

    def set_backend(self, backend: str) -> None:
        """Record the *resolved* array backend this session's run executed
        on (part of the ``meta`` run fingerprint — a "numba" spec that
        fell back to numpy records what actually ran)."""
        self._backend = str(backend)

    # ------------------------------------------------------------------ #
    # Aggregation                                                          #
    # ------------------------------------------------------------------ #

    def absorb(self, record: dict | None, *, label: str, **fields) -> None:
        """Fold a child run's record (e.g. one sweep job) into this session.

        Counters/timers/histograms merge into the session registry, RL
        updates append, and the child's trace is grafted under a new
        ``label`` span. ``None`` records (telemetry-less children) are
        ignored so callers need no guard.
        """
        if record is None:
            return
        self.metrics.merge(record)
        self.rl_updates.extend(record.get("rl", ()))
        self._workers += record.get("workers", 1) - 1
        self.tracer.attach(label, record.get("trace", []), **fields)
        self.metrics.inc(f"{label}s", 1)

    # ------------------------------------------------------------------ #
    # Export                                                               #
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """The RunTelemetry record (JSON-ready, keys sorted)."""
        snapshot = self.metrics.snapshot()
        record = {
            "phases": self.tracer.phase_totals(),
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
            "timers": snapshot["timers"],
            "workers": self._workers,
            "trace": self.tracer.to_list(),
        }
        if self.rl_updates:
            record["rl"] = list(self.rl_updates)
        if self._include_meta:
            record["meta"] = run_metadata(backend=self._backend)
        return record

    def summary_lines(self) -> list[str]:
        """Human-readable run summary: phases, key counters, RL tail."""
        record = self.to_dict()
        lines = ["-- telemetry --"]
        for name, entry in record["phases"].items():
            count = f" x{entry['count']}" if entry["count"] > 1 else ""
            lines.append(
                f"phase {name:<12}{count:>5}  "
                f"{entry['wall_s'] * 1e3:>10,.1f} ms wall  "
                f"{entry['cpu_s'] * 1e3:>10,.1f} ms cpu"
            )
        for name, entry in record["timers"].items():
            lines.append(
                f"timer {name:<12} x{entry['count']:<4} "
                f"{entry['seconds'] * 1e3:>10,.1f} ms"
            )
        for name, value in record["counters"].items():
            rendered = f"{value:,.0f}" if value == int(value) else f"{value:,.3f}"
            lines.append(f"counter {name} = {rendered}")
        for name, value in record["gauges"].items():
            lines.append(f"gauge {name} = {value:,.1f}")
        if self.rl_updates:
            last = self.rl_updates[-1]
            rendered = ", ".join(f"{k}={v:.4g}" for k, v in last.items())
            lines.append(
                f"rl updates {len(self.rl_updates)}; last: {rendered}"
            )
        return lines


def write_telemetry_json(record: dict, path: str | Path) -> Path:
    """Persist a RunTelemetry record (or session dict) as pretty JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def telemetry_sidecar_path(out_path: str | Path) -> Path:
    """The sidecar file a ``--out`` export's telemetry is written to.

    ``results.json`` -> ``results.telemetry.json``; the record stays out
    of the ``--out`` payload itself so those exports remain byte-
    deterministic and diffable across runs.
    """
    out_path = Path(out_path)
    return out_path.with_name(out_path.stem + ".telemetry.json")
