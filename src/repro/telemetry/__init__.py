"""Telemetry: structured run metrics, phase tracing, and profiling hooks.

The observability layer the scaling roadmap reports against. Four small
pieces compose into one session object:

* :class:`~repro.telemetry.metrics.MetricsRegistry` — counters, gauges,
  histograms, timers (near-zero overhead when no session is attached);
* :class:`~repro.telemetry.trace.Tracer` — nested ``compile`` / ``reset``
  / ``step`` / ``sweep-job`` / ``ppo-update`` phase spans exporting to a
  JSON trace and a human-readable summary;
* :mod:`~repro.telemetry.log` — the leveled structured logger behind the
  CLI's ``--verbose`` / ``--quiet`` flags;
* :func:`~repro.telemetry.runinfo.run_metadata` — the environment
  fingerprint stamped onto bench reports and telemetry exports.

Typical use::

    from repro import api
    from repro.telemetry import Telemetry, write_telemetry_json

    tele = Telemetry()
    result = api.run("paper-default", telemetry=tele)
    print("\\n".join(tele.summary_lines()))
    write_telemetry_json(result.telemetry, "trace.json")

or on the CLI: ``ect-hub fleet --n-hubs 100 --telemetry --trace-out
trace.json``.
"""

from . import log
from .metrics import HistogramStats, MetricsRegistry
from .runinfo import run_metadata
from .session import Telemetry, telemetry_sidecar_path, write_telemetry_json
from .trace import Span, Tracer

__all__ = [
    "HistogramStats",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "Tracer",
    "log",
    "run_metadata",
    "telemetry_sidecar_path",
    "write_telemetry_json",
]
