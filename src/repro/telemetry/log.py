"""Structured logging for the CLI and experiment drivers.

``repro.telemetry.log`` replaces bare ``print`` calls with leveled,
optionally-structured output::

    from repro.telemetry import log
    log.info(result.rendered())
    log.debug("expanded sweep", jobs=12, workers=4)
    log.error("sweep failed", job=3)

Messages render as the plain text the CLI always printed, with any
keyword fields appended as ``key=value`` pairs — greppable without a log
parser, diffable against old output when no fields are passed. ``info``
and ``debug`` go to stdout, ``warning`` and ``error`` to stderr.

Verbosity is process-global and set once by the CLI entry point from
``--verbose``/``--quiet`` (:func:`configure`); the default shows info
and above, exactly the old ``print`` behaviour, so library callers can
log unconditionally and let the front end decide what the user sees.
"""

from __future__ import annotations

import sys

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}

#: Messages below this level are suppressed (module-global, CLI-owned).
_threshold = INFO


def configure(*, verbose: bool = False, quiet: bool = False) -> int:
    """Set the global threshold from CLI flags; returns the new level.

    ``--verbose`` shows debug output, ``--quiet`` keeps only warnings and
    errors; ``verbose`` wins if both are passed (explicit asks beat
    silencing).
    """
    global _threshold
    if verbose:
        _threshold = DEBUG
    elif quiet:
        _threshold = WARNING
    else:
        _threshold = INFO
    return _threshold


def level() -> int:
    """The current global threshold."""
    return _threshold


def is_enabled(message_level: int) -> bool:
    """Whether a message at ``message_level`` would be emitted."""
    return message_level >= _threshold


def format_fields(fields: dict) -> str:
    """Render structured fields as a ``key=value`` suffix."""
    if not fields:
        return ""
    return " " + " ".join(f"{key}={value}" for key, value in fields.items())


def _emit(message_level: int, message: str, fields: dict, stream) -> None:
    if message_level < _threshold:
        return
    prefix = ""
    if message_level != INFO:
        prefix = f"[{_LEVEL_NAMES[message_level]}] "
    print(f"{prefix}{message}{format_fields(fields)}", file=stream)


def debug(message: str, **fields) -> None:
    """Verbose-only diagnostics (shown under ``--verbose``)."""
    _emit(DEBUG, message, fields, sys.stdout)


def info(message: str, **fields) -> None:
    """Normal user-facing output (suppressed under ``--quiet``)."""
    _emit(INFO, message, fields, sys.stdout)


def warning(message: str, **fields) -> None:
    """Recoverable problems; shown even under ``--quiet``."""
    _emit(WARNING, message, fields, sys.stderr)


def error(message: str, **fields) -> None:
    """Failures; shown even under ``--quiet``."""
    _emit(ERROR, message, fields, sys.stderr)
