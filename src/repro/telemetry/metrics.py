"""Lightweight metrics registry: counters, gauges, histograms, timers.

:class:`MetricsRegistry` is the quantitative half of the telemetry
subsystem (the :mod:`~repro.telemetry.trace` tracer is the temporal
half). It is deliberately tiny — plain dicts of floats — because the
engine hot path touches it once per *slot* (not per hub-slot) and only
when a telemetry session is attached; disabled runs never construct one,
so the only disabled-mode cost anywhere is an ``is not None`` branch.

Determinism contract: :meth:`snapshot` emits sorted, JSON-ready plain
data, and :meth:`merge` is associative over ordered inputs — merging the
same worker records in the same order always produces byte-identical
JSON. That is what lets serial and parallel sweeps report identical
aggregated counters (test-enforced).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager

from ..errors import ConfigError


class HistogramStats:
    """Streaming summary of observed values (count/sum/min/max/sumsq).

    Keeps O(1) state instead of raw observations so a long run cannot
    grow memory with the horizon; mean and population std are derived.
    """

    __slots__ = ("count", "total", "sumsq", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.sumsq = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sumsq += value * value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        if not self.count:
            return 0.0
        variance = self.sumsq / self.count - self.mean**2
        return math.sqrt(max(variance, 0.0))

    def merge(self, other: "HistogramStats | dict") -> None:
        if isinstance(other, dict):
            stats = HistogramStats()
            stats.count = int(other["count"])
            stats.total = float(other["sum"])
            stats.sumsq = float(other["sumsq"])
            stats.min = float(other["min"])
            stats.max = float(other["max"])
            other = stats
        self.count += other.count
        self.total += other.total
        self.sumsq += other.sumsq
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "sumsq": self.sumsq,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "std": self.std,
        }


class MetricsRegistry:
    """Named counters, gauges, histograms, and wall-clock timers.

    * **Counters** only go up (``inc``) — event totals.
    * **Gauges** hold the latest value (``set_gauge``) — rates, sizes.
    * **Histograms** summarize observations (``observe``) — durations,
      per-update statistics.
    * **Timers** accumulate wall seconds + a call count (``add_time`` or
      the ``time()`` context manager) — sub-phase costs too fine-grained
      for a trace span, e.g. per-slot feeder allocation.
    """

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, HistogramStats] = {}
        self.timers: dict[str, list[float]] = {}  # name -> [seconds, count]

    # ------------------------------------------------------------------ #
    # Recording                                                            #
    # ------------------------------------------------------------------ #

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (>= 0) to counter ``name``."""
        if value < 0:
            raise ConfigError(f"counter {name!r} cannot decrease (got {value})")
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        stats = self.histograms.get(name)
        if stats is None:
            stats = self.histograms[name] = HistogramStats()
        stats.observe(value)

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate wall seconds into timer ``name``."""
        cell = self.timers.get(name)
        if cell is None:
            self.timers[name] = [float(seconds), 1]
        else:
            cell[0] += seconds
            cell[1] += 1

    @contextmanager
    def time(self, name: str):
        """Time a ``with`` block into timer ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Export & aggregation                                                 #
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Sorted, JSON-ready view of everything recorded so far."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
            "timers": {
                k: {"seconds": self.timers[k][0], "count": self.timers[k][1]}
                for k in sorted(self.timers)
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and timers add; gauges keep the merged-in value (last
        writer wins, like ``set_gauge``); histograms combine their
        streaming summaries.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, stats in snapshot.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = HistogramStats()
            mine.merge(stats)
        for name, cell in snapshot.get("timers", {}).items():
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = [float(cell["seconds"]), int(cell["count"])]
            else:
                mine[0] += cell["seconds"]
                mine[1] += cell["count"]
