"""The scenario facade: build, run, and sweep specs in three calls.

>>> from repro import api
>>> result = api.run("paper-default")            # a named preset
>>> result = api.run(api.load_spec("city.json"))  # a spec file
>>> compiled = api.build(spec)                    # engines, not yet run

``run`` compiles a :class:`~repro.spec.scenario.ScenarioSpec` (or preset
name) into the batched fleet engine, runs the spec'd scheduler over the
horizon, and returns the same :class:`~repro.experiments.base.
ExperimentResult` shape the ``fleet`` experiment always produced — with
the originating spec embedded under ``data["spec"]`` so every export is
self-describing and replayable. ``run_sweep`` expands a
:class:`~repro.spec.sweep.SweepSpec` and runs each job.
``build_fleet_env`` / ``train_fleet`` compile the spec's ``rl`` section
into the batched :class:`~repro.rl.fleet_env.FleetEnv` and run the PPO
training schedule over it.

Every entry point accepts ``telemetry=`` — a :class:`~repro.telemetry.
session.Telemetry` session. When one is passed, the run is phase-traced
(``compile`` / ``reset`` / ``step``, plus ``sweep-job`` and
``ppo-update`` where applicable), engine counters and throughput gauges
are booked, and the completed RunTelemetry record is attached to the
returned result as ``result.telemetry``. The simulated numbers are
bit-identical with or without a session; telemetry never reaches the
deterministic ``data`` payload.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from .backend import get_backend
from .errors import ConfigError
from .experiments.base import ExperimentResult, scaled
from .rng import RngFactory
from .spec.compiler import (
    CompiledScenario,
    build as _compile,
    build_fleet_env as _compile_fleet_env,
    ppo_config_from_spec,
)
from .spec.presets import get_preset
from .spec.scenario import PRICING_POLICIES, ScenarioSpec
from .spec.sweep import SweepSpec
from .telemetry import Telemetry, log


def load_spec(path: str | Path) -> ScenarioSpec:
    """Load a :class:`ScenarioSpec` from a JSON file."""
    return ScenarioSpec.load(path)


def resolve_spec(spec: ScenarioSpec | str) -> ScenarioSpec:
    """Accept a spec instance or a preset name."""
    if isinstance(spec, ScenarioSpec):
        return spec
    if isinstance(spec, str):
        return get_preset(spec)
    raise ConfigError(
        f"expected a ScenarioSpec or preset name, got {type(spec).__name__}"
    )


def build(spec: ScenarioSpec | str) -> CompiledScenario:
    """Compile a spec (or preset name) into runnable engines."""
    return _compile(resolve_spec(spec))


def run(
    spec: ScenarioSpec | str,
    *,
    telemetry: Telemetry | None = None,
    shards: int | None = None,
    assembly=None,
) -> ExperimentResult:
    """Compile and run a scenario, reporting per-hub + network economics.

    With a ``telemetry`` session the compile/reset/step phases are
    traced, the engine books live counters, and the RunTelemetry record
    lands on ``result.telemetry`` — the booked economics are identical
    either way (the reset the traced path adds is idempotent).

    ``shards`` overrides the spec's ``run.shards`` knob *as an argument*
    (the spec embedded in ``data["spec"]`` is untouched, so sharded and
    unsharded ``--out`` exports stay byte-identical). ``shards > 1``
    partitions the fleet feeder-aware (:mod:`repro.fleet.sharding`) and
    compiles + steps each shard in a worker process; everything in
    ``data`` is byte-identical to the unsharded run by construction
    (test-enforced). ``assembly`` reuses a cached
    :class:`~repro.spec.compiler.FleetAssembly` on the unsharded path —
    the sweep workers' seam.
    """
    resolved = resolve_spec(spec)
    n_shards = resolved.run.shards if shards is None else int(shards)
    if n_shards < 1:
        raise ConfigError(f"shards must be >= 1, got {n_shards}")
    if n_shards > 1:
        return _run_sharded(resolved, n_shards, telemetry=telemetry)
    if telemetry is None:
        compiled = _compile(resolved, assembly=assembly)
        simulation = compiled.simulation
    else:
        with telemetry.span("compile", scenario=resolved.name):
            compiled = _compile(resolved, telemetry=telemetry, assembly=assembly)
        simulation = compiled.simulation
        simulation.attach_telemetry(telemetry)
        with telemetry.span("reset"):
            simulation.reset()
    n_hubs, days = compiled.n_hubs, compiled.days
    log.debug(
        "compiled scenario",
        scenario=resolved.name,
        n_hubs=n_hubs,
        days=days,
        scheduler=compiled.scheduler.name,
    )

    start = time.perf_counter()
    if telemetry is None:
        book = compiled.execute()
    else:
        with telemetry.span("step", slots=simulation.horizon):
            book = compiled.execute()
    elapsed = time.perf_counter() - start

    return _fleet_result(
        resolved,
        book,
        n_hubs=n_hubs,
        days=days,
        horizon=simulation.horizon,
        scheduler_name=compiled.scheduler.name,
        kinds=[s.site.kind for s in compiled.scenarios],
        hub_ids=[s.site.hub_id for s in compiled.scenarios],
        pricing=compiled.pricing,
        elapsed=elapsed,
        telemetry=telemetry,
    )


def _run_sharded(
    resolved: ScenarioSpec, n_shards: int, *, telemetry: Telemetry | None = None
) -> ExperimentResult:
    """The city-scale path: shard the fleet, step shards in processes.

    Workers re-derive their hubs from the spec JSON (name-keyed streams
    make that bit-identical to the unsharded assembly — see
    :mod:`repro.fleet.sharding`), so the parent only pays site-catalog
    and planning cost. Pricing runs are the exception: the discount
    plane couples all hubs through the training log, so the parent
    compiles pricing over the full assembly once and ships each shard
    its pre-sliced discount rows; the shards then bypass their own
    ``pricing`` section via the explicit schedule.
    """
    from .fleet.costs import FleetCostBook
    from .fleet.sharding import ShardTask, plan_shards
    from .parallel import _available_cpus, run_shards_parallel
    from .spec.compiler import _assemble_fleet, assemble_sites

    sites, _, feeders, n_hubs, days, horizon = assemble_sites(resolved)
    windowed = resolved.run.storage == "windowed"

    pricing_compiled = None
    discount_rows = None
    if resolved.pricing.policy != "none":
        from .spec.pricing import compile_pricing

        if telemetry is None:
            assembly = _assemble_fleet(resolved)
            pricing_compiled = compile_pricing(assembly)
        else:
            with telemetry.span("compile", scenario=resolved.name):
                assembly = _assemble_fleet(resolved)
                pricing_compiled = compile_pricing(assembly, telemetry=telemetry)
        discount_rows = assembly.discount_rows(pricing_compiled.discount)

    # Windowed books can only merge feeder-closed shards, so unlimited
    # feeders stay atomic there (single-feeder specs degenerate to one
    # shard — documented in README#performance).
    plan = plan_shards(feeders, n_shards, split_unlimited=not windowed)
    spec_json = resolved.to_json()
    tasks = [
        ShardTask(
            spec_json=spec_json,
            hub_indices=idx,
            shard_index=index,
            discount_rows=None if discount_rows is None else discount_rows[idx],
            with_telemetry=telemetry is not None,
        )
        for index, idx in enumerate(plan)
    ]
    workers = min(len(tasks), _available_cpus())
    log.debug(
        "sharded scenario",
        scenario=resolved.name,
        n_hubs=n_hubs,
        shards=len(tasks),
        workers=workers,
    )

    start = time.perf_counter()
    shard_results = run_shards_parallel(tasks, workers)
    elapsed = time.perf_counter() - start

    def merge() -> FleetCostBook:
        return FleetCostBook.merge_shards(
            [r.book for r in shard_results],
            [r.hub_indices for r in shard_results],
            feeders=feeders,
            voll_per_kwh=resolved.run.voll_per_kwh,
        )

    if telemetry is None:
        book = merge()
    else:
        with telemetry.span("shard-merge", shards=len(tasks)):
            book = merge()
        telemetry.set_workers(workers)
        # Absorb in shard order so counters stay byte-identical run to
        # run whatever the completion order was.
        for shard in shard_results:
            telemetry.absorb(shard.telemetry, label="shard", index=shard.shard_index)

    return _fleet_result(
        resolved,
        book,
        n_hubs=n_hubs,
        days=days,
        horizon=horizon,
        scheduler_name=resolved.scheduler.name,
        kinds=[site.kind for site in sites],
        hub_ids=[site.hub_id for site in sites],
        pricing=pricing_compiled,
        elapsed=elapsed,
        telemetry=telemetry,
        shard_note=(
            f"sharded over {len(tasks)} shards ({workers} workers), "
            f"storage={resolved.run.storage}"
        ),
    )


def _fleet_result(
    resolved: ScenarioSpec,
    book,
    *,
    n_hubs: int,
    days: int,
    horizon: int,
    scheduler_name: str,
    kinds: list[str],
    hub_ids: list[int],
    pricing,
    elapsed: float,
    telemetry: Telemetry | None,
    shard_note: str | None = None,
) -> ExperimentResult:
    """The shared report tail: one completed book → ExperimentResult.

    Both the unsharded and sharded paths end here, which is what makes
    "sharded exports are byte-identical" a structural property: the
    entire ``data`` payload is computed from the (merged) book plus the
    spec. Wall-clock throughput and the shard note live in ``lines``
    only — the ``--out`` JSON must stay deterministic and diffable.
    """
    hub_slots = n_hubs * horizon
    throughput = hub_slots / elapsed if elapsed > 0 else float("inf")

    profit = book.profit_per_hub
    daily = book.daily_rewards()
    blackout_slots = book.blackout_hub_slots
    coupled = resolved.grid.feeder_capacity_kw is not None
    voll = resolved.run.voll_per_kwh
    feeders = book.feeders

    data = {
        "scenario": resolved.name,
        "spec": resolved.to_dict(),
        "n_hubs": n_hubs,
        "days": days,
        "scheduler": scheduler_name,
        "network_profit": book.profit,
        "network_operating_cost": book.operating_cost,
        "network_charging_revenue": book.charging_revenue,
        "network_voll_cost": book.voll_cost,
        "network_unserved_kwh": book.total_unserved_kwh,
        "blackout_slots": blackout_slots,
        "profit_per_hub": profit,
        "avg_daily_reward_per_hub": daily.mean(axis=1),
        "kinds": kinds,
        # Shared-grid coupling (zeros / infinities when uncoupled).
        "n_feeders": feeders.n_feeders,
        "feeder_capacity_kw": resolved.grid.feeder_capacity_kw,
        "allocation": feeders.policy,
        "import_shortfall_kwh": book.total_import_shortfall_kwh,
        "congested_feeder_slots": book.congested_feeder_slots,
        "feeder_import_kwh": book.feeder_import_kwh,
        "feeder_shortfall_kwh": book.feeder_shortfall_kwh,
        "feeder_peak_import_kw": book.feeder_peak_import_kw,
    }
    if pricing is not None:
        # Deterministic pricing provenance: how the discount plane was
        # built (training size, selection counts, congestion shaping).
        data["pricing_policy"] = pricing.policy
        data["pricing_discount_level"] = resolved.pricing.discount_level
        data["pricing_discounted_hub_slots"] = pricing.discounted_hub_slots
        data["pricing_mean_discount"] = pricing.mean_discount
        data["pricing_train_items"] = pricing.n_train_items
        data["pricing_feeder_aware"] = pricing.feeder_aware

    lines = [
        f"fleet of {n_hubs} hubs x {days} days, "
        f"scheduler={scheduler_name}"
        + (f", scenario={resolved.name}" if resolved.name != "fleet" else ""),
        f"batched throughput {throughput:,.0f} hub-slots/sec "
        f"({hub_slots} hub-slots in {elapsed:.3f}s)",
    ]
    if shard_note is not None:
        lines.append(shard_note)
    lines += [
        f"network profit ${book.profit:,.0f}  (revenue ${book.charging_revenue:,.0f}"
        f" - operating ${book.operating_cost:,.0f}"
        + (f" - lost-load ${book.voll_cost:,.0f}" if voll > 0 else "")
        + ")",
        f"blackout slots {blackout_slots}, unserved "
        f"{book.total_unserved_kwh:.1f} kWh",
        f"per-hub daily reward: min {daily.mean(axis=1).min():.1f}  "
        f"median {np.median(daily.mean(axis=1)):.1f}  "
        f"max {daily.mean(axis=1).max():.1f}",
    ]
    if pricing is not None:
        share = pricing.discounted_hub_slots / max(n_hubs * horizon, 1)
        lines.append(
            f"pricing {pricing.policy}: {pricing.discounted_hub_slots} "
            f"discounted hub-slots ({100 * share:.1f}%) at level "
            f"{resolved.pricing.discount_level:g}"
            + (", feeder-aware" if pricing.feeder_aware else "")
        )
    if coupled:
        capacity = resolved.grid.feeder_capacity_kw
        profile = " (profiled)" if resolved.grid.capacity_profile else ""
        lines.append(
            f"shared grid: {feeders.n_feeders} feeders x "
            f"{capacity:,.0f} kW{profile} ({feeders.policy}); "
            f"curtailed {book.total_import_shortfall_kwh:,.1f} kWh over "
            f"{book.congested_feeder_slots} congested feeder-slots"
        )
    show = min(n_hubs, 12)
    for i in range(show):
        lines.append(
            f"  hub {hub_ids[i]:>3} ({kinds[i]:<5}) "
            f"profit ${profit[i]:>10,.1f}  avg daily {daily[i].mean():>7.1f}"
        )
    if n_hubs > show:
        lines.append(f"  ... ({n_hubs - show} more hubs)")

    result = ExperimentResult(
        experiment_id="fleet",
        title="Batched fleet simulation (network-scale scheduling)",
        data=data,
        lines=lines,
    )
    if telemetry is not None:
        # Book the end-of-run aggregates the live engine hooks cannot see
        # (feeder-slot congestion rolls hub columns up per feeder), then
        # snapshot the session onto the result. Counters are
        # deterministic; only the timings/gauges vary run to run.
        metrics = telemetry.metrics
        metrics.set_gauge("engine.hub_slots_per_sec", throughput)
        metrics.inc("engine.congested_feeder_slots", book.congested_feeder_slots)
        metrics.inc("engine.unserved_kwh", book.total_unserved_kwh)
        metrics.inc("runs")
        # The *resolved* backend (a "numba" spec without the package
        # records the numpy fallback it actually ran on).
        telemetry.set_backend(get_backend(resolved.run.backend).name)
        result.telemetry = telemetry.to_dict()
    return result


def build_fleet_env(spec: ScenarioSpec | str, *, rng=None):
    """Compile a spec (or preset name) into ``(assembly, env)``.

    ``assembly`` is the :class:`~repro.spec.compiler.FleetAssembly`
    (scenarios, blackout masks, feeders, sizes) the environment was built
    from — not a :class:`~repro.spec.compiler.CompiledScenario`; the RL
    path skips the batched engine/scheduler, which the environment
    rebuilds per episode. ``env`` is the ready-to-train
    :class:`~repro.rl.fleet_env.FleetEnv`.
    """
    return _compile_fleet_env(resolve_spec(spec), rng=rng)


def train_fleet(
    spec: ScenarioSpec | str, *, telemetry: Telemetry | None = None
) -> ExperimentResult:
    """Train a parameter-shared PPO agent over a spec's batched fleet env.

    The schedule comes from the spec's ``rl`` section, run-scaled like
    the fleet itself: the (seeded) untrained policy is evaluated first,
    PPO trains for ``rl.train_episodes x run.scale`` episodes (floor 2)
    over ``(n_hubs,)`` action batches, and
    the trained policy is re-evaluated **on the same episode
    realisations** (a paired comparison; both evaluations run the
    stochastic policy, which is the policy PPO actually improves, with
    greedy-mode results reported alongside). The report carries the raw
    per-hub Eq. 12 episode returns, the training curve, and the
    environment-stepping throughput.
    """
    # Local import: repro.rl (and the nn stack under it) loads only when
    # a training run actually happens.
    from .rl.ppo import PpoAgent
    from .rl.training import evaluate_fleet_agent, train_fleet_ppo

    resolved = resolve_spec(spec)
    if telemetry is None:
        assembly, env = _compile_fleet_env(resolved)
    else:
        with telemetry.span("compile", scenario=resolved.name):
            assembly, env = _compile_fleet_env(resolved)
    rl = resolved.rl
    # run.scale shrinks the episode schedule along with the fleet and
    # horizon, so a --scale'd preset run is cheap end to end (the flag
    # shim resolves scale into explicit counts and keeps run.scale=1).
    train_episodes = scaled(rl.train_episodes, resolved.run.scale, minimum=2)
    eval_episodes = scaled(rl.eval_episodes, resolved.run.scale, minimum=1)
    seed = resolved.run.seed
    factory = RngFactory(seed=seed)
    agent = PpoAgent(
        env.state_dim(),
        env.action_space.n,
        ppo_config_from_spec(resolved),
        factory.stream("rl/agent"),
    )

    def paired_eval(greedy: bool) -> np.ndarray:
        # A fresh, identically-seeded episode stream per evaluation pass
        # keeps the before/after comparison on identical traces.
        env.reseed(RngFactory(seed=seed).stream("rl/eval"))
        if telemetry is None:
            return evaluate_fleet_agent(
                env, agent, episodes=eval_episodes, greedy=greedy
            )
        with telemetry.span("eval", greedy=greedy):
            return evaluate_fleet_agent(
                env, agent, episodes=eval_episodes, greedy=greedy
            )

    untrained = paired_eval(greedy=False)
    untrained_greedy = paired_eval(greedy=True)

    env.reseed(factory.stream("rl/train"))
    start = time.perf_counter()
    if telemetry is None:
        agent, history = train_fleet_ppo(
            env, episodes=train_episodes, agent=agent
        )
    else:
        with telemetry.span("train", episodes=train_episodes):
            agent, history = train_fleet_ppo(
                env, episodes=train_episodes, agent=agent, telemetry=telemetry
            )
    elapsed = time.perf_counter() - start
    hub_slots = train_episodes * env.episode_length * env.n_hubs
    throughput = hub_slots / elapsed if elapsed > 0 else float("inf")

    trained = paired_eval(greedy=False)
    trained_greedy = paired_eval(greedy=True)

    improvement = float(trained.mean() - untrained.mean())
    curve = history.mean_episode_returns
    # Wall-clock throughput stays out of `data` (printed below) so the
    # --out JSON is deterministic and diffable across PRs.
    data = {
        "scenario": resolved.name,
        "spec": resolved.to_dict(),
        "n_hubs": env.n_hubs,
        "days": assembly.days,
        "episode_days": env.episode_length // 24,
        "window_h": rl.window_h,
        "state_dim": env.state_dim(),
        "feeder_aware": env.feeder_aware,
        "train_episodes": train_episodes,
        "eval_episodes": eval_episodes,
        "untrained_mean_reward": float(untrained.mean()),
        "trained_mean_reward": float(trained.mean()),
        "improvement": improvement,
        "untrained_greedy_mean_reward": float(untrained_greedy.mean()),
        "trained_greedy_mean_reward": float(trained_greedy.mean()),
        "untrained_per_hub": untrained.mean(axis=0),
        "trained_per_hub": trained.mean(axis=0),
        "training_curve": curve,
        "final_entropy": history.update_stats[-1].entropy,
        "final_clip_fraction": history.update_stats[-1].clip_fraction,
    }
    lines = [
        f"fleet PPO: {env.n_hubs} hubs x {env.episode_length} slot episodes, "
        f"{train_episodes} training episodes"
        + (f", scenario={resolved.name}" if resolved.name != "train-fleet" else ""),
        f"state dim {env.state_dim()}"
        + (" (feeder-aware)" if env.feeder_aware else "")
        + f", one shared policy over ({env.n_hubs},) action batches",
        f"training throughput {throughput:,.0f} hub-slots/sec "
        f"({hub_slots} hub-slots in {elapsed:.2f}s, updates included)",
        f"mean episode reward (stochastic, paired episodes): "
        f"${untrained.mean():,.1f} untrained -> ${trained.mean():,.1f} trained "
        f"({improvement:+,.1f})",
        f"greedy-mode means: ${untrained_greedy.mean():,.1f} -> "
        f"${trained_greedy.mean():,.1f}",
        f"training curve (hub-mean return): first ${curve[0]:,.1f}, "
        f"best ${max(curve):,.1f}, last ${curve[-1]:,.1f}",
        f"final update: entropy {history.update_stats[-1].entropy:.3f}, "
        f"clip fraction {history.update_stats[-1].clip_fraction:.3f}",
    ]
    result = ExperimentResult(
        experiment_id="train-fleet",
        title="Fleet PPO training (batched ECT-DRL over the vectorized engine)",
        data=data,
        lines=lines,
    )
    if telemetry is not None:
        metrics = telemetry.metrics
        metrics.set_gauge("rl.train_hub_slots_per_sec", throughput)
        metrics.inc("rl.train_episodes", train_episodes)
        metrics.inc("rl.train_transitions", hub_slots)
        metrics.inc("runs")
        telemetry.set_backend(get_backend(resolved.run.backend).name)
        result.telemetry = telemetry.to_dict()
    return result


def run_sweep(
    sweep: SweepSpec,
    *,
    jobs: int | None = None,
    chunk_size: int | None = None,
    telemetry: Telemetry | None = None,
) -> list[ExperimentResult]:
    """Run every job of a sweep grid; each result carries its overrides.

    Results keep the ``fleet`` data layout, tagged with
    ``data["sweep_overrides"]`` and an indexed experiment id
    (``fleet[0]``, ``fleet[1]``, …) so a ``--out`` export of the whole
    sweep stays diffable job by job.

    ``jobs`` selects the executor: ``None`` or ``1`` runs the grid
    serially in-process (the default, byte-identical to always),
    ``N > 1`` fans the jobs out over ``N`` worker processes
    (:mod:`repro.parallel`), and ``0`` means one worker per available
    CPU (the affinity set where the platform reports one). Parallel
    results are re-ordered by job index and tagged identically, so
    serial and parallel sweeps produce byte-identical exports.
    ``chunk_size`` sets how many jobs ride in one worker task (default:
    ~4 chunks per worker) — bigger chunks amortise submit overhead and
    let the per-worker assembly cache hit across same-fleet jobs.

    With a ``telemetry`` session, each job runs under its own
    job-local session (in-process for serial, in-worker for parallel —
    per-worker records flow back through the result payloads) and is
    folded into the passed session in job-index order: counters add,
    traces nest under ``sweep-job`` spans. The aggregated counters are
    byte-identical between executors; per-job records additionally stay
    on each ``result.telemetry``.
    """
    from .parallel import resolve_jobs, run_jobs_parallel

    expanded = sweep.jobs()
    n_workers = resolve_jobs(jobs)
    log.debug(
        "expanding sweep", sweep=sweep.name, jobs=len(expanded), workers=n_workers
    )
    if n_workers > 1 and len(expanded) > 1:
        results = run_jobs_parallel(
            expanded,
            n_workers,
            with_telemetry=telemetry is not None,
            chunk_size=chunk_size,
        )
        if telemetry is not None:
            telemetry.set_workers(n_workers)
    else:
        results = [
            run(
                job.spec,
                telemetry=(
                    Telemetry(include_meta=False) if telemetry is not None else None
                ),
            )
            for job in expanded
        ]
    for job, result in zip(expanded, results):
        result.experiment_id = f"fleet[{job.index}]"
        result.data["sweep"] = sweep.name
        result.data["sweep_overrides"] = dict(job.overrides)
        if telemetry is not None:
            telemetry.absorb(result.telemetry, label="sweep-job", index=job.index)
    return results


#: Methods ``run_pricing`` compares when none are named: the no-discount
#: reference, the operators' evening heuristic, ECT-Price, and the three
#: uplift baselines — the Table III lineup plus the heuristic yardstick.
DEFAULT_PRICING_METHODS = ("none", "evening", "ours", "or", "ips", "dr")


def run_pricing(
    spec: ScenarioSpec | str,
    *,
    methods: tuple[str, ...] | list[str] | None = None,
    jobs: int | None = None,
    chunk_size: int | None = None,
    telemetry: Telemetry | None = None,
) -> ExperimentResult:
    """Compare discount policies over one fleet — Table III at city scale.

    Expands the spec into a ``pricing.policy`` sweep (one engine run per
    method, every other knob shared, so all methods price the *same*
    latent demand) and aggregates per-method network profit and average
    daily reward per hub. ``jobs`` fans the methods out over worker
    processes exactly like :func:`run_sweep` — byte-identical to serial.

    When the grid is capacity-limited and both ``ours`` and ``evening``
    run, the report adds the learned-vs-heuristic profit comparison under
    congestion (the feeder-aware pricing loop's acceptance measure).
    """
    resolved = resolve_spec(spec)
    methods = (
        tuple(methods) if methods is not None else DEFAULT_PRICING_METHODS
    )
    if not methods:
        raise ConfigError("run_pricing needs at least one method")
    for name in methods:
        if name not in PRICING_POLICIES:
            raise ConfigError(
                f"unknown pricing method {name!r}; "
                f"available: {', '.join(PRICING_POLICIES)}"
            )
    if len(set(methods)) != len(methods):
        raise ConfigError(f"duplicate pricing methods in {methods}")

    sweep = SweepSpec(
        base=resolved,
        parameters={"pricing.policy": methods},
        name=f"{resolved.name}-pricing",
    )
    results = run_sweep(
        sweep, jobs=jobs, chunk_size=chunk_size, telemetry=telemetry
    )

    table: dict[str, dict[str, object]] = {}
    for name, method_result in zip(methods, results):
        method_data = method_result.data
        table[name] = {
            "network_profit": method_data["network_profit"],
            "avg_daily_reward_per_hub": float(
                np.asarray(method_data["avg_daily_reward_per_hub"]).mean()
            ),
            "discounted_hub_slots": method_data.get(
                "pricing_discounted_hub_slots", 0
            ),
            "unserved_kwh": method_data["network_unserved_kwh"],
        }

    n_hubs = results[0].data["n_hubs"]
    days = results[0].data["days"]
    coupled = resolved.grid.feeder_capacity_kw is not None
    data = {
        "scenario": resolved.name,
        "spec": resolved.to_dict(),
        "n_hubs": n_hubs,
        "days": days,
        "methods": list(methods),
        "per_method": table,
        "discount_level": resolved.pricing.discount_level,
        "budget_fraction": resolved.pricing.budget_fraction,
        "feeder_capacity_kw": resolved.grid.feeder_capacity_kw,
        "feeder_aware": resolved.pricing.feeder_aware and coupled,
    }

    baseline = table.get("none")
    lines = [
        f"fleet pricing over {n_hubs} hubs x {days} days, "
        f"discount level {resolved.pricing.discount_level:g}, "
        f"budget {resolved.pricing.budget_fraction:g}"
        + (", feeder-aware" if data["feeder_aware"] else ""),
    ]
    for name in methods:
        row = table[name]
        delta = (
            ""
            if baseline is None or name == "none"
            else (
                f"  (vs none "
                f"{row['network_profit'] - baseline['network_profit']:+,.0f})"
            )
        )
        lines.append(
            f"  {name:<8} profit ${row['network_profit']:>12,.0f}  "
            f"avg daily/hub ${row['avg_daily_reward_per_hub']:>8,.1f}  "
            f"discounted {row['discounted_hub_slots']:>6}{delta}"
        )
    if coupled and "ours" in table and "evening" in table:
        ours = table["ours"]["network_profit"]
        heuristic = table["evening"]["network_profit"]
        lines.append(
            f"learned vs heuristic under congestion: ours ${ours:,.0f} vs "
            f"evening ${heuristic:,.0f} ({ours - heuristic:+,.0f})"
        )

    result = ExperimentResult(
        experiment_id="fleet-price",
        title="Fleet-scale discount pricing (Table III at city scale)",
        data=data,
        lines=lines,
    )
    if telemetry is not None:
        telemetry.metrics.inc("pricing.methods", len(methods))
        telemetry.set_backend(get_backend(resolved.run.backend).name)
        result.telemetry = telemetry.to_dict()
    return result
