"""The scenario facade: build, run, and sweep specs in three calls.

>>> from repro import api
>>> result = api.run("paper-default")            # a named preset
>>> result = api.run(api.load_spec("city.json"))  # a spec file
>>> compiled = api.build(spec)                    # engines, not yet run

``run`` compiles a :class:`~repro.spec.scenario.ScenarioSpec` (or preset
name) into the batched fleet engine, runs the spec'd scheduler over the
horizon, and returns the same :class:`~repro.experiments.base.
ExperimentResult` shape the ``fleet`` experiment always produced — with
the originating spec embedded under ``data["spec"]`` so every export is
self-describing and replayable. ``run_sweep`` expands a
:class:`~repro.spec.sweep.SweepSpec` and runs each job.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from .errors import ConfigError
from .experiments.base import ExperimentResult
from .spec.compiler import CompiledScenario, build as _compile
from .spec.presets import get_preset
from .spec.scenario import ScenarioSpec
from .spec.sweep import SweepSpec


def load_spec(path: str | Path) -> ScenarioSpec:
    """Load a :class:`ScenarioSpec` from a JSON file."""
    return ScenarioSpec.load(path)


def resolve_spec(spec: ScenarioSpec | str) -> ScenarioSpec:
    """Accept a spec instance or a preset name."""
    if isinstance(spec, ScenarioSpec):
        return spec
    if isinstance(spec, str):
        return get_preset(spec)
    raise ConfigError(
        f"expected a ScenarioSpec or preset name, got {type(spec).__name__}"
    )


def build(spec: ScenarioSpec | str) -> CompiledScenario:
    """Compile a spec (or preset name) into runnable engines."""
    return _compile(resolve_spec(spec))


def run(spec: ScenarioSpec | str) -> ExperimentResult:
    """Compile and run a scenario, reporting per-hub + network economics."""
    resolved = resolve_spec(spec)
    compiled = _compile(resolved)
    simulation = compiled.simulation
    n_hubs, days = compiled.n_hubs, compiled.days

    start = time.perf_counter()
    book = compiled.execute()
    elapsed = time.perf_counter() - start
    hub_slots = n_hubs * simulation.horizon
    throughput = hub_slots / elapsed if elapsed > 0 else float("inf")

    profit = book.profit_per_hub
    daily = book.daily_rewards()
    blackout_slots = int(book.blackout.sum())
    coupled = resolved.grid.feeder_capacity_kw is not None
    voll = resolved.run.voll_per_kwh

    # Wall-clock throughput stays out of `data`: the --out JSON must be
    # deterministic so runs can be diffed across PRs (it is printed below).
    data = {
        "scenario": resolved.name,
        "spec": resolved.to_dict(),
        "n_hubs": n_hubs,
        "days": days,
        "scheduler": compiled.scheduler.name,
        "network_profit": book.profit,
        "network_operating_cost": book.operating_cost,
        "network_charging_revenue": book.charging_revenue,
        "network_voll_cost": book.voll_cost,
        "network_unserved_kwh": book.total_unserved_kwh,
        "blackout_slots": blackout_slots,
        "profit_per_hub": profit,
        "avg_daily_reward_per_hub": daily.mean(axis=1),
        "kinds": [s.site.kind for s in compiled.scenarios],
        # Shared-grid coupling (zeros / infinities when uncoupled).
        "n_feeders": simulation.feeders.n_feeders,
        "feeder_capacity_kw": resolved.grid.feeder_capacity_kw,
        "allocation": simulation.feeders.policy,
        "import_shortfall_kwh": book.total_import_shortfall_kwh,
        "congested_feeder_slots": book.congested_feeder_slots,
        "feeder_import_kwh": book.feeder_import_kwh,
        "feeder_shortfall_kwh": book.feeder_shortfall_kwh,
        "feeder_peak_import_kw": book.feeder_peak_import_kw,
    }

    lines = [
        f"fleet of {n_hubs} hubs x {days} days, "
        f"scheduler={compiled.scheduler.name}"
        + (f", scenario={resolved.name}" if resolved.name != "fleet" else ""),
        f"batched throughput {throughput:,.0f} hub-slots/sec "
        f"({hub_slots} hub-slots in {elapsed:.3f}s)",
        f"network profit ${book.profit:,.0f}  (revenue ${book.charging_revenue:,.0f}"
        f" - operating ${book.operating_cost:,.0f}"
        + (f" - lost-load ${book.voll_cost:,.0f}" if voll > 0 else "")
        + ")",
        f"blackout slots {blackout_slots}, unserved "
        f"{book.total_unserved_kwh:.1f} kWh",
        f"per-hub daily reward: min {daily.mean(axis=1).min():.1f}  "
        f"median {np.median(daily.mean(axis=1)):.1f}  "
        f"max {daily.mean(axis=1).max():.1f}",
    ]
    if coupled:
        capacity = resolved.grid.feeder_capacity_kw
        profile = " (profiled)" if resolved.grid.capacity_profile else ""
        lines.append(
            f"shared grid: {simulation.feeders.n_feeders} feeders x "
            f"{capacity:,.0f} kW{profile} ({simulation.feeders.policy}); "
            f"curtailed {book.total_import_shortfall_kwh:,.1f} kWh over "
            f"{book.congested_feeder_slots} congested feeder-slots"
        )
    show = min(n_hubs, 12)
    for i in range(show):
        scenario = compiled.scenarios[i]
        lines.append(
            f"  hub {scenario.site.hub_id:>3} ({scenario.site.kind:<5}) "
            f"profit ${profit[i]:>10,.1f}  avg daily {daily[i].mean():>7.1f}"
        )
    if n_hubs > show:
        lines.append(f"  ... ({n_hubs - show} more hubs)")

    return ExperimentResult(
        experiment_id="fleet",
        title="Batched fleet simulation (network-scale scheduling)",
        data=data,
        lines=lines,
    )


def run_sweep(
    sweep: SweepSpec, *, jobs: int | None = None
) -> list[ExperimentResult]:
    """Run every job of a sweep grid; each result carries its overrides.

    Results keep the ``fleet`` data layout, tagged with
    ``data["sweep_overrides"]`` and an indexed experiment id
    (``fleet[0]``, ``fleet[1]``, …) so a ``--out`` export of the whole
    sweep stays diffable job by job.

    ``jobs`` selects the executor: ``None`` or ``1`` runs the grid
    serially in-process (the default, byte-identical to always),
    ``N > 1`` fans the jobs out over ``N`` worker processes
    (:mod:`repro.parallel`), and ``0`` means one worker per CPU core.
    Parallel results are re-ordered by job index and tagged identically,
    so serial and parallel sweeps produce byte-identical exports.
    """
    from .parallel import resolve_jobs, run_jobs_parallel

    expanded = sweep.jobs()
    n_workers = resolve_jobs(jobs)
    if n_workers > 1 and len(expanded) > 1:
        results = run_jobs_parallel(expanded, n_workers)
    else:
        results = [run(job.spec) for job in expanded]
    for job, result in zip(expanded, results):
        result.experiment_id = f"fleet[{job.index}]"
        result.data["sweep"] = sweep.name
        result.data["sweep_overrides"] = dict(job.overrides)
    return results
