"""Deterministic random-number management.

Every stochastic component (weather, traffic, charging behaviour, NN init,
PPO exploration) draws from its own named stream derived from a single root
seed, so that experiments are reproducible end-to-end and perturbing one
component does not shift the random state of another. Streams are spawned
with :class:`numpy.random.SeedSequence` children keyed by a stable hash of
the stream name.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

from .errors import ConfigError


def _name_to_entropy(name: str) -> int:
    """Stable 64-bit entropy derived from a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Produces independent, named :class:`numpy.random.Generator` streams.

    >>> factory = RngFactory(seed=7)
    >>> weather_rng = factory.stream("weather")
    >>> traffic_rng = factory.stream("traffic")

    Calling :meth:`stream` twice with the same name returns generators with
    identical state sequences, which keeps components reproducible even when
    construction order changes.
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise ConfigError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """A fresh generator for the named stream (same name ⇒ same stream)."""
        if not name:
            raise ConfigError("stream name must be a non-empty string")
        seq = np.random.SeedSequence(
            entropy=self._seed, spawn_key=(_name_to_entropy(name),)
        )
        return np.random.Generator(np.random.PCG64(seq))

    def substreams(self, name: str, count: int) -> Iterator[np.random.Generator]:
        """``count`` independent generators under one named family.

        Used for per-station / per-hub randomness: ``substreams("hub", 12)``
        yields one stream per hub that is stable under fleet-size changes.
        """
        if count < 0:
            raise ConfigError(f"count must be non-negative, got {count}")
        for index in range(count):
            yield self.stream(f"{name}/{index}")

    def child(self, name: str) -> "RngFactory":
        """A derived factory whose streams are disjoint from the parent's."""
        derived_seed = (_name_to_entropy(name) ^ self._seed) & 0x7FFFFFFFFFFFFFFF
        return RngFactory(seed=derived_seed)


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Convenience wrapper mirroring :func:`numpy.random.default_rng`."""
    return np.random.default_rng(seed)
