"""Fig. 13 — daily reward curves of four example hubs × four methods."""

from __future__ import annotations

from .base import ExperimentResult
from .scheduling_common import run_scheduling_study

#: Hubs plotted in the paper's Fig. 13.
EXAMPLE_HUBS = [0, 1, 2, 3]


def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Daily Eq. 12 rewards over the 30-day test episodes, per method."""
    results = run_scheduling_study(hub_ids=EXAMPLE_HUBS, seed=seed, scale=scale)

    series: dict[int, dict[str, list[float]]] = {}
    averages: dict[int, dict[str, float]] = {}
    for result in results:
        series.setdefault(result.hub_id, {})[result.method] = (
            result.reward_series().tolist()
        )
        averages.setdefault(result.hub_id, {})[result.method] = (
            result.average_daily_reward
        )

    lines = []
    ours_best = 0
    for hub_id in EXAMPLE_HUBS:
        row = averages[hub_id]
        ranked = sorted(row, key=row.get, reverse=True)
        if ranked[0] == "Ours":
            ours_best += 1
        cells = "  ".join(f"{m}={row[m]:.1f}" for m in ("Ours", "OR", "IPS", "DR"))
        lines.append(f"hub {hub_id + 1}: avg daily reward  {cells}  (best: {ranked[0]})")
    lines.append(
        f"paper shape: Ours achieves the best average reward "
        f"({ours_best}/{len(EXAMPLE_HUBS)} hubs here; paper: 4/4, band ~275-560)"
    )
    return ExperimentResult(
        experiment_id="fig13",
        title="Total reward of four example hubs (Fig. 13)",
        data={"series": series, "averages": averages},
        lines=lines,
    )
