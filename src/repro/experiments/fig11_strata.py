"""Fig. 11 — per-hour strata probabilities for four example stations."""

from __future__ import annotations

import numpy as np

from ..units import HOURS_PER_DAY
from .base import ExperimentResult
from .pricing_common import run_pricing_study

#: Stations plotted in the paper's Fig. 11.
EXAMPLE_STATIONS = (0, 1, 2, 3)


def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Predicted [None, Incentive, Always] curves over the day, 4 stations."""
    study = run_pricing_study(seed=seed, scale=scale)
    hours = np.arange(HOURS_PER_DAY)

    curves: dict[int, dict[str, list[float]]] = {}
    lines: list[str] = []
    for station in EXAMPLE_STATIONS:
        probs = study.ect_price.predict_strata(
            np.full(HOURS_PER_DAY, station), hours
        )
        curves[station] = {
            "none": probs[:, 0].tolist(),
            "incentive": probs[:, 1].tolist(),
            "always": probs[:, 2].tolist(),
        }
        evening = probs[18:24, 1].mean()
        daytime = probs[6:18, 1].mean()
        lines.append(
            f"station {station}: mean P(Incentive) evening={evening:.2f} "
            f"daytime={daytime:.2f} "
            f"({'evening-dominant ✓' if evening > daytime else 'NOT evening-dominant'})"
        )
    lines.append(
        "paper shape: Incentive Charge probability concentrates at night "
        "(18:00-24:00) for all four stations"
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="Strata prediction of four example stations (Fig. 11)",
        data={"curves": curves},
        lines=lines,
    )
