"""Table II — ECT-Price vs OR / IPS / DR at 10–60 % discounts."""

from __future__ import annotations

from ..causal import render_table, score_decision
from .base import ExperimentResult
from .pricing_common import run_pricing_study

#: The paper's six discount levels.
DISCOUNT_LEVELS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)

#: Published rewards for shape comparison (method → level → reward).
PAPER_REWARDS = {
    "OR": {0.1: 5687, 0.2: 5439, 0.3: 5191, 0.4: 4975, 0.5: 4940, 0.6: 4437},
    "IPS": {0.1: 5727, 0.2: 5601, 0.3: 5329, 0.4: 4999, 0.5: 4751, 0.6: 4653},
    "DR": {0.1: 5830, 0.2: 5276, 0.3: 5014, 0.4: 5195, 0.5: 4876, 0.6: 4661},
    "Ours": {0.1: 6195, 0.2: 5963, 0.3: 5734, 0.4: 5462, 0.5: 5384, 0.6: 5072},
}


def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Regenerate Table II (counts per stratum + reward, per method/level)."""
    study = run_pricing_study(seed=seed, scale=scale)
    outcomes = []
    for policy in study.policies:
        for level in DISCOUNT_LEVELS:
            decision = policy.decide(
                study.test.station_ids,
                study.test.time_ids,
                discount_level=level,
                budget=study.budget,
            )
            outcomes.append(
                score_decision(
                    decision,
                    study.test.stratum,
                    method=policy.name,
                    discount_level=level,
                )
            )

    rows = {
        (o.method, o.discount_level): {
            "none": o.n_none,
            "incentive": o.n_incentive,
            "always": o.n_always,
            "reward": o.reward,
        }
        for o in outcomes
    }
    lines = render_table(outcomes).splitlines()
    lines.append("")
    lines.append("paper-vs-measured reward (shape check):")
    for method in ("Ours", "OR", "IPS", "DR"):
        measured = " ".join(
            f"{rows[(method, lvl)]['reward']:.0f}" for lvl in DISCOUNT_LEVELS
        )
        paper = " ".join(f"{PAPER_REWARDS[method][lvl]}" for lvl in DISCOUNT_LEVELS)
        lines.append(f"  {method:<5} measured: {measured}")
        lines.append(f"  {method:<5} paper:    {paper}")
    return ExperimentResult(
        experiment_id="table2",
        title="ECT-Price vs uplift baselines (Table II)",
        data={"rows": rows, "budget": study.budget, "n_test": len(study.test)},
        lines=lines,
    )
