"""``fleet-grid`` — feeder congestion sweep over the coupled fleet engine.

The city-scale question the shared-grid coupling opens: how does network
economics degrade as the feeders hubs hang off get tighter? The sweep
first measures the fleet's uncongested per-feeder peak draw, then re-runs
the same fleet with feeder capacity set to shrinking fractions of that
peak — a :class:`~repro.spec.sweep.SweepSpec` grid over one base
:class:`~repro.spec.scenario.ScenarioSpec` — reporting profit, curtailed
import, unserved energy, and congested feeder-slots at each level, plus
both allocation policies at the tightest level.

Reliability is monetized: unserved energy is charged at
:data:`VOLL_PER_KWH` (the value-of-lost-load penalty in Eq. 12 profit),
so deep congestion *lowers* profit instead of quietly raising it by
skipping grid purchases the feeder refused. Exposed on the CLI as
``ect-hub run fleet-grid``.
"""

from __future__ import annotations

from ..spec import (
    BlackoutSpec,
    FleetSpec,
    GridSpec,
    RunSpec,
    ScenarioSpec,
    SweepSpec,
)
from .base import ExperimentResult, scaled

#: Fleet shape at scale=1.
DEFAULT_N_HUBS = 24
DEFAULT_DAYS = 7
N_FEEDERS = 4

#: Feeder capacity as a fraction of the uncongested per-feeder peak draw.
CAPACITY_FRACTIONS = (1.01, 0.8, 0.6, 0.4)

#: Blackout intensity matching the ``fleet`` experiment.
OUTAGE_PROBABILITY = 0.001

#: Value-of-lost-load: every unserved kWh costs this much (≈10x the
#: highest RTP level, the usual order for outage costs vs energy prices).
VOLL_PER_KWH = 2.0


def _base_spec(n_hubs: int, days: int, seed: int) -> ScenarioSpec:
    """The shared scenario: only feeder capacity/allocation vary."""
    return ScenarioSpec(
        name="fleet-grid",
        description="feeder congestion sweep base scenario",
        fleet=FleetSpec(n_hubs=n_hubs),
        grid=GridSpec(n_feeders=N_FEEDERS),
        blackout=BlackoutSpec(outage_probability_per_hour=OUTAGE_PROBABILITY),
        run=RunSpec(days=days, seed=seed, voll_per_kwh=VOLL_PER_KWH),
    )


def run(
    *,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int | None = None,
    telemetry=None,
) -> ExperimentResult:
    """Sweep feeder capacity from uncongested to heavily congested.

    ``jobs`` fans the capacity levels out over worker processes via
    :func:`repro.api.run_sweep`; the default stays serial, and both
    executors book identical numbers. ``telemetry`` forwards a
    :class:`~repro.telemetry.session.Telemetry` session into the sweep
    (job traces nest under ``sweep-job`` spans) and the reference run.
    """
    # Local import: repro.api pulls the experiment registry package.
    from .. import api

    n_hubs = scaled(DEFAULT_N_HUBS, scale, minimum=N_FEEDERS)
    days = scaled(DEFAULT_DAYS, scale, minimum=3)
    base = _base_spec(n_hubs, days, seed)

    # Reference: same feeder topology, unlimited capacity.
    reference = api.run(base, telemetry=telemetry).data
    peak_kw = float(max(reference["feeder_peak_import_kw"]))

    # The shrinking capacity levels as one sweep grid; the priority-
    # allocation contrast at the tightest level runs as its own scenario.
    tight_kw = CAPACITY_FRACTIONS[-1] * peak_kw
    grid_sweep = SweepSpec(
        base=base,
        parameters={
            "grid.feeder_capacity_kw": tuple(
                fraction * peak_kw for fraction in CAPACITY_FRACTIONS
            ),
        },
        name="fleet-grid-capacity",
    )
    results = api.run_sweep(grid_sweep, jobs=jobs, telemetry=telemetry)
    priority_data = api.run(
        base.with_overrides(
            {
                "grid.feeder_capacity_kw": tight_kw,
                "grid.allocation": "priority",
            }
        ),
        telemetry=telemetry,
    ).data

    sweep = []
    for fraction, result in zip(CAPACITY_FRACTIONS, results):
        point = result.data
        sweep.append(
            {
                "capacity_fraction": fraction,
                "feeder_capacity_kw": point["sweep_overrides"][
                    "grid.feeder_capacity_kw"
                ],
                "network_profit": point["network_profit"],
                "voll_cost": point["network_voll_cost"],
                "import_shortfall_kwh": point["import_shortfall_kwh"],
                "unserved_kwh": point["network_unserved_kwh"],
                "congested_feeder_slots": point["congested_feeder_slots"],
                "feeder_shortfall_kwh": point["feeder_shortfall_kwh"],
            }
        )

    data = {
        "n_hubs": n_hubs,
        "days": days,
        "n_feeders": N_FEEDERS,
        "voll_per_kwh": VOLL_PER_KWH,
        "base_spec": base.to_dict(),
        "uncongested_profit": reference["network_profit"],
        "uncongested_peak_feeder_kw": peak_kw,
        "sweep": sweep,
        "priority_at_tightest": {
            "network_profit": priority_data["network_profit"],
            "voll_cost": priority_data["network_voll_cost"],
            "import_shortfall_kwh": priority_data["import_shortfall_kwh"],
            "unserved_kwh": priority_data["network_unserved_kwh"],
        },
    }

    lines = [
        f"fleet of {n_hubs} hubs x {days} days on {N_FEEDERS} shared feeders, "
        f"VoLL ${VOLL_PER_KWH:.2f}/kWh",
        f"uncongested: profit ${reference['network_profit']:,.0f}, "
        f"peak feeder draw {peak_kw:,.1f} kW",
        "capacity    profit      curtailed     unserved   congested slots",
    ]
    for row in sweep:
        lines.append(
            f"  {row['capacity_fraction']:>4.0%}   ${row['network_profit']:>10,.0f}  "
            f"{row['import_shortfall_kwh']:>9,.1f} kWh  "
            f"{row['unserved_kwh']:>8,.1f} kWh   {row['congested_feeder_slots']:>6d}"
        )
    lines.append(
        f"priority allocation @ {CAPACITY_FRACTIONS[-1]:.0%}: profit "
        f"${priority_data['network_profit']:,.0f}, curtailed "
        f"{priority_data['import_shortfall_kwh']:,.1f} kWh"
    )
    lines.append(
        "note: unserved energy is charged at the value of lost load "
        f"(${VOLL_PER_KWH:.2f}/kWh), so deep congestion now *lowers* Eq. 12 "
        "profit instead of raising it by skipping refused grid purchases"
    )

    return ExperimentResult(
        experiment_id="fleet-grid",
        title="Feeder congestion sweep (shared-grid coupling)",
        data=data,
        lines=lines,
    )
