"""``fleet-grid`` — feeder congestion sweep over the coupled fleet engine.

The city-scale question the shared-grid coupling opens: how does network
economics degrade as the feeders hubs hang off get tighter? The sweep
first measures the fleet's uncongested per-feeder peak draw, then re-runs
the same fleet with feeder capacity set to shrinking fractions of that
peak, reporting profit, curtailed import, unserved energy, and congested
feeder-slots at each level — for both allocation policies at the tightest
level. Exposed on the CLI as ``ect-hub run fleet-grid``.
"""

from __future__ import annotations

import numpy as np

from ..fleet import FleetRuleBasedScheduler, build_default_fleet
from .base import ExperimentResult, scaled

#: Fleet shape at scale=1.
DEFAULT_N_HUBS = 24
DEFAULT_DAYS = 7
N_FEEDERS = 4

#: Feeder capacity as a fraction of the uncongested per-feeder peak draw.
CAPACITY_FRACTIONS = (1.01, 0.8, 0.6, 0.4)

#: Blackout intensity matching the ``fleet`` experiment.
OUTAGE_PROBABILITY = 0.001


def _run_fleet(n_hubs, days, seed, capacity_kw, allocation):
    _, sim = build_default_fleet(
        n_hubs,
        n_days=days,
        seed=seed,
        outage_probability=OUTAGE_PROBABILITY,
        n_feeders=N_FEEDERS,
        feeder_capacity_kw=capacity_kw,
        allocation=allocation,
    )
    return sim.run(FleetRuleBasedScheduler())


def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Sweep feeder capacity from uncongested to heavily congested."""
    n_hubs = scaled(DEFAULT_N_HUBS, scale, minimum=N_FEEDERS)
    days = scaled(DEFAULT_DAYS, scale, minimum=3)

    # Reference: same feeder topology, unlimited capacity.
    reference = _run_fleet(n_hubs, days, seed, np.inf, "proportional")
    peak_kw = float(reference.feeder_peak_import_kw.max())

    sweep = []
    for fraction in CAPACITY_FRACTIONS:
        capacity = fraction * peak_kw
        book = _run_fleet(n_hubs, days, seed, capacity, "proportional")
        sweep.append(
            {
                "capacity_fraction": fraction,
                "feeder_capacity_kw": capacity,
                "network_profit": book.profit,
                "import_shortfall_kwh": book.total_import_shortfall_kwh,
                "unserved_kwh": book.total_unserved_kwh,
                "congested_feeder_slots": book.congested_feeder_slots,
                "feeder_shortfall_kwh": book.feeder_shortfall_kwh,
            }
        )

    # Allocation-policy contrast at the tightest level.
    tight_kw = CAPACITY_FRACTIONS[-1] * peak_kw
    priority = _run_fleet(n_hubs, days, seed, tight_kw, "priority")

    data = {
        "n_hubs": n_hubs,
        "days": days,
        "n_feeders": N_FEEDERS,
        "uncongested_profit": reference.profit,
        "uncongested_peak_feeder_kw": peak_kw,
        "sweep": sweep,
        "priority_at_tightest": {
            "network_profit": priority.profit,
            "import_shortfall_kwh": priority.total_import_shortfall_kwh,
            "unserved_kwh": priority.total_unserved_kwh,
        },
    }

    lines = [
        f"fleet of {n_hubs} hubs x {days} days on {N_FEEDERS} shared feeders",
        f"uncongested: profit ${reference.profit:,.0f}, "
        f"peak feeder draw {peak_kw:,.1f} kW",
        "capacity    profit      curtailed     unserved   congested slots",
    ]
    for row in sweep:
        lines.append(
            f"  {row['capacity_fraction']:>4.0%}   ${row['network_profit']:>10,.0f}  "
            f"{row['import_shortfall_kwh']:>9,.1f} kWh  "
            f"{row['unserved_kwh']:>8,.1f} kWh   {row['congested_feeder_slots']:>6d}"
        )
    lines.append(
        f"priority allocation @ {CAPACITY_FRACTIONS[-1]:.0%}: profit "
        f"${priority.profit:,.0f}, curtailed "
        f"{priority.total_import_shortfall_kwh:,.1f} kWh"
    )
    lines.append(
        "note: Eq. 12 profit does not monetize unserved energy, so deep "
        "congestion can *raise* profit while reliability (unserved kWh) "
        "collapses — read the two columns together"
    )

    return ExperimentResult(
        experiment_id="fleet-grid",
        title="Feeder congestion sweep (shared-grid coupling)",
        data=data,
        lines=lines,
    )
