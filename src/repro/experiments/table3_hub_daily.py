"""Table III — average daily rewards for all twelve ECT-Hubs."""

from __future__ import annotations

from .base import ExperimentResult
from .scheduling_common import run_scheduling_study

#: Published Table III (method → 12 hub values), for shape comparison.
PAPER_TABLE3 = {
    "OR": [529.57, 453.08, 385.44, 498.88, 535.48, 483.43, 488.83, 514.69, 332.33, 519.09, 473.27, 534.02],
    "IPS": [498.63, 440.21, 373.04, 486.07, 526.70, 459.37, 478.72, 498.03, 305.15, 514.06, 462.06, 534.27],
    "DR": [535.58, 449.32, 384.31, 497.78, 535.05, 474.18, 492.32, 515.61, 325.05, 511.27, 459.86, 542.06],
    "Ours": [565.19, 488.05, 400.41, 510.22, 566.03, 496.36, 512.98, 533.42, 352.29, 540.86, 499.76, 563.12],
}

N_HUBS = 12


def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Average daily reward per hub per pricing method (Table III)."""
    results = run_scheduling_study(
        hub_ids=list(range(N_HUBS)), seed=seed, scale=scale
    )
    table: dict[str, list[float]] = {m: [0.0] * N_HUBS for m in ("Ours", "OR", "IPS", "DR")}
    for result in results:
        table[result.method][result.hub_id] = result.average_daily_reward

    lines = ["method  " + "".join(f"hub{i + 1:<5d}" for i in range(N_HUBS))]
    for method in ("OR", "IPS", "DR", "Ours"):
        lines.append(
            f"{method:<7} " + "".join(f"{v:<8.1f}" for v in table[method])
        )
    wins = sum(
        1
        for hub in range(N_HUBS)
        if max(table, key=lambda m: table[m][hub]) == "Ours"
    )
    lines.append(
        f"shape check: Ours has the highest average daily reward on "
        f"{wins}/{N_HUBS} hubs (paper: 12/12)"
    )
    return ExperimentResult(
        experiment_id="table3",
        title="Average daily rewards for 12 ECT-Hubs (Table III)",
        data={"table": table, "paper": PAPER_TABLE3, "ours_wins": wins},
        lines=lines,
    )
