"""Ablations beyond the paper's tables.

* ``abl-sched`` — scheduler quality on one hub: PPO vs rule-based, greedy-
  renewable, random, idle, and the clairvoyant DP oracle upper bound.
* ``abl-cbp`` — sensitivity of scheduling profit to the battery operating
  cost ``c_BP`` (the paper fixes it at 0.01).
* ``abl-loss`` — ECT-Price loss form: the paper's printed MSE objective
  (Eq. 23) vs the likelihood form (see :mod:`repro.causal.ect_price`).
"""

from __future__ import annotations

import numpy as np

from ..causal import EctPriceConfig, EctPriceModel, EctPricePolicy, score_decision
from ..config import replace
from ..hub.scenario import ScenarioConfig, build_fleet_scenarios, resolve_occupancy
from ..rl.dp_oracle import optimal_schedule
from ..rl.env import EctHubEnv, EnvConfig
from ..rl.schedulers import (
    GreedyRenewableScheduler,
    IdleScheduler,
    RandomScheduler,
    RuleBasedScheduler,
)
from ..rl.training import evaluate_agent, evaluate_scheduler, train_ppo
from ..rng import RngFactory
from ..synth.charging import ChargingBehaviorModel, ChargingConfig
from ..units import HOURS_PER_DAY
from .base import ExperimentResult, scaled
from .pricing_common import run_pricing_study


def run_schedulers(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """abl-sched: every scheduler on identical traces + the DP bound."""
    factory = RngFactory(seed=seed)
    config = ScenarioConfig(n_hours=scaled(90, scale, minimum=35) * HOURS_PER_DAY)
    scenario = build_fleet_scenarios(config, factory)[0]
    behavior = ChargingBehaviorModel(config.charging, factory)
    discount = np.zeros(scenario.n_hours)
    env = EctHubEnv(
        scenario, behavior, discount, config=EnvConfig(), rng=factory.stream("abl/env")
    )
    episodes = scaled(3, scale, minimum=1)

    rows: dict[str, float] = {}
    agent, _ = train_ppo(
        env,
        episodes=scaled(24, scale, minimum=2),
        rng=factory.stream("abl/ppo"),
    )
    rows["ppo (ECT-DRL)"] = float(evaluate_agent(env, agent, episodes=episodes).mean())
    rows["rule-based"] = float(
        evaluate_scheduler(env, RuleBasedScheduler(), episodes=episodes).mean()
    )
    rows["greedy-renewable"] = float(
        evaluate_scheduler(env, GreedyRenewableScheduler(), episodes=episodes).mean()
    )
    rows["random"] = float(
        evaluate_scheduler(
            env, RandomScheduler(factory.stream("abl/rand")), episodes=episodes
        ).mean()
    )
    rows["idle"] = float(
        evaluate_scheduler(env, IdleScheduler(), episodes=episodes).mean()
    )

    # Clairvoyant bound on a fixed 30-day window with deterministic strata.
    rng = factory.stream("abl/oracle")
    window = 30 * HOURS_PER_DAY
    slots = np.arange(window)
    strata = behavior.sample_strata(scenario.site.hub_id, slots, rng)
    occupied = resolve_occupancy(strata, np.zeros(window, dtype=int))
    inputs = scenario.inputs_with_occupancy(
        np.concatenate([occupied, np.zeros(scenario.n_hours - window, dtype=int)]),
        np.zeros(scenario.n_hours),
    ).slice(0, window)
    oracle = optimal_schedule(scenario.build_hub(), inputs, n_soc_levels=31)
    rows["dp-oracle (bound)"] = oracle.total_reward / 30.0

    lines = [
        f"{name:<20} avg daily reward {value:8.1f}"
        for name, value in sorted(rows.items(), key=lambda kv: -kv[1])
    ]
    lines.append(
        "expected: dp-oracle >= ppo > heuristics; idle forfeits arbitrage/surplus"
    )
    return ExperimentResult(
        experiment_id="abl-sched",
        title="Scheduler ablation vs the clairvoyant DP bound",
        data={"rows": rows},
        lines=lines,
    )


def run_cbp_sweep(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """abl-cbp: how the battery op-cost reshapes battery usage and profit."""
    factory = RngFactory(seed=seed)
    base = ScenarioConfig(n_hours=scaled(60, scale, minimum=35) * HOURS_PER_DAY)
    behavior = ChargingBehaviorModel(base.charging, factory)
    levels = (0.0, 0.01, 0.1, 1.0)

    rows: dict[float, dict[str, float]] = {}
    for c_bp in levels:
        config = replace(base, c_bp_per_slot=c_bp)
        scenario = build_fleet_scenarios(config, factory)[0]
        env = EctHubEnv(
            scenario,
            behavior,
            np.zeros(scenario.n_hours),
            config=EnvConfig(),
            rng=factory.stream(f"cbp/{c_bp}/env"),
        )
        daily = evaluate_scheduler(
            env, RuleBasedScheduler(), episodes=scaled(2, scale, minimum=1)
        )
        # Count battery activity from the last evaluated episode's ledger.
        active = np.mean(
            [1.0 if l.action != 0 else 0.0 for l in env.simulation.book.ledgers]
        )
        rows[c_bp] = {"daily_reward": float(daily.mean()), "battery_duty": float(active)}

    lines = [
        f"c_BP={c_bp:<6} daily reward {row['daily_reward']:8.1f}  "
        f"battery duty {row['battery_duty']:.0%}"
        for c_bp, row in rows.items()
    ]
    lines.append("paper setting c_BP=0.01 is in the cheap-operation regime")
    return ExperimentResult(
        experiment_id="abl-cbp",
        title="Battery operating-cost sensitivity",
        data={"rows": {str(k): v for k, v in rows.items()}},
        lines=lines,
    )


def run_loss_forms(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """abl-loss: Eq. 23 MSE objective vs the likelihood (NLL) form."""
    study = run_pricing_study(seed=seed, scale=scale)
    factory = RngFactory(seed=seed)
    rows: dict[str, dict[str, float]] = {}
    for form in ("nll", "mse"):
        config = EctPriceConfig(
            epochs=scaled(30, scale, minimum=2),
            batch_size=128,
            loss_form=form,
        )
        model = EctPriceModel(
            study.behavior.config.n_stations,
            study.train.n_time_ids,
            config,
            factory.stream(f"loss/{form}"),
        )
        model.fit(study.train)
        decision = EctPricePolicy(model).decide(
            study.test.station_ids,
            study.test.time_ids,
            discount_level=0.1,
            budget=study.budget,
        )
        outcome = score_decision(
            decision, study.test.stratum, method=form, discount_level=0.1
        )
        rows[form] = {
            "incentive": outcome.n_incentive,
            "always": outcome.n_always,
            "reward": outcome.reward,
        }
    lines = [
        f"loss={form:<4} incentive {row['incentive']:>6.0f}  always "
        f"{row['always']:>5.0f}  reward {row['reward']:8.1f}"
        for form, row in rows.items()
    ]
    lines.append(
        "the likelihood form converges faster than the printed Eq. 23 MSE "
        "objective at equal epochs"
    )
    return ExperimentResult(
        experiment_id="abl-loss",
        title="ECT-Price loss-form ablation (Eq. 23 MSE vs NLL)",
        data={"rows": rows},
        lines=lines,
    )
