"""Fig. 3 — EV charging frequency by hour of day."""

from __future__ import annotations

from ..rng import RngFactory
from ..synth.charging import ChargingBehaviorModel, ChargingConfig
from .base import ExperimentResult, scaled, series_line


def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Hourly session histogram over the fleet's multi-year log.

    The paper's dataset covers 12 stations × 3 years with 70k+ records;
    ``scale=1`` regenerates that exact volume.
    """
    factory = RngFactory(seed=seed)
    behavior = ChargingBehaviorModel(ChargingConfig(), factory)
    n_days = scaled(3 * 365, scale, minimum=30)
    log = behavior.simulate_log(n_days)
    counts = log.counts_by_hour()

    ratio = counts.max() / max(counts.min(), 1)
    lines = [
        f"log: {n_days} days x {behavior.config.n_stations} stations, "
        f"{len(log)} items, {log.n_sessions} charging sessions "
        f"(paper: >70,000 records)",
        *series_line("sessions per hour-of-day", counts, fmt="{:.0f}"),
        f"peak/trough ratio: {ratio:.1f}x "
        "(paper: significant usage variation across the day) "
        + ("✓" if ratio > 2.0 else "NOT reproduced"),
    ]
    return ExperimentResult(
        experiment_id="fig3",
        title="Charging frequencies of electric vehicles (Fig. 3)",
        data={"counts": counts.tolist(), "n_sessions": log.n_sessions},
        lines=lines,
    )
