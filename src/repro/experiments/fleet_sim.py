"""``fleet`` — network-scale scheduling over the batched fleet engine.

Beyond the paper's 12-hub evaluation: simulate an arbitrary-size fleet of
heterogeneous urban/rural hubs in one :class:`~repro.fleet.FleetSimulation`
run, reporting per-hub Eq. 12 profit and the network totals the Fig. 6
"hub network" vision implies. Exposed on the CLI as
``ect-hub fleet --n-hubs 200``.

Since the spec layer landed this runner is the *flag shim*: the keyword
arguments are folded into a :class:`~repro.spec.scenario.ScenarioSpec`
(:func:`~repro.spec.compiler.spec_from_fleet_flags`) and executed by
:func:`repro.api.run`, so a flag-built run and its serialized-spec twin
are the same run.
"""

from __future__ import annotations

from ..spec.compiler import DEFAULT_OUTAGE_PROBABILITY, spec_from_fleet_flags
from ..spec.scenario import DEFAULT_DAYS, DEFAULT_N_HUBS
from .base import ExperimentResult

__all__ = [
    # Re-exported from the spec layer, which owns the flag defaults now.
    "DEFAULT_DAYS",
    "DEFAULT_N_HUBS",
    "DEFAULT_OUTAGE_PROBABILITY",
    "run",
]


def run(
    *,
    scale: float = 1.0,
    seed: int = 0,
    n_hubs: int | None = None,
    days: int | None = None,
    scheduler: str = "rule-based",
    n_feeders: int = 1,
    feeder_capacity_kw: float | None = None,
    allocation: str = "proportional",
    telemetry=None,
) -> ExperimentResult:
    """Batch-simulate a fleet and aggregate per-hub + network economics.

    ``feeder_capacity_kw`` enables shared-grid coupling (see
    :class:`~repro.fleet.FeederGroup`); the default is the uncoupled
    one-infinite-feeder fleet. ``telemetry`` forwards a
    :class:`~repro.telemetry.session.Telemetry` session to ``api.run``.
    """
    # Local import: repro.api pulls experiments.base, so importing it at
    # module level would cycle through the experiment registry.
    from .. import api

    return api.run(
        spec_from_fleet_flags(
            scale=scale,
            seed=seed,
            n_hubs=n_hubs,
            days=days,
            scheduler=scheduler,
            n_feeders=n_feeders,
            feeder_capacity_kw=feeder_capacity_kw,
            allocation=allocation,
        ),
        telemetry=telemetry,
    )
