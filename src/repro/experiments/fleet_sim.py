"""``fleet`` — network-scale scheduling over the batched fleet engine.

Beyond the paper's 12-hub evaluation: simulate an arbitrary-size fleet of
heterogeneous urban/rural hubs in one :class:`~repro.fleet.FleetSimulation`
run, reporting per-hub Eq. 12 profit and the network totals the Fig. 6
"hub network" vision implies. Exposed on the CLI as
``ect-hub fleet --n-hubs 200``.
"""

from __future__ import annotations

import time

import numpy as np

from ..fleet import build_default_fleet, make_fleet_scheduler
from ..rng import RngFactory
from .base import ExperimentResult, scaled

#: Fleet size / horizon at scale=1 (paper fleet is 12 hubs; we go bigger).
DEFAULT_N_HUBS = 24
DEFAULT_DAYS = 14

#: Blackout intensity: rare outages so resilience stats are non-trivial.
DEFAULT_OUTAGE_PROBABILITY = 0.001


def run(
    *,
    scale: float = 1.0,
    seed: int = 0,
    n_hubs: int | None = None,
    days: int | None = None,
    scheduler: str = "rule-based",
    n_feeders: int = 1,
    feeder_capacity_kw: float | None = None,
    allocation: str = "proportional",
) -> ExperimentResult:
    """Batch-simulate a fleet and aggregate per-hub + network economics.

    ``feeder_capacity_kw`` enables shared-grid coupling (see
    :class:`~repro.fleet.FeederGroup`); the default is the uncoupled
    one-infinite-feeder fleet.
    """
    n_hubs = n_hubs if n_hubs is not None else scaled(DEFAULT_N_HUBS, scale, minimum=4)
    days = days if days is not None else scaled(DEFAULT_DAYS, scale, minimum=7)

    scenarios, sim = build_default_fleet(
        n_hubs,
        n_days=days,
        seed=seed,
        outage_probability=DEFAULT_OUTAGE_PROBABILITY,
        n_feeders=n_feeders,
        feeder_capacity_kw=feeder_capacity_kw,
        allocation=allocation,
    )
    sched = make_fleet_scheduler(
        scheduler, n_hubs=n_hubs, rng_factory=RngFactory(seed=seed)
    )

    start = time.perf_counter()
    book = sim.run(sched)
    elapsed = time.perf_counter() - start
    hub_slots = n_hubs * sim.horizon
    throughput = hub_slots / elapsed if elapsed > 0 else float("inf")

    profit = book.profit_per_hub
    daily = book.daily_rewards()
    blackout_slots = int(book.blackout.sum())

    # Wall-clock throughput stays out of `data`: the --out JSON must be
    # deterministic so runs can be diffed across PRs (it is printed below).
    coupled = feeder_capacity_kw is not None
    data = {
        "n_hubs": n_hubs,
        "days": days,
        "scheduler": sched.name,
        "network_profit": book.profit,
        "network_operating_cost": book.operating_cost,
        "network_charging_revenue": book.charging_revenue,
        "network_unserved_kwh": book.total_unserved_kwh,
        "blackout_slots": blackout_slots,
        "profit_per_hub": profit,
        "avg_daily_reward_per_hub": daily.mean(axis=1),
        "kinds": [s.site.kind for s in scenarios],
        # Shared-grid coupling (zeros / infinities when uncoupled).
        "n_feeders": sim.feeders.n_feeders,
        "feeder_capacity_kw": feeder_capacity_kw,
        "allocation": sim.feeders.policy,
        "import_shortfall_kwh": book.total_import_shortfall_kwh,
        "congested_feeder_slots": book.congested_feeder_slots,
        "feeder_import_kwh": book.feeder_import_kwh,
        "feeder_shortfall_kwh": book.feeder_shortfall_kwh,
        "feeder_peak_import_kw": book.feeder_peak_import_kw,
    }

    lines = [
        f"fleet of {n_hubs} hubs x {days} days, scheduler={sched.name}",
        f"batched throughput {throughput:,.0f} hub-slots/sec "
        f"({hub_slots} hub-slots in {elapsed:.3f}s)",
        f"network profit ${book.profit:,.0f}  (revenue ${book.charging_revenue:,.0f}"
        f" - operating ${book.operating_cost:,.0f})",
        f"blackout slots {blackout_slots}, unserved "
        f"{book.total_unserved_kwh:.1f} kWh",
        f"per-hub daily reward: min {daily.mean(axis=1).min():.1f}  "
        f"median {np.median(daily.mean(axis=1)):.1f}  "
        f"max {daily.mean(axis=1).max():.1f}",
    ]
    if coupled:
        lines.append(
            f"shared grid: {sim.feeders.n_feeders} feeders x "
            f"{feeder_capacity_kw:,.0f} kW ({sim.feeders.policy}); curtailed "
            f"{book.total_import_shortfall_kwh:,.1f} kWh over "
            f"{book.congested_feeder_slots} congested feeder-slots"
        )
    show = min(n_hubs, 12)
    for i in range(show):
        lines.append(
            f"  hub {scenarios[i].site.hub_id:>3} ({scenarios[i].site.kind:<5}) "
            f"profit ${profit[i]:>10,.1f}  avg daily {daily[i].mean():>7.1f}"
        )
    if n_hubs > show:
        lines.append(f"  ... ({n_hubs - show} more hubs)")

    return ExperimentResult(
        experiment_id="fleet",
        title="Batched fleet simulation (network-scale scheduling)",
        data=data,
        lines=lines,
    )
