"""Fig. 4 — battery voltage decline over ~350 days."""

from __future__ import annotations

import numpy as np

from ..energy.degradation import DegradationConfig, simulate_voltage_traces
from ..rng import RngFactory
from .base import ExperimentResult, scaled


def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Two cell voltage traces plus the series group (paper's axes)."""
    factory = RngFactory(seed=seed)
    n_days = scaled(350, scale, minimum=30)
    traces = simulate_voltage_traces(
        n_days, factory.stream("fig4"), DegradationConfig(), n_cells=2
    )
    cells = traces["cell_voltages"]
    group = traces["group_voltage"]

    lines = []
    for index in range(cells.shape[0]):
        start, end = cells[index, 0], cells[index, -1]
        lines.append(
            f"battery {index + 1}: {start:.3f} V -> {end:.3f} V over {n_days} days"
        )
    lines.append(f"battery group: {group[0]:.1f} V -> {group[-1]:.1f} V")
    monotone = all(
        np.polyfit(traces["days"], cells[i], 1)[0] < 0 for i in range(cells.shape[0])
    )
    lines.append(
        "paper shape: voltage declines steadily with time (2.30 -> 2.10 V band, "
        "group ~53-55 V) " + ("✓" if monotone else "NOT reproduced")
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="Voltage of two batteries and a battery group (Fig. 4)",
        data={
            "days": traces["days"].tolist(),
            "cells": cells.tolist(),
            "group": group.tolist(),
        },
        lines=lines,
    )
