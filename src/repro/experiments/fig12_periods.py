"""Fig. 12 — strata shares in the four six-hour periods."""

from __future__ import annotations

import numpy as np

from ..timeutils import PERIOD_LABELS, PERIODS_6H
from ..units import HOURS_PER_DAY
from .base import ExperimentResult
from .pricing_common import run_pricing_study

#: The paper's pies, as (incentive, always, none) percentages per period.
PAPER_SHARES = {
    "00:00-06:00": (7.2, 35.0, 57.7),
    "06:00-12:00": (6.0, 37.5, 56.5),
    "12:00-18:00": (2.7, 40.5, 56.8),
    "18:00-24:00": (41.4, 22.6, 36.0),
}


def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Predicted strata distribution per period over all test items."""
    study = run_pricing_study(seed=seed, scale=scale)
    probs = study.ect_price.predict_strata(
        study.test.station_ids, study.test.time_ids
    )
    predicted = probs.argmax(axis=1)
    hours = study.test.time_ids % HOURS_PER_DAY

    shares: dict[str, tuple[float, float, float]] = {}
    lines: list[str] = []
    for (lo, hi), label in zip(PERIODS_6H, PERIOD_LABELS):
        mask = (hours >= lo) & (hours < hi)
        if not mask.any():
            continue
        chunk = predicted[mask]
        inc = float((chunk == 1).mean() * 100)
        alw = float((chunk == 2).mean() * 100)
        none = float((chunk == 0).mean() * 100)
        shares[label] = (inc, alw, none)
        paper = PAPER_SHARES[label]
        lines.append(
            f"{label}: incentive {inc:5.1f}% always {alw:5.1f}% none {none:5.1f}%"
            f"   (paper: {paper[0]}/{paper[1]}/{paper[2]})"
        )
    evening_inc = shares["18:00-24:00"][0]
    other_inc = max(shares[l][0] for l in PERIOD_LABELS[:3])
    lines.append(
        "shape check: Incentive concentrates in 18:00-24:00 — "
        + ("✓" if evening_inc > other_inc else "NOT reproduced")
    )
    return ExperimentResult(
        experiment_id="fig12",
        title="Strata distribution of four periods (Fig. 12)",
        data={"shares": shares},
        lines=lines,
    )
