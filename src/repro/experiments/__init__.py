"""``repro.experiments`` — one runner per paper table/figure + ablations.

See DESIGN.md §4 for the experiment index. Usage:

>>> from repro.experiments import run_experiment
>>> result = run_experiment("fig5")
>>> print(result.rendered())
"""

from .base import ExperimentResult, scaled, series_line
from .registry import RUNNERS, available_experiments, run_experiment

__all__ = [
    "RUNNERS",
    "ExperimentResult",
    "available_experiments",
    "run_experiment",
    "scaled",
    "series_line",
]
