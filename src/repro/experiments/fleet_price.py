"""``fleet-price`` — the Table III pricing study at city scale.

The ROADMAP's city-scale pricing item: rerun the paper's discount-policy
comparison (no discount, the evening heuristic, ECT-Price, and the
OR/IPS/DR uplift baselines) over the *batched* fleet engine instead of
the scalar 10-station testbed. Every method prices the same latent
demand — one ``pricing.policy`` sweep over a shared
:class:`~repro.spec.scenario.ScenarioSpec` — and the report compares
network profit per method. Exposed on the CLI as ``ect-hub price``.

Like ``fleet``, this runner is a *flag shim*: the keyword arguments fold
into a spec whose ``pricing`` section
(:class:`~repro.spec.scenario.PricingSpec`) carries the training
protocol and discount grid, executed by :func:`repro.api.run_pricing`.
"""

from __future__ import annotations

from ..spec.compiler import spec_from_price_flags
from .base import ExperimentResult


def run(
    *,
    scale: float = 1.0,
    seed: int = 0,
    n_hubs: int | None = None,
    days: int | None = None,
    train_days: int | None = None,
    epochs: int | None = None,
    methods: tuple[str, ...] | None = None,
    jobs: int | None = None,
    telemetry=None,
) -> ExperimentResult:
    """Compare discount pricing policies over one batched fleet.

    ``scale`` shrinks the fleet, the horizon, and the training protocol
    together (floors keep a scaled-down run trainable); the explicit
    keywords pin individual knobs. ``jobs`` fans the methods out over
    worker processes (byte-identical to serial). ``telemetry`` forwards
    a :class:`~repro.telemetry.session.Telemetry` session to
    ``api.run_pricing``.
    """
    # Local import: repro.api pulls experiments.base, so importing it at
    # module level would cycle through the experiment registry.
    from .. import api

    return api.run_pricing(
        spec_from_price_flags(
            scale=scale,
            seed=seed,
            n_hubs=n_hubs,
            days=days,
            train_days=train_days,
            epochs=epochs,
        ),
        methods=methods,
        jobs=jobs,
        telemetry=telemetry,
    )
