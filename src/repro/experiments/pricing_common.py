"""Shared pricing study: train ECT-Price + baselines once, reuse everywhere.

Table II, Fig. 11, and Fig. 12 all consume the same trained models; this
module runs the pipeline once per (seed, scale) and hands the pieces to
each runner.

Protocol (DESIGN.md §5 / EXPERIMENTS.md):

* generator: fleet defaults (12 stations, typed cells, confounded evening-
  heavy logging policy);
* chronological split: ``train_days`` of history, 150 days of evaluation
  (43,200 items → budget 8,424 ≈ the paper's 8,426 at fraction 0.195);
* equal-total-compute: every *method* gets the same total training epochs —
  ECT-Price spends them on one joint model, OR on two, IPS on three, DR on
  four.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..causal import (
    EctPriceConfig,
    EctPriceModel,
    EctPricePolicy,
    NcfConfig,
    PricingDataset,
    UpliftPolicy,
    make_baseline,
    train_test_split_by_day,
)
from ..causal.policy import DiscountPolicy
from ..rng import RngFactory
from ..synth.charging import ChargingBehaviorModel, ChargingConfig
from .base import scaled

#: Share of test items each method may discount (paper: 8,426 of 43,200).
BUDGET_FRACTION = 0.195

#: Total training epochs per method under the equal-compute protocol.
TOTAL_EPOCHS = 30

#: Constituent NCF models per baseline method.
MODELS_PER_METHOD = {"OR": 2, "IPS": 3, "DR": 4}


@dataclass
class PricingStudy:
    """Everything the pricing experiments need."""

    behavior: ChargingBehaviorModel
    train: PricingDataset
    test: PricingDataset
    policies: list[DiscountPolicy]
    ect_price: EctPriceModel
    budget: int


def run_pricing_study(
    *,
    seed: int = 0,
    scale: float = 1.0,
    train_days: int = 60,
    test_days: int = 150,
    charging_config: ChargingConfig | None = None,
) -> PricingStudy:
    """Train all four pricing methods on a fresh synthetic log."""
    factory = RngFactory(seed=seed)
    behavior = ChargingBehaviorModel(charging_config or ChargingConfig(), factory)

    train_days = scaled(train_days, scale, minimum=7)
    test_days = scaled(test_days, scale, minimum=7)
    log = behavior.simulate_log(train_days + test_days)
    train, test = train_test_split_by_day(
        log, n_stations=behavior.config.n_stations, boundary_day=train_days
    )
    budget = int(round(BUDGET_FRACTION * len(test)))

    epochs = scaled(TOTAL_EPOCHS, scale, minimum=2)
    ect_config = EctPriceConfig(epochs=epochs, batch_size=128, learning_rate=0.01)
    ect_price = EctPriceModel(
        behavior.config.n_stations,
        train.n_time_ids,
        ect_config,
        factory.stream("pricing/ours"),
    )
    ect_price.fit(train)
    policies: list[DiscountPolicy] = [EctPricePolicy(ect_price)]

    for name, n_models in MODELS_PER_METHOD.items():
        model = make_baseline(
            name,
            behavior.config.n_stations,
            train.n_time_ids,
            NcfConfig(
                epochs=max(epochs // n_models, 1),
                batch_size=128,
                learning_rate=0.01,
            ),
            factory.stream(f"pricing/{name}"),
        )
        model.fit(train)
        policies.append(UpliftPolicy(model))

    return PricingStudy(
        behavior=behavior,
        train=train,
        test=test,
        policies=policies,
        ect_price=ect_price,
        budget=budget,
    )
