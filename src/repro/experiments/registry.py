"""Experiment registry: one entry per paper table/figure plus ablations."""

from __future__ import annotations

import inspect
from typing import Callable

from ..errors import ExperimentError
from . import (
    ablations,
    fig1_overlap,
    fig2_renewables,
    fig3_charging_freq,
    fig4_degradation,
    fig5_rtp_traffic,
    fig11_strata,
    fig12_periods,
    fig13_hub_rewards,
    fleet_grid,
    fleet_price,
    fleet_sim,
    table2_ect_price,
    table3_hub_daily,
    train_fleet,
)
from .base import ExperimentResult

#: Experiment id → runner. Keep in sync with DESIGN.md §4.
RUNNERS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_overlap.run,
    "fig2": fig2_renewables.run,
    "fig3": fig3_charging_freq.run,
    "fig4": fig4_degradation.run,
    "fig5": fig5_rtp_traffic.run,
    "fig11": fig11_strata.run,
    "fig12": fig12_periods.run,
    "fig13": fig13_hub_rewards.run,
    "table2": table2_ect_price.run,
    "table3": table3_hub_daily.run,
    "abl-sched": ablations.run_schedulers,
    "abl-cbp": ablations.run_cbp_sweep,
    "abl-loss": ablations.run_loss_forms,
    "fleet": fleet_sim.run,
    "fleet-grid": fleet_grid.run,
    "fleet-price": fleet_price.run,
    "train-fleet": train_fleet.run,
}


def available_experiments() -> list[str]:
    """All registered experiment ids."""
    return sorted(RUNNERS)


def run_experiment(
    experiment_id: str,
    *,
    scale: float = 1.0,
    seed: int = 0,
    jobs: int | None = None,
    telemetry=None,
) -> ExperimentResult:
    """Run one experiment by id.

    ``jobs`` requests process-parallel execution for sweep-style
    experiments (currently ``fleet-grid``); passing it to a runner that
    cannot parallelize raises instead of silently running serially.
    ``telemetry`` (a :class:`~repro.telemetry.session.Telemetry`) is
    forwarded the same way — only runners built on the telemetry-aware
    ``api`` entry points accept it.
    """
    if experiment_id not in RUNNERS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {', '.join(available_experiments())}"
        )
    runner = RUNNERS[experiment_id]
    kwargs: dict[str, object] = {"scale": scale, "seed": seed}
    for name, value in (("jobs", jobs), ("telemetry", telemetry)):
        if value is None:
            continue
        if name not in inspect.signature(runner).parameters:
            raise ExperimentError(
                f"experiment {experiment_id!r} does not support --{name}"
            )
        kwargs[name] = value
    return runner(**kwargs)
