"""Fig. 1 — base stations concentrate along roads (overlap statistic)."""

from __future__ import annotations

from ..rng import RngFactory
from ..synth.roads import (
    RoadNetworkConfig,
    build_road_network,
    near_road_fraction,
    place_stations,
)
from .base import ExperimentResult, scaled


def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Near-road fraction: road-biased placement vs the uniform null model."""
    factory = RngFactory(seed=seed)
    network = build_road_network(RoadNetworkConfig(), factory.stream("fig1/roads"))
    n_stations = scaled(2000, scale, minimum=100)

    biased = place_stations(
        network, n_stations, factory.stream("fig1/biased"), road_bias=0.85
    )
    uniform = place_stations(
        network, n_stations, factory.stream("fig1/uniform"), road_bias=0.0
    )
    frac_biased = near_road_fraction(network, biased, threshold_km=2.0)
    frac_uniform = near_road_fraction(network, uniform, threshold_km=2.0)
    ratio = frac_biased / max(frac_uniform, 1e-9)

    lines = [
        f"road network: {network.graph.number_of_edges()} segments, "
        f"{network.total_length_km:.0f} km over a "
        f"{network.region_km:.0f} km square",
        f"stations within 2 km of a road (road-biased placement): {frac_biased:.1%}",
        f"stations within 2 km of a road (uniform null model):    {frac_uniform:.1%}",
        f"concentration ratio: {ratio:.2f}x",
        "paper shape: BS distribution visibly tracks the road network "
        + ("✓" if ratio > 1.3 else "NOT reproduced"),
    ]
    return ExperimentResult(
        experiment_id="fig1",
        title="Road / base-station overlap (Fig. 1)",
        data={
            "near_road_biased": frac_biased,
            "near_road_uniform": frac_uniform,
            "ratio": ratio,
        },
        lines=lines,
    )
