"""Shared scheduling study: PPO per (hub, pricing method).

Fig. 13 and Table III share this pipeline: train the four pricing methods
once (the Table II study), turn each into a per-hub discount schedule, and
train/evaluate one ECT-DRL agent per (hub, method) pair. All four agents
of one hub see identical traces; only the charging-price input differs —
exactly the paper's §V-C protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..causal.policy import DiscountPolicy, discount_schedule_for_hub
from ..hub.scenario import HubScenario, ScenarioConfig, build_fleet_scenarios
from ..rng import RngFactory
from ..rl.env import EctHubEnv, EnvConfig
from ..rl.ppo import PpoConfig
from ..rl.training import evaluate_agent, train_ppo
from ..timeutils import SlotCalendar
from ..units import HOURS_PER_DAY
from .base import scaled
from .pricing_common import BUDGET_FRACTION, PricingStudy, run_pricing_study

#: Paper training/evaluation schedule (500 train / 100 test episodes).
PAPER_TRAIN_EPISODES = 500
PAPER_TEST_EPISODES = 100

#: Reduced schedule at scale=1 (laptop CPU); see EXPERIMENTS.md.
DEFAULT_TRAIN_EPISODES = 8
DEFAULT_TEST_EPISODES = 3

#: Discount level applied by every pricing method in the DRL stage.
DISCOUNT_LEVEL = 0.2


@dataclass
class HubMethodResult:
    """Evaluation outcome for one (hub, pricing method) pair."""

    hub_id: int
    method: str
    daily_rewards: np.ndarray  # (episodes, days)

    @property
    def average_daily_reward(self) -> float:
        """The Table III cell."""
        return float(self.daily_rewards.mean())

    def reward_series(self) -> np.ndarray:
        """Mean daily-reward curve across evaluation episodes (Fig. 13)."""
        return self.daily_rewards.mean(axis=0)


def time_ids_for_slots(n_hours: int, calendar: SlotCalendar | None = None) -> np.ndarray:
    """Map simulation slots to the pricing models' time-feature ids."""
    calendar = calendar or SlotCalendar()
    slots = np.arange(n_hours)
    hod = np.asarray(calendar.hour_of_day(slots))
    weekend = np.asarray(calendar.is_weekend(slots)).astype(int)
    return hod + HOURS_PER_DAY * weekend


def run_scheduling_study(
    *,
    hub_ids: list[int],
    seed: int = 0,
    scale: float = 1.0,
    pricing: PricingStudy | None = None,
    scenario_days: int = 120,
) -> list[HubMethodResult]:
    """Train + evaluate ECT-DRL per (hub, pricing method)."""
    factory = RngFactory(seed=seed)
    pricing = pricing or run_pricing_study(seed=seed, scale=scale)

    scenario_config = ScenarioConfig(
        n_hours=scaled(scenario_days, scale, minimum=45) * HOURS_PER_DAY,
        charging=pricing.behavior.config,
    )
    scenarios = build_fleet_scenarios(scenario_config, factory)
    time_ids = time_ids_for_slots(scenario_config.n_hours)

    train_episodes = scaled(DEFAULT_TRAIN_EPISODES, scale, minimum=2)
    test_episodes = scaled(DEFAULT_TEST_EPISODES, scale, minimum=1)

    results: list[HubMethodResult] = []
    for hub_id in hub_ids:
        scenario = scenarios[hub_id]
        for policy in pricing.policies:
            results.append(
                _one_pair(
                    scenario,
                    pricing,
                    policy,
                    time_ids,
                    factory,
                    train_episodes=train_episodes,
                    test_episodes=test_episodes,
                )
            )
    return results


def _one_pair(
    scenario: HubScenario,
    pricing: PricingStudy,
    policy: DiscountPolicy,
    time_ids: np.ndarray,
    factory: RngFactory,
    *,
    train_episodes: int,
    test_episodes: int,
) -> HubMethodResult:
    schedule = discount_schedule_for_hub(
        policy,
        scenario.site.hub_id,
        time_ids,
        discount_level=DISCOUNT_LEVEL,
        budget_fraction=BUDGET_FRACTION,
    )
    stream = f"drl/{scenario.site.hub_id}/{policy.name}"
    env = EctHubEnv(
        scenario,
        pricing.behavior,
        schedule,
        config=EnvConfig(),
        rng=factory.stream(f"{stream}/env"),
    )
    agent, _ = train_ppo(
        env,
        episodes=train_episodes,
        config=PpoConfig(),
        rng=factory.stream(f"{stream}/ppo"),
    )
    daily = evaluate_agent(env, agent, episodes=test_episodes)
    return HubMethodResult(
        hub_id=scenario.site.hub_id,
        method=policy.name,
        daily_rewards=daily,
    )
