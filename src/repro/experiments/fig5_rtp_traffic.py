"""Fig. 5 — 96 hours of real-time price vs network traffic."""

from __future__ import annotations

import numpy as np

from ..rng import RngFactory
from ..synth.rtp import RtpConfig, RtpGenerator
from ..synth.traffic import TrafficConfig, TrafficGenerator
from .base import ExperimentResult, series_line


def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Joint RTP / traffic trace and their correlation (the paper's claim)."""
    del scale  # fixed 96 h window as in the figure
    factory = RngFactory(seed=seed)
    traffic = TrafficGenerator(TrafficConfig()).generate(
        96, factory.stream("fig5/traffic")
    )
    prices = RtpGenerator(RtpConfig()).generate(
        96, factory.stream("fig5/rtp"), load_rate=traffic.load_rate
    )
    corr = float(np.corrcoef(traffic.volume_gb, prices.price_mwh)[0, 1])

    lines = [
        *series_line("RTP ($/MWh)", prices.price_mwh, fmt="{:.0f}"),
        *series_line("traffic (GB)", traffic.volume_gb, fmt="{:.0f}"),
        f"price band: {prices.price_mwh.min():.0f}-{prices.price_mwh.max():.0f} "
        "$/MWh (paper: ~50-130)",
        f"traffic band: {traffic.volume_gb.min():.0f}-{traffic.volume_gb.max():.0f} "
        "GB (paper: ~20-160)",
        f"load-price correlation: {corr:.2f} "
        "(paper: load rate positively correlated with electricity price) "
        + ("✓" if corr > 0.4 else "NOT reproduced"),
    ]
    return ExperimentResult(
        experiment_id="fig5",
        title="Real-time pricing and network traffic (Fig. 5)",
        data={
            "price_mwh": prices.price_mwh.tolist(),
            "traffic_gb": traffic.volume_gb.tolist(),
            "correlation": corr,
        },
        lines=lines,
    )
