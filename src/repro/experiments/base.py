"""Experiment plumbing: results, scaling, and text rendering.

Every paper artifact (table or figure) has one runner returning an
:class:`ExperimentResult`: machine-readable ``data`` plus human-readable
``lines`` that the benches print. ``scale`` trades fidelity for runtime —
1.0 is the bench default (laptop-CPU friendly); paper-scale settings are
noted per runner in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ExperimentError


@dataclass
class ExperimentResult:
    """Output of one experiment runner."""

    experiment_id: str
    title: str
    data: dict[str, Any] = field(default_factory=dict)
    lines: list[str] = field(default_factory=list)

    def rendered(self) -> str:
        """The human-readable report."""
        header = f"== {self.experiment_id}: {self.title} =="
        return "\n".join([header, *self.lines])


def scaled(value: int, scale: float, *, minimum: int = 1) -> int:
    """Scale an integer workload knob, clamped below by ``minimum``."""
    if scale <= 0:
        raise ExperimentError(f"scale must be positive, got {scale}")
    return max(int(round(value * scale)), minimum)


def series_line(name: str, values, *, per_line: int = 12, fmt: str = "{:.1f}") -> list[str]:
    """Render a numeric series as labelled wrapped text lines."""
    rendered = [fmt.format(float(v)) for v in values]
    lines = [f"{name}:"]
    for start in range(0, len(rendered), per_line):
        lines.append("  " + " ".join(rendered[start : start + per_line]))
    return lines
