"""Experiment plumbing: results, scaling, and text rendering.

Every paper artifact (table or figure) has one runner returning an
:class:`ExperimentResult`: machine-readable ``data`` plus human-readable
``lines`` that the benches print. ``scale`` trades fidelity for runtime —
1.0 is the bench default (laptop-CPU friendly); paper-scale settings are
noted per runner in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import ExperimentError


def jsonable(value: Any) -> Any:
    """Recursively convert experiment ``data`` into JSON-serialisable types.

    NumPy arrays become lists, NumPy scalars become Python scalars; dict
    keys are stringified so e.g. hub-id keys survive the round trip.
    """
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return jsonable(value.tolist())
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return value.item()
    return value


@dataclass
class ExperimentResult:
    """Output of one experiment runner.

    ``telemetry`` carries the RunTelemetry record (a JSON-ready dict of
    phase timings, counters, and RL metrics) when the run was executed
    with a :class:`~repro.telemetry.session.Telemetry` session attached.
    It is deliberately excluded from :meth:`to_json_dict`: ``--out``
    exports stay byte-deterministic and diffable, and telemetry is
    exported through its own sidecar/trace files instead.
    """

    experiment_id: str
    title: str
    data: dict[str, Any] = field(default_factory=dict)
    lines: list[str] = field(default_factory=list)
    telemetry: dict[str, Any] | None = None

    def rendered(self) -> str:
        """The human-readable report."""
        header = f"== {self.experiment_id}: {self.title} =="
        return "\n".join([header, *self.lines])

    def to_json_dict(self) -> dict[str, Any]:
        """Machine-readable form: id, title, and JSON-safe ``data``."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "data": jsonable(self.data),
        }


def write_results_json(
    results: "ExperimentResult | list[ExperimentResult]", path: str | Path
) -> Path:
    """Persist one or many experiment results as pretty-printed JSON.

    A single result is written as one object; a list as an array. This is
    the ``--out`` backend of the CLI, so experiment ``data`` can be diffed
    across PRs.
    """
    path = Path(path)
    if isinstance(results, ExperimentResult):
        payload: Any = results.to_json_dict()
    else:
        payload = [result.to_json_dict() for result in results]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def scaled(value: int, scale: float, *, minimum: int = 1) -> int:
    """Scale an integer workload knob, clamped below by ``minimum``."""
    if scale <= 0:
        raise ExperimentError(f"scale must be positive, got {scale}")
    return max(int(round(value * scale)), minimum)


def series_line(name: str, values, *, per_line: int = 12, fmt: str = "{:.1f}") -> list[str]:
    """Render a numeric series as labelled wrapped text lines."""
    rendered = [fmt.format(float(v)) for v in values]
    lines = [f"{name}:"]
    for start in range(0, len(rendered), per_line):
        lines.append("  " + " ".join(rendered[start : start + per_line]))
    return lines
