"""``train-fleet`` — PPO over the batched fleet environment.

The ROADMAP's fleet-RL item: one parameter-shared ECT-DRL agent trained
on ``(n_hubs,)`` action batches through
:class:`~repro.rl.fleet_env.FleetEnv` (every slot is one network forward
for the whole fleet, every episode one PPO update over the
``episode x hubs`` rollout). The report compares the untrained and
trained policies on identical evaluation episodes and tracks the
training-loop throughput. Exposed on the CLI as ``ect-hub train-fleet``.

Like ``fleet``, this runner is a *flag shim*: the keyword arguments fold
into a :class:`~repro.spec.scenario.ScenarioSpec` whose ``rl`` section
(:class:`~repro.spec.scenario.RlSpec`) carries the episode shape and PPO
hyperparameters, executed by :func:`repro.api.train_fleet` — so a
flag-built training run and its serialized-spec twin are the same run.
"""

from __future__ import annotations

from ..spec.compiler import spec_from_train_fleet_flags
from .base import ExperimentResult


def run(
    *,
    scale: float = 1.0,
    seed: int = 0,
    n_hubs: int | None = None,
    days: int | None = None,
    train_episodes: int | None = None,
    eval_episodes: int | None = None,
    telemetry=None,
) -> ExperimentResult:
    """Train and evaluate fleet PPO on the default training scenario.

    ``scale`` shrinks the fleet, the horizon, and the episode schedule
    together (floors keep a scaled-down run trainable); the explicit
    keyword overrides pin individual knobs. ``telemetry`` forwards a
    :class:`~repro.telemetry.session.Telemetry` session to
    ``api.train_fleet``.
    """
    # Local import: repro.api pulls experiments.base, so importing it at
    # module level would cycle through the experiment registry.
    from .. import api

    return api.train_fleet(
        spec_from_train_fleet_flags(
            scale=scale,
            seed=seed,
            n_hubs=n_hubs,
            days=days,
            train_episodes=train_episodes,
            eval_episodes=eval_episodes,
        ),
        telemetry=telemetry,
    )
