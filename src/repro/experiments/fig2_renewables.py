"""Fig. 2 — two days of renewable generation (WT, PV, total)."""

from __future__ import annotations

import numpy as np

from ..energy.pv import PvArray, PvConfig
from ..energy.wind_turbine import WindTurbine, WindTurbineConfig
from ..rng import RngFactory
from ..synth.weather import WeatherConfig, WeatherGenerator
from ..units import kw_to_watts
from .base import ExperimentResult, series_line


def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """48-hour WT / PV / total active-power series in watts (Fig. 2 axes).

    The paper's plant is sub-kW scale (peak ≈ 1000 W total); we use a
    0.5 kW PV array and a 0.6 kW micro wind turbine to match the figure's
    axis, while the hub fleet uses larger plants.
    """
    del scale  # fixed 48 h trace regardless of scale
    factory = RngFactory(seed=seed)
    weather = WeatherGenerator(WeatherConfig(), factory).generate(48)
    pv = PvArray(PvConfig(rated_kw=0.5))
    wt = WindTurbine(WindTurbineConfig(rated_kw=0.6, rated_speed_m_s=10.0))

    pv_w = kw_to_watts(1.0) * np.asarray(pv.power_kw(weather.irradiance_w_m2))
    wt_w = kw_to_watts(1.0) * np.asarray(wt.power_kw(weather.wind_speed_m_s))
    total = pv_w + wt_w

    night = [h for h in range(48) if h % 24 < 5 or h % 24 > 21]
    lines = [
        *series_line("PV (W)", pv_w, fmt="{:.0f}"),
        *series_line("WT (W)", wt_w, fmt="{:.0f}"),
        *series_line("Total (W)", total, fmt="{:.0f}"),
        f"PV at night: max {pv_w[night].max():.0f} W (paper: zero) "
        + ("✓" if pv_w[night].max() == 0 else "NOT reproduced"),
        f"WT coefficient of variation: {wt_w.std() / max(wt_w.mean(), 1e-9):.2f} "
        "(paper: highly volatile)",
    ]
    return ExperimentResult(
        experiment_id="fig2",
        title="Active power of renewable generation (Fig. 2)",
        data={
            "pv_w": pv_w.tolist(),
            "wt_w": wt_w.tolist(),
            "total_w": total.tolist(),
        },
        lines=lines,
    )
