"""Shared-grid coupling: feeder groups with finite import capacity.

The PR-1 engine treats hubs as electrically independent, but city-scale
deployments hang many ECT-Hubs off common feeders/transformers whose
capacity one hub's import can exhaust for its neighbours. A
:class:`FeederGroup` assigns every hub to one feeder and carries a
per-slot import capacity per feeder; :meth:`FeederGroup.allocate` resolves
one slot's contention — when a group's aggregate grid draw exceeds its
feeder limit, imports are curtailed **proportionally** (default) or in
descending **priority** order, and the per-hub shortfall is returned for
the engine to route through the battery-reserve / unserved-energy
accounting.

Export capacity is not modelled: the batched engine enforces the paper's
no-feed-in rule (``FleetParams.from_hub_configs`` rejects
``allow_export``), so feeder export is identically zero and on-site
surplus is curtailed at the hub.

The default coupling is :meth:`FeederGroup.unlimited` — one feeder of
infinite capacity — under which the coupled engine is slot-for-slot
identical to the uncoupled PR-1 engine (property-tested at atol 1e-9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backend import ArrayOps, get_backend
from ..errors import FleetError

#: Supported contention-resolution policies.
ALLOCATION_POLICIES = ("proportional", "priority")


@dataclass(frozen=True)
class FeederGroup:
    """Hub→feeder assignment plus per-feeder import capacity.

    Attributes
    ----------
    assignment:
        ``(n_hubs,)`` integer array; entry *i* is the feeder hub *i* hangs
        off. Every value must lie in ``[0, n_feeders)``; feeders may be
        empty.
    import_capacity_kw:
        Per-feeder import limit, either static ``(n_feeders,)`` or
        per-slot ``(n_feeders, horizon)``. ``np.inf`` disables the limit
        for that feeder(-slot); values must be non-negative and not NaN.
    policy:
        ``"proportional"`` scales every member's import by the same factor
        when the group limit binds; ``"priority"`` serves members in
        descending :attr:`priority` order (ties broken by hub index) until
        the capacity is exhausted.
    priority:
        Optional ``(n_hubs,)`` positive weights for the priority policy
        (ignored by proportional). ``None`` means uniform priority, which
        makes the priority policy a greedy fill in hub order.
    """

    assignment: np.ndarray
    import_capacity_kw: np.ndarray
    policy: str = "proportional"
    priority: np.ndarray | None = None

    def __post_init__(self) -> None:
        assignment = np.asarray(self.assignment)
        if assignment.ndim != 1 or assignment.shape[0] == 0:
            raise FleetError("feeder assignment must be a non-empty 1-D array")
        if not np.issubdtype(assignment.dtype, np.integer):
            if not np.all(assignment == assignment.astype(int)):
                raise FleetError("feeder assignment must hold integer feeder ids")
            assignment = assignment.astype(int)
        capacity = np.asarray(self.import_capacity_kw, dtype=float)
        if capacity.ndim not in (1, 2) or capacity.shape[0] == 0:
            raise FleetError(
                "import_capacity_kw must be (n_feeders,) or (n_feeders, horizon)"
            )
        if np.isnan(capacity).any() or (capacity < 0.0).any():
            raise FleetError("feeder capacities must be non-negative and not NaN")
        if assignment.min() < 0 or assignment.max() >= capacity.shape[0]:
            raise FleetError(
                f"feeder assignment must lie in [0, {capacity.shape[0]}), got "
                f"range [{assignment.min()}, {assignment.max()}]"
            )
        if self.policy not in ALLOCATION_POLICIES:
            raise FleetError(
                f"unknown allocation policy {self.policy!r}; "
                f"available: {', '.join(ALLOCATION_POLICIES)}"
            )
        priority = self.priority
        if priority is not None:
            priority = np.asarray(priority, dtype=float)
            if priority.shape != assignment.shape:
                raise FleetError(
                    f"priority must have shape {assignment.shape}, "
                    f"got {priority.shape}"
                )
            if not np.isfinite(priority).all() or (priority <= 0.0).any():
                raise FleetError("priority weights must be finite and positive")
        object.__setattr__(self, "assignment", assignment)
        object.__setattr__(self, "import_capacity_kw", capacity)
        object.__setattr__(self, "priority", priority)
        # Cached: schedulers consult this every slot on the hot path.
        object.__setattr__(self, "_is_unlimited", bool(np.isinf(capacity).all()))

    # ------------------------------------------------------------------ #
    # Construction                                                         #
    # ------------------------------------------------------------------ #

    @classmethod
    def unlimited(cls, n_hubs: int) -> "FeederGroup":
        """The uncoupled default: every hub on one infinite feeder."""
        if n_hubs <= 0:
            raise FleetError(f"n_hubs must be positive, got {n_hubs}")
        return cls(
            assignment=np.zeros(n_hubs, dtype=int),
            import_capacity_kw=np.array([np.inf]),
        )

    @classmethod
    def uniform(
        cls,
        n_hubs: int,
        n_feeders: int,
        capacity_kw: float | np.ndarray,
        *,
        policy: str = "proportional",
        priority: np.ndarray | None = None,
    ) -> "FeederGroup":
        """Round-robin hubs over ``n_feeders`` equal-capacity feeders.

        ``capacity_kw`` may be a scalar (every feeder, every slot), a
        ``(n_feeders,)`` array, or a full ``(n_feeders, horizon)`` block.
        """
        if n_hubs <= 0:
            raise FleetError(f"n_hubs must be positive, got {n_hubs}")
        if n_feeders <= 0:
            raise FleetError(f"n_feeders must be positive, got {n_feeders}")
        if n_feeders > n_hubs:
            raise FleetError(
                f"{n_feeders} feeders for {n_hubs} hubs leaves feeders empty"
            )
        capacity = np.asarray(capacity_kw, dtype=float)
        if capacity.ndim == 0:
            capacity = np.full(n_feeders, float(capacity))
        return cls(
            assignment=np.arange(n_hubs) % n_feeders,
            import_capacity_kw=capacity,
            policy=policy,
            priority=priority,
        )

    # ------------------------------------------------------------------ #
    # Shape / structure                                                    #
    # ------------------------------------------------------------------ #

    @property
    def n_hubs(self) -> int:
        """Number of hubs assigned to feeders."""
        return int(self.assignment.shape[0])

    @property
    def n_feeders(self) -> int:
        """Number of feeders in the group."""
        return int(self.import_capacity_kw.shape[0])

    @property
    def horizon(self) -> int | None:
        """Capacity horizon when per-slot, else None (static capacity)."""
        if self.import_capacity_kw.ndim == 2:
            return int(self.import_capacity_kw.shape[1])
        return None

    @property
    def members(self) -> np.ndarray:
        """``(n_feeders,)`` hub counts per feeder."""
        return np.bincount(self.assignment, minlength=self.n_feeders)

    @property
    def is_unlimited(self) -> bool:
        """True when no feeder limit can ever bind (the uncoupled default)."""
        return self._is_unlimited

    def subgroup(self, hub_indices) -> tuple["FeederGroup", np.ndarray]:
        """Restrict the group to a hub subset (for intra-scenario sharding).

        ``hub_indices`` must be strictly increasing global hub indices.
        Returns ``(sub, feeder_ids)``: a :class:`FeederGroup` over the
        subset with feeders renumbered to dense local ids (ascending
        global order) and only the feeders the subset touches, plus the
        local→global feeder id map.

        Feeder arithmetic (:meth:`allocate`, :meth:`available_import_kw`)
        is local to each feeder, so on a *feeder-closed* subset — every
        selected feeder keeps its full membership — the sub-group
        computes bit-identical grants/shortfalls/headroom for the
        selected hubs: relative hub order is preserved by the ascending
        selection, and each feeder's members and capacity are intact.
        """
        idx = np.asarray(hub_indices)
        if idx.ndim != 1 or idx.size == 0:
            raise FleetError("hub_indices must be a non-empty 1-D array")
        if not np.issubdtype(idx.dtype, np.integer):
            raise FleetError("hub_indices must hold integer hub indices")
        if idx.min() < 0 or idx.max() >= self.n_hubs:
            raise FleetError(
                f"hub_indices must lie in [0, {self.n_hubs}), got range "
                f"[{idx.min()}, {idx.max()}]"
            )
        if idx.size > 1 and (np.diff(idx) <= 0).any():
            raise FleetError("hub_indices must be strictly increasing")
        feeder_ids = np.unique(self.assignment[idx])
        sub = FeederGroup(
            assignment=np.searchsorted(feeder_ids, self.assignment[idx]),
            import_capacity_kw=self.import_capacity_kw[feeder_ids],
            policy=self.policy,
            priority=None if self.priority is None else self.priority[idx],
        )
        return sub, feeder_ids

    def capacity_at(self, t: int) -> np.ndarray:
        """``(n_feeders,)`` import capacity for slot ``t``."""
        if self.import_capacity_kw.ndim == 2:
            if not 0 <= t < self.import_capacity_kw.shape[1]:
                raise FleetError(
                    f"slot {t} outside the feeder capacity horizon "
                    f"{self.import_capacity_kw.shape[1]}"
                )
            return self.import_capacity_kw[:, t]
        return self.import_capacity_kw

    def feeder_demand_kw(self, import_kw: np.ndarray) -> np.ndarray:
        """Aggregate per-hub imports into ``(n_feeders,)`` feeder draw."""
        return np.bincount(
            self.assignment, weights=import_kw, minlength=self.n_feeders
        )

    # ------------------------------------------------------------------ #
    # Allocation                                                           #
    # ------------------------------------------------------------------ #

    def allocate(
        self, import_kw: np.ndarray, t: int, *, ops: ArrayOps | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Resolve one slot's contention: ``(granted_kw, shortfall_kw)``.

        ``import_kw`` is each hub's requested grid draw. Where a feeder's
        aggregate request fits its capacity the request is granted in
        full; otherwise the group's imports are curtailed per
        :attr:`policy`. Granted + shortfall reproduces the request
        exactly, both arrays are non-negative, and per-feeder granted
        totals never exceed capacity (beyond float rounding).

        ``ops`` selects the array backend for the allocation arithmetic;
        the engine passes its own so the whole slot runs on one backend.
        Standalone callers can omit it (numpy reference).
        """
        if ops is None:
            ops = get_backend()
        demand = np.asarray(import_kw, dtype=float)
        if demand.shape != self.assignment.shape:
            raise FleetError(
                f"import_kw must have shape {self.assignment.shape}, "
                f"got {demand.shape}"
            )
        if self.is_unlimited:
            return demand, np.zeros_like(demand)
        capacity = self.capacity_at(t)
        if self.policy == "proportional":
            granted = self._allocate_proportional(demand, capacity, ops)
        else:
            granted = self._allocate_priority(demand, capacity, ops)
        shortfall = ops.maximum(demand - granted, 0.0)
        return granted, shortfall

    def _allocate_proportional(
        self, demand: np.ndarray, capacity: np.ndarray, ops: ArrayOps
    ) -> np.ndarray:
        """Scale every member of an over-subscribed feeder by cap/draw."""
        feeder_demand = ops.bincount(
            self.assignment, weights=demand, minlength=self.n_feeders
        )
        scale = np.ones(self.n_feeders)
        over = feeder_demand > capacity
        if not over.any():
            return demand
        scale[over] = capacity[over] / feeder_demand[over]
        return demand * scale[self.assignment]

    def _allocate_priority(
        self, demand: np.ndarray, capacity: np.ndarray, ops: ArrayOps
    ) -> np.ndarray:
        """Greedy fill in descending priority order within each feeder."""
        n = self.n_hubs
        priority = (
            np.ones(n) if self.priority is None else self.priority
        )
        # Sort by (feeder, -priority, hub index); each hub's queue-ahead
        # demand is then an exclusive prefix sum within its feeder segment.
        # ops.segment_prefix_sum computes it per segment, never globally: a
        # global cumsum minus the segment-start offset would leak other
        # feeders' rounding into this feeder's grants, breaking the
        # bit-identity of feeder-closed shards (FeederGroup.subgroup)
        # with the full fleet.
        order = np.lexsort((np.arange(n), -priority, self.assignment))
        feeder_sorted = self.assignment[order]
        demand_sorted = demand[order]
        starts = np.r_[0, ops.flatnonzero(np.diff(feeder_sorted)) + 1]
        bounds = np.r_[starts, n]
        ahead = ops.segment_prefix_sum(demand_sorted, bounds)
        granted_sorted = ops.clip(
            capacity[feeder_sorted] - ahead, 0.0, demand_sorted
        )
        granted = ops.empty(n, np.float64)
        granted[order] = granted_sorted
        return granted

    # ------------------------------------------------------------------ #
    # Scheduler signal                                                     #
    # ------------------------------------------------------------------ #

    def available_import_kw(
        self, base_import_kw: np.ndarray, t: int
    ) -> np.ndarray:
        """Per-hub fair share of feeder headroom beyond the base load.

        ``base_import_kw`` is each hub's action-independent grid draw for
        the slot (BS + CS load net of renewables, zero for blackout hubs).
        The remaining feeder headroom is split evenly over the feeder's
        members — the congestion signal the vectorized schedulers consult
        before committing to a charge. Infinite while unconstrained, so
        uncoupled fleets see an always-permissive signal.
        """
        base = np.asarray(base_import_kw, dtype=float)
        if base.shape != self.assignment.shape:
            raise FleetError(
                f"base_import_kw must have shape {self.assignment.shape}, "
                f"got {base.shape}"
            )
        if self.is_unlimited:
            return np.full(self.n_hubs, np.inf)
        headroom = np.maximum(
            self.capacity_at(t) - self.feeder_demand_kw(base), 0.0
        )
        return (headroom / np.maximum(self.members, 1))[self.assignment]
