"""Batch-stepping engine: advance N ECT-Hubs per slot with NumPy.

:class:`FleetSimulation` is the vectorized counterpart of
:class:`~repro.hub.simulation.HubSimulation`. Per slot it applies one
battery action per hub, resolves the Eq. 7 power balance, books Eqs. 8–11,
and overrides blackout slots (grid import zeroed, charging suspended, the
Eq. 6 emergency reserve carrying the base stations) — for **all hubs at
once** over :class:`~repro.fleet.params.FleetParams` /
:class:`~repro.fleet.inputs.FleetInputs` struct-of-arrays state.

The step is a **fused kernel**: every action-independent quantity (BS/CS
draw, prices, blackout deficits, the feeder congestion signal) is read
from the :class:`~repro.fleet.planes.SlotPlanes` cache computed once per
engine, the per-step arithmetic runs through reusable ``out=`` buffers
instead of fresh temporaries, and the Eq. 6 blackout branch is evaluated
only on the hub rows whose outage mask fires that slot. Every expression
still mirrors the scalar engine's order of operations (``BatteryPack.
_charge`` / ``_discharge`` / ``emergency_supply``, ``EctHub.
power_balance``, ``compute_slot_ledger``), so a batched run stays
numerically equivalent to N independent scalar runs; the property-style
test in ``tests/test_fleet.py`` enforces agreement within atol 1e-9.

Shared-grid coupling: hubs may be grouped onto common feeders with finite
import capacity (:class:`~repro.fleet.grid.FeederGroup`). After the
per-hub balance is resolved, the feeder allocation step curtails imports
wherever a group's aggregate draw exceeds its limit; the curtailed
energy is served from the Eq. 6 battery reserve (the same arithmetic as a
blackout slot) and whatever the reserve cannot cover is booked as
unserved. Under the default unlimited feeder the coupled step is
bit-identical to the uncoupled one.

Array backends: every hot-path array operation dispatches through an
:class:`~repro.backend.base.ArrayOps` resolved once at construction
(``backend="numpy"`` by default — direct ufunc aliases, byte-identical
to the pre-seam kernel; ``"numba"`` JIT-fuses the battery block where
the optional package is installed, else falls back with a warning). The
ops instance is shared with the engine's planes, cost book, feeder
allocation, and schedulers, so one ``RunSpec.backend`` knob switches the
whole slot loop.
"""

from __future__ import annotations

import time
from types import SimpleNamespace

import numpy as np

from ..backend import ArrayOps, get_backend
from ..energy.battery import CHARGE, DISCHARGE, IDLE
from ..errors import ConfigError, FleetError, GridError
from .costs import FleetCostBook
from .grid import FeederGroup
from .inputs import FleetInputs
from .params import FleetParams
from .planes import SlotPlanes

#: SoC-bound tolerance, identical to the scalar ``BatteryPack`` clipping.
_SOC_EPS = 1e-12

#: The legal action set, used by the full (non-hot-path) validation.
_ACTIONS = (DISCHARGE, IDLE, CHARGE)


class FleetSimulation:
    """Advance a whole fleet through :class:`FleetInputs`, slot by slot."""

    def __init__(
        self,
        params: FleetParams,
        inputs: FleetInputs,
        *,
        initial_soc_fraction: float | np.ndarray = 0.5,
        feeders: FeederGroup | None = None,
        voll_per_kwh: float = 0.0,
        storage: str = "dense",
        window: int | None = None,
        backend: str | ArrayOps = "numpy",
    ) -> None:
        if params.n_hubs != inputs.n_hubs:
            raise FleetError(
                f"params describe {params.n_hubs} hubs but inputs carry "
                f"{inputs.n_hubs}"
            )
        #: The array backend every hot-path operation dispatches through.
        self.ops = get_backend(backend)
        #: Resolved backend name ("numba" falls back to "numpy" without
        #: the package, and this records what actually runs).
        self.backend = self.ops.name
        self.params = params
        self.inputs = inputs
        self.feeders = feeders or FeederGroup.unlimited(params.n_hubs)
        if self.feeders.n_hubs != params.n_hubs:
            raise FleetError(
                f"feeder group assigns {self.feeders.n_hubs} hubs but the "
                f"fleet has {params.n_hubs}"
            )
        if self.feeders.horizon is not None and self.feeders.horizon != inputs.horizon:
            raise FleetError(
                f"feeder capacity horizon {self.feeders.horizon} does not "
                f"match the input horizon {inputs.horizon}"
            )
        # Skip the allocation step entirely when no limit can ever bind, so
        # the uncoupled default pays nothing for the coupling machinery.
        self._coupled = not self.feeders.is_unlimited
        #: Action-independent slot planes, shared across resets.
        self.planes = SlotPlanes(params, inputs, ops=self.ops)
        self._outage = self.planes.outage
        self._initial_soc = self._as_soc_fraction(initial_soc_fraction)
        self.voll_per_kwh = float(voll_per_kwh)
        self._horizon = inputs.horizon
        #: Optional telemetry session (attach_telemetry). The hot step
        #: guards every hook behind one ``is not None`` branch, so a run
        #: without telemetry pays nothing for the instrumentation.
        self._telemetry = None
        #: Book storage layout: "dense" keeps full (n_hubs, horizon)
        #: columns; "windowed" folds committed slots into running
        #: aggregates over a bounded ring (memory stops scaling with the
        #: horizon). The kernel branches once per step to refresh the
        #: exogenous ring columns the dense path pre-fills at reset.
        self._book_storage = storage
        self._book_window = window
        self._windowed_book = storage == "windowed"
        self._precompute_constants()
        self._allocate_buffers()
        self.book = self._new_book()
        self._t = 0
        self.soc_kwh = self._reset_soc(self._initial_soc)
        self.throughput_kwh = self.ops.zeros(params.n_hubs, np.float64)

    def _new_book(self) -> FleetCostBook:
        """A fresh cost book with the exogenous columns pre-filled.

        The BS draw, renewables, prices, blackout mask, and the
        non-blackout CS draw/revenue never depend on actions, so they are
        bulk-copied from the plane cache once per run instead of column
        by column on every step; the kernel only *fixes up* blackout rows.
        Unrecorded slots simply hold their (deterministic) future values —
        every aggregate reads the recorded range only.

        A windowed book has no full columns to pre-fill: the kernel
        refreshes the exogenous ring columns slot by slot instead.
        """
        book = FleetCostBook(
            self.params.n_hubs,
            self._horizon,
            feeders=self.feeders,
            voll_per_kwh=self.voll_per_kwh,
            storage=self._book_storage,
            window=self._book_window,
            backend=self.backend,
        )
        if self._windowed_book:
            return book
        planes = self.planes
        book.blackout[:] = planes.outage
        book.p_bs_kw[:] = planes.p_bs_kw
        book.p_cs_kw[:] = planes.p_cs_kw
        book.p_pv_kw[:] = self.inputs.pv_power_kw
        book.p_wt_kw[:] = self.inputs.wt_power_kw
        book.rtp_kwh[:] = self.inputs.rtp_kwh
        book.srtp_kwh[:] = planes.srtp_kwh
        book.revenue[:] = planes.revenue
        return book

    def _precompute_constants(self) -> None:
        """Action- and state-independent per-hub scalars of the battery step."""
        params = self.params
        dt = params.dt_h
        # Charge path: the stored energy a full-rate charge requests.
        self._stored_requested = params.charge_rate_kw * dt * params.charge_efficiency
        # Discharge path, both efficiency conventions: paper-exact moves
        # SoC by η·R; physical draws R/η (see BatteryPack._discharge).
        eta_dch = params.discharge_efficiency
        requested_bus_kwh = params.discharge_rate_kw * dt
        self._drawn_requested = np.where(
            params.paper_exact, requested_bus_kwh * eta_dch, requested_bus_kwh / eta_dch
        )
        self._bus_per_drawn = np.where(params.paper_exact, 1.0, eta_dch)
        # Eq. 6 reserve efficiency (blackout branch + feeder shortfalls).
        self._reserve_eta = np.where(params.paper_exact, 1.0, eta_dch)
        # Interconnection limit: 0 disables the check (GridConnection rule).
        self._limit_active = params.import_limit_kw > 0.0
        self._any_import_limit = bool(self._limit_active.any())
        #: The battery composite's constant block, handed to
        #: ``ops.resolve_battery`` each step (one namespace instead of
        #: re-reading params attributes inside the hot loop).
        self._kernel = SimpleNamespace(
            soc_max_kwh=params.soc_max_kwh,
            soc_min_kwh=params.soc_min_kwh,
            charge_efficiency=params.charge_efficiency,
            stored_requested=self._stored_requested,
            drawn_requested=self._drawn_requested,
            bus_per_drawn=self._bus_per_drawn,
            dt_h=dt,
            soc_eps=_SOC_EPS,
        )

    def _allocate_buffers(self) -> None:
        """Reusable ``out=`` buffers so the hot step allocates nothing."""
        ops = self.ops
        n = self.params.n_hubs

        def f():
            return ops.empty(n, np.float64)

        self._buf = SimpleNamespace(
            headroom=f(),
            available=f(),
            stored=f(),
            drawn=f(),
            bus_charge_kwh=f(),
            bus_discharge_kwh=f(),
            new_soc=f(),
            residual=f(),
            throughput=f(),
            tmp=f(),
            mask=ops.empty(n, np.bool_),
            charging=ops.empty(n, np.bool_),
            discharging=ops.empty(n, np.bool_),
            idle_mask=ops.empty(n, np.bool_),
        )

    def _as_soc_fraction(self, fraction: float | np.ndarray) -> np.ndarray:
        fractions = np.broadcast_to(
            np.asarray(fraction, dtype=float), (self.params.n_hubs,)
        ).copy()
        if fractions.min() < 0.0 or fractions.max() > 1.0:
            raise ConfigError(
                f"initial_soc_fraction must be in [0, 1], got {fraction}"
            )
        return fractions

    def _reset_soc(self, fractions: np.ndarray) -> np.ndarray:
        # Mirrors BatteryPack.reset: target clipped into the legal window.
        target = fractions * self.params.capacity_kwh
        return np.minimum(
            np.maximum(target, self.params.soc_min_kwh), self.params.soc_max_kwh
        )

    # ------------------------------------------------------------------ #
    # State                                                                #
    # ------------------------------------------------------------------ #

    @property
    def n_hubs(self) -> int:
        """Number of hubs stepped together."""
        return self.params.n_hubs

    @property
    def t(self) -> int:
        """Next slot index to simulate."""
        return self._t

    @property
    def horizon(self) -> int:
        """Total number of slots."""
        return self._horizon

    @property
    def done(self) -> bool:
        """Whether the horizon has been exhausted."""
        return self._t >= self._horizon

    @property
    def soc_fraction(self) -> np.ndarray:
        """Per-hub state of charge as a fraction of capacity."""
        return self.soc_kwh / self.params.capacity_kwh

    def attach_telemetry(self, telemetry) -> None:
        """Attach (or detach with ``None``) a :class:`~repro.telemetry.
        session.Telemetry` session.

        While attached, every step books engine counters (hub-slots,
        blackout rows, feeder congestion, Eq. 6 reserve dispatches), a
        per-step duration histogram, and a per-slot ``allocation`` timer
        on coupled fleets. The booked numbers are observational only —
        the simulated run is bit-identical with or without a session.
        """
        self._telemetry = telemetry

    def reset(self, *, soc_fraction: float | np.ndarray | None = None) -> None:
        """Rewind to slot 0 and reset batteries and the fleet cost book.

        The :class:`SlotPlanes` cache and step buffers are retained — they
        depend only on the immutable params/inputs, not on the run.
        """
        self._t = 0
        if self._telemetry is not None:
            self._telemetry.metrics.inc("engine.resets")
        self.book = self._new_book()
        fractions = (
            self._initial_soc
            if soc_fraction is None
            else self._as_soc_fraction(soc_fraction)
        )
        self.soc_kwh = self._reset_soc(fractions)
        self.throughput_kwh = self.ops.zeros(self.params.n_hubs, np.float64)

    # ------------------------------------------------------------------ #
    # Stepping                                                             #
    # ------------------------------------------------------------------ #

    def _check_actions(self, actions: np.ndarray) -> None:
        """Cheap exact membership check for {-1, 0, 1} (no ``np.isin``).

        Integer dtypes only need a min/max range check; float dtypes use
        three equality compares (0.5 or NaN never equals a legal action).
        Exotic dtypes fall back to the full ``np.isin``.
        """
        kind = actions.dtype.kind
        if kind in "iub":
            if int(actions.min()) < -1 or int(actions.max()) > 1:
                raise FleetError("battery actions must be -1, 0, or 1")
        elif kind == "f":
            valid = (
                (actions == DISCHARGE) | (actions == IDLE) | (actions == CHARGE)
            )
            if not valid.all():
                raise FleetError("battery actions must be -1, 0, or 1")
        elif not np.isin(actions, _ACTIONS).all():
            raise FleetError("battery actions must be -1, 0, or 1")

    def step(self, actions: np.ndarray) -> dict[str, np.ndarray]:
        """Apply one battery action per hub to the current slot.

        ``actions`` has shape ``(n_hubs,)`` with entries in {−1, 0, 1}.
        Returns the recorded slot columns as read-side views into the
        cost book (arrays of shape ``(n_hubs,)``).
        """
        if self.done:
            raise FleetError(f"fleet horizon of {self.horizon} slots exhausted")
        actions = np.asarray(actions)
        if actions.shape != (self.n_hubs,):
            raise FleetError(
                f"actions must have shape ({self.n_hubs},), got {actions.shape}"
            )
        self._check_actions(actions)

        tele = self._telemetry
        step_start = time.perf_counter() if tele is not None else 0.0

        t = self._t
        params = self.params
        dt = params.dt_h
        planes = self.planes
        ops = self.ops
        b = self._buf
        soc = self.soc_kwh
        book = self.book
        # The slot is resolved directly into the book's storage through
        # these writable column views; it only becomes visible to the
        # aggregates at commit_slot, so a mid-step raise books nothing.
        dest = book.begin_slot(t)
        if self._windowed_book:
            # The ring column may hold an evicted slot's values; rewrite
            # the exogenous columns the dense path bulk-fills at reset
            # and zero the branch-written ones (every other column is
            # overwritten unconditionally below).
            inputs = self.inputs
            ops.copyto(dest["blackout"], planes.outage[:, t])
            ops.copyto(dest["p_bs_kw"], planes.p_bs_kw[:, t])
            ops.copyto(dest["p_cs_kw"], planes.p_cs_kw[:, t])
            ops.copyto(dest["p_pv_kw"], inputs.pv_power_kw[:, t])
            ops.copyto(dest["p_wt_kw"], inputs.wt_power_kw[:, t])
            ops.copyto(dest["rtp_kwh"], inputs.rtp_kwh[:, t])
            ops.copyto(dest["srtp_kwh"], planes.srtp_kwh[:, t])
            ops.copyto(dest["revenue"], planes.revenue[:, t])
            ops.copyto(dest["unserved_kwh"], 0.0)
            ops.copyto(dest["import_shortfall_kw"], 0.0)
        applied = dest["action"]
        p_bp = dest["p_bp_kw"]
        p_grid = dest["p_grid_kw"]
        surplus = dest["surplus_kw"]
        unserved = dest["unserved_kwh"]

        # --- Battery composite (BatteryPack._charge/_discharge fused):
        # resolves stored/drawn energy, the applied action, the battery
        # bus power, and the SoC advance in one backend call. The numpy
        # reference replays the pre-seam ufunc sequence verbatim; the
        # numba backend runs the same arithmetic as a JIT per-hub loop.
        ops.resolve_battery(self._kernel, soc, actions, b, applied, p_bp)

        # --- Eq. 7 (EctHub.power_balance): import the residual, curtail
        # surplus. The action-independent part comes from the plane cache.
        ops.add(planes.residual_static_kw[:, t], p_bp, out=b.residual)
        ops.maximum(b.residual, 0.0, out=p_grid)
        ops.negative(b.residual, out=surplus)
        ops.maximum(surplus, 0.0, out=surplus)
        ops.add(b.stored, b.drawn, out=b.throughput)

        # The exogenous columns (BS/CS draw, renewables, prices, blackout
        # mask, non-blackout revenue) were bulk-filled at reset; the
        # unserved/shortfall columns start zeroed and are only re-zeroed
        # when a branch below may write them.
        outage_now = bool(planes.outage_any[t])
        coupled = self._coupled
        if outage_now or coupled:
            ops.copyto(unserved, 0.0)

        # --- Blackout branch, only on the rows whose outage fires now
        # (HubSimulation._blackout_slot + BatteryPack.emergency_supply:
        # charging suspended, the action overridden, SoC allowed below
        # SoC_min). Most slots skip this block entirely.
        if outage_now:
            dark = ops.flatnonzero(planes.outage[:, t])
            dest["p_cs_kw"][dark] = 0.0
            dest["revenue"][dark] = 0.0

            soc_pre = soc[dark]
            deficit_kwh = planes.blackout_deficit_kwh[dark, t]
            eta = self._reserve_eta[dark]
            drawn_dark = ops.minimum(deficit_kwh / eta, soc_pre)
            served_kwh = drawn_dark * eta
            p_bp[dark] = ops.where(served_kwh > 0.0, -served_kwh / dt, 0.0)
            p_grid[dark] = 0.0
            surplus[dark] = planes.blackout_surplus_kw[dark, t]
            b.new_soc[dark] = soc_pre - drawn_dark
            b.throughput[dark] = drawn_dark
            unserved[dark] = deficit_kwh - served_kwh
            applied[dark] = IDLE
            if tele is not None:
                tele.metrics.inc("engine.blackout_hub_slots", dark.size)
                tele.metrics.inc(
                    "engine.reserve_dispatches",
                    ops.count_nonzero(drawn_dark > 0.0),
                )

        # The per-hub interconnection limit applies to the *requested*
        # import, before any feeder-level curtailment (blackout rows
        # request 0 kW, so a positive limit can never fire there).
        if self._any_import_limit:
            ops.greater(p_grid, params.import_limit_kw, out=b.mask)
            ops.logical_and(b.mask, self._limit_active, out=b.mask)
            if b.mask.any():
                hub = int(ops.argmax(b.mask))
                raise GridError(
                    f"hub {hub}: import of {p_grid[hub]:.3f} kW exceeds the "
                    f"interconnection limit of "
                    f"{params.import_limit_kw[hub]:.3f} kW"
                )

        if coupled:
            # Resolve feeder contention; the curtailed import is served
            # from the Eq. 6 reserve exactly like a blackout deficit
            # (blackout hubs request 0 import, so they pass through).
            if tele is None:
                granted, shortfall_kw = self.feeders.allocate(p_grid, t, ops=ops)
            else:
                alloc_start = time.perf_counter()
                granted, shortfall_kw = self.feeders.allocate(p_grid, t, ops=ops)
                tele.metrics.add_time(
                    "allocation", time.perf_counter() - alloc_start
                )
            ops.copyto(p_grid, granted)
            ops.copyto(dest["import_shortfall_kw"], shortfall_kw)
            shortfall_kwh = shortfall_kw * dt
            eta = self._reserve_eta
            drawn_short = ops.minimum(shortfall_kwh / eta, b.new_soc)
            served_kwh = drawn_short * eta
            p_bp -= ops.where(drawn_short > 0.0, served_kwh / dt, 0.0)
            b.new_soc -= drawn_short
            b.throughput += drawn_short
            # (x/η)·η can exceed x by one ulp — never book negative unserved.
            unserved += ops.maximum(shortfall_kwh - served_kwh, 0.0)
            if tele is not None:
                congested = ops.count_nonzero(shortfall_kw > 0.0)
                if congested:
                    tele.metrics.inc("engine.congested_hub_slots", congested)
                    tele.metrics.inc(
                        "engine.curtailed_kwh", float(shortfall_kwh.sum())
                    )
                    tele.metrics.inc(
                        "engine.reserve_dispatches",
                        ops.count_nonzero(drawn_short > 0.0),
                    )

        # Eqs. 8, 9, 11 — identical expressions to compute_slot_ledger.
        ops.multiply(p_grid, planes.rtp_dt[:, t], out=dest["grid_cost"])
        ops.not_equal(applied, IDLE, out=b.mask)
        ops.multiply(b.mask, params.c_bp_per_slot, out=dest["bp_cost"])

        # Commit the battery state as fresh arrays (like the PR-3 engine)
        # so caller-held `soc_kwh`/`throughput_kwh` snapshots stay valid
        # forever; the scratch buffers are reused next step.
        self.soc_kwh = b.new_soc.copy()
        ops.copyto(dest["soc_kwh"], self.soc_kwh)
        self.throughput_kwh = self.throughput_kwh + b.throughput

        book.commit_slot(t)
        self._t += 1
        if tele is not None:
            tele.metrics.inc("engine.slots")
            tele.metrics.inc("engine.hub_slots", self.params.n_hubs)
            tele.metrics.observe(
                "engine.step_seconds", time.perf_counter() - step_start
            )
        # The views were the kernel's write targets; hand them out
        # read-only so a caller cannot silently corrupt the booked slot.
        for column in dest.values():
            column.flags.writeable = False
        return dest

    def available_import_kw(self) -> np.ndarray:
        """Per-hub feeder headroom signal for the *current* slot.

        Each hub's action-independent grid draw (BS + CS load net of
        renewables, zero during a blackout) is read from the
        :class:`SlotPlanes` cache and charged against its feeder; the
        remaining capacity is fair-shared over the feeder's members.
        Congestion-aware schedulers charge only when the battery's extra
        import fits this signal. Infinite under the unlimited default.
        """
        if self.done:
            raise FleetError(f"fleet horizon of {self.horizon} slots exhausted")
        t = self._t
        return self.feeders.available_import_kw(
            self.planes.base_import_kw[:, t], t
        )

    def run(self, scheduler) -> FleetCostBook:
        """Run the remaining horizon under ``scheduler(simulation) -> actions``.

        ``scheduler`` may expose a ``reset(simulation)`` hook (the fleet
        schedulers do); it is invoked once before stepping. Every action
        batch still gets exact membership validation — the per-step check
        in :meth:`_check_actions` rejects everything ``np.isin`` would,
        just without its sort-based cost. Returns the completed
        :class:`FleetCostBook`.
        """
        reset_hook = getattr(scheduler, "reset", None)
        if callable(reset_hook):
            reset_hook(self)
        while not self.done:
            self.step(scheduler(self))
        return self.book
