"""Batch-stepping engine: advance N ECT-Hubs per slot with NumPy.

:class:`FleetSimulation` is the vectorized counterpart of
:class:`~repro.hub.simulation.HubSimulation`. Per slot it applies one
battery action per hub, resolves the Eq. 7 power balance, books Eqs. 8–11,
and overrides blackout slots (grid import zeroed, charging suspended, the
Eq. 6 emergency reserve carrying the base stations) — for **all hubs at
once** over :class:`~repro.fleet.params.FleetParams` /
:class:`~repro.fleet.inputs.FleetInputs` struct-of-arrays state.

Every expression mirrors the scalar engine's order of operations
(``BatteryPack._charge`` / ``_discharge`` / ``emergency_supply``,
``EctHub.power_balance``, ``compute_slot_ledger``), so a batched run is
numerically equivalent to N independent scalar runs; the property-style
test in ``tests/test_fleet.py`` enforces agreement within atol 1e-9.

Shared-grid coupling: hubs may be grouped onto common feeders with finite
import capacity (:class:`~repro.fleet.grid.FeederGroup`). After the
per-hub balance is resolved, the feeder allocation step curtails imports
wherever a group's aggregate draw exceeds its limit; the curtailed
energy is served from the Eq. 6 battery reserve (the same arithmetic as a
blackout slot) and whatever the reserve cannot cover is booked as
unserved. Under the default unlimited feeder the coupled step is
bit-identical to the uncoupled one.
"""

from __future__ import annotations

import numpy as np

from ..energy.battery import CHARGE, DISCHARGE, IDLE
from ..errors import ConfigError, FleetError, GridError
from .costs import FleetCostBook
from .grid import FeederGroup
from .inputs import FleetInputs
from .params import FleetParams

#: SoC-bound tolerance, identical to the scalar ``BatteryPack`` clipping.
_SOC_EPS = 1e-12


class FleetSimulation:
    """Advance a whole fleet through :class:`FleetInputs`, slot by slot."""

    def __init__(
        self,
        params: FleetParams,
        inputs: FleetInputs,
        *,
        initial_soc_fraction: float | np.ndarray = 0.5,
        feeders: FeederGroup | None = None,
        voll_per_kwh: float = 0.0,
    ) -> None:
        if params.n_hubs != inputs.n_hubs:
            raise FleetError(
                f"params describe {params.n_hubs} hubs but inputs carry "
                f"{inputs.n_hubs}"
            )
        self.params = params
        self.inputs = inputs
        self.feeders = feeders or FeederGroup.unlimited(params.n_hubs)
        if self.feeders.n_hubs != params.n_hubs:
            raise FleetError(
                f"feeder group assigns {self.feeders.n_hubs} hubs but the "
                f"fleet has {params.n_hubs}"
            )
        if self.feeders.horizon is not None and self.feeders.horizon != inputs.horizon:
            raise FleetError(
                f"feeder capacity horizon {self.feeders.horizon} does not "
                f"match the input horizon {inputs.horizon}"
            )
        # Skip the allocation step entirely when no limit can ever bind, so
        # the uncoupled default pays nothing for the coupling machinery.
        self._coupled = not self.feeders.is_unlimited
        self._outage = inputs.outage_mask()
        self._initial_soc = self._as_soc_fraction(initial_soc_fraction)
        self.voll_per_kwh = float(voll_per_kwh)
        self.book = FleetCostBook(
            params.n_hubs,
            inputs.horizon,
            feeders=self.feeders,
            voll_per_kwh=self.voll_per_kwh,
        )
        self._t = 0
        self.soc_kwh = self._reset_soc(self._initial_soc)
        self.throughput_kwh = np.zeros(params.n_hubs)

    def _as_soc_fraction(self, fraction: float | np.ndarray) -> np.ndarray:
        fractions = np.broadcast_to(
            np.asarray(fraction, dtype=float), (self.params.n_hubs,)
        ).copy()
        if fractions.min() < 0.0 or fractions.max() > 1.0:
            raise ConfigError(
                f"initial_soc_fraction must be in [0, 1], got {fraction}"
            )
        return fractions

    def _reset_soc(self, fractions: np.ndarray) -> np.ndarray:
        # Mirrors BatteryPack.reset: target clipped into the legal window.
        target = fractions * self.params.capacity_kwh
        return np.minimum(
            np.maximum(target, self.params.soc_min_kwh), self.params.soc_max_kwh
        )

    # ------------------------------------------------------------------ #
    # State                                                                #
    # ------------------------------------------------------------------ #

    @property
    def n_hubs(self) -> int:
        """Number of hubs stepped together."""
        return self.params.n_hubs

    @property
    def t(self) -> int:
        """Next slot index to simulate."""
        return self._t

    @property
    def horizon(self) -> int:
        """Total number of slots."""
        return self.inputs.horizon

    @property
    def done(self) -> bool:
        """Whether the horizon has been exhausted."""
        return self._t >= self.horizon

    @property
    def soc_fraction(self) -> np.ndarray:
        """Per-hub state of charge as a fraction of capacity."""
        return self.soc_kwh / self.params.capacity_kwh

    def reset(self, *, soc_fraction: float | np.ndarray | None = None) -> None:
        """Rewind to slot 0 and reset batteries and the fleet cost book."""
        self._t = 0
        self.book = FleetCostBook(
            self.params.n_hubs,
            self.inputs.horizon,
            feeders=self.feeders,
            voll_per_kwh=self.voll_per_kwh,
        )
        fractions = (
            self._initial_soc
            if soc_fraction is None
            else self._as_soc_fraction(soc_fraction)
        )
        self.soc_kwh = self._reset_soc(fractions)
        self.throughput_kwh = np.zeros(self.params.n_hubs)

    # ------------------------------------------------------------------ #
    # Stepping                                                             #
    # ------------------------------------------------------------------ #

    def step(self, actions: np.ndarray) -> dict[str, np.ndarray]:
        """Apply one battery action per hub to the current slot.

        ``actions`` has shape ``(n_hubs,)`` with entries in {−1, 0, 1}.
        Returns the recorded slot columns (arrays of shape ``(n_hubs,)``).
        """
        if self.done:
            raise FleetError(f"fleet horizon of {self.horizon} slots exhausted")
        actions = np.asarray(actions)
        if actions.shape != (self.n_hubs,):
            raise FleetError(
                f"actions must have shape ({self.n_hubs},), got {actions.shape}"
            )
        if not np.isin(actions, (DISCHARGE, IDLE, CHARGE)).all():
            raise FleetError("battery actions must be -1, 0, or 1")

        t = self._t
        params = self.params
        dt = params.dt_h
        blackout = self._outage[:, t]

        # Shared per-slot quantities (same formulas as the scalar engine).
        slot = self.inputs.slot(t)
        p_bs = params.bs_power_kw(slot.load_rate)
        rtp = slot.rtp_kwh
        srtp = params.cs_base_price_kwh * (1.0 - slot.discount)
        p_pv = slot.pv_power_kw
        p_wt = slot.wt_power_kw

        normal = self._normal_branch(actions, p_bs, p_pv, p_wt, t, dt)
        dark = self._blackout_branch(p_bs, p_pv, p_wt, dt)

        # Select per hub; battery state advances through exactly one branch.
        applied_action = np.where(blackout, IDLE, normal["action"])
        p_cs = np.where(blackout, 0.0, normal["p_cs_kw"])
        p_bp = np.where(blackout, dark["p_bp_kw"], normal["p_bp_kw"])
        p_grid = np.where(blackout, 0.0, normal["p_grid_kw"])
        surplus = np.where(blackout, dark["surplus_kw"], normal["surplus_kw"])
        unserved = np.where(blackout, dark["unserved_kwh"], 0.0)
        soc = np.where(blackout, dark["soc_kwh"], normal["soc_kwh"])
        throughput = np.where(
            blackout, dark["throughput_kwh"], normal["throughput_kwh"]
        )

        # The per-hub interconnection limit applies to the *requested*
        # import, before any feeder-level curtailment.
        self._check_import_limit(p_grid, blackout)

        shortfall_kw = np.zeros(self.n_hubs)
        if self._coupled:
            # Resolve feeder contention; the curtailed import is served
            # from the Eq. 6 reserve exactly like a blackout deficit
            # (blackout hubs request 0 import, so they pass through).
            p_grid, shortfall_kw = self.feeders.allocate(p_grid, t)
            shortfall_kwh = shortfall_kw * dt
            eta = np.where(params.paper_exact, 1.0, params.discharge_efficiency)
            drawn = np.minimum(shortfall_kwh / eta, soc)
            served_kwh = drawn * eta
            p_bp = p_bp - np.where(drawn > 0.0, served_kwh / dt, 0.0)
            soc = soc - drawn
            throughput = throughput + drawn
            # (x/η)·η can exceed x by one ulp — never book negative unserved.
            unserved = unserved + np.maximum(shortfall_kwh - served_kwh, 0.0)

        self.soc_kwh = soc
        self.throughput_kwh = self.throughput_kwh + throughput

        columns = {
            "action": applied_action,
            "blackout": blackout,
            "p_bs_kw": p_bs,
            "p_cs_kw": p_cs,
            "p_bp_kw": p_bp,
            "p_pv_kw": p_pv,
            "p_wt_kw": p_wt,
            "p_grid_kw": p_grid,
            "surplus_kw": surplus,
            "rtp_kwh": rtp,
            "srtp_kwh": srtp,
            "soc_kwh": self.soc_kwh,
            # Eqs. 8, 9, 11 — identical expressions to compute_slot_ledger.
            "grid_cost": p_grid * dt * rtp,
            "bp_cost": np.where(applied_action != IDLE, 1.0, 0.0)
            * params.c_bp_per_slot,
            "revenue": p_cs * dt * srtp,
            "unserved_kwh": unserved,
            "import_shortfall_kw": shortfall_kw,
        }
        self.book.record(t, **columns)
        self._t += 1
        return columns

    def _normal_branch(
        self,
        actions: np.ndarray,
        p_bs: np.ndarray,
        p_pv: np.ndarray,
        p_wt: np.ndarray,
        t: int,
        dt: float,
    ) -> dict[str, np.ndarray]:
        """Vectorized BatteryPack.step + Eq. 7 balance for non-blackout hubs."""
        params = self.params
        soc = self.soc_kwh

        # Charge path (BatteryPack._charge): clip the stored energy to the
        # SoC_max headroom; a fully-clipped request degrades to IDLE.
        eta_ch = params.charge_efficiency
        stored_requested = params.charge_rate_kw * dt * eta_ch
        headroom = np.maximum(params.soc_max_kwh - soc, 0.0)
        stored = np.where(
            stored_requested > headroom + _SOC_EPS, headroom, stored_requested
        )
        charging = (actions == CHARGE) & (stored > 0.0)
        stored = np.where(charging, stored, 0.0)
        bus_charge_kwh = np.where(charging, stored / eta_ch, 0.0)

        # Discharge path (BatteryPack._discharge), both efficiency
        # conventions: paper-exact moves SoC by η·R; physical draws R/η.
        eta_dch = params.discharge_efficiency
        requested_bus_kwh = params.discharge_rate_kw * dt
        drawn_requested = np.where(
            params.paper_exact,
            requested_bus_kwh * eta_dch,
            requested_bus_kwh / eta_dch,
        )
        bus_per_drawn = np.where(params.paper_exact, 1.0, eta_dch)
        available = np.maximum(soc - params.soc_min_kwh, 0.0)
        drawn = np.where(
            drawn_requested > available + _SOC_EPS, available, drawn_requested
        )
        discharging = (actions == DISCHARGE) & (drawn > 0.0)
        drawn = np.where(discharging, drawn, 0.0)
        bus_discharge_kwh = np.where(discharging, drawn * bus_per_drawn, 0.0)

        applied = np.where(
            charging, CHARGE, np.where(discharging, DISCHARGE, IDLE)
        )
        p_bp = (bus_charge_kwh - bus_discharge_kwh) / dt
        new_soc = soc + stored - drawn

        # Eq. 7 (EctHub.power_balance): import the residual, curtail surplus.
        p_cs = params.cs_power_kw(self.inputs.occupied[:, t])
        residual = p_bs + p_cs + p_bp - p_pv - p_wt
        p_grid = np.where(residual >= 0.0, residual, 0.0)
        surplus = np.where(residual >= 0.0, 0.0, -residual)

        return {
            "action": applied,
            "p_cs_kw": p_cs,
            "p_bp_kw": p_bp,
            "p_grid_kw": p_grid,
            "surplus_kw": surplus,
            "soc_kwh": new_soc,
            "throughput_kwh": stored + drawn,
        }

    def _blackout_branch(
        self, p_bs: np.ndarray, p_pv: np.ndarray, p_wt: np.ndarray, dt: float
    ) -> dict[str, np.ndarray]:
        """Grid down: renewables first, then the Eq. 6 emergency reserve.

        Mirrors ``HubSimulation._blackout_slot`` + ``BatteryPack.
        emergency_supply``: charging suspended, the scheduled action
        overridden, and the battery allowed below ``SoC_min``.
        """
        params = self.params
        soc = self.soc_kwh

        renewable = p_pv + p_wt
        deficit_kwh = np.maximum(p_bs - renewable, 0.0) * dt
        eta = np.where(params.paper_exact, 1.0, params.discharge_efficiency)
        drawn = np.minimum(deficit_kwh / eta, soc)
        served_kwh = drawn * eta
        return {
            "p_bp_kw": np.where(served_kwh > 0.0, -served_kwh / dt, 0.0),
            "surplus_kw": np.maximum(renewable - p_bs, 0.0),
            "soc_kwh": soc - drawn,
            "throughput_kwh": drawn,
            "unserved_kwh": deficit_kwh - served_kwh,
        }

    def available_import_kw(self) -> np.ndarray:
        """Per-hub feeder headroom signal for the *current* slot.

        Each hub's action-independent grid draw (BS + CS load net of
        renewables, zero during a blackout) is charged against its feeder;
        the remaining capacity is fair-shared over the feeder's members.
        Congestion-aware schedulers charge only when the battery's extra
        import fits this signal. Infinite under the unlimited default.
        """
        if self.done:
            raise FleetError(f"fleet horizon of {self.horizon} slots exhausted")
        t = self._t
        slot = self.inputs.slot(t)
        base = np.maximum(
            self.params.bs_power_kw(slot.load_rate)
            + self.params.cs_power_kw(slot.occupied)
            - slot.pv_power_kw
            - slot.wt_power_kw,
            0.0,
        )
        base = np.where(self._outage[:, t], 0.0, base)
        return self.feeders.available_import_kw(base, t)

    def _check_import_limit(self, p_grid: np.ndarray, blackout: np.ndarray) -> None:
        """GridConnection's interconnection-limit check, batched."""
        limit = self.params.import_limit_kw
        over = ~blackout & (limit > 0.0) & (p_grid > limit)
        if over.any():
            hub = int(np.argmax(over))
            raise GridError(
                f"hub {hub}: import of {p_grid[hub]:.3f} kW exceeds the "
                f"interconnection limit of {limit[hub]:.3f} kW"
            )

    def run(self, scheduler) -> FleetCostBook:
        """Run the remaining horizon under ``scheduler(simulation) -> actions``.

        ``scheduler`` may expose a ``reset(simulation)`` hook (the fleet
        schedulers do); it is invoked once before stepping. Returns the
        completed :class:`FleetCostBook`.
        """
        reset_hook = getattr(scheduler, "reset", None)
        if callable(reset_hook):
            reset_hook(self)
        while not self.done:
            self.step(scheduler(self))
        return self.book
