"""Per-hub equipment parameters in struct-of-arrays form.

:class:`FleetParams` flattens N :class:`~repro.hub.hub.HubConfig` objects
into ``(n_hubs,)`` NumPy arrays so :class:`~repro.fleet.simulation.
FleetSimulation` can advance every hub with one vectorized expression per
slot. Each array mirrors one scalar used by the per-hub engine (battery
Eqs. 3–5, BS Eq. 1, CS Eq. 2, the Eq. 8 battery operating cost), so the
batched arithmetic can reproduce the scalar arithmetic term for term.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Sequence

import numpy as np

from ..errors import FleetError
from ..hub.hub import HubConfig


@dataclass(frozen=True)
class FleetParams:
    """``(n_hubs,)`` arrays of every per-hub scalar the engine needs.

    ``dt_h`` stays a scalar: the batched engine advances all hubs on one
    shared slot clock, so mixed slot lengths are rejected at build time.
    """

    capacity_kwh: np.ndarray
    charge_rate_kw: np.ndarray
    discharge_rate_kw: np.ndarray
    charge_efficiency: np.ndarray
    discharge_efficiency: np.ndarray
    soc_min_kwh: np.ndarray
    soc_max_kwh: np.ndarray
    paper_exact: np.ndarray
    n_base_stations: np.ndarray
    bs_p_min_kw: np.ndarray
    bs_p_max_kw: np.ndarray
    cs_rate_kw: np.ndarray
    cs_base_price_kwh: np.ndarray
    import_limit_kw: np.ndarray
    c_bp_per_slot: np.ndarray
    dt_h: float = 1.0

    def __post_init__(self) -> None:
        first = self.capacity_kwh
        n = first.shape[0] if isinstance(first, np.ndarray) and first.ndim == 1 else -1
        for spec in fields(self):
            if spec.name == "dt_h":
                continue
            arr = getattr(self, spec.name)
            if not isinstance(arr, np.ndarray) or arr.ndim != 1:
                raise FleetError(f"fleet parameter {spec.name} must be a 1-D array")
            if arr.shape[0] != n:
                raise FleetError(
                    f"fleet parameter {spec.name} has length {arr.shape[0]}, "
                    f"expected {n}"
                )
        if n <= 0:
            raise FleetError("a fleet needs at least one hub")
        if self.dt_h <= 0:
            raise FleetError(f"dt_h must be positive, got {self.dt_h}")

    @property
    def n_hubs(self) -> int:
        """Number of hubs in the fleet."""
        return int(self.capacity_kwh.shape[0])

    def bs_power_kw(self, load_rate: np.ndarray) -> np.ndarray:
        """Eq. 1 cluster draw per hub for load fractions ``load_rate``.

        One shared definition for the engine, the plane cache, and the
        feeder congestion signal, so every consumer prices the BS load
        with bit-identical arithmetic. ``load_rate`` may be one slot
        (``(n_hubs,)``) or a full trace block (``(n_hubs, horizon)``);
        2-D inputs broadcast the per-hub parameters over the horizon.
        """
        load_rate = np.asarray(load_rate)
        n_bs, p_min, p_max = (
            self.n_base_stations,
            self.bs_p_min_kw,
            self.bs_p_max_kw,
        )
        if load_rate.ndim == 2:
            n_bs, p_min, p_max = n_bs[:, None], p_min[:, None], p_max[:, None]
        return n_bs * (p_min + load_rate * (p_max - p_min))

    def cs_power_kw(self, occupied: np.ndarray) -> np.ndarray:
        """Eq. 2 charging-station draw per hub for occupancy ``occupied``.

        Accepts one slot or a ``(n_hubs, horizon)`` block like
        :meth:`bs_power_kw`.
        """
        occupied = np.asarray(occupied)
        rate = self.cs_rate_kw
        if occupied.ndim == 2:
            rate = rate[:, None]
        return occupied * rate

    @classmethod
    def from_hub_configs(cls, configs: Sequence[HubConfig]) -> "FleetParams":
        """Stack validated :class:`HubConfig` objects into parameter arrays.

        Raises :class:`FleetError` for fleet-incompatible configs: mixed
        slot lengths or grid export enabled (the batched balance implements
        the paper's no-feed-in rule only).
        """
        if not configs:
            raise FleetError("a fleet needs at least one HubConfig")
        dts = {config.dt_h for config in configs}
        if len(dts) != 1:
            raise FleetError(f"all hubs must share one slot length, got {sorted(dts)}")
        if any(config.grid.allow_export for config in configs):
            raise FleetError("the batched engine does not support grid export")

        def column(getter, dtype=float) -> np.ndarray:
            return np.array([getter(config) for config in configs], dtype=dtype)

        return cls(
            capacity_kwh=column(lambda c: c.battery.capacity_kwh),
            charge_rate_kw=column(lambda c: c.battery.charge_rate_kw),
            discharge_rate_kw=column(lambda c: c.battery.discharge_rate_kw),
            charge_efficiency=column(lambda c: c.battery.charge_efficiency),
            discharge_efficiency=column(lambda c: c.battery.discharge_efficiency),
            soc_min_kwh=column(lambda c: c.battery.soc_min_kwh),
            soc_max_kwh=column(lambda c: c.battery.soc_max_kwh),
            paper_exact=column(lambda c: c.battery.paper_exact, dtype=bool),
            n_base_stations=column(lambda c: c.n_base_stations, dtype=int),
            bs_p_min_kw=column(lambda c: c.base_station.p_min_kw),
            bs_p_max_kw=column(lambda c: c.base_station.p_max_kw),
            cs_rate_kw=column(lambda c: c.charging_station.rate_kw),
            cs_base_price_kwh=column(lambda c: c.charging_station.base_price_kwh),
            import_limit_kw=column(lambda c: c.grid.import_limit_kw),
            c_bp_per_slot=column(lambda c: c.c_bp_per_slot),
            dt_h=float(configs[0].dt_h),
        )
