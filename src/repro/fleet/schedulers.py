"""Vectorized battery schedulers over :class:`FleetSimulation` states.

Each scheduler is the batched twin of one scalar baseline in
:mod:`repro.rl.schedulers` and produces **identical per-hub actions** given
identical inputs/seeds, which is what lets the equivalence tests compare
whole scheduled runs between the two engines:

* :class:`FleetIdleScheduler` ↔ ``IdleScheduler``
* :class:`FleetRandomScheduler` ↔ ``RandomScheduler`` (per-hub streams;
  NumPy bulk draws reproduce repeated single draws bit-for-bit)
* :class:`FleetRuleBasedScheduler` ↔ ``RuleBasedScheduler``
* :class:`FleetGreedyRenewableScheduler` ↔ ``GreedyRenewableScheduler``

The protocol is ``scheduler(sim) -> (n_hubs,) actions`` plus an optional
``reset(sim)`` hook that :meth:`FleetSimulation.run` invokes once.

Rule-based and greedy are **congestion-aware**: before committing to a
charge they consult :meth:`FleetSimulation.available_import_kw` — the
per-hub fair share of remaining feeder capacity — and fall back to IDLE
where the battery's extra import would not fit. On an uncoupled fleet the
signal is infinite, so the actions stay identical to the scalar twins.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..energy.battery import CHARGE, DISCHARGE, IDLE
from ..errors import ConfigError, FleetError
from ..rng import RngFactory
from .simulation import FleetSimulation


class FleetScheduler:
    """Base class: a batched policy over :class:`FleetSimulation` states."""

    name: str = "fleet-scheduler"

    def __call__(self, sim: FleetSimulation) -> np.ndarray:
        raise NotImplementedError

    def reset(self, sim: FleetSimulation) -> None:
        """Hook for per-run state (thresholds, pre-drawn actions)."""


def suppress_infeasible_charges(
    sim: FleetSimulation, actions: np.ndarray
) -> np.ndarray:
    """Turn CHARGE into IDLE where the feeder headroom cannot carry it.

    A hub's charge adds ``charge_rate_kw`` of bus load; what on-site
    renewable surplus cannot cover must be imported. Where that extra
    import exceeds the hub's fair share of remaining feeder capacity
    (:meth:`FleetSimulation.available_import_kw`), the charge is dropped.
    Free no-op on uncoupled fleets, so the PR-1 scheduler throughput and
    action streams are untouched there.
    """
    if sim.feeders.is_unlimited:
        return actions
    ops = sim.ops
    available = sim.available_import_kw()
    # Both the headroom signal and the on-site surplus come from the
    # engine's SlotPlanes cache — nothing is rebuilt per step.
    onsite_surplus = sim.planes.onsite_surplus_kw[:, sim.t]
    extra_import = ops.maximum(sim.params.charge_rate_kw - onsite_surplus, 0.0)
    return ops.where(
        (actions == CHARGE) & (extra_import > available), IDLE, actions
    )


class FleetIdleScheduler(FleetScheduler):
    """Never use any battery."""

    name = "idle"

    def __call__(self, sim: FleetSimulation) -> np.ndarray:
        return np.zeros(sim.n_hubs, dtype=int)


class FleetRandomScheduler(FleetScheduler):
    """Uniform random action per hub per slot, one RNG stream per hub.

    Sequences are pre-drawn per hub at :meth:`reset`; because NumPy's
    ``Generator.integers`` yields the same values whether drawn in bulk or
    one at a time, hub *i* receives exactly the actions the scalar
    ``RandomScheduler`` would draw from the same stream.
    """

    name = "random"

    def __init__(self, rngs: Sequence[np.random.Generator]) -> None:
        if not rngs:
            raise ConfigError("FleetRandomScheduler needs at least one stream")
        self._rngs = list(rngs)
        self._actions: np.ndarray | None = None

    @classmethod
    def from_factory(
        cls,
        factory: RngFactory,
        n_hubs: int,
        *,
        prefix: str = "fleet/random",
        hub_ids: Sequence[int] | None = None,
    ) -> "FleetRandomScheduler":
        """One named sub-stream per hub, stable under fleet-size changes.

        ``hub_ids`` overrides the stream indices — a sharded run passes
        each hub's *global* index so shard hub *i* draws exactly the
        stream the unsharded fleet would give it (``{prefix}/{hub_id}``).
        """
        if hub_ids is None:
            return cls(list(factory.substreams(prefix, n_hubs)))
        if len(hub_ids) != n_hubs:
            raise ConfigError(
                f"{len(hub_ids)} hub_ids for {n_hubs} hubs"
            )
        return cls(
            [factory.stream(f"{prefix}/{int(hub_id)}") for hub_id in hub_ids]
        )

    def reset(self, sim: FleetSimulation) -> None:
        if len(self._rngs) != sim.n_hubs:
            raise FleetError(
                f"{len(self._rngs)} random streams for {sim.n_hubs} hubs"
            )
        self._actions = np.stack(
            [rng.integers(-1, 2, size=sim.horizon) for rng in self._rngs]
        )

    def __call__(self, sim: FleetSimulation) -> np.ndarray:
        if self._actions is None:
            self.reset(sim)
        return self._actions[:, sim.t]


class FleetRuleBasedScheduler(FleetScheduler):
    """Charge below each hub's cheap-price quantile, discharge above the
    expensive one — the batched peak/off-peak heuristic.

    Thresholds are computed per hub over that hub's own full price trace
    (exactly like the scalar rule), so every hub adapts to its own price
    level.
    """

    name = "rule-based"

    def __init__(
        self,
        *,
        cheap_quantile: float = 0.3,
        expensive_quantile: float = 0.7,
        congestion_aware: bool = True,
    ) -> None:
        if not 0.0 < cheap_quantile < expensive_quantile < 1.0:
            raise ConfigError(
                "quantiles must satisfy 0 < cheap < expensive < 1, got "
                f"({cheap_quantile}, {expensive_quantile})"
            )
        self.cheap_quantile = cheap_quantile
        self.expensive_quantile = expensive_quantile
        self.congestion_aware = congestion_aware
        self._cheap: np.ndarray | None = None
        self._expensive: np.ndarray | None = None

    def reset(self, sim: FleetSimulation) -> None:
        # One axis-vectorized quantile per threshold; the backend's
        # per-row results are bit-identical to N separate np.quantile(row)
        # calls, so thresholds still match the scalar scheduler's exactly
        # (the engine equivalence suite compares whole scheduled runs).
        prices = sim.inputs.rtp_kwh
        self._cheap = sim.ops.quantile_rows(prices, self.cheap_quantile)
        self._expensive = sim.ops.quantile_rows(prices, self.expensive_quantile)

    def __call__(self, sim: FleetSimulation) -> np.ndarray:
        if self._cheap is None or self._expensive is None:
            self.reset(sim)
        ops = sim.ops
        price = sim.inputs.rtp_kwh[:, sim.t]
        actions = ops.where(
            price <= self._cheap,
            CHARGE,
            ops.where(price >= self._expensive, DISCHARGE, IDLE),
        )
        if self.congestion_aware:
            actions = suppress_infeasible_charges(sim, actions)
        return actions


class FleetGreedyRenewableScheduler(FleetScheduler):
    """Store renewable surplus; discharge during each hub's expensive slots."""

    name = "greedy-renewable"

    def __init__(
        self, *, expensive_quantile: float = 0.75, congestion_aware: bool = True
    ) -> None:
        if not 0.0 < expensive_quantile < 1.0:
            raise ConfigError(
                f"expensive_quantile must be in (0, 1), got {expensive_quantile}"
            )
        self.expensive_quantile = expensive_quantile
        self.congestion_aware = congestion_aware
        self._threshold: np.ndarray | None = None

    def reset(self, sim: FleetSimulation) -> None:
        # Axis-vectorized like the rule-based thresholds (bit-identical
        # per row to separate np.quantile calls).
        self._threshold = sim.ops.quantile_rows(
            sim.inputs.rtp_kwh, self.expensive_quantile
        )

    def __call__(self, sim: FleetSimulation) -> np.ndarray:
        if self._threshold is None:
            self.reset(sim)
        ops = sim.ops
        t = sim.t
        renewables = sim.inputs.pv_power_kw[:, t] + sim.inputs.wt_power_kw[:, t]
        bs_load = sim.planes.p_bs_kw[:, t]
        actions = ops.where(
            renewables > bs_load,
            CHARGE,
            ops.where(sim.inputs.rtp_kwh[:, t] >= self._threshold, DISCHARGE, IDLE),
        )
        if self.congestion_aware:
            actions = suppress_infeasible_charges(sim, actions)
        return actions


#: Scheduler-name registry used by the fleet experiment / CLI.
FLEET_SCHEDULERS = (
    FleetIdleScheduler.name,
    FleetRandomScheduler.name,
    FleetRuleBasedScheduler.name,
    FleetGreedyRenewableScheduler.name,
)


def make_fleet_scheduler(
    name: str,
    *,
    n_hubs: int,
    rng_factory: RngFactory | None = None,
    congestion_aware: bool = True,
    cheap_quantile: float | None = None,
    expensive_quantile: float | None = None,
    hub_ids: Sequence[int] | None = None,
) -> FleetScheduler:
    """Instantiate a fleet scheduler by name (random needs a factory).

    Quantiles left ``None`` use each scheduler class's own defaults; a
    quantile the named scheduler does not consume raises
    :class:`ConfigError` instead of being silently dropped. ``hub_ids``
    carries each hub's global index into the random scheduler's stream
    names (sharded runs); the deterministic schedulers ignore it — their
    per-hub state is row-local already.
    """

    def reject_unused(allowed: tuple[str, ...]) -> None:
        supplied = {
            "cheap_quantile": cheap_quantile,
            "expensive_quantile": expensive_quantile,
        }
        unused = [
            label
            for label, value in supplied.items()
            if value is not None and label not in allowed
        ]
        if unused:
            raise ConfigError(
                f"scheduler {name!r} does not take {', '.join(unused)}"
            )

    if name == FleetIdleScheduler.name:
        reject_unused(())
        return FleetIdleScheduler()
    if name == FleetRandomScheduler.name:
        reject_unused(())
        factory = rng_factory or RngFactory(seed=0)
        return FleetRandomScheduler.from_factory(factory, n_hubs, hub_ids=hub_ids)
    if name == FleetRuleBasedScheduler.name:
        kwargs = {}
        if cheap_quantile is not None:
            kwargs["cheap_quantile"] = cheap_quantile
        if expensive_quantile is not None:
            kwargs["expensive_quantile"] = expensive_quantile
        return FleetRuleBasedScheduler(congestion_aware=congestion_aware, **kwargs)
    if name == FleetGreedyRenewableScheduler.name:
        reject_unused(("expensive_quantile",))
        kwargs = {}
        if expensive_quantile is not None:
            kwargs["expensive_quantile"] = expensive_quantile
        return FleetGreedyRenewableScheduler(
            congestion_aware=congestion_aware, **kwargs
        )
    raise FleetError(
        f"unknown fleet scheduler {name!r}; available: {', '.join(FLEET_SCHEDULERS)}"
    )
