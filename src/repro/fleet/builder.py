"""Fleet assembly: from ``default_fleet`` scenarios to a batched engine.

Bridges the per-hub scenario layer (:mod:`repro.hub.scenario`) and the
struct-of-arrays engine: stack N :class:`~repro.hub.scenario.HubScenario`
traces + configs into :class:`FleetParams` / :class:`FleetInputs`, resolve
charging occupancy from the generative strata model, and optionally sample
per-hub blackout masks — yielding city-scale fleets
(``build_default_fleet(n_hubs=200)``) ready to batch-step.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import FleetError
from ..hub.scenario import HubScenario
from .grid import FeederGroup
from .inputs import FleetInputs
from .params import FleetParams
from .simulation import FleetSimulation


def fleet_params_from_scenarios(scenarios: Sequence[HubScenario]) -> FleetParams:
    """Stack the scenarios' hub configs into engine parameter arrays."""
    if not scenarios:
        raise FleetError("a fleet needs at least one scenario")
    return FleetParams.from_hub_configs([s.hub_config for s in scenarios])


def fleet_inputs_from_scenarios(
    scenarios: Sequence[HubScenario],
    occupied: np.ndarray,
    discount: np.ndarray,
    *,
    outage: np.ndarray | None = None,
) -> FleetInputs:
    """Stack the scenarios' traces once occupancy/discounts are decided.

    ``occupied`` / ``discount`` / ``outage`` accept either one row per hub
    (``(n_hubs, horizon)``) or a single shared ``(horizon,)`` trace that is
    broadcast to every hub.
    """
    if not scenarios:
        raise FleetError("a fleet needs at least one scenario")
    horizons = {s.n_hours for s in scenarios}
    if len(horizons) != 1:
        raise FleetError(
            f"all scenarios must share one horizon, got {sorted(horizons)}"
        )
    n_hubs, horizon = len(scenarios), horizons.pop()

    def rows(values: np.ndarray, dtype) -> np.ndarray:
        arr = np.asarray(values, dtype=dtype)
        if arr.ndim == 1:
            arr = np.broadcast_to(arr, (n_hubs, horizon)).copy()
        if arr.shape != (n_hubs, horizon):
            raise FleetError(
                f"per-hub trace must have shape ({n_hubs}, {horizon}), "
                f"got {arr.shape}"
            )
        return arr

    return FleetInputs(
        load_rate=np.stack([s.load_rate for s in scenarios]),
        rtp_kwh=np.stack([s.rtp_kwh for s in scenarios]),
        pv_power_kw=np.stack([s.pv_power_kw for s in scenarios]),
        wt_power_kw=np.stack([s.wt_power_kw for s in scenarios]),
        occupied=rows(occupied, int),
        discount=rows(discount, float),
        outage=None if outage is None else rows(outage, bool),
    )


def fleet_simulation_from_scenarios(
    scenarios: Sequence[HubScenario],
    occupied: np.ndarray,
    discount: np.ndarray,
    *,
    outage: np.ndarray | None = None,
    initial_soc_fraction: float | np.ndarray = 0.5,
    feeders: FeederGroup | None = None,
    voll_per_kwh: float = 0.0,
    storage: str = "dense",
    window: int | None = None,
    backend: str = "numpy",
) -> FleetSimulation:
    """Convenience: params + inputs + engine in one call.

    ``storage``/``window`` select the cost-book layout (see
    :class:`~repro.fleet.costs.FleetCostBook`): ``"windowed"`` folds
    slots into running aggregates over a bounded ring so book memory
    stops scaling with the horizon. ``backend`` picks the array backend
    the engine dispatches through (see :mod:`repro.backend`).
    """
    return FleetSimulation(
        fleet_params_from_scenarios(scenarios),
        fleet_inputs_from_scenarios(scenarios, occupied, discount, outage=outage),
        initial_soc_fraction=initial_soc_fraction,
        feeders=feeders,
        voll_per_kwh=voll_per_kwh,
        storage=storage,
        window=window,
        backend=backend,
    )


def build_default_fleet(
    n_hubs: int,
    *,
    n_days: int = 30,
    seed: int = 0,
    outage_probability: float = 0.0,
    recovery_time_h: int = 4,
    n_feeders: int = 1,
    feeder_capacity_kw: float | None = None,
    allocation: str = "proportional",
) -> tuple[list[HubScenario], FleetSimulation]:
    """A ready-to-run fleet over ``default_fleet`` sites.

    Generates ``n_hubs`` heterogeneous urban/rural scenarios, realises
    charging occupancy from each hub's latent strata (no discounts — the
    undiscounted baseline used by the scheduler studies), optionally
    samples per-hub blackout windows, and returns both the scenario list
    (for inspection / scalar-engine cross-checks) and the batched engine.

    ``feeder_capacity_kw`` switches on shared-grid coupling: hubs are
    round-robined over ``n_feeders`` feeders of that per-slot import
    capacity, with contention resolved by ``allocation``
    (``"proportional"`` or ``"priority"``). ``None`` keeps the capacity
    unlimited — numerically the uncoupled engine — while still honouring
    the requested feeder topology in the cost book's rollups.

    Since the spec layer landed this is a thin shim over the declarative
    path: the arguments become a :class:`~repro.spec.scenario.ScenarioSpec`
    and the :mod:`repro.spec.compiler` does the assembly (bit-identically
    to the original imperative builder, which the fleet equivalence and
    determinism suites enforce).
    """
    if n_hubs <= 0:
        raise FleetError(f"n_hubs must be positive, got {n_hubs}")
    if n_days <= 0:
        raise FleetError(f"n_days must be positive, got {n_days}")
    # Local import: repro.spec imports repro.fleet submodules at load time.
    from ..spec.compiler import build
    from ..spec.scenario import (
        BlackoutSpec,
        FleetSpec,
        GridSpec,
        RunSpec,
        ScenarioSpec,
    )

    compiled = build(
        ScenarioSpec(
            name="default-fleet",
            fleet=FleetSpec(n_hubs=n_hubs),
            grid=GridSpec(
                n_feeders=n_feeders,
                feeder_capacity_kw=feeder_capacity_kw,
                allocation=allocation,
            ),
            blackout=BlackoutSpec(
                outage_probability_per_hour=outage_probability,
                recovery_time_h=recovery_time_h,
            ),
            run=RunSpec(days=n_days, seed=seed),
        )
    )
    return compiled.scenarios, compiled.simulation
