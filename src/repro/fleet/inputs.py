"""Stacked exogenous traces: ``(n_hubs, horizon)`` struct-of-arrays inputs.

:class:`FleetInputs` is the batched counterpart of
:class:`~repro.hub.simulation.HubInputs`: one row per hub, one column per
slot, validated by the same :func:`~repro.hub.simulation.
validate_exogenous_traces` checks (including NaN/inf rejection). Rows can
be re-extracted as plain :class:`HubInputs` for interop with the scalar
engine — the equivalence tests lean on that round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Sequence

import numpy as np

from ..errors import FleetError
from ..hub.simulation import HubInputs, validate_exogenous_traces

_TRACE_NAMES = (
    "load_rate",
    "rtp_kwh",
    "pv_power_kw",
    "wt_power_kw",
    "occupied",
    "discount",
)


class SlotTraces(NamedTuple):
    """One slot's exogenous columns, each shaped ``(n_hubs,)``."""

    load_rate: np.ndarray
    rtp_kwh: np.ndarray
    pv_power_kw: np.ndarray
    wt_power_kw: np.ndarray
    occupied: np.ndarray
    discount: np.ndarray


@dataclass(frozen=True)
class FleetInputs:
    """Exogenous traces for a whole fleet, all shaped ``(n_hubs, horizon)``.

    ``outage`` is optional like the scalar engine's mask; ``None`` means no
    blackout anywhere.
    """

    load_rate: np.ndarray
    rtp_kwh: np.ndarray
    pv_power_kw: np.ndarray
    wt_power_kw: np.ndarray
    occupied: np.ndarray
    discount: np.ndarray
    outage: np.ndarray | None = None

    def __post_init__(self) -> None:
        shape = np.asarray(self.load_rate).shape
        if len(shape) != 2:
            raise FleetError(
                f"fleet traces must be 2-D (n_hubs, horizon), got shape {shape}"
            )
        for name in _TRACE_NAMES[1:]:
            if np.asarray(getattr(self, name)).shape != shape:
                raise FleetError(f"fleet trace {name} has inconsistent shape")
        if self.outage is not None and np.asarray(self.outage).shape != shape:
            raise FleetError("fleet outage mask has inconsistent shape")
        validate_exogenous_traces(
            load_rate=self.load_rate,
            rtp_kwh=self.rtp_kwh,
            pv_power_kw=self.pv_power_kw,
            wt_power_kw=self.wt_power_kw,
            occupied=self.occupied,
            discount=self.discount,
            context="fleet input",
        )

    @property
    def n_hubs(self) -> int:
        """Number of hub rows."""
        return int(self.load_rate.shape[0])

    @property
    def horizon(self) -> int:
        """Number of slots per hub."""
        return int(self.load_rate.shape[1])

    def slot(self, t: int) -> SlotTraces:
        """All six trace columns at slot ``t`` — the engine's per-step view."""
        if not 0 <= t < self.horizon:
            raise FleetError(f"slot {t} out of range for horizon {self.horizon}")
        return SlotTraces(
            load_rate=self.load_rate[:, t],
            rtp_kwh=self.rtp_kwh[:, t],
            pv_power_kw=self.pv_power_kw[:, t],
            wt_power_kw=self.wt_power_kw[:, t],
            occupied=self.occupied[:, t],
            discount=self.discount[:, t],
        )

    def outage_mask(self) -> np.ndarray:
        """Boolean ``(n_hubs, horizon)`` blackout mask (all-False when None).

        The materialized mask is cached on the instance: the engine and
        its :class:`~repro.fleet.planes.SlotPlanes` both consume it, and
        the traces are frozen, so one copy serves every caller.
        """
        cached = getattr(self, "_outage_mask", None)
        if cached is None:
            if self.outage is None:
                cached = np.zeros((self.n_hubs, self.horizon), dtype=bool)
            else:
                cached = np.asarray(self.outage, dtype=bool)
            object.__setattr__(self, "_outage_mask", cached)
        return cached

    @classmethod
    def from_hub_inputs(cls, inputs: Sequence[HubInputs]) -> "FleetInputs":
        """Stack per-hub :class:`HubInputs` rows into one fleet block."""
        if not inputs:
            raise FleetError("a fleet needs at least one HubInputs row")
        horizons = {len(one) for one in inputs}
        if len(horizons) != 1:
            raise FleetError(
                f"all hubs must share one horizon, got lengths {sorted(horizons)}"
            )
        horizon = horizons.pop()
        outage: np.ndarray | None = None
        if any(one.outage is not None for one in inputs):
            outage = np.stack(
                [
                    np.zeros(horizon, dtype=bool)
                    if one.outage is None
                    else np.asarray(one.outage, dtype=bool)
                    for one in inputs
                ]
            )
        return cls(
            load_rate=np.stack([np.asarray(one.load_rate, dtype=float) for one in inputs]),
            rtp_kwh=np.stack([np.asarray(one.rtp_kwh, dtype=float) for one in inputs]),
            pv_power_kw=np.stack(
                [np.asarray(one.pv_power_kw, dtype=float) for one in inputs]
            ),
            wt_power_kw=np.stack(
                [np.asarray(one.wt_power_kw, dtype=float) for one in inputs]
            ),
            occupied=np.stack([np.asarray(one.occupied, dtype=int) for one in inputs]),
            discount=np.stack([np.asarray(one.discount, dtype=float) for one in inputs]),
            outage=outage,
        )

    def with_occupancy(
        self, occupied: np.ndarray, discount: np.ndarray
    ) -> "FleetInputs":
        """New inputs with the occupancy/discount planes swapped in.

        The four exogenous trace planes (load, tariff, PV, wind) and the
        outage mask are shared with ``self`` — this is the pricing loop's
        injection seam: a discount schedule re-realises occupancy without
        re-stacking the per-hub traces. 1-D rows broadcast across hubs.
        """
        shape = (self.n_hubs, self.horizon)
        occupied = np.asarray(occupied, dtype=int)
        discount = np.asarray(discount, dtype=float)
        if occupied.ndim == 1:
            occupied = np.broadcast_to(occupied, shape).copy()
        if discount.ndim == 1:
            discount = np.broadcast_to(discount, shape).copy()
        if occupied.shape != shape or discount.shape != shape:
            raise FleetError(
                f"occupancy/discount planes must have shape {shape}, got "
                f"{occupied.shape} and {discount.shape}"
            )
        return FleetInputs(
            load_rate=self.load_rate,
            rtp_kwh=self.rtp_kwh,
            pv_power_kw=self.pv_power_kw,
            wt_power_kw=self.wt_power_kw,
            occupied=occupied,
            discount=discount,
            outage=self.outage,
        )

    def hub(self, index: int) -> HubInputs:
        """Row ``index`` as scalar-engine :class:`HubInputs`."""
        if not 0 <= index < self.n_hubs:
            raise FleetError(f"hub index {index} out of range for {self.n_hubs} hubs")
        return HubInputs(
            load_rate=self.load_rate[index],
            rtp_kwh=self.rtp_kwh[index],
            pv_power_kw=self.pv_power_kw[index],
            wt_power_kw=self.wt_power_kw[index],
            occupied=self.occupied[index],
            discount=self.discount[index],
            outage=None if self.outage is None else self.outage[index],
        )
