"""Precomputed slot planes: the action-independent half of every step.

Per slot, :meth:`FleetSimulation.step` needs the base-station draw
(Eq. 1), the charging-station draw (Eq. 2), the discounted selling price,
the blackout deficit/surplus of the Eq. 6 emergency branch, and the
feeder congestion signal's base import — none of which depend on the
battery actions being applied. The PR-1 engine rebuilt all of them from
``inputs.slot(t)`` tuples on every step; :class:`SlotPlanes` computes
each one **once** as an ``(n_hubs, horizon)`` plane so the fused kernel
only reads column views.

The Eq. 1/Eq. 2 draws, prices, revenue, blackout deficit/surplus, and
congestion-signal planes use elementwise arithmetic identical (term for
term, in the same order) to the per-slot expressions they replace —
``tests/test_planes.py`` pins those columns bit-for-bit. Two planes
deliberately regroup a sum for speed (``residual_static_kw`` hoists the
battery term out of Eq. 7; ``rtp_dt`` pre-multiplies the Eq. 8 price by
the slot length), which can move the affected columns by an ulp relative
to the PR-3 step; the scalar-equivalence suite in ``tests/test_fleet.py``
bounds the whole kernel at atol 1e-9.

Memory: ~10 float64 planes, i.e. roughly the footprint of the
:class:`~repro.fleet.inputs.FleetInputs` traces themselves (80 bytes per
hub-slot) — at the 100-hub x 336-slot benchmark workload about 2.7 MB.
Planes are immutable for the engine's lifetime and shared across
``reset()`` calls; only the battery state is per-run.
"""

from __future__ import annotations

from ..backend import ArrayOps, get_backend
from .inputs import FleetInputs
from .params import FleetParams


class SlotPlanes:
    """``(n_hubs, horizon)`` planes of every action-independent quantity."""

    __slots__ = (
        "p_bs_kw",
        "p_cs_kw",
        "srtp_kwh",
        "revenue",
        "rtp_dt",
        "residual_static_kw",
        "blackout_deficit_kwh",
        "blackout_surplus_kw",
        "base_import_kw",
        "onsite_surplus_kw",
        "outage",
        "outage_any",
    )

    def __init__(
        self,
        params: FleetParams,
        inputs: FleetInputs,
        *,
        ops: ArrayOps | None = None,
    ) -> None:
        # Plane construction runs once per engine (not per step); routing
        # it through the backend keeps every array the kernel reads
        # produced by the same primitive set the slot loop dispatches to.
        if ops is None:
            ops = get_backend()
        pv = inputs.pv_power_kw
        wt = inputs.wt_power_kw
        dt = params.dt_h

        #: Eq. 1 cluster draw over the whole horizon — the same shared
        #: definition every other consumer uses, broadcast to 2-D.
        self.p_bs_kw = params.bs_power_kw(inputs.load_rate)
        #: Eq. 2 charging-station draw for the realised occupancy.
        self.p_cs_kw = params.cs_power_kw(inputs.occupied)
        #: Discounted selling price SRTP = base x (1 - discount).
        self.srtp_kwh = params.cs_base_price_kwh[:, None] * (1.0 - inputs.discount)
        #: Eq. 11 revenue of a non-blackout slot (zeroed per-row on outages).
        self.revenue = self.p_cs_kw * dt * self.srtp_kwh
        #: Eq. 8 grid-cost factor: ``grid_cost = p_grid * (rtp * dt)``.
        self.rtp_dt = inputs.rtp_kwh * dt

        #: Eq. 7 residual without the battery term: BS + CS - PV - WT.
        #: ``residual = residual_static + p_bp`` per step.
        self.residual_static_kw = self.p_bs_kw + self.p_cs_kw - pv - wt

        # Blackout branch (HubSimulation._blackout_slot): the BS deficit
        # after renewables, and the surplus when renewables over-supply.
        renewable = pv + wt
        self.blackout_deficit_kwh = ops.maximum(self.p_bs_kw - renewable, 0.0) * dt
        self.blackout_surplus_kw = ops.maximum(renewable - self.p_bs_kw, 0.0)

        #: Boolean outage mask plus a per-slot any-hub-dark fast path: at
        #: realistic outage rates almost every slot skips the dark branch.
        self.outage = inputs.outage_mask()
        self.outage_any = self.outage.any(axis=0)

        #: Feeder congestion signal: each hub's action-independent grid
        #: draw (BS + CS net of renewables, zero while dark) — what
        #: ``available_import_kw()`` used to rebuild per call.
        self.base_import_kw = ops.where(
            self.outage,
            0.0,
            ops.maximum(self.p_bs_kw + self.p_cs_kw - pv - wt, 0.0),
        )
        #: On-site renewable surplus consulted by the congestion-aware
        #: schedulers before committing a charge.
        self.onsite_surplus_kw = ops.maximum(
            pv + wt - self.p_bs_kw - self.p_cs_kw, 0.0
        )

    @property
    def n_hubs(self) -> int:
        """Number of hub rows."""
        return int(self.p_bs_kw.shape[0])

    @property
    def horizon(self) -> int:
        """Number of slots per hub."""
        return int(self.p_bs_kw.shape[1])

    @property
    def nbytes(self) -> int:
        """Total plane memory in bytes."""
        return sum(getattr(self, name).nbytes for name in self.__slots__)
