"""Intra-scenario hub sharding: partition one fleet across processes.

The city-scale runner splits a single scenario's hubs into shards, each
compiled and stepped in its own worker process, then merges the per-shard
:class:`~repro.fleet.costs.FleetCostBook` rows back into the full-fleet
book. The split is **feeder-aware**: hubs sharing a capacity-coupled
:class:`~repro.fleet.grid.FeederGroup` feeder stay co-resident in one
shard, so the Eq. 6 reserve-routing / congestion arithmetic never
crosses a process boundary and every shard row is bit-identical to the
matching row of an unsharded run (test-enforced).

Why workers *compile* instead of receiving arrays: at city scale the
per-hub trace synthesis dominates stepping ~25:1, so shipping compiled
arrays would serialize the expensive phase in the parent. Every per-hub
draw is name-keyed by global hub id (``RngFactory`` streams), so a
worker re-deriving its shard's scenarios from the spec JSON reproduces
the unsharded rows exactly.

:func:`plan_shards` is pure planning (no spec needed);
:class:`ShardTask` / :func:`run_shard` are the picklable work unit the
parallel runner submits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FleetError
from .grid import FeederGroup


def plan_shards(
    feeders: FeederGroup, n_shards: int, *, split_unlimited: bool = True
) -> list[np.ndarray]:
    """Partition hub indices into at most ``n_shards`` feeder-aware shards.

    Capacity-coupled feeders (any finite capacity entry) are atomic
    units — all their hubs land in one shard. Unlimited feeders never
    bind, so their hubs are free to split hub-by-hub when
    ``split_unlimited`` is set; windowed-storage runs pass ``False``
    because :meth:`FleetCostBook.merge_shards` can only merge per-feeder
    running aggregates (peaks especially) when every feeder is whole
    within one shard.

    Units are packed greedily — largest first onto the lightest shard —
    and the returned shards hold strictly increasing global hub indices,
    ordered by first hub. Deterministic: same feeders + ``n_shards`` ⇒
    same plan. May return fewer than ``n_shards`` shards (e.g. one giant
    coupled feeder).
    """
    if isinstance(n_shards, bool) or not isinstance(n_shards, (int, np.integer)):
        raise FleetError(f"n_shards must be an int, got {n_shards!r}")
    if n_shards < 1:
        raise FleetError(f"n_shards must be >= 1, got {n_shards}")
    capacity = np.asarray(feeders.import_capacity_kw, dtype=float)
    units: list[np.ndarray] = []
    for feeder in range(feeders.n_feeders):
        members = np.flatnonzero(feeders.assignment == feeder)
        if members.size == 0:
            continue
        if split_unlimited and bool(np.isinf(capacity[feeder]).all()):
            units.extend(members[i : i + 1] for i in range(members.size))
        else:
            units.append(members)
    units.sort(key=lambda unit: (-unit.size, int(unit[0])))

    buckets: list[list[np.ndarray]] = [[] for _ in range(int(n_shards))]
    loads = [0] * int(n_shards)
    for unit in units:
        target = min(range(len(loads)), key=lambda i: (loads[i], i))
        buckets[target].append(unit)
        loads[target] += unit.size
    plans = [
        np.sort(np.concatenate(bucket)) for bucket in buckets if bucket
    ]
    plans.sort(key=lambda idx: int(idx[0]))
    return plans


@dataclass
class ShardTask:
    """One shard's worth of work, picklable for a worker process.

    ``spec_json`` is the full scenario spec (workers re-derive their
    hubs from it — see the module docstring); ``hub_indices`` the
    strictly increasing global indices this shard owns;
    ``discount_rows`` an optional pre-sliced ``(len(hub_indices),
    horizon)`` discount plane (the pricing path computes discounts on
    the full fleet in the parent and ships each shard its rows).
    """

    spec_json: str
    hub_indices: np.ndarray
    shard_index: int
    discount_rows: np.ndarray | None = None
    with_telemetry: bool = False


@dataclass
class ShardResult:
    """A completed shard: its cost book plus identity for the merge."""

    shard_index: int
    hub_indices: np.ndarray
    book: object
    telemetry: dict | None = field(default=None)


def run_shard(task: ShardTask) -> ShardResult:
    """Compile and step one shard; runs inside a worker process.

    Reproduces rows ``task.hub_indices`` of the unsharded fleet
    bit-for-bit: the shard assembly draws the same name-keyed streams,
    the random scheduler is fed global hub indices for its stream names,
    and the engine's per-hub arithmetic is row-local (feeder coupling is
    shard-local by construction of :func:`plan_shards`).
    """
    # Lazy imports: the spec compiler imports fleet submodules at load
    # time, so a module-scope import here would be circular.
    from ..rng import RngFactory
    from ..spec.compiler import _assemble_fleet, make_scheduler
    from ..spec.scenario import ScenarioSpec
    from .builder import fleet_simulation_from_scenarios

    telemetry = None
    if task.with_telemetry:
        from ..telemetry import Telemetry

        telemetry = Telemetry(include_meta=False)

    spec = ScenarioSpec.from_json(task.spec_json)
    run = spec.run
    hub_indices = np.asarray(task.hub_indices)

    def compile_shard():
        assembly = _assemble_fleet(spec, hub_indices=hub_indices)
        discount_rows = assembly.discount_rows(task.discount_rows)
        occupied = assembly.realize_occupancy(discount_rows)
        simulation = fleet_simulation_from_scenarios(
            assembly.scenarios,
            occupied,
            discount_rows,
            outage=assembly.outage,
            initial_soc_fraction=run.initial_soc_fraction,
            feeders=assembly.feeders,
            voll_per_kwh=run.voll_per_kwh,
            storage=run.storage,
            # Workers rebuild from the parent's spec JSON, so the shard
            # engine inherits (and re-resolves) the parent's backend.
            backend=run.backend,
        )
        scheduler = make_scheduler(
            spec.scheduler,
            n_hubs=assembly.n_hubs,
            rng_factory=RngFactory(seed=run.seed),
            hub_ids=[int(i) for i in hub_indices],
        )
        return simulation, scheduler

    if telemetry is not None:
        with telemetry.span("shard-compile", shard=task.shard_index):
            simulation, scheduler = compile_shard()
        simulation.attach_telemetry(telemetry)
        with telemetry.span("shard-step", shard=task.shard_index):
            book = simulation.run(scheduler)
        telemetry.metrics.inc("shard_hubs", simulation.n_hubs)
    else:
        simulation, scheduler = compile_shard()
        book = simulation.run(scheduler)

    return ShardResult(
        shard_index=task.shard_index,
        hub_indices=hub_indices,
        book=book,
        telemetry=None if telemetry is None else telemetry.to_dict(),
    )
