"""``repro.fleet`` — batch-step hundreds of ECT-Hubs at once.

The paper's Fig. 6 vision is a *network* of base-station-centric hubs;
this subsystem simulates that network as struct-of-arrays state instead of
N Python objects. :class:`FleetSimulation` advances all hubs per slot with
vectorized power-balance / ledger / blackout arithmetic that is
numerically equivalent (atol ≤ 1e-9, enforced by tests) to N independent
:class:`~repro.hub.simulation.HubSimulation` runs, and
:class:`FleetCostBook` aggregates Eqs. 8–12 per hub and network-wide.

Layout
------
``params`` / ``inputs``
    Struct-of-arrays equipment parameters and exogenous traces.
``simulation``
    The batched slot-stepping engine (fused per-slot kernel).
``planes``
    Precomputed ``(n_hubs, horizon)`` planes of every action-independent
    slot quantity — the cache the fused kernel and the congestion-aware
    schedulers read instead of rebuilding per-slot state.
``costs``
    Fleet-level cost book (per-hub arrays + network totals).
``schedulers``
    Vectorized idle / random / rule-based / greedy-renewable baselines,
    action-equivalent to their scalar twins in :mod:`repro.rl.schedulers`
    (rule-based/greedy additionally back off charges under feeder
    congestion).
``grid``
    Shared-grid coupling: :class:`FeederGroup` assigns hubs to feeders
    with finite per-slot import capacity; contention is resolved by
    proportional or priority-ordered curtailment.
``builder``
    Assembly from :func:`~repro.synth.catalog.default_fleet` scenarios.
"""

from .builder import (
    build_default_fleet,
    fleet_inputs_from_scenarios,
    fleet_params_from_scenarios,
    fleet_simulation_from_scenarios,
)
from .costs import FleetCostBook
from .grid import ALLOCATION_POLICIES, FeederGroup
from .inputs import FleetInputs, SlotTraces
from .params import FleetParams
from .planes import SlotPlanes
from .schedulers import (
    FLEET_SCHEDULERS,
    FleetGreedyRenewableScheduler,
    FleetIdleScheduler,
    FleetRandomScheduler,
    FleetRuleBasedScheduler,
    FleetScheduler,
    make_fleet_scheduler,
)
from .simulation import FleetSimulation

__all__ = [
    "ALLOCATION_POLICIES",
    "FLEET_SCHEDULERS",
    "FeederGroup",
    "FleetCostBook",
    "FleetGreedyRenewableScheduler",
    "FleetIdleScheduler",
    "FleetInputs",
    "FleetParams",
    "FleetRandomScheduler",
    "FleetRuleBasedScheduler",
    "FleetScheduler",
    "FleetSimulation",
    "SlotPlanes",
    "SlotTraces",
    "build_default_fleet",
    "fleet_inputs_from_scenarios",
    "fleet_params_from_scenarios",
    "fleet_simulation_from_scenarios",
    "make_fleet_scheduler",
]
