"""Fleet-level Eq. 8–12 accounting over ``(n_hubs, horizon)`` arrays.

:class:`FleetCostBook` is the batched counterpart of
:class:`~repro.hub.costs.CostBook`: it stores every resolved slot quantity
column-wise, exposes the paper's aggregates both **per hub** (arrays) and
for the whole **network** (scalars), and can reconstruct any single hub's
:class:`~repro.hub.costs.CostBook` of :class:`~repro.hub.costs.SlotLedger`
rows for interop with scalar-engine tooling.

With shared-grid coupling the book also tracks the feeder dimension:
``import_shortfall_kw`` records each hub's curtailed import, and the
per-feeder aggregates (imports, shortfalls, peaks, congested slots) roll
hub columns up by the :class:`~repro.fleet.grid.FeederGroup` assignment.

Storage modes
-------------
``storage="dense"`` (default) keeps every column at full
``(n_hubs, horizon)`` resolution — memory grows with the horizon, but any
slot can be inspected after the fact (``hub_book``, the per-feeder slot
matrices). ``storage="windowed"`` keeps only a bounded ring of the most
recent ``window`` slots and folds each committed slot into running
aggregates (per-hub totals, the daily Eq. 12 matrix, per-feeder
import/shortfall/peak/congestion, blackout counts), so memory stops
scaling with the horizon — a 10k-hub × 1-year run fits in RAM. All
aggregate properties work identically in both modes (the windowed fold
accumulates in slot order; agreement with dense is equivalence-tested at
atol 1e-9); full-column accessors raise :class:`FleetError` in windowed
mode, and :meth:`recent` exposes the trailing window for trace-dependent
consumers.

City-scale sharding merges per-shard books back into one via
:meth:`FleetCostBook.merge_shards` — a pure row/feeder scatter, so a
merged dense book is byte-identical to the book an unsharded run writes.
"""

from __future__ import annotations

import numpy as np

from ..backend import ArrayOps, get_backend
from ..errors import FleetError
from ..hub.costs import CostBook, SlotLedger
from .grid import FeederGroup

#: Supported per-slot storage layouts.
STORAGE_MODES = ("dense", "windowed")

#: Ring size when ``storage="windowed"`` and no window is given: one day
#: of hourly slots, enough for every trailing-window consumer in-tree.
DEFAULT_WINDOW = 24

#: Day length used by the windowed daily-reward fold (the engine's hourly
#: slot contract; ``daily_rewards`` accepts other values in dense mode only).
_SLOTS_PER_DAY = 24


class FleetCostBook:
    """Slot-by-slot records for a whole fleet, filled as the engine steps."""

    _FLOAT_COLUMNS = (
        "p_bs_kw",
        "p_cs_kw",
        "p_bp_kw",
        "p_pv_kw",
        "p_wt_kw",
        "p_grid_kw",
        "surplus_kw",
        "rtp_kwh",
        "srtp_kwh",
        "soc_kwh",
        "grid_cost",
        "bp_cost",
        "revenue",
        "unserved_kwh",
        "import_shortfall_kw",
    )

    def __init__(
        self,
        n_hubs: int,
        horizon: int,
        *,
        feeders: FeederGroup | None = None,
        voll_per_kwh: float = 0.0,
        storage: str = "dense",
        window: int | None = None,
        backend: str | ArrayOps = "numpy",
    ) -> None:
        # Books cross process boundaries (shard workers pickle them back
        # to the parent), so only the resolved backend *name* is stored;
        # the ops instance is re-resolved lazily per process (see `ops`).
        self.backend = get_backend(backend).name
        if n_hubs <= 0 or horizon < 0:
            raise FleetError(
                f"invalid fleet book shape ({n_hubs} hubs, {horizon} slots)"
            )
        if voll_per_kwh < 0 or not np.isfinite(voll_per_kwh):
            raise FleetError(
                f"voll_per_kwh must be finite and non-negative, got {voll_per_kwh}"
            )
        if storage not in STORAGE_MODES:
            raise FleetError(
                f"unknown book storage {storage!r}; "
                f"available: {', '.join(STORAGE_MODES)}"
            )
        self.voll_per_kwh = float(voll_per_kwh)
        self.feeders = feeders or FeederGroup.unlimited(n_hubs)
        if self.feeders.n_hubs != n_hubs:
            raise FleetError(
                f"feeder group assigns {self.feeders.n_hubs} hubs but the "
                f"book holds {n_hubs}"
            )
        self.n_hubs = n_hubs
        self.horizon = horizon
        self.storage = storage
        self._windowed = storage == "windowed"
        if self._windowed:
            if window is None:
                window = DEFAULT_WINDOW
            window = int(window)
            if window <= 0:
                raise FleetError(f"window must be positive, got {window}")
            self.window: int | None = min(window, max(horizon, 1))
            shape = (n_hubs, self.window)
            ops = self.ops
            # Hot-path columns carry pinned dtypes (float64 / int64 /
            # bool_) so layouts match across platforms and backends.
            self._ring: dict[str, np.ndarray] = {
                "action": ops.zeros(shape, np.int64),
                "blackout": ops.zeros(shape, np.bool_),
            }
            for name in self._FLOAT_COLUMNS:
                self._ring[name] = ops.zeros(shape, np.float64)
            self._init_accumulators()
        else:
            self.window = None
            ops = self.ops
            self.action = ops.zeros((n_hubs, horizon), np.int64)
            self.blackout = ops.zeros((n_hubs, horizon), np.bool_)
            for name in self._FLOAT_COLUMNS:
                setattr(self, name, ops.zeros((n_hubs, horizon), np.float64))
        self._n_recorded = 0

    def _init_accumulators(self) -> None:
        ops = self.ops
        n, n_feeders = self.n_hubs, self.feeders.n_feeders
        n_days = -(-self.horizon // _SLOTS_PER_DAY)
        self._acc_op_cost = ops.zeros(n, np.float64)
        self._acc_revenue = ops.zeros(n, np.float64)
        self._acc_unserved = ops.zeros(n, np.float64)
        self._acc_surplus = ops.zeros(n, np.float64)
        self._acc_grid_energy = ops.zeros(n, np.float64)
        self._acc_import_shortfall = ops.zeros(n, np.float64)
        self._acc_daily = ops.zeros((n, n_days), np.float64)
        self._acc_feeder_import = ops.zeros(n_feeders, np.float64)
        self._acc_feeder_shortfall = ops.zeros(n_feeders, np.float64)
        self._acc_feeder_peak = ops.zeros(n_feeders, np.float64)
        self._congested_slots = 0
        self._blackout_hub_slots = 0

    @property
    def ops(self) -> ArrayOps:
        """The book's array backend, resolved lazily per process.

        Shard workers ship books back to the parent by pickle;
        :meth:`__getstate__` drops the (potentially unpicklable, e.g.
        JIT-holding) ops instance, and this property re-resolves it from
        the stored backend name on first use in the receiving process.
        """
        ops = self.__dict__.get("_ops")
        if ops is None:
            ops = get_backend(self.backend)
            self._ops = ops
        return ops

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_ops", None)
        return state

    def __getattr__(self, name: str):
        # Normal lookup failed: in windowed mode the per-slot columns do
        # not exist as attributes — explain instead of AttributeError.
        if name in FleetCostBook._FLOAT_COLUMNS or name in ("action", "blackout"):
            raise FleetError(
                f"per-slot column {name!r} needs storage='dense'; the "
                f"windowed book folds slots into running aggregates "
                f"(use recent({name!r}) for the trailing window)"
            )
        raise AttributeError(name)

    def __len__(self) -> int:
        return self._n_recorded

    @property
    def n_recorded(self) -> int:
        """Number of slots recorded so far."""
        return self._n_recorded

    @property
    def nbytes(self) -> int:
        """Bytes held by the per-slot storage (plus windowed accumulators).

        Deterministic by construction — the city-scale benchmark's memory
        guard compares windowed vs dense footprints through this.
        """
        if self._windowed:
            total = sum(column.nbytes for column in self._ring.values())
            total += sum(
                acc.nbytes
                for acc in (
                    self._acc_op_cost,
                    self._acc_revenue,
                    self._acc_unserved,
                    self._acc_surplus,
                    self._acc_grid_energy,
                    self._acc_import_shortfall,
                    self._acc_daily,
                    self._acc_feeder_import,
                    self._acc_feeder_shortfall,
                    self._acc_feeder_peak,
                )
            )
            return int(total)
        total = self.action.nbytes + self.blackout.nbytes
        total += sum(getattr(self, name).nbytes for name in self._FLOAT_COLUMNS)
        return int(total)

    def record(self, t: int, **columns: np.ndarray) -> None:
        """Store one resolved slot (arrays of shape ``(n_hubs,)``)."""
        dest = self.begin_slot(t)
        if self._windowed:
            # Dense columns start zeroed; the ring column may hold the
            # evicted slot's stale values — clear for identical semantics.
            for target in dest.values():
                target[...] = 0
        for name, values in columns.items():
            try:
                target = dest[name]
            except KeyError:
                raise FleetError(f"unknown fleet book column {name!r}") from None
            target[:] = values
        self.commit_slot(t)

    def _check_slot(self, t: int) -> None:
        if t != self._n_recorded:
            raise FleetError(
                f"slots must be recorded in order; expected {self._n_recorded}, got {t}"
            )
        if t >= self.horizon:
            raise FleetError(f"slot {t} beyond book horizon {self.horizon}")

    def begin_slot(self, t: int) -> dict[str, np.ndarray]:
        """Writable column views of the *next* slot, for the fused kernel.

        :meth:`FleetSimulation.step` resolves each slot directly into the
        book's storage through these views instead of materialising
        per-step temporaries and copying them in via :meth:`record`. The
        slot only becomes visible to the aggregates once
        :meth:`commit_slot` runs, so a step that raises mid-flight leaves
        the book's recorded range untouched.

        Windowed books hand out views into the ring column ``t % window``
        — the kernel must (re)write every column it cares about, because
        the slot evicted from the ring leaves stale values behind.
        """
        self._check_slot(t)
        if self._windowed:
            slot = t % self.window
            return {name: ring[:, slot] for name, ring in self._ring.items()}
        columns: dict[str, np.ndarray] = {
            "action": self.action[:, t],
            "blackout": self.blackout[:, t],
        }
        for name in self._FLOAT_COLUMNS:
            columns[name] = getattr(self, name)[:, t]
        return columns

    def commit_slot(self, t: int) -> None:
        """Mark the slot handed out by :meth:`begin_slot` as recorded.

        In windowed storage this is where the slot is folded into the
        running aggregates (always in slot order, so sharded and
        unsharded windowed runs accumulate bit-identically per hub).
        """
        self._check_slot(t)
        if self._windowed:
            self._fold_slot(t)
        self._n_recorded += 1

    def _fold_slot(self, t: int) -> None:
        ops = self.ops
        ring, slot = self._ring, t % self.window
        grid_cost = ring["grid_cost"][:, slot]
        bp_cost = ring["bp_cost"][:, slot]
        revenue = ring["revenue"][:, slot]
        unserved = ring["unserved_kwh"][:, slot]
        p_grid = ring["p_grid_kw"][:, slot]
        shortfall = ring["import_shortfall_kw"][:, slot]
        self._acc_op_cost += grid_cost
        self._acc_op_cost += bp_cost
        self._acc_revenue += revenue
        self._acc_unserved += unserved
        self._acc_surplus += ring["surplus_kw"][:, slot]
        self._acc_grid_energy += p_grid
        self._acc_import_shortfall += shortfall
        self._acc_daily[:, t // _SLOTS_PER_DAY] += (
            revenue - grid_cost - bp_cost - self.voll_per_kwh * unserved
        )
        assignment, n_feeders = self.feeders.assignment, self.feeders.n_feeders
        feeder_import = ops.bincount(
            assignment, weights=p_grid, minlength=n_feeders
        )
        feeder_shortfall = ops.bincount(
            assignment, weights=shortfall, minlength=n_feeders
        )
        self._acc_feeder_import += feeder_import
        self._acc_feeder_shortfall += feeder_shortfall
        ops.maximum(
            self._acc_feeder_peak, feeder_import, out=self._acc_feeder_peak
        )
        # Shortfalls are non-negative, so a feeder sum is positive exactly
        # when any member was curtailed — the count matches dense exactly.
        self._congested_slots += ops.count_nonzero(feeder_shortfall > 0.0)
        self._blackout_hub_slots += ops.count_nonzero(ring["blackout"][:, slot])

    def _require_dense(self, what: str) -> None:
        if self._windowed:
            raise FleetError(
                f"{what} needs storage='dense'; the windowed book keeps "
                f"only running aggregates plus a {self.window}-slot ring"
            )

    def recent(self, name: str, n: int | None = None) -> np.ndarray:
        """The trailing ``n`` recorded slots of one column, oldest first.

        Works in both storage modes; windowed books can serve at most
        their ring size (``window``) and raise beyond it. Returns a fresh
        ``(n_hubs, n)`` array.
        """
        if name not in self._FLOAT_COLUMNS and name not in ("action", "blackout"):
            raise FleetError(f"unknown fleet book column {name!r}")
        limit = self._n_recorded if not self._windowed else min(
            self._n_recorded, self.window
        )
        if n is None:
            n = limit
        if n < 0 or n > limit:
            raise FleetError(
                f"cannot serve {n} trailing slots; {limit} available"
                + (" in the ring window" if self._windowed else "")
            )
        if not self._windowed:
            column = getattr(self, name)
            return column[:, self._n_recorded - n : self._n_recorded].copy()
        if n == 0:
            return np.zeros((self.n_hubs, 0), dtype=self._ring[name].dtype)
        slots = (np.arange(self._n_recorded - n, self._n_recorded)) % self.window
        return self._ring[name][:, slots].copy()

    # ------------------------------------------------------------------ #
    # Per-hub aggregates (arrays of shape (n_hubs,))                       #
    # ------------------------------------------------------------------ #

    def _recorded(self, name: str) -> np.ndarray:
        return getattr(self, name)[:, : self._n_recorded]

    @property
    def operating_cost_per_hub(self) -> np.ndarray:
        """Eq. 10 per hub: ``OC_i = Σ_t [C_grid + C_BP]``."""
        if self._windowed:
            return self._acc_op_cost.copy()
        return (self._recorded("grid_cost") + self._recorded("bp_cost")).sum(axis=1)

    @property
    def charging_revenue_per_hub(self) -> np.ndarray:
        """Eq. 11 per hub: ``CR_i = Σ_t P_CS · SRTP``."""
        if self._windowed:
            return self._acc_revenue.copy()
        return self._recorded("revenue").sum(axis=1)

    @property
    def voll_cost_per_hub(self) -> np.ndarray:
        """Value-of-lost-load penalty per hub: ``VoLL · unserved_i``."""
        return self.voll_per_kwh * self.unserved_per_hub_kwh

    @property
    def profit_per_hub(self) -> np.ndarray:
        """Eq. 12 per hub plus lost load: ``Ψ_i = CR_i − OC_i − VoLL·U_i``."""
        return (
            self.charging_revenue_per_hub
            - self.operating_cost_per_hub
            - self.voll_cost_per_hub
        )

    @property
    def grid_energy_per_hub_kwh(self) -> np.ndarray:
        """Imported energy per hub (uniform 1 h slots, like the scalar book)."""
        if self._windowed:
            return self._acc_grid_energy.copy()
        return self._recorded("p_grid_kw").sum(axis=1)

    @property
    def curtailed_per_hub_kwh(self) -> np.ndarray:
        """Curtailed renewable energy per hub."""
        if self._windowed:
            return self._acc_surplus.copy()
        return self._recorded("surplus_kw").sum(axis=1)

    @property
    def unserved_per_hub_kwh(self) -> np.ndarray:
        """Energy that could not be served (blackouts + feeder shortfalls)."""
        if self._windowed:
            return self._acc_unserved.copy()
        return self._recorded("unserved_kwh").sum(axis=1)

    @property
    def import_shortfall_per_hub_kwh(self) -> np.ndarray:
        """Grid import curtailed by feeder limits, per hub (1 h slots)."""
        if self._windowed:
            return self._acc_import_shortfall.copy()
        return self._recorded("import_shortfall_kw").sum(axis=1)

    @property
    def blackout_hub_slots(self) -> int:
        """Recorded (hub, slot) pairs spent in a blackout."""
        if self._windowed:
            return self._blackout_hub_slots
        return int(self.blackout[:, : self._n_recorded].sum())

    # ------------------------------------------------------------------ #
    # Per-feeder congestion aggregates                                     #
    # ------------------------------------------------------------------ #

    @property
    def n_feeders(self) -> int:
        """Number of feeders the fleet hangs off."""
        return self.feeders.n_feeders

    def _per_feeder_slots(self, name: str) -> np.ndarray:
        """Roll a hub column up to ``(n_feeders, n_recorded)``."""
        ops = self.ops
        rolled = ops.zeros((self.feeders.n_feeders, self._n_recorded), np.float64)
        ops.scatter_add(rolled, self.feeders.assignment, self._recorded(name))
        return rolled

    def feeder_import_kw(self) -> np.ndarray:
        """Granted feeder draw per slot, shape ``(n_feeders, n_recorded)``."""
        self._require_dense("feeder_import_kw()")
        return self._per_feeder_slots("p_grid_kw")

    def feeder_shortfall_kw(self) -> np.ndarray:
        """Curtailed feeder draw per slot, shape ``(n_feeders, n_recorded)``."""
        self._require_dense("feeder_shortfall_kw()")
        return self._per_feeder_slots("import_shortfall_kw")

    @property
    def feeder_import_kwh(self) -> np.ndarray:
        """Imported energy per feeder (uniform 1 h slots)."""
        if self._windowed:
            return self._acc_feeder_import.copy()
        return self.feeder_import_kw().sum(axis=1)

    @property
    def feeder_shortfall_kwh(self) -> np.ndarray:
        """Curtailed import energy per feeder (uniform 1 h slots)."""
        if self._windowed:
            return self._acc_feeder_shortfall.copy()
        return self.feeder_shortfall_kw().sum(axis=1)

    @property
    def feeder_peak_import_kw(self) -> np.ndarray:
        """Worst-slot granted draw per feeder."""
        if self._windowed:
            return self._acc_feeder_peak.copy()
        imports = self.feeder_import_kw()
        if imports.shape[1] == 0:
            return np.zeros(self.feeders.n_feeders)
        return imports.max(axis=1)

    @property
    def congested_feeder_slots(self) -> int:
        """Feeder-slots where the import limit curtailed somebody."""
        if self._windowed:
            return self._congested_slots
        return int((self.feeder_shortfall_kw() > 0.0).sum())

    # ------------------------------------------------------------------ #
    # Network totals                                                       #
    # ------------------------------------------------------------------ #

    @property
    def operating_cost(self) -> float:
        """Network Eq. 10 total."""
        return float(self.operating_cost_per_hub.sum())

    @property
    def charging_revenue(self) -> float:
        """Network Eq. 11 total."""
        return float(self.charging_revenue_per_hub.sum())

    @property
    def voll_cost(self) -> float:
        """Network value-of-lost-load penalty."""
        return float(self.voll_cost_per_hub.sum())

    @property
    def profit(self) -> float:
        """Network Eq. 12 total (lost-load penalty included)."""
        return float(self.profit_per_hub.sum())

    @property
    def total_unserved_kwh(self) -> float:
        """Network energy shortfall (blackouts + feeder curtailment)."""
        return float(self.unserved_per_hub_kwh.sum())

    @property
    def total_import_shortfall_kwh(self) -> float:
        """Network grid import curtailed by feeder limits."""
        return float(self.import_shortfall_per_hub_kwh.sum())

    def daily_rewards(self, slots_per_day: int = 24) -> np.ndarray:
        """Eq. 12 profit per (hub, day) — shape ``(n_hubs, n_days)``."""
        if slots_per_day <= 0:
            raise FleetError(f"slots_per_day must be positive, got {slots_per_day}")
        if self._windowed:
            if slots_per_day != _SLOTS_PER_DAY:
                raise FleetError(
                    f"windowed books fold daily rewards at "
                    f"{_SLOTS_PER_DAY} slots/day; got {slots_per_day} "
                    f"(use storage='dense' for other day lengths)"
                )
            n_days = -(-self._n_recorded // _SLOTS_PER_DAY)
            return self._acc_daily[:, :n_days].copy()
        rewards = (
            self._recorded("revenue")
            - self._recorded("grid_cost")
            - self._recorded("bp_cost")
            - self.voll_per_kwh * self._recorded("unserved_kwh")
        )
        if rewards.shape[1] == 0:
            return np.zeros((self.n_hubs, 0))
        starts = np.arange(0, rewards.shape[1], slots_per_day)
        return self.ops.reduceat_sum(rewards, starts, axis=1)

    # ------------------------------------------------------------------ #
    # Shard merging                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def merge_shards(
        cls,
        books: list["FleetCostBook"],
        hub_indices: list[np.ndarray],
        *,
        feeders: FeederGroup,
        voll_per_kwh: float = 0.0,
    ) -> "FleetCostBook":
        """Scatter per-shard books back into one fleet-wide book.

        ``hub_indices[k]`` maps shard *k*'s rows to global hub indices
        (ascending, disjoint, jointly covering ``feeders.n_hubs``).
        Dense merging is a pure row scatter of every column, so the
        merged book is byte-identical to what an unsharded run records.
        Windowed merging scatters the per-hub/per-feeder accumulators —
        exact as long as every shard is feeder-closed (each feeder's
        members live in exactly one shard), which the planner guarantees
        for windowed runs and this method enforces.
        """
        if not books or len(books) != len(hub_indices):
            raise FleetError("merge_shards needs one index array per book")
        horizon = books[0].horizon
        storage = books[0].storage
        window = books[0].window
        recorded = books[0].n_recorded
        for book, idx in zip(books, hub_indices):
            idx = np.asarray(idx)
            if book.horizon != horizon or book.storage != storage:
                raise FleetError("shard books must share horizon and storage")
            if book.window != window or book.n_recorded != recorded:
                raise FleetError("shard books must share window and progress")
            if book.n_hubs != idx.shape[0]:
                raise FleetError(
                    f"shard book holds {book.n_hubs} hubs but its index "
                    f"array maps {idx.shape[0]}"
                )
        flat = np.concatenate([np.asarray(idx) for idx in hub_indices])
        if (
            flat.shape[0] != feeders.n_hubs
            or not np.array_equal(np.sort(flat), np.arange(feeders.n_hubs))
        ):
            raise FleetError(
                "shard hub indices must partition the fleet exactly"
            )
        merged = cls(
            feeders.n_hubs,
            horizon,
            feeders=feeders,
            voll_per_kwh=voll_per_kwh,
            storage=storage,
            window=window,
            backend=books[0].backend,
        )
        if storage == "dense":
            for book, idx in zip(books, hub_indices):
                merged.action[idx] = book.action
                merged.blackout[idx] = book.blackout
                for name in cls._FLOAT_COLUMNS:
                    getattr(merged, name)[idx] = getattr(book, name)
        else:
            seen_feeders = np.zeros(feeders.n_feeders, dtype=bool)
            for book, idx in zip(books, hub_indices):
                for name, ring in merged._ring.items():
                    ring[idx] = book._ring[name]
                merged._acc_op_cost[idx] = book._acc_op_cost
                merged._acc_revenue[idx] = book._acc_revenue
                merged._acc_unserved[idx] = book._acc_unserved
                merged._acc_surplus[idx] = book._acc_surplus
                merged._acc_grid_energy[idx] = book._acc_grid_energy
                merged._acc_import_shortfall[idx] = book._acc_import_shortfall
                merged._acc_daily[idx] = book._acc_daily
                present = np.unique(feeders.assignment[idx])
                if present.shape[0] != book.feeders.n_feeders or seen_feeders[
                    present
                ].any():
                    raise FleetError(
                        "windowed shard merge needs feeder-closed shards "
                        "(every feeder's hubs in exactly one shard)"
                    )
                seen_feeders[present] = True
                merged._acc_feeder_import[present] = book._acc_feeder_import
                merged._acc_feeder_shortfall[present] = (
                    book._acc_feeder_shortfall
                )
                merged._acc_feeder_peak[present] = book._acc_feeder_peak
                merged._congested_slots += book._congested_slots
                merged._blackout_hub_slots += book._blackout_hub_slots
        merged._n_recorded = recorded
        return merged

    # ------------------------------------------------------------------ #
    # Scalar-engine interop                                                #
    # ------------------------------------------------------------------ #

    def hub_book(self, index: int) -> CostBook:
        """Reconstruct one hub's scalar :class:`CostBook` from the columns."""
        self._require_dense("hub_book()")
        if not 0 <= index < self.n_hubs:
            raise FleetError(f"hub index {index} out of range for {self.n_hubs} hubs")
        book = CostBook(voll_per_kwh=self.voll_per_kwh)
        for t in range(self._n_recorded):
            book.add(
                SlotLedger(
                    slot=t,
                    action=int(self.action[index, t]),
                    p_bs_kw=float(self.p_bs_kw[index, t]),
                    p_cs_kw=float(self.p_cs_kw[index, t]),
                    p_bp_kw=float(self.p_bp_kw[index, t]),
                    p_pv_kw=float(self.p_pv_kw[index, t]),
                    p_wt_kw=float(self.p_wt_kw[index, t]),
                    p_grid_kw=float(self.p_grid_kw[index, t]),
                    surplus_kw=float(self.surplus_kw[index, t]),
                    rtp_kwh=float(self.rtp_kwh[index, t]),
                    srtp_kwh=float(self.srtp_kwh[index, t]),
                    soc_kwh=float(self.soc_kwh[index, t]),
                    grid_cost=float(self.grid_cost[index, t]),
                    bp_cost=float(self.bp_cost[index, t]),
                    revenue=float(self.revenue[index, t]),
                    blackout=bool(self.blackout[index, t]),
                    unserved_kwh=float(self.unserved_kwh[index, t]),
                )
            )
        return book
