"""Fleet-level Eq. 8–12 accounting over ``(n_hubs, horizon)`` arrays.

:class:`FleetCostBook` is the batched counterpart of
:class:`~repro.hub.costs.CostBook`: it stores every resolved slot quantity
column-wise, exposes the paper's aggregates both **per hub** (arrays) and
for the whole **network** (scalars), and can reconstruct any single hub's
:class:`~repro.hub.costs.CostBook` of :class:`~repro.hub.costs.SlotLedger`
rows for interop with scalar-engine tooling.

With shared-grid coupling the book also tracks the feeder dimension:
``import_shortfall_kw`` records each hub's curtailed import, and the
per-feeder aggregates (imports, shortfalls, peaks, congested slots) roll
hub columns up by the :class:`~repro.fleet.grid.FeederGroup` assignment.
"""

from __future__ import annotations

import numpy as np

from ..errors import FleetError
from ..hub.costs import CostBook, SlotLedger
from .grid import FeederGroup


class FleetCostBook:
    """Slot-by-slot records for a whole fleet, filled as the engine steps."""

    _FLOAT_COLUMNS = (
        "p_bs_kw",
        "p_cs_kw",
        "p_bp_kw",
        "p_pv_kw",
        "p_wt_kw",
        "p_grid_kw",
        "surplus_kw",
        "rtp_kwh",
        "srtp_kwh",
        "soc_kwh",
        "grid_cost",
        "bp_cost",
        "revenue",
        "unserved_kwh",
        "import_shortfall_kw",
    )

    def __init__(
        self,
        n_hubs: int,
        horizon: int,
        *,
        feeders: FeederGroup | None = None,
        voll_per_kwh: float = 0.0,
    ) -> None:
        if n_hubs <= 0 or horizon < 0:
            raise FleetError(
                f"invalid fleet book shape ({n_hubs} hubs, {horizon} slots)"
            )
        if voll_per_kwh < 0 or not np.isfinite(voll_per_kwh):
            raise FleetError(
                f"voll_per_kwh must be finite and non-negative, got {voll_per_kwh}"
            )
        self.voll_per_kwh = float(voll_per_kwh)
        self.feeders = feeders or FeederGroup.unlimited(n_hubs)
        if self.feeders.n_hubs != n_hubs:
            raise FleetError(
                f"feeder group assigns {self.feeders.n_hubs} hubs but the "
                f"book holds {n_hubs}"
            )
        self.n_hubs = n_hubs
        self.horizon = horizon
        self.action = np.zeros((n_hubs, horizon), dtype=int)
        self.blackout = np.zeros((n_hubs, horizon), dtype=bool)
        for name in self._FLOAT_COLUMNS:
            setattr(self, name, np.zeros((n_hubs, horizon)))
        self._n_recorded = 0

    def __len__(self) -> int:
        return self._n_recorded

    @property
    def n_recorded(self) -> int:
        """Number of slots recorded so far."""
        return self._n_recorded

    def record(self, t: int, **columns: np.ndarray) -> None:
        """Store one resolved slot (arrays of shape ``(n_hubs,)``)."""
        self._check_slot(t)
        for name, values in columns.items():
            getattr(self, name)[:, t] = values
        self._n_recorded += 1

    def _check_slot(self, t: int) -> None:
        if t != self._n_recorded:
            raise FleetError(
                f"slots must be recorded in order; expected {self._n_recorded}, got {t}"
            )
        if t >= self.horizon:
            raise FleetError(f"slot {t} beyond book horizon {self.horizon}")

    def begin_slot(self, t: int) -> dict[str, np.ndarray]:
        """Writable column views of the *next* slot, for the fused kernel.

        :meth:`FleetSimulation.step` resolves each slot directly into the
        book's storage through these views instead of materialising
        per-step temporaries and copying them in via :meth:`record`. The
        slot only becomes visible to the aggregates once
        :meth:`commit_slot` runs, so a step that raises mid-flight leaves
        the book's recorded range untouched.
        """
        self._check_slot(t)
        columns: dict[str, np.ndarray] = {
            "action": self.action[:, t],
            "blackout": self.blackout[:, t],
        }
        for name in self._FLOAT_COLUMNS:
            columns[name] = getattr(self, name)[:, t]
        return columns

    def commit_slot(self, t: int) -> None:
        """Mark the slot handed out by :meth:`begin_slot` as recorded."""
        self._check_slot(t)
        self._n_recorded += 1

    # ------------------------------------------------------------------ #
    # Per-hub aggregates (arrays of shape (n_hubs,))                       #
    # ------------------------------------------------------------------ #

    def _recorded(self, name: str) -> np.ndarray:
        return getattr(self, name)[:, : self._n_recorded]

    @property
    def operating_cost_per_hub(self) -> np.ndarray:
        """Eq. 10 per hub: ``OC_i = Σ_t [C_grid + C_BP]``."""
        return (self._recorded("grid_cost") + self._recorded("bp_cost")).sum(axis=1)

    @property
    def charging_revenue_per_hub(self) -> np.ndarray:
        """Eq. 11 per hub: ``CR_i = Σ_t P_CS · SRTP``."""
        return self._recorded("revenue").sum(axis=1)

    @property
    def voll_cost_per_hub(self) -> np.ndarray:
        """Value-of-lost-load penalty per hub: ``VoLL · unserved_i``."""
        return self.voll_per_kwh * self.unserved_per_hub_kwh

    @property
    def profit_per_hub(self) -> np.ndarray:
        """Eq. 12 per hub plus lost load: ``Ψ_i = CR_i − OC_i − VoLL·U_i``."""
        return (
            self.charging_revenue_per_hub
            - self.operating_cost_per_hub
            - self.voll_cost_per_hub
        )

    @property
    def grid_energy_per_hub_kwh(self) -> np.ndarray:
        """Imported energy per hub (uniform 1 h slots, like the scalar book)."""
        return self._recorded("p_grid_kw").sum(axis=1)

    @property
    def curtailed_per_hub_kwh(self) -> np.ndarray:
        """Curtailed renewable energy per hub."""
        return self._recorded("surplus_kw").sum(axis=1)

    @property
    def unserved_per_hub_kwh(self) -> np.ndarray:
        """Energy that could not be served (blackouts + feeder shortfalls)."""
        return self._recorded("unserved_kwh").sum(axis=1)

    @property
    def import_shortfall_per_hub_kwh(self) -> np.ndarray:
        """Grid import curtailed by feeder limits, per hub (1 h slots)."""
        return self._recorded("import_shortfall_kw").sum(axis=1)

    # ------------------------------------------------------------------ #
    # Per-feeder congestion aggregates                                     #
    # ------------------------------------------------------------------ #

    @property
    def n_feeders(self) -> int:
        """Number of feeders the fleet hangs off."""
        return self.feeders.n_feeders

    def _per_feeder_slots(self, name: str) -> np.ndarray:
        """Roll a hub column up to ``(n_feeders, n_recorded)``."""
        rolled = np.zeros((self.feeders.n_feeders, self._n_recorded))
        np.add.at(rolled, self.feeders.assignment, self._recorded(name))
        return rolled

    def feeder_import_kw(self) -> np.ndarray:
        """Granted feeder draw per slot, shape ``(n_feeders, n_recorded)``."""
        return self._per_feeder_slots("p_grid_kw")

    def feeder_shortfall_kw(self) -> np.ndarray:
        """Curtailed feeder draw per slot, shape ``(n_feeders, n_recorded)``."""
        return self._per_feeder_slots("import_shortfall_kw")

    @property
    def feeder_import_kwh(self) -> np.ndarray:
        """Imported energy per feeder (uniform 1 h slots)."""
        return self.feeder_import_kw().sum(axis=1)

    @property
    def feeder_shortfall_kwh(self) -> np.ndarray:
        """Curtailed import energy per feeder (uniform 1 h slots)."""
        return self.feeder_shortfall_kw().sum(axis=1)

    @property
    def feeder_peak_import_kw(self) -> np.ndarray:
        """Worst-slot granted draw per feeder."""
        imports = self.feeder_import_kw()
        if imports.shape[1] == 0:
            return np.zeros(self.feeders.n_feeders)
        return imports.max(axis=1)

    @property
    def congested_feeder_slots(self) -> int:
        """Feeder-slots where the import limit curtailed somebody."""
        return int((self.feeder_shortfall_kw() > 0.0).sum())

    # ------------------------------------------------------------------ #
    # Network totals                                                       #
    # ------------------------------------------------------------------ #

    @property
    def operating_cost(self) -> float:
        """Network Eq. 10 total."""
        return float(self.operating_cost_per_hub.sum())

    @property
    def charging_revenue(self) -> float:
        """Network Eq. 11 total."""
        return float(self.charging_revenue_per_hub.sum())

    @property
    def voll_cost(self) -> float:
        """Network value-of-lost-load penalty."""
        return float(self.voll_cost_per_hub.sum())

    @property
    def profit(self) -> float:
        """Network Eq. 12 total (lost-load penalty included)."""
        return float(self.profit_per_hub.sum())

    @property
    def total_unserved_kwh(self) -> float:
        """Network energy shortfall (blackouts + feeder curtailment)."""
        return float(self.unserved_per_hub_kwh.sum())

    @property
    def total_import_shortfall_kwh(self) -> float:
        """Network grid import curtailed by feeder limits."""
        return float(self.import_shortfall_per_hub_kwh.sum())

    def daily_rewards(self, slots_per_day: int = 24) -> np.ndarray:
        """Eq. 12 profit per (hub, day) — shape ``(n_hubs, n_days)``."""
        if slots_per_day <= 0:
            raise FleetError(f"slots_per_day must be positive, got {slots_per_day}")
        rewards = (
            self._recorded("revenue")
            - self._recorded("grid_cost")
            - self._recorded("bp_cost")
            - self.voll_per_kwh * self._recorded("unserved_kwh")
        )
        if rewards.shape[1] == 0:
            return np.zeros((self.n_hubs, 0))
        starts = np.arange(0, rewards.shape[1], slots_per_day)
        return np.add.reduceat(rewards, starts, axis=1)

    # ------------------------------------------------------------------ #
    # Scalar-engine interop                                                #
    # ------------------------------------------------------------------ #

    def hub_book(self, index: int) -> CostBook:
        """Reconstruct one hub's scalar :class:`CostBook` from the columns."""
        if not 0 <= index < self.n_hubs:
            raise FleetError(f"hub index {index} out of range for {self.n_hubs} hubs")
        book = CostBook(voll_per_kwh=self.voll_per_kwh)
        for t in range(self._n_recorded):
            book.add(
                SlotLedger(
                    slot=t,
                    action=int(self.action[index, t]),
                    p_bs_kw=float(self.p_bs_kw[index, t]),
                    p_cs_kw=float(self.p_cs_kw[index, t]),
                    p_bp_kw=float(self.p_bp_kw[index, t]),
                    p_pv_kw=float(self.p_pv_kw[index, t]),
                    p_wt_kw=float(self.p_wt_kw[index, t]),
                    p_grid_kw=float(self.p_grid_kw[index, t]),
                    surplus_kw=float(self.surplus_kw[index, t]),
                    rtp_kwh=float(self.rtp_kwh[index, t]),
                    srtp_kwh=float(self.srtp_kwh[index, t]),
                    soc_kwh=float(self.soc_kwh[index, t]),
                    grid_cost=float(self.grid_cost[index, t]),
                    bp_cost=float(self.bp_cost[index, t]),
                    revenue=float(self.revenue[index, t]),
                    blackout=bool(self.blackout[index, t]),
                    unserved_kwh=float(self.unserved_kwh[index, t]),
                )
            )
        return book
