"""Offline dynamic-programming oracle for battery scheduling.

With the exogenous traces fixed and known, the battery scheduling problem
is a finite-horizon MDP over (slot, SoC). Discretising SoC onto a grid and
running backward value iteration yields the **optimal clairvoyant
schedule** — an upper bound no online policy (including ECT-DRL) can beat.
Used by the ablation benches to report how much of the attainable profit
each scheduler captures.

The oracle mirrors :class:`~repro.hub.simulation.HubSimulation` dynamics
(efficiencies, rate limits, SoC bounds, Eq. 7 balance, Eqs. 8–12 rewards)
up to the SoC discretisation error, which shrinks with ``n_soc_levels``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..energy.battery import CHARGE, DISCHARGE, IDLE
from ..errors import ConfigError
from ..hub.hub import EctHub
from ..hub.simulation import HubInputs


@dataclass(frozen=True)
class OracleResult:
    """Optimal schedule and its value."""

    actions: np.ndarray
    total_reward: float
    soc_trajectory_kwh: np.ndarray


def _slot_reward(
    hub: EctHub,
    inputs: HubInputs,
    t: int,
    bus_power_kw: float,
    active: bool,
) -> float:
    """Eq. 12 summand for one slot given the battery's bus power."""
    cfg = hub.config
    dt = cfg.dt_h
    p_bs = float(hub.base_stations.power_kw(float(inputs.load_rate[t])))
    p_cs = float(hub.charging_station.power_kw(int(inputs.occupied[t])))
    srtp = hub.charging_station.selling_price_kwh(float(inputs.discount[t]))
    residual = (
        p_bs
        + p_cs
        + bus_power_kw
        - float(inputs.pv_power_kw[t])
        - float(inputs.wt_power_kw[t])
    )
    p_grid = max(residual, 0.0)
    revenue = p_cs * dt * srtp
    grid_cost = p_grid * dt * float(inputs.rtp_kwh[t])
    bp_cost = cfg.c_bp_per_slot if active else 0.0
    return revenue - grid_cost - bp_cost


def optimal_schedule(
    hub: EctHub,
    inputs: HubInputs,
    *,
    initial_soc_fraction: float = 0.5,
    n_soc_levels: int = 41,
) -> OracleResult:
    """Backward value iteration over the (slot, SoC) grid.

    Blackout slots are not supported by the oracle (the emergency path is
    event-driven); pass outage-free inputs.
    """
    if n_soc_levels < 2:
        raise ConfigError(f"n_soc_levels must be at least 2, got {n_soc_levels}")
    if inputs.outage is not None and inputs.outage.any():
        raise ConfigError("the DP oracle requires outage-free inputs")

    cfg = hub.config.battery
    dt = hub.config.dt_h
    horizon = len(inputs)
    grid = np.linspace(cfg.soc_min_kwh, cfg.soc_max_kwh, n_soc_levels)

    # Pre-compute action transitions on the SoC grid.
    charge_stored = cfg.charge_rate_kw * dt * cfg.charge_efficiency
    if cfg.paper_exact:
        discharge_drawn = cfg.discharge_rate_kw * dt * cfg.discharge_efficiency
        discharge_bus = discharge_drawn
    else:
        discharge_drawn = cfg.discharge_rate_kw * dt / cfg.discharge_efficiency
        discharge_bus = cfg.discharge_rate_kw * dt

    def transition(soc: float, action: int) -> tuple[float, float, bool]:
        """(new_soc, bus_power_kw, active) mirroring BatteryPack.step."""
        if action == IDLE:
            return soc, 0.0, False
        if action == CHARGE:
            stored = min(charge_stored, cfg.soc_max_kwh - soc)
            if stored <= 1e-12:
                return soc, 0.0, False
            return soc + stored, stored / cfg.charge_efficiency / dt, True
        drawn = min(discharge_drawn, soc - cfg.soc_min_kwh)
        if drawn <= 1e-12:
            return soc, 0.0, False
        bus = drawn * (discharge_bus / discharge_drawn)
        return soc - drawn, -bus / dt, True

    def snap(soc: float) -> int:
        return int(np.argmin(np.abs(grid - soc)))

    value = np.zeros((horizon + 1, n_soc_levels))
    best_action = np.zeros((horizon, n_soc_levels), dtype=int)
    for t in reversed(range(horizon)):
        for k, soc in enumerate(grid):
            best = -np.inf
            chosen = IDLE
            for action in (IDLE, CHARGE, DISCHARGE):
                new_soc, bus_kw, active = transition(float(soc), action)
                reward = _slot_reward(hub, inputs, t, bus_kw, active)
                candidate = reward + value[t + 1, snap(new_soc)]
                if candidate > best + 1e-12:
                    best = candidate
                    chosen = action
            value[t, k] = best
            best_action[t, k] = chosen

    # Forward pass: follow the greedy table with continuous SoC.
    soc = float(
        np.clip(
            initial_soc_fraction * cfg.capacity_kwh,
            cfg.soc_min_kwh,
            cfg.soc_max_kwh,
        )
    )
    actions = np.zeros(horizon, dtype=int)
    trajectory = np.zeros(horizon)
    total = 0.0
    for t in range(horizon):
        action = int(best_action[t, snap(soc)])
        new_soc, bus_kw, active = transition(soc, action)
        total += _slot_reward(hub, inputs, t, bus_kw, active)
        actions[t] = action if active or action == IDLE else IDLE
        soc = new_soc
        trajectory[t] = soc
    return OracleResult(
        actions=actions, total_reward=total, soc_trajectory_kwh=trajectory
    )
