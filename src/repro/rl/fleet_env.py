"""Batched ECT-DRL environment: one step advances the whole fleet.

:class:`FleetEnv` is the fleet-scale counterpart of
:class:`~repro.rl.env.EctHubEnv`: one episode is an ``episode_days``
window over N hubs stepped **together** through the PR-4 fused
:class:`~repro.fleet.simulation.FleetSimulation` kernel. Per slot the
environment consumes an ``(n_hubs,)`` integer action vector (the same
0 → idle / 1 → charge / 2 → discharge coding as the scalar env, mapped to
the paper's ``S_BP``), and returns

* observations of shape ``(n_hubs, state_dim)`` — the Eq. 24 state per
  hub: forecast windows of RTP, weather (irradiance + wind), traffic
  load, and the discounted selling price (read off the engine's
  :class:`~repro.fleet.planes.SlotPlanes` SRTP plane), plus the battery
  SoC, all with the scalar env's normalisations;
* rewards of shape ``(n_hubs,)`` — the vectorized Eq. 12 slot profit
  (revenue − grid cost − battery cost − VoLL·unserved) computed straight
  from the fused step kernel's booked columns, so per-hub rewards match
  the :class:`~repro.fleet.costs.FleetCostBook` slot for slot.

When a capacity-limited :class:`~repro.fleet.grid.FeederGroup` couples
the hubs, an optional **feeder-aware** observation feature is appended:
each hub's ``available_import_kw()`` headroom normalised by its battery
charge rate (clipped; infinite headroom saturates at the clip), giving a
learned policy the congestion signal the fair-share heuristic acts on.

Episode sampling mirrors the scalar env so that at ``n_hubs=1`` with the
same RNG an episode is **trace-identical** to an :class:`EctHubEnv`
episode (rewards agree within the fleet engine's atol-1e-9 equivalence
bound): one shared episode start is drawn, then per hub the charging
strata are re-realised under that hub's discount schedule and an initial
SoC is drawn — the exact draw order of ``EctHubEnv.reset``.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..errors import EnvError
from ..fleet.grid import FeederGroup
from ..fleet.inputs import FleetInputs
from ..fleet.params import FleetParams
from ..fleet.simulation import FleetSimulation
from ..hub.scenario import HubScenario, resolve_occupancy
from ..synth.charging import ChargingBehaviorModel
from ..units import HOURS_PER_DAY
from .env import ACTION_TO_SBP, N_ACTIONS, EnvConfig
from .spaces import Box, Discrete

#: Feeder headroom is reported in units of the hub's charge rate and
#: clipped here; an uncoupled (infinite) feeder saturates at the clip.
FEEDER_OBS_CLIP = 2.0

#: Action-code → S_BP lookup in array form for vectorized mapping.
_SBP_LOOKUP = np.array(ACTION_TO_SBP, dtype=int)


class FleetEnv:
    """Gym-style batched environment over N hub scenarios.

    Parameters
    ----------
    scenarios:
        One :class:`HubScenario` per hub; all must share one horizon.
    behavior:
        The charging behaviour model used to re-realise occupancy strata
        per episode (the same generative model the pricing stage uses).
    discount_schedules:
        Discount fraction per (hub, slot) — ``(n_hubs, n_hours)``, or one
        shared ``(n_hours,)`` trace broadcast to every hub.
    config:
        :class:`~repro.rl.env.EnvConfig` (episode length, window,
        reward scale, SoC sampling) — shared with the scalar env.
    rng:
        Episode-sampling generator (start slot, strata, initial SoC).
    outage:
        Optional blackout mask, ``(n_hubs, n_hours)`` or broadcastable
        ``(n_hours,)``; episodes slice it so blackout slots reach the
        engine's Eq. 6 emergency branch.
    feeders:
        Optional shared-grid coupling over the *scenario* horizon; the
        per-slot capacity (when 2-D) is sliced to each episode window.
    voll_per_kwh:
        Value-of-lost-load charged against per-hub rewards.
    feeder_aware:
        Append the normalised ``available_import_kw`` observation
        feature. ``None`` (default) enables it exactly when a
        capacity-limited feeder group is attached.
    backend:
        Array backend the per-episode engines dispatch through (see
        :mod:`repro.backend`); the default numpy reference is
        byte-identical to the pre-seam environment.
    """

    def __init__(
        self,
        scenarios: Sequence[HubScenario],
        behavior: ChargingBehaviorModel,
        discount_schedules: np.ndarray,
        *,
        config: EnvConfig | None = None,
        rng: np.random.Generator | None = None,
        outage: np.ndarray | None = None,
        feeders: FeederGroup | None = None,
        voll_per_kwh: float = 0.0,
        feeder_aware: bool | None = None,
        backend: str = "numpy",
    ) -> None:
        self.backend = backend
        if not scenarios:
            raise EnvError("FleetEnv needs at least one scenario")
        horizons = {s.n_hours for s in scenarios}
        if len(horizons) != 1:
            raise EnvError(
                f"all scenarios must share one horizon, got {sorted(horizons)}"
            )
        self.config = config or EnvConfig()
        self.scenarios = list(scenarios)
        self.behavior = behavior
        self._n_hours = horizons.pop()
        self._episode_h = self.config.episode_days * HOURS_PER_DAY
        if self._n_hours < self._episode_h:
            raise EnvError(
                f"scenario horizon {self._n_hours} shorter than one episode "
                f"({self._episode_h} h)"
            )
        n = len(self.scenarios)
        self.discount = self._rows(discount_schedules, float, "discount schedule")
        if ((self.discount < 0) | (self.discount >= 1)).any():
            raise EnvError("discount schedules must lie in [0, 1)")
        self.outage = (
            None if outage is None else self._rows(outage, bool, "outage mask")
        )
        self.feeders = feeders
        if feeders is not None and feeders.n_hubs != n:
            raise EnvError(
                f"feeder group assigns {feeders.n_hubs} hubs but the "
                f"environment holds {n}"
            )
        if (
            feeders is not None
            and feeders.import_capacity_kw.ndim == 2
            and feeders.import_capacity_kw.shape[1] != self._n_hours
        ):
            raise EnvError(
                f"per-slot feeder capacity horizon "
                f"{feeders.import_capacity_kw.shape[1]} does not match the "
                f"scenario horizon {self._n_hours}"
            )
        self.voll_per_kwh = float(voll_per_kwh)
        if feeder_aware is None:
            feeder_aware = feeders is not None and not feeders.is_unlimited
        if feeder_aware and feeders is None:
            raise EnvError("feeder_aware observations need a FeederGroup")
        self.feeder_aware = bool(feeder_aware)

        self._rng = rng if rng is not None else np.random.default_rng(0)
        #: Struct-of-arrays equipment parameters, shared across episodes.
        self.params = FleetParams.from_hub_configs(
            [s.hub_config for s in self.scenarios]
        )
        # Full-horizon trace blocks: raw rows feed episode FleetInputs;
        # the Eq. 24 observation planes carry the scalar env's scalings.
        self._load_rate = np.stack([s.load_rate for s in self.scenarios])
        self._rtp_kwh = np.stack([s.rtp_kwh for s in self.scenarios])
        self._pv_kw = np.stack([s.pv_power_kw for s in self.scenarios])
        self._wt_kw = np.stack([s.wt_power_kw for s in self.scenarios])
        self._obs_rtp = self._rtp_kwh / 0.1  # ≈$0.1/kWh scale
        self._obs_irr = (
            np.stack([s.irradiance_w_m2 for s in self.scenarios]) / 1000.0
        )
        self._obs_wind = (
            np.stack([s.wind_speed_m_s for s in self.scenarios]) / 25.0
        )
        self._sim: FleetSimulation | None = None
        self._start = 0
        self._obs_srtp: np.ndarray | None = None

        self.action_space = Discrete(N_ACTIONS)
        self.observation_space = Box(
            low=-10.0, high=10.0, shape=(n, self.state_dim())
        )

    def _rows(self, values: np.ndarray, dtype, label: str) -> np.ndarray:
        """Broadcast a shared ``(n_hours,)`` trace to ``(n_hubs, n_hours)``."""
        arr = np.asarray(values, dtype=dtype)
        if arr.ndim == 1 and arr.shape == (self._n_hours,):
            arr = np.broadcast_to(arr, (self.n_hubs, self._n_hours)).copy()
        if arr.shape != (self.n_hubs, self._n_hours):
            raise EnvError(
                f"{label} must have shape ({self.n_hubs}, {self._n_hours}) "
                f"or ({self._n_hours},), got {arr.shape}"
            )
        return arr

    # ------------------------------------------------------------------ #
    # State layout                                                         #
    # ------------------------------------------------------------------ #

    @property
    def n_hubs(self) -> int:
        """Number of hubs stepped per action batch."""
        return len(self.scenarios)

    @property
    def episode_length(self) -> int:
        """Number of slots per episode."""
        return self._episode_h

    def state_dim(self) -> int:
        """Per-hub dimension of the Eq. 24 state vector."""
        # RTP, irradiance, wind, traffic, SRTP windows + SoC scalar,
        # plus the optional feeder-headroom feature.
        return 5 * self.config.window_h + 1 + (1 if self.feeder_aware else 0)

    def _windows(self, traces: np.ndarray, t: int) -> np.ndarray:
        """Next ``window_h`` columns of a trace block, edge-padded."""
        w = self.config.window_h
        stop = min(t + w, traces.shape[1])
        values = traces[:, t:stop]
        if values.shape[1] < w:
            pad = np.repeat(values[:, -1:], w - values.shape[1], axis=1)
            values = np.concatenate([values, pad], axis=1)
        return values

    def _observe(self) -> np.ndarray:
        sim = self._require_sim()
        t_abs = self._start + sim.t
        w = self.config.window_h
        obs = np.empty((self.n_hubs, self.state_dim()))
        obs[:, 0 * w : 1 * w] = self._windows(self._obs_rtp, t_abs)
        obs[:, 1 * w : 2 * w] = self._windows(self._obs_irr, t_abs)
        obs[:, 2 * w : 3 * w] = self._windows(self._obs_wind, t_abs)
        obs[:, 3 * w : 4 * w] = self._windows(self._load_rate, t_abs)
        obs[:, 4 * w : 5 * w] = self._windows(self._obs_srtp, sim.t)
        obs[:, 5 * w] = sim.soc_fraction
        if self.feeder_aware:
            obs[:, 5 * w + 1] = self._feeder_headroom(sim)
        return obs

    def _feeder_headroom(self, sim: FleetSimulation) -> np.ndarray:
        """Per-hub feeder headroom in charge-rate units, clipped.

        ``available_import_kw`` is the hub's fair share of remaining
        feeder capacity this slot; dividing by the charge rate expresses
        it as "how many full-rate charges still fit". Infinite headroom
        (uncoupled feeders) saturates at :data:`FEEDER_OBS_CLIP`.
        """
        available = sim.available_import_kw()
        return np.minimum(available / self.params.charge_rate_kw, FEEDER_OBS_CLIP)

    # ------------------------------------------------------------------ #
    # Episode lifecycle                                                    #
    # ------------------------------------------------------------------ #

    def reseed(self, rng: np.random.Generator) -> None:
        """Swap the episode-sampling stream (paired evaluation runs)."""
        self._rng = rng

    def _episode_feeders(self, start: int) -> FeederGroup | None:
        feeders = self.feeders
        if feeders is None or feeders.import_capacity_kw.ndim == 1:
            return feeders
        return dataclasses.replace(
            feeders,
            import_capacity_kw=feeders.import_capacity_kw[
                :, start : start + self._episode_h
            ],
        )

    def reset(self) -> np.ndarray:
        """Start a new episode; returns the ``(n_hubs, state_dim)`` state."""
        max_start = self._n_hours - self._episode_h
        start = int(self._rng.integers(0, max_start + 1))
        self._start = start
        slots = np.arange(start, start + self._episode_h)

        occupied = np.empty((self.n_hubs, self._episode_h), dtype=int)
        episode_discount = self.discount[:, slots]
        initial_soc = np.empty(self.n_hubs)
        for i, scenario in enumerate(self.scenarios):
            # Per hub: strata then SoC — EctHubEnv.reset's draw order, so
            # an n_hubs=1 episode consumes the RNG identically.
            strata = self.behavior.sample_strata(
                scenario.site.hub_id, slots, self._rng
            )
            occupied[i] = resolve_occupancy(strata, episode_discount[i] > 0)
            initial_soc[i] = (
                float(self._rng.uniform(0.0, 1.0))
                if self.config.random_initial_soc
                else 0.5
            )

        inputs = FleetInputs(
            load_rate=self._load_rate[:, slots],
            rtp_kwh=self._rtp_kwh[:, slots],
            pv_power_kw=self._pv_kw[:, slots],
            wt_power_kw=self._wt_kw[:, slots],
            occupied=occupied,
            discount=episode_discount,
            outage=None if self.outage is None else self.outage[:, slots],
        )
        self._sim = FleetSimulation(
            self.params,
            inputs,
            initial_soc_fraction=initial_soc,
            feeders=self._episode_feeders(start),
            voll_per_kwh=self.voll_per_kwh,
            backend=self.backend,
        )
        # The discounted selling price straight off the engine's plane
        # cache (bit-identical to base_price x (1 - discount)).
        self._obs_srtp = self._sim.planes.srtp_kwh / 0.5
        return self._observe()

    def step(
        self, actions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, bool, dict]:
        """Apply one action per hub; returns (state, scaled_rewards, done, info).

        ``actions`` is an ``(n_hubs,)`` integer vector over the scalar
        env's action codes {0: idle, 1: charge, 2: discharge}. Rewards are
        the per-hub Eq. 12 slot profits (minus the VoLL penalty) divided
        by ``reward_scale``; ``info["reward_raw"]`` carries the unscaled
        values and ``info["columns"]`` the booked slot columns.
        """
        sim = self._require_sim()
        actions = np.asarray(actions)
        if actions.shape != (self.n_hubs,):
            raise EnvError(
                f"actions must have shape ({self.n_hubs},), got {actions.shape}"
            )
        # Booleans are excluded: _SBP_LOOKUP[actions] would mask-index
        # the lookup table instead of mapping action codes.
        if actions.dtype.kind not in "iu":
            raise EnvError(f"actions must be integers, got dtype {actions.dtype}")
        if actions.size and (actions.min() < 0 or actions.max() >= N_ACTIONS):
            raise EnvError(
                f"invalid action in {actions!r}; expected values in "
                f"[0, {N_ACTIONS})"
            )
        columns = sim.step(_SBP_LOOKUP[actions])
        reward_raw = (
            columns["revenue"]
            - columns["grid_cost"]
            - columns["bp_cost"]
            - self.voll_per_kwh * columns["unserved_kwh"]
        )
        done = sim.done
        state = (
            self._observe()
            if not done
            else np.zeros((self.n_hubs, self.state_dim()))
        )
        info = {"columns": columns, "reward_raw": reward_raw}
        return state, reward_raw / self.config.reward_scale, done, info

    def _require_sim(self) -> FleetSimulation:
        if self._sim is None:
            raise EnvError("step/observe called before reset()")
        return self._sim

    @property
    def simulation(self) -> FleetSimulation:
        """The live batched simulation (for evaluation bookkeeping)."""
        return self._require_sim()
