"""Minimal action/observation space descriptions (gym-style)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EnvError


@dataclass(frozen=True)
class Discrete:
    """A finite action set ``{0, …, n−1}``."""

    n: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise EnvError(f"Discrete space needs n > 0, got {self.n}")

    def contains(self, action: int) -> bool:
        """Whether ``action`` is a legal element."""
        return isinstance(action, (int, np.integer)) and 0 <= int(action) < self.n

    def sample(self, rng: np.random.Generator) -> int:
        """Uniform random action."""
        return int(rng.integers(self.n))


@dataclass(frozen=True)
class Box:
    """A real-valued vector space with elementwise bounds."""

    low: float
    high: float
    shape: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.low >= self.high:
            raise EnvError(f"Box needs low < high, got [{self.low}, {self.high}]")
        if any(s <= 0 for s in self.shape):
            raise EnvError(f"Box shape must be positive, got {self.shape}")

    def contains(self, value: np.ndarray) -> bool:
        """Whether ``value`` lies inside the box."""
        arr = np.asarray(value)
        return arr.shape == self.shape and bool(
            (arr >= self.low).all() and (arr <= self.high).all()
        )
