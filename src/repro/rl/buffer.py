"""Rollout storage and Generalised Advantage Estimation for PPO."""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


class RolloutBuffer:
    """Fixed-capacity on-policy buffer.

    Stores one or more episodes of (state, action, log-prob, value, reward,
    done) tuples and computes GAE(λ) advantages and discounted returns used
    by the PPO update (the ``Â_t`` of Eq. 25).
    """

    def __init__(self, capacity: int, state_dim: int) -> None:
        if capacity <= 0 or state_dim <= 0:
            raise ModelError("capacity and state_dim must be positive")
        self.capacity = capacity
        self.states = np.zeros((capacity, state_dim))
        self.actions = np.zeros(capacity, dtype=int)
        self.log_probs = np.zeros(capacity)
        self.values = np.zeros(capacity)
        self.rewards = np.zeros(capacity)
        self.dones = np.zeros(capacity, dtype=bool)
        self.advantages = np.zeros(capacity)
        self.returns = np.zeros(capacity)
        self._size = 0
        self._finalized = False

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        """Whether the buffer has reached capacity."""
        return self._size >= self.capacity

    def add(
        self,
        state: np.ndarray,
        action: int,
        log_prob: float,
        value: float,
        reward: float,
        done: bool,
    ) -> None:
        """Append one transition."""
        if self.full:
            raise ModelError(f"rollout buffer capacity {self.capacity} exceeded")
        i = self._size
        self.states[i] = state
        self.actions[i] = action
        self.log_probs[i] = log_prob
        self.values[i] = value
        self.rewards[i] = reward
        self.dones[i] = done
        self._size += 1
        self._finalized = False

    def compute_advantages(
        self,
        last_value: float,
        *,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        normalize: bool = True,
    ) -> None:
        """GAE(λ) over the stored transitions.

        ``last_value`` bootstraps the value beyond the final stored step
        (0 when the final step terminated an episode).
        """
        if not 0.0 < gamma <= 1.0 or not 0.0 <= gae_lambda <= 1.0:
            raise ModelError(f"invalid gamma/lambda: {gamma}, {gae_lambda}")
        n = self._size
        if n == 0:
            raise ModelError("compute_advantages on an empty buffer")

        gae = 0.0
        for t in reversed(range(n)):
            if t == n - 1:
                next_value = 0.0 if self.dones[t] else last_value
            else:
                next_value = 0.0 if self.dones[t] else self.values[t + 1]
            delta = self.rewards[t] + gamma * next_value - self.values[t]
            gae = delta + gamma * gae_lambda * (0.0 if self.dones[t] else gae)
            self.advantages[t] = gae
        self.returns[:n] = self.advantages[:n] + self.values[:n]

        if normalize and n > 1:
            adv = self.advantages[:n]
            self.advantages[:n] = (adv - adv.mean()) / (adv.std() + 1e-8)
        self._finalized = True

    def minibatches(
        self, batch_size: int, rng: np.random.Generator
    ):
        """Yield shuffled index arrays over the stored transitions."""
        if not self._finalized:
            raise ModelError("call compute_advantages before minibatches")
        if batch_size <= 0:
            raise ModelError(f"batch_size must be positive, got {batch_size}")
        order = rng.permutation(self._size)
        for start in range(0, self._size, batch_size):
            yield order[start : start + batch_size]

    def clear(self) -> None:
        """Reset for the next rollout."""
        self._size = 0
        self._finalized = False
