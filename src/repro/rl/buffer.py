"""Rollout storage and Generalised Advantage Estimation for PPO.

:class:`RolloutBuffer` stores one environment's transitions;
:class:`FleetRolloutBuffer` stores ``(T, n_envs)`` batches from the
batched fleet environment, runs GAE(λ) **per hub** (vectorized over the
hub axis), and exposes the flattened ``(T·n_envs, …)`` views the PPO
update consumes — so one parameter-shared policy trains on every hub's
transitions with a single optimiser. Both buffers present the same
``compute_advantages`` / ``minibatches`` / column-attribute interface, so
:meth:`~repro.rl.ppo.PpoAgent.update` works with either unchanged.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError


class RolloutBuffer:
    """Fixed-capacity on-policy buffer for one environment.

    Stores one or more episodes of (state, action, log-prob, value, reward,
    done) tuples and computes GAE(λ) advantages and discounted returns used
    by the PPO update (the ``Â_t`` of Eq. 25). A thin scalar facade over
    :class:`FleetRolloutBuffer` at ``n_envs=1`` — one GAE implementation
    serves both the scalar and fleet training paths.
    """

    def __init__(self, capacity: int, state_dim: int) -> None:
        if capacity <= 0 or state_dim <= 0:
            raise ModelError("capacity and state_dim must be positive")
        self.capacity = capacity
        self._fleet = FleetRolloutBuffer(capacity, 1, state_dim)

    def __len__(self) -> int:
        return len(self._fleet)

    @property
    def full(self) -> bool:
        """Whether the buffer has reached capacity."""
        return self._fleet.full

    def add(
        self,
        state: np.ndarray,
        action: int,
        log_prob: float,
        value: float,
        reward: float,
        done: bool,
    ) -> None:
        """Append one transition."""
        if self.full:
            raise ModelError(f"rollout buffer capacity {self.capacity} exceeded")
        self._fleet.add(
            np.asarray(state).reshape(1, -1),
            np.array([action]),
            np.array([log_prob]),
            np.array([value]),
            np.array([reward]),
            bool(done),
        )

    def compute_advantages(
        self,
        last_value: float,
        *,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        normalize: bool = True,
    ) -> None:
        """GAE(λ) over the stored transitions.

        ``last_value`` bootstraps the value beyond the final stored step
        (0 when the final step terminated an episode).
        """
        self._fleet.compute_advantages(
            float(last_value),
            gamma=gamma,
            gae_lambda=gae_lambda,
            normalize=normalize,
        )

    @property
    def states(self) -> np.ndarray:
        """Stored states, shape ``(len, state_dim)``."""
        return self._fleet.states

    @property
    def actions(self) -> np.ndarray:
        """Stored actions."""
        return self._fleet.actions

    @property
    def log_probs(self) -> np.ndarray:
        """Stored behaviour log-probs."""
        return self._fleet.log_probs

    @property
    def advantages(self) -> np.ndarray:
        """GAE advantages of the stored transitions."""
        return self._fleet.advantages

    @property
    def returns(self) -> np.ndarray:
        """Discounted returns of the stored transitions."""
        return self._fleet.returns

    @property
    def values(self) -> np.ndarray:
        """Stored critic values."""
        return self._fleet.values

    @property
    def rewards(self) -> np.ndarray:
        """Stored rewards."""
        return self._fleet.rewards

    @property
    def dones(self) -> np.ndarray:
        """Stored done flags."""
        return self._fleet.dones

    def minibatches(self, batch_size: int, rng: np.random.Generator):
        """Yield shuffled index arrays over the stored transitions."""
        return self._fleet.minibatches(batch_size, rng)

    def clear(self) -> None:
        """Reset for the next rollout."""
        self._fleet.clear()


class FleetRolloutBuffer:
    """On-policy storage for ``n_envs`` hubs stepped in lockstep.

    One :meth:`add` call appends a whole ``(n_envs,)`` transition batch
    (the fleet environment's per-slot output). GAE(λ) runs per hub —
    every hub's advantage stream is computed exactly as a scalar
    :class:`RolloutBuffer` would, just vectorized across the hub axis —
    and normalisation spans the full ``T·n_envs`` pool, which is also the
    pool :meth:`minibatches` shuffles over. The flat column properties
    (``states``, ``actions``, …) order transitions time-major
    (slot 0's hubs first), matching the ``(T, n_envs)`` storage reshape.
    """

    def __init__(self, capacity: int, n_envs: int, state_dim: int) -> None:
        if capacity <= 0 or n_envs <= 0 or state_dim <= 0:
            raise ModelError("capacity, n_envs, and state_dim must be positive")
        self.capacity = capacity
        self.n_envs = n_envs
        self._states = np.zeros((capacity, n_envs, state_dim))
        self._actions = np.zeros((capacity, n_envs), dtype=int)
        self._log_probs = np.zeros((capacity, n_envs))
        self._values = np.zeros((capacity, n_envs))
        self._rewards = np.zeros((capacity, n_envs))
        self._dones = np.zeros((capacity, n_envs), dtype=bool)
        self._advantages = np.zeros((capacity, n_envs))
        self._returns = np.zeros((capacity, n_envs))
        self._size = 0
        self._finalized = False

    def __len__(self) -> int:
        """Number of stored transitions across all hubs."""
        return self._size * self.n_envs

    @property
    def full(self) -> bool:
        """Whether the buffer has reached its slot capacity."""
        return self._size >= self.capacity

    def add(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        log_probs: np.ndarray,
        values: np.ndarray,
        rewards: np.ndarray,
        dones: bool | np.ndarray,
    ) -> None:
        """Append one slot's ``(n_envs,)`` transition batch."""
        if self.full:
            raise ModelError(
                f"fleet rollout buffer capacity {self.capacity} exceeded"
            )
        if np.shape(states) != self._states.shape[1:]:
            raise ModelError(
                f"states must have shape {self._states.shape[1:]}, "
                f"got {np.shape(states)}"
            )
        for name, column in (
            ("actions", actions),
            ("log_probs", log_probs),
            ("values", values),
            ("rewards", rewards),
        ):
            if np.shape(column) != (self.n_envs,):
                raise ModelError(
                    f"{name} must have shape ({self.n_envs},), "
                    f"got {np.shape(column)}"
                )
        if np.shape(dones) not in ((), (self.n_envs,)):
            raise ModelError(
                f"dones must be a scalar or have shape ({self.n_envs},), "
                f"got {np.shape(dones)}"
            )
        i = self._size
        self._states[i] = states
        self._actions[i] = actions
        self._log_probs[i] = log_probs
        self._values[i] = values
        self._rewards[i] = rewards
        self._dones[i] = dones
        self._size += 1
        self._finalized = False

    def compute_advantages(
        self,
        last_value: float | np.ndarray,
        *,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        normalize: bool = True,
    ) -> None:
        """Per-hub GAE(λ) over the stored slots.

        ``last_value`` bootstraps beyond the final stored slot — a scalar
        (shared) or an ``(n_envs,)`` array of per-hub critic values; hubs
        whose final slot terminated bootstrap zero regardless.
        """
        if not 0.0 < gamma <= 1.0 or not 0.0 <= gae_lambda <= 1.0:
            raise ModelError(f"invalid gamma/lambda: {gamma}, {gae_lambda}")
        n = self._size
        if n == 0:
            raise ModelError("compute_advantages on an empty buffer")
        last = np.broadcast_to(
            np.asarray(last_value, dtype=float), (self.n_envs,)
        )

        gae = np.zeros(self.n_envs)
        for t in reversed(range(n)):
            live = ~self._dones[t]
            next_value = (
                np.where(live, last, 0.0)
                if t == n - 1
                else np.where(live, self._values[t + 1], 0.0)
            )
            delta = self._rewards[t] + gamma * next_value - self._values[t]
            gae = delta + gamma * gae_lambda * np.where(live, gae, 0.0)
            self._advantages[t] = gae
        self._returns[:n] = self._advantages[:n] + self._values[:n]

        if normalize and n * self.n_envs > 1:
            adv = self._advantages[:n]
            self._advantages[:n] = (adv - adv.mean()) / (adv.std() + 1e-8)
        self._finalized = True

    # Flat (T·n_envs, …) views consumed by the PPO minibatch update.
    @property
    def states(self) -> np.ndarray:
        """Stored states, flattened time-major."""
        return self._states[: self._size].reshape(len(self), -1)

    @property
    def actions(self) -> np.ndarray:
        """Stored actions, flattened time-major."""
        return self._actions[: self._size].reshape(-1)

    @property
    def log_probs(self) -> np.ndarray:
        """Stored behaviour log-probs, flattened time-major."""
        return self._log_probs[: self._size].reshape(-1)

    @property
    def advantages(self) -> np.ndarray:
        """GAE advantages, flattened time-major."""
        return self._advantages[: self._size].reshape(-1)

    @property
    def returns(self) -> np.ndarray:
        """Discounted returns, flattened time-major."""
        return self._returns[: self._size].reshape(-1)

    @property
    def values(self) -> np.ndarray:
        """Stored critic values, flattened time-major."""
        return self._values[: self._size].reshape(-1)

    @property
    def rewards(self) -> np.ndarray:
        """Stored rewards, flattened time-major."""
        return self._rewards[: self._size].reshape(-1)

    @property
    def dones(self) -> np.ndarray:
        """Stored done flags, flattened time-major."""
        return self._dones[: self._size].reshape(-1)

    def minibatches(self, batch_size: int, rng: np.random.Generator):
        """Yield shuffled index arrays over the flattened transition pool."""
        if not self._finalized:
            raise ModelError("call compute_advantages before minibatches")
        if batch_size <= 0:
            raise ModelError(f"batch_size must be positive, got {batch_size}")
        order = rng.permutation(len(self))
        for start in range(0, len(self), batch_size):
            yield order[start : start + batch_size]

    def clear(self) -> None:
        """Reset for the next rollout."""
        self._size = 0
        self._finalized = False
