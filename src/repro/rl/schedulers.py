"""Baseline battery schedulers (non-learned).

These provide comparison points and ablations for ECT-DRL:

* :class:`IdleScheduler` — never touch the battery (the "no BESS
  scheduling" reference).
* :class:`RandomScheduler` — uniform random actions.
* :class:`RuleBasedScheduler` — the classic peak/off-peak heuristic:
  charge when the price is in the cheap quantile, discharge when it is in
  the expensive quantile.
* :class:`GreedyRenewableScheduler` — charge whenever renewables exceed
  hub load (store surplus instead of curtailing), discharge at peak price.

Every scheduler implements the same callable protocol as
:meth:`repro.hub.simulation.HubSimulation.run` policies: it receives the
live simulation and returns a battery action (−1 / 0 / 1).
"""

from __future__ import annotations

import numpy as np

from ..energy.battery import CHARGE, DISCHARGE, IDLE
from ..errors import ConfigError
from ..hub.simulation import HubSimulation


class Scheduler:
    """Base class: a policy over :class:`HubSimulation` states."""

    name: str = "scheduler"

    def __call__(self, sim: HubSimulation) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Hook for stateful schedulers; default is stateless."""


class IdleScheduler(Scheduler):
    """Never use the battery."""

    name = "idle"

    def __call__(self, sim: HubSimulation) -> int:
        return IDLE


class RandomScheduler(Scheduler):
    """Uniform random action each slot."""

    name = "random"

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def __call__(self, sim: HubSimulation) -> int:
        return int(self._rng.integers(-1, 2))


class RuleBasedScheduler(Scheduler):
    """Charge below the cheap-price quantile, discharge above the expensive one.

    Quantiles are computed over the simulation's own price trace, so the
    rule adapts to each scenario's price level without foresight of the
    specific slot ordering.
    """

    name = "rule-based"

    def __init__(
        self,
        *,
        cheap_quantile: float = 0.3,
        expensive_quantile: float = 0.7,
    ) -> None:
        if not 0.0 < cheap_quantile < expensive_quantile < 1.0:
            raise ConfigError(
                "quantiles must satisfy 0 < cheap < expensive < 1, got "
                f"({cheap_quantile}, {expensive_quantile})"
            )
        self.cheap_quantile = cheap_quantile
        self.expensive_quantile = expensive_quantile
        self._thresholds: tuple[float, float] | None = None

    def reset(self) -> None:
        self._thresholds = None

    def __call__(self, sim: HubSimulation) -> int:
        if self._thresholds is None:
            prices = sim.inputs.rtp_kwh
            self._thresholds = (
                float(np.quantile(prices, self.cheap_quantile)),
                float(np.quantile(prices, self.expensive_quantile)),
            )
        cheap, expensive = self._thresholds
        price = float(sim.inputs.rtp_kwh[sim.t])
        if price <= cheap:
            return CHARGE
        if price >= expensive:
            return DISCHARGE
        return IDLE


class GreedyRenewableScheduler(Scheduler):
    """Store renewable surplus; discharge during expensive slots."""

    name = "greedy-renewable"

    def __init__(self, *, expensive_quantile: float = 0.75) -> None:
        if not 0.0 < expensive_quantile < 1.0:
            raise ConfigError(
                f"expensive_quantile must be in (0, 1), got {expensive_quantile}"
            )
        self.expensive_quantile = expensive_quantile
        self._threshold: float | None = None

    def reset(self) -> None:
        self._threshold = None

    def __call__(self, sim: HubSimulation) -> int:
        if self._threshold is None:
            self._threshold = float(
                np.quantile(sim.inputs.rtp_kwh, self.expensive_quantile)
            )
        t = sim.t
        renewables = float(sim.inputs.pv_power_kw[t] + sim.inputs.wt_power_kw[t])
        bs_load = float(
            sim.hub.base_stations.power_kw(float(sim.inputs.load_rate[t]))
        )
        if renewables > bs_load:
            return CHARGE
        if float(sim.inputs.rtp_kwh[t]) >= self._threshold:
            return DISCHARGE
        return IDLE
