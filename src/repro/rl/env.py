"""The ECT-DRL environment (paper §IV-B).

One episode is 30 days of hourly slots at one hub (§V-C). The state
(Eq. 24) is

``s_t = (RTP⃗, weather⃗, traffic⃗, SRTP⃗, SoC)``

— forecast windows of the next ``window_h`` hours for the real-time price,
weather (irradiance + wind), traffic load, and the charging price set by
the pricing method, plus the battery's state of charge. The three actions
map to the paper's ``S_BP``: 0 → idle, 1 → charge, 2 → discharge. The
reward is the Eq. 12 slot profit, delegated to the shared
:class:`~repro.hub.simulation.HubSimulation` engine so every scheduler is
scored identically.

Episodes sample a random 30-day window from the scenario traces and a
random initial SoC (as in §V-C), and re-realise the charging strata under
the hub's discount schedule, so the environment is stochastic across
episodes but driven by the same generative model the pricing stage was
trained on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..errors import EnvError
from ..hub.scenario import HubScenario, resolve_occupancy
from ..hub.simulation import HubSimulation
from ..synth.charging import ChargingBehaviorModel
from ..units import HOURS_PER_DAY
from .spaces import Box, Discrete

#: Environment action codes (indices into this tuple give the paper S_BP).
ACTION_TO_SBP = (0, 1, -1)

#: Number of discrete actions.
N_ACTIONS = 3


@dataclass(frozen=True)
class EnvConfig:
    """Environment knobs.

    Attributes
    ----------
    episode_days:
        Episode length (paper: 30 days).
    window_h:
        Forecast window length for each state feature vector.
    reward_scale:
        Rewards are divided by this for PPO numeric stability; evaluation
        helpers report unscaled Eq. 12 values.
    random_initial_soc:
        Draw SoC uniformly at episode start (paper §V-C); fixed 0.5 when
        False.
    """

    episode_days: int = 30
    window_h: int = 24
    reward_scale: float = 10.0
    random_initial_soc: bool = True

    def __post_init__(self) -> None:
        if self.episode_days <= 0:
            raise EnvError(f"episode_days must be positive, got {self.episode_days}")
        if self.window_h <= 0:
            raise EnvError(f"window_h must be positive, got {self.window_h}")
        if self.reward_scale <= 0:
            raise EnvError(f"reward_scale must be positive, got {self.reward_scale}")


class EctHubEnv:
    """Gym-style environment over one hub scenario + a discount schedule."""

    def __init__(
        self,
        scenario: HubScenario,
        behavior: ChargingBehaviorModel,
        discount_schedule: np.ndarray,
        *,
        config: EnvConfig | None = None,
        rng: np.random.Generator | None = None,
        outage: np.ndarray | None = None,
    ) -> None:
        self.config = config or EnvConfig()
        self.scenario = scenario
        self.behavior = behavior
        self.discount = np.asarray(discount_schedule, dtype=float)
        if self.discount.shape != (scenario.n_hours,):
            raise EnvError(
                f"discount schedule length {self.discount.shape} does not match "
                f"scenario horizon {scenario.n_hours}"
            )
        self.outage = None if outage is None else np.asarray(outage, dtype=bool)
        if self.outage is not None and self.outage.shape != (scenario.n_hours,):
            raise EnvError(
                f"outage mask shape {self.outage.shape} does not match "
                f"scenario horizon {scenario.n_hours}"
            )
        self._episode_h = self.config.episode_days * HOURS_PER_DAY
        if scenario.n_hours < self._episode_h:
            raise EnvError(
                f"scenario horizon {scenario.n_hours} shorter than one episode "
                f"({self._episode_h} h)"
            )
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._sim: HubSimulation | None = None
        self._start = 0

        self.action_space = Discrete(N_ACTIONS)
        self.observation_space = Box(
            low=-10.0, high=10.0, shape=(self.state_dim(),)
        )

    # ------------------------------------------------------------------ #
    # State layout                                                         #
    # ------------------------------------------------------------------ #

    def state_dim(self) -> int:
        """Dimension of the Eq. 24 state vector."""
        # RTP, irradiance, wind, traffic, SRTP windows + SoC scalar.
        return 5 * self.config.window_h + 1

    def _window(self, trace: np.ndarray, t_abs: int) -> np.ndarray:
        """Next ``window_h`` values of a trace, edge-padded at the horizon.

        Clamps against ``len(trace)``, not the scenario horizon: the SRTP
        window reads the *episode-length* discounted-price trace, which is
        shorter than the scenario the other features are sliced from.
        """
        w = self.config.window_h
        stop = min(t_abs + w, len(trace))
        values = trace[t_abs:stop]
        if len(values) < w:
            pad = np.full(w - len(values), values[-1] if len(values) else 0.0)
            values = np.concatenate([values, pad])
        return values

    def _observe(self) -> np.ndarray:
        sim = self._require_sim()
        t_abs = self._start + sim.t
        scen = self.scenario
        rtp = self._window(scen.rtp_kwh, t_abs) / 0.1  # ≈$0.1/kWh scale
        irr = self._window(scen.irradiance_w_m2, t_abs) / 1000.0
        wind = self._window(scen.wind_speed_m_s, t_abs) / 25.0
        load = self._window(scen.load_rate, t_abs)
        srtp = self._window(self._episode_srtp, t_abs - self._start) / 0.5
        soc = np.array([sim.hub.battery.soc_fraction])
        return np.concatenate([rtp, irr, wind, load, srtp, soc])

    # ------------------------------------------------------------------ #
    # Episode lifecycle                                                    #
    # ------------------------------------------------------------------ #

    def reset(self) -> np.ndarray:
        """Start a new 30-day episode; returns the initial state."""
        max_start = self.scenario.n_hours - self._episode_h
        self._start = int(self._rng.integers(0, max_start + 1))
        slots = np.arange(self._start, self._start + self._episode_h)

        strata = self.behavior.sample_strata(
            self.scenario.site.hub_id, slots, self._rng
        )
        episode_discount = self.discount[slots]
        occupied = resolve_occupancy(strata, episode_discount > 0)

        self._episode_srtp = (
            self.scenario.hub_config.charging_station.base_price_kwh
            * (1.0 - episode_discount)
        )
        initial_soc = (
            float(self._rng.uniform(0.0, 1.0))
            if self.config.random_initial_soc
            else 0.5
        )
        inputs = self.scenario.inputs_with_occupancy(
            occupied=np.zeros(self.scenario.n_hours, dtype=int),
            discount=np.zeros(self.scenario.n_hours),
            outage=self.outage,
        ).slice(self._start, self._start + self._episode_h)
        # Replace occupancy/discount with the episode realisation; every
        # other field (including the optional outage mask) must survive.
        inputs = dataclasses.replace(
            inputs, occupied=occupied, discount=episode_discount
        )
        self._sim = HubSimulation(
            self.scenario.build_hub(initial_soc_fraction=initial_soc),
            inputs,
            initial_soc_fraction=initial_soc,
        )
        return self._observe()

    def step(self, action: int) -> tuple[np.ndarray, float, bool, dict]:
        """Apply one action; returns (state, scaled_reward, done, info)."""
        if not self.action_space.contains(action):
            raise EnvError(f"invalid action {action!r}; expected 0, 1, or 2")
        sim = self._require_sim()
        ledger = sim.step(ACTION_TO_SBP[int(action)])
        done = sim.done
        info = {"ledger": ledger, "reward_raw": ledger.reward}
        state = self._observe() if not done else np.zeros(self.state_dim())
        return state, ledger.reward / self.config.reward_scale, done, info

    def _require_sim(self) -> HubSimulation:
        if self._sim is None:
            raise EnvError("step/observe called before reset()")
        return self._sim

    @property
    def episode_length(self) -> int:
        """Number of slots per episode."""
        return self._episode_h

    @property
    def simulation(self) -> HubSimulation:
        """The live simulation (for evaluation bookkeeping)."""
        return self._require_sim()
