"""Actor-critic network for ECT-DRL (paper Fig. 10).

All state inputs are concatenated and fed into a shared fully-connected
layer, which then feeds both the actor (3-way softmax over the battery
actions) and the critic (scalar value) — exactly the topology of Fig. 10.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..errors import ModelError


class ActorCritic(nn.Module):
    """Shared-trunk actor-critic on :mod:`repro.nn`."""

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        rng: np.random.Generator,
        *,
        hidden_sizes: tuple[int, ...] = (64, 64),
    ) -> None:
        super().__init__()
        if state_dim <= 0 or n_actions <= 1:
            raise ModelError(
                f"state_dim must be positive and n_actions > 1, got "
                f"({state_dim}, {n_actions})"
            )
        if not hidden_sizes:
            raise ModelError("hidden_sizes must be non-empty")
        self.trunk = nn.MLP((state_dim, *hidden_sizes), rng, output_activation=nn.Tanh)
        self.actor_head = nn.Linear(hidden_sizes[-1], n_actions, rng)
        self.critic_head = nn.Linear(hidden_sizes[-1], 1, rng)
        # Small policy-head init keeps the initial policy near uniform.
        self.actor_head.weight.data *= 0.01
        self.n_actions = n_actions

    def forward(self, states: np.ndarray) -> tuple[nn.Tensor, nn.Tensor]:
        """(policy logits, value estimates) for a batch of states."""
        x = nn.Tensor(np.atleast_2d(np.asarray(states, dtype=float)))
        features = self.trunk(x)
        return self.actor_head(features), self.critic_head(features)

    # ------------------------------------------------------------------ #
    # Acting                                                               #
    # ------------------------------------------------------------------ #

    def act(
        self, state: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float, float]:
        """Sample an action; returns (action, log_prob, value)."""
        logits, value = self.forward(state)
        log_probs = logits.log_softmax(axis=-1).numpy()[0]
        probs = np.exp(log_probs)
        probs = probs / probs.sum()
        action = int(rng.choice(self.n_actions, p=probs))
        return action, float(log_probs[action]), float(value.numpy()[0, 0])

    def greedy_action(self, state: np.ndarray) -> int:
        """Deterministic argmax action (evaluation mode)."""
        logits, _ = self.forward(state)
        return int(np.argmax(logits.numpy()[0]))

    def act_batch(
        self, states: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample one action per row of ``states`` in a single forward pass.

        Returns ``(actions, log_probs, values)``, each shaped ``(n,)``.
        Sampling is inverse-CDF over the row-wise softmax (one uniform
        draw per row), so the whole fleet acts on one network evaluation.
        """
        logits, values = self.forward(states)
        log_probs = logits.log_softmax(axis=-1).numpy()
        probs = np.exp(log_probs)
        draws = rng.random((probs.shape[0], 1))
        # Softmax rows sum to 1 up to float error; the clamp covers a
        # cumsum landing fractionally below a draw at the top edge.
        actions = np.minimum(
            (probs.cumsum(axis=1) < draws).sum(axis=1), self.n_actions - 1
        ).astype(int)
        taken = log_probs[np.arange(len(actions)), actions]
        return actions, taken, values.numpy().reshape(-1)

    def greedy_actions(self, states: np.ndarray) -> np.ndarray:
        """Row-wise argmax actions (batched evaluation mode)."""
        logits, _ = self.forward(states)
        return np.argmax(logits.numpy(), axis=1).astype(int)

    def evaluate_actions(
        self, states: np.ndarray, actions: np.ndarray
    ) -> tuple[nn.Tensor, nn.Tensor, nn.Tensor]:
        """(log-probs of taken actions, values, entropy) with gradients."""
        logits, values = self.forward(states)
        log_probs = logits.log_softmax(axis=-1)
        taken = log_probs.select_columns(np.asarray(actions, dtype=int))
        probs = log_probs.exp()
        entropy = -(probs * log_probs).sum(axis=-1).mean()
        batch = values.shape[0]
        return taken, values.reshape(batch), entropy
