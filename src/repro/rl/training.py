"""Training and evaluation loops for ECT-DRL.

The paper trains for 500 episodes and tests for 100 (§V-C); these loops
take the episode counts as parameters so benches can run a reduced
schedule (documented in EXPERIMENTS.md) while paper-scale remains one
config away.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ModelError
from .buffer import FleetRolloutBuffer, RolloutBuffer
from .env import EctHubEnv
from .fleet_env import FleetEnv
from .ppo import PpoAgent, PpoConfig, UpdateStats
from .schedulers import Scheduler


@dataclass
class TrainingHistory:
    """Per-episode returns and update diagnostics."""

    episode_returns: list[float] = field(default_factory=list)
    update_stats: list[UpdateStats] = field(default_factory=list)

    @property
    def best_return(self) -> float:
        """Highest raw episode return seen during training."""
        if not self.episode_returns:
            raise ModelError("no episodes recorded")
        return max(self.episode_returns)


def train_ppo(
    env: EctHubEnv,
    *,
    episodes: int,
    config: PpoConfig | None = None,
    rng: np.random.Generator | None = None,
    agent: PpoAgent | None = None,
) -> tuple[PpoAgent, TrainingHistory]:
    """Train a PPO agent on one hub environment.

    One PPO update per episode (the 720-slot episode is the rollout).
    Returns the trained agent and the training history (raw Eq. 12
    returns, not reward-scaled).
    """
    if episodes <= 0:
        raise ModelError(f"episodes must be positive, got {episodes}")
    agent = agent or PpoAgent(
        env.state_dim(), env.action_space.n, config, rng
    )
    buffer = RolloutBuffer(env.episode_length, env.state_dim())
    history = TrainingHistory()

    for _ in range(episodes):
        state = env.reset()
        episode_return = 0.0
        done = False
        while not done:
            action, log_prob, value = agent.act(state)
            next_state, reward, done, info = env.step(action)
            buffer.add(state, action, log_prob, value, reward, done)
            episode_return += info["reward_raw"]
            state = next_state
        stats = agent.update(buffer, last_value=0.0)
        history.episode_returns.append(episode_return)
        history.update_stats.append(stats)
    return agent, history


def evaluate_agent(
    env: EctHubEnv,
    agent: PpoAgent,
    *,
    episodes: int,
    greedy: bool = True,
) -> np.ndarray:
    """Daily Eq. 12 rewards over evaluation episodes, shape (episodes, days)."""
    if episodes <= 0:
        raise ModelError(f"episodes must be positive, got {episodes}")
    days = env.config.episode_days
    rewards = np.zeros((episodes, days))
    for e in range(episodes):
        state = env.reset()
        done = False
        while not done:
            action = (
                agent.greedy_action(state) if greedy else agent.act(state)[0]
            )
            state, _, done, _ = env.step(action)
        daily = env.simulation.book.daily_rewards()
        rewards[e, : len(daily)] = daily
    return rewards


@dataclass
class FleetTrainingHistory:
    """Per-episode fleet returns and update diagnostics."""

    episode_returns: list[np.ndarray] = field(default_factory=list)
    update_stats: list[UpdateStats] = field(default_factory=list)

    @property
    def mean_episode_returns(self) -> list[float]:
        """Hub-averaged raw Eq. 12 return per training episode."""
        if not self.episode_returns:
            raise ModelError("no episodes recorded")
        return [float(returns.mean()) for returns in self.episode_returns]

    @property
    def best_mean_return(self) -> float:
        """Highest hub-averaged episode return seen during training."""
        return max(self.mean_episode_returns)


def train_fleet_ppo(
    env: FleetEnv,
    *,
    episodes: int,
    config: PpoConfig | None = None,
    rng: np.random.Generator | None = None,
    agent: PpoAgent | None = None,
    telemetry=None,
) -> tuple[PpoAgent, FleetTrainingHistory]:
    """Train one parameter-shared PPO agent over a batched fleet env.

    Every slot contributes ``n_hubs`` transitions through a single
    forward pass; one PPO update runs per episode over the whole
    ``episode_length x n_hubs`` rollout, with GAE computed per hub.
    Returns the agent and the history of per-hub raw episode returns.

    ``telemetry`` (a :class:`~repro.telemetry.session.Telemetry`, or
    ``None``) records per-episode rollout time, a ``ppo-update`` span per
    update, and the update diagnostics (reward mean/std, losses, KL,
    entropy) — the training half of the RunTelemetry record.
    """
    if episodes <= 0:
        raise ModelError(f"episodes must be positive, got {episodes}")
    agent = agent or PpoAgent(env.state_dim(), env.action_space.n, config, rng)
    buffer = FleetRolloutBuffer(env.episode_length, env.n_hubs, env.state_dim())
    history = FleetTrainingHistory()

    for episode in range(episodes):
        rollout_start = time.perf_counter() if telemetry is not None else 0.0
        states = env.reset()
        episode_returns = np.zeros(env.n_hubs)
        done = False
        while not done:
            actions, log_probs, values = agent.act_batch(states)
            next_states, rewards, done, info = env.step(actions)
            buffer.add(states, actions, log_probs, values, rewards, done)
            episode_returns += info["reward_raw"]
            states = next_states
        if telemetry is not None:
            telemetry.metrics.add_time(
                "rl.rollout", time.perf_counter() - rollout_start
            )
            with telemetry.span("ppo-update", episode=episode):
                stats = agent.update(buffer, last_value=0.0)
            telemetry.record_rl_update(
                reward_mean=float(episode_returns.mean()),
                reward_std=float(episode_returns.std()),
                policy_loss=stats.policy_loss,
                value_loss=stats.value_loss,
                entropy=stats.entropy,
                approx_kl=stats.approx_kl,
                clip_fraction=stats.clip_fraction,
            )
        else:
            stats = agent.update(buffer, last_value=0.0)
        history.episode_returns.append(episode_returns)
        history.update_stats.append(stats)
    return agent, history


def evaluate_fleet_agent(
    env: FleetEnv,
    agent: PpoAgent,
    *,
    episodes: int,
    greedy: bool = True,
) -> np.ndarray:
    """Raw Eq. 12 episode returns per hub, shape ``(episodes, n_hubs)``."""
    if episodes <= 0:
        raise ModelError(f"episodes must be positive, got {episodes}")
    returns = np.zeros((episodes, env.n_hubs))
    for e in range(episodes):
        states = env.reset()
        done = False
        while not done:
            actions = (
                agent.greedy_actions(states)
                if greedy
                else agent.act_batch(states)[0]
            )
            states, _, done, info = env.step(actions)
            returns[e] += info["reward_raw"]
    return returns


def evaluate_scheduler(
    env: EctHubEnv,
    scheduler: Scheduler,
    *,
    episodes: int,
) -> np.ndarray:
    """Daily rewards for a rule-based scheduler on the same environment."""
    if episodes <= 0:
        raise ModelError(f"episodes must be positive, got {episodes}")
    days = env.config.episode_days
    rewards = np.zeros((episodes, days))
    action_map = {0: 0, 1: 1, -1: 2}
    for e in range(episodes):
        env.reset()
        scheduler.reset()
        done = False
        while not done:
            sbp = scheduler(env.simulation)
            _, _, done, _ = env.step(action_map[int(sbp)])
        daily = env.simulation.book.daily_rewards()
        rewards[e, : len(daily)] = daily
    return rewards
