"""``repro.rl`` — ECT-DRL: PPO battery scheduling plus baselines.

Implements §IV-B of the paper: the Eq. 24 state, the 3-action battery
environment (:mod:`.env`) and its batched fleet-scale counterpart
(:mod:`.fleet_env`, stepping N hubs per action batch over the vectorized
engine), the PPO learner with the Eq. 25 clipped surrogate (:mod:`.ppo`)
including hub-axis batch parallelism, rule-based scheduler baselines
(:mod:`.schedulers`), and a clairvoyant DP oracle used by the ablations
(:mod:`.dp_oracle`).
"""

from .buffer import FleetRolloutBuffer, RolloutBuffer
from .dp_oracle import OracleResult, optimal_schedule
from .env import ACTION_TO_SBP, N_ACTIONS, EctHubEnv, EnvConfig
from .fleet_env import FEEDER_OBS_CLIP, FleetEnv
from .networks import ActorCritic
from .ppo import PpoAgent, PpoConfig, UpdateStats
from .schedulers import (
    GreedyRenewableScheduler,
    IdleScheduler,
    RandomScheduler,
    RuleBasedScheduler,
    Scheduler,
)
from .spaces import Box, Discrete
from .training import (
    FleetTrainingHistory,
    TrainingHistory,
    evaluate_agent,
    evaluate_fleet_agent,
    evaluate_scheduler,
    train_fleet_ppo,
    train_ppo,
)

__all__ = [
    "ACTION_TO_SBP",
    "ActorCritic",
    "Box",
    "Discrete",
    "EctHubEnv",
    "EnvConfig",
    "FEEDER_OBS_CLIP",
    "FleetEnv",
    "FleetRolloutBuffer",
    "FleetTrainingHistory",
    "GreedyRenewableScheduler",
    "IdleScheduler",
    "N_ACTIONS",
    "OracleResult",
    "PpoAgent",
    "PpoConfig",
    "RandomScheduler",
    "RolloutBuffer",
    "RuleBasedScheduler",
    "Scheduler",
    "TrainingHistory",
    "UpdateStats",
    "evaluate_agent",
    "evaluate_fleet_agent",
    "evaluate_scheduler",
    "optimal_schedule",
    "train_fleet_ppo",
    "train_ppo",
]
