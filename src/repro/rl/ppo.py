"""Proximal Policy Optimization — the ECT-DRL learner (Eqs. 25–28).

Implements the clipped surrogate objective

``L_clip = Ê[ min(r_t Â_t, clip(r_t, 1−ε, 1+ε) Â_t) ]``           (Eq. 25)

with ``r_t`` the new/old policy probability ratio (Eq. 26), plus the value
MSE term with coefficient ``c`` (Eq. 27). Parameters follow the paper's
§V-A training setup (Adam, lr 1e-3, weight decay 1e-4, batch 64).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..errors import ModelError
from .buffer import RolloutBuffer
from .networks import ActorCritic


@dataclass(frozen=True)
class PpoConfig:
    """PPO hyperparameters.

    ``clip_epsilon`` is Eq. 25's ε; ``value_coef`` is Eq. 27's ``c``;
    ``entropy_coef`` adds the standard exploration bonus (0 disables it).
    """

    learning_rate: float = 1e-3
    weight_decay: float = 1e-4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_epsilon: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    update_epochs: int = 4
    batch_size: int = 64
    max_grad_norm: float = 0.5
    hidden_sizes: tuple[int, ...] = (64, 64)

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ModelError("learning_rate must be positive")
        if not 0.0 < self.clip_epsilon < 1.0:
            raise ModelError(f"clip_epsilon must be in (0, 1), got {self.clip_epsilon}")
        if not 0.0 < self.gamma <= 1.0 or not 0.0 <= self.gae_lambda <= 1.0:
            raise ModelError("invalid gamma / gae_lambda")
        if self.value_coef < 0 or self.entropy_coef < 0:
            raise ModelError("coefficients must be non-negative")
        if self.update_epochs <= 0 or self.batch_size <= 0:
            raise ModelError("update_epochs and batch_size must be positive")
        if self.max_grad_norm <= 0:
            raise ModelError("max_grad_norm must be positive")


@dataclass
class UpdateStats:
    """Diagnostics from one PPO update.

    ``approx_kl`` is the standard first-order estimator
    ``E[log π_old − log π_new]`` averaged over minibatches — the drift
    diagnostic telemetry reports per update (≈0 means the clipped
    objective barely moved the policy).
    """

    policy_loss: float
    value_loss: float
    entropy: float
    clip_fraction: float
    approx_kl: float = 0.0


class PpoAgent:
    """The ECT-DRL agent: an actor-critic trained with PPO."""

    def __init__(
        self,
        state_dim: int,
        n_actions: int,
        config: PpoConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or PpoConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.network = ActorCritic(
            state_dim, n_actions, self._rng, hidden_sizes=self.config.hidden_sizes
        )
        self._optimizer = nn.Adam(
            self.network.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )

    # ------------------------------------------------------------------ #
    # Acting                                                               #
    # ------------------------------------------------------------------ #

    def act(self, state: np.ndarray) -> tuple[int, float, float]:
        """Sample (action, log_prob, value) from the current policy."""
        return self.network.act(state, self._rng)

    def greedy_action(self, state: np.ndarray) -> int:
        """Deterministic action for evaluation."""
        return self.network.greedy_action(state)

    def act_batch(
        self, states: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample ``(actions, log_probs, values)`` for a batch of states.

        One forward pass serves the whole fleet — the hub axis is batch
        parallelism through the shared policy.
        """
        return self.network.act_batch(states, self._rng)

    def greedy_actions(self, states: np.ndarray) -> np.ndarray:
        """Deterministic actions for a batch of states (evaluation)."""
        return self.network.greedy_actions(states)

    def value(self, state: np.ndarray) -> float:
        """Critic value of a state (for bootstrap at rollout truncation)."""
        _, value = self.network.forward(state)
        return float(value.numpy()[0, 0])

    # ------------------------------------------------------------------ #
    # Learning (Eqs. 25–28)                                                #
    # ------------------------------------------------------------------ #

    def update(
        self,
        buffer: RolloutBuffer,
        *,
        last_value: float | np.ndarray = 0.0,
    ) -> UpdateStats:
        """One PPO update over a filled rollout buffer.

        ``buffer`` is a :class:`RolloutBuffer` or a
        :class:`~repro.rl.buffer.FleetRolloutBuffer` — both expose the
        same advantage/minibatch interface; for the fleet buffer
        ``last_value`` may be an ``(n_envs,)`` per-hub bootstrap array.
        """
        cfg = self.config
        buffer.compute_advantages(
            last_value, gamma=cfg.gamma, gae_lambda=cfg.gae_lambda
        )
        total_policy, total_value, total_entropy, total_clipped = 0.0, 0.0, 0.0, 0.0
        total_kl = 0.0
        n_batches = 0

        for _ in range(cfg.update_epochs):
            for idx in buffer.minibatches(cfg.batch_size, self._rng):
                states = buffer.states[idx]
                actions = buffer.actions[idx]
                old_log_probs = buffer.log_probs[idx]
                advantages = buffer.advantages[idx]
                returns = buffer.returns[idx]

                new_log_probs, values, entropy = self.network.evaluate_actions(
                    states, actions
                )
                ratio = (new_log_probs - nn.Tensor(old_log_probs)).exp()
                adv = nn.Tensor(advantages)
                unclipped = ratio * adv
                clipped = ratio.clip(1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon) * adv
                policy_loss = -unclipped.minimum(clipped).mean()

                value_loss = nn.mse_loss(values, nn.Tensor(returns))
                loss = (
                    policy_loss
                    + cfg.value_coef * value_loss
                    - cfg.entropy_coef * entropy
                )

                self._optimizer.zero_grad()
                loss.backward()
                nn.clip_grad_norm(self.network.parameters(), cfg.max_grad_norm)
                self._optimizer.step()

                ratios = ratio.numpy()
                total_clipped += float(
                    (np.abs(ratios - 1.0) > cfg.clip_epsilon).mean()
                )
                # E[log π_old − log π_new] = E[−log r]; ratios are
                # exp(new − old) so positive by construction.
                total_kl += float(-np.log(ratios).mean())
                total_policy += policy_loss.item()
                total_value += value_loss.item()
                total_entropy += entropy.item()
                n_batches += 1

        buffer.clear()
        denom = max(n_batches, 1)
        return UpdateStats(
            policy_loss=total_policy / denom,
            value_loss=total_value / denom,
            entropy=total_entropy / denom,
            clip_fraction=total_clipped / denom,
            approx_kl=total_kl / denom,
        )
