"""``repro.spec`` — declarative, serializable scenario descriptions.

Scenarios are *data*: a :class:`ScenarioSpec` tree of frozen dataclasses
(fleet composition with per-group overrides, feeder topology, scheduler,
blackout process, run shape) that round-trips through JSON bit-for-bit
and compiles deterministically into the scalar or batched engines.

Layout
------
``scenario``
    The spec tree (``ScenarioSpec`` and its parts) plus dotted-path
    overrides (``apply_overrides`` — the ``--set key=value`` language).
``compiler``
    ``build(spec)`` → :class:`~repro.spec.compiler.CompiledScenario`
    (scenarios, batched engine, scheduler) and the legacy flag shim.
``presets``
    Named curated specs (``paper-default``, ``congested-city``, …).
``sweep``
    ``SweepSpec``: base spec × parameter grid → runnable jobs.

The user-facing facade lives in :mod:`repro.api`.
"""

from .compiler import (
    CompiledScenario,
    FleetAssembly,
    build,
    build_fleet_env,
    make_scheduler,
    ppo_config_from_spec,
    spec_from_fleet_flags,
    spec_from_price_flags,
    spec_from_train_fleet_flags,
)
from .presets import PRESETS, available_presets, get_preset, verify_roundtrips
from .scenario import (
    PRICING_POLICIES,
    BlackoutSpec,
    FleetSpec,
    GridSpec,
    HubGroupSpec,
    PricingSpec,
    RlSpec,
    RunSpec,
    ScenarioSpec,
    SchedulerSpec,
    apply_overrides,
    parse_assignments,
    parse_override_value,
)
from .sweep import SweepJob, SweepSpec

__all__ = [
    "PRESETS",
    "PRICING_POLICIES",
    "BlackoutSpec",
    "CompiledScenario",
    "FleetAssembly",
    "FleetSpec",
    "GridSpec",
    "HubGroupSpec",
    "PricingSpec",
    "RlSpec",
    "RunSpec",
    "ScenarioSpec",
    "SchedulerSpec",
    "SweepJob",
    "SweepSpec",
    "apply_overrides",
    "available_presets",
    "build",
    "build_fleet_env",
    "get_preset",
    "make_scheduler",
    "parse_assignments",
    "parse_override_value",
    "ppo_config_from_spec",
    "spec_from_fleet_flags",
    "spec_from_price_flags",
    "spec_from_train_fleet_flags",
    "verify_roundtrips",
]
