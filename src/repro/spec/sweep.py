"""Sweeps: one base spec × a parameter grid ⇒ runnable jobs.

A :class:`SweepSpec` is itself serializable data — a base
:class:`~repro.spec.scenario.ScenarioSpec` plus a mapping of dotted
override paths to value lists. :meth:`SweepSpec.jobs` expands the
cartesian product into concrete :class:`SweepJob` entries (later keys
vary fastest, like nested loops in declaration order), each carrying the
fully-overridden spec ready for ``repro.api.run``. This is the engine
behind ``ect-hub sweep`` and the refactored ``fleet-grid`` congestion
study.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

from .. import config
from ..errors import ConfigError
from .scenario import ScenarioSpec, apply_overrides


@dataclass(frozen=True)
class SweepJob:
    """One expanded point of a sweep grid."""

    index: int
    overrides: dict[str, Any]
    spec: ScenarioSpec

    def label(self) -> str:
        """Compact ``key=value`` summary of this point."""
        return ", ".join(f"{key}={value}" for key, value in self.overrides.items())


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario and the parameter grid to expand over it.

    ``parameters`` maps dotted override paths to the values each takes;
    declaration order defines the loop nesting. Every path is validated
    against the base spec at construction, so a typo'd key fails here —
    not after half the grid has run.
    """

    base: ScenarioSpec = field(default_factory=ScenarioSpec)
    parameters: dict[str, tuple[Any, ...]] = field(default_factory=dict)
    name: str = "sweep"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("sweep name must be a non-empty string")
        if not isinstance(self.parameters, Mapping):
            raise ConfigError("sweep parameters must map dotted keys to values")
        normalized: dict[str, tuple[Any, ...]] = {}
        for key, values in self.parameters.items():
            if not isinstance(values, (list, tuple)):
                raise ConfigError(
                    f"sweep parameter {key!r} must list its values, got "
                    f"{type(values).__name__}"
                )
            if len(values) == 0:
                raise ConfigError(f"sweep parameter {key!r} has no values")
            normalized[key] = tuple(values)
            # Validate the path (and the first value) against the base now.
            apply_overrides(self.base, {key: normalized[key][0]})
        object.__setattr__(self, "parameters", normalized)

    @property
    def n_jobs(self) -> int:
        """Grid size (1 when the parameter map is empty: just the base)."""
        total = 1
        for values in self.parameters.values():
            total *= len(values)
        return total

    def jobs(self) -> list[SweepJob]:
        """Expand the grid into fully-overridden, runnable jobs."""
        keys = list(self.parameters)
        jobs: list[SweepJob] = []
        for index, combo in enumerate(
            itertools.product(*(self.parameters[key] for key in keys))
        ):
            overrides = dict(zip(keys, combo))
            jobs.append(
                SweepJob(
                    index=index,
                    overrides=overrides,
                    spec=apply_overrides(self.base, overrides),
                )
            )
        return jobs

    # ------------------------------------------------------------------ #
    # Serialization                                                        #
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """Plain dict/list/scalar form (JSON-safe)."""
        return config.to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SweepSpec":
        """Rebuild a sweep; unknown keys raise :class:`ConfigError`."""
        return config.from_dict(cls, payload)

    def save(self, path) -> None:
        """Write the sweep as JSON."""
        config.save_json(self, path)

    @classmethod
    def load(cls, path) -> "SweepSpec":
        """Load a sweep JSON file written by :meth:`save` (or by hand)."""
        return config.load_json(cls, path)
