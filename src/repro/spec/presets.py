"""Named scenario presets: curated starting points for ``--preset``.

Each preset is one frozen :class:`~repro.spec.scenario.ScenarioSpec` —
dump it (``ect-hub presets --show NAME``), tweak leaves with ``--set``,
or use it as a sweep base. Presets must survive
``to_dict → json → from_dict`` bit-identically; :func:`verify_roundtrips`
is the smoke check CI runs on every push.
"""

from __future__ import annotations

import json

from ..energy.battery import BatteryConfig
from ..errors import ConfigError
from .scenario import (
    BlackoutSpec,
    FleetSpec,
    GridSpec,
    HubGroupSpec,
    RunSpec,
    ScenarioSpec,
    SchedulerSpec,
)

#: A diurnal feeder derate: full capacity off-peak, tightened through the
#: evening ramp (18:00–24:00) when both BS traffic and EV charging peak.
_EVENING_DERATE = tuple([1.0] * 18 + [0.65] * 6)


PRESETS: dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="paper-default",
            description=(
                "the paper's Sec. V shape: 12 campus hubs, 30 days, "
                "rule-based scheduling, no feeder coupling"
            ),
            fleet=FleetSpec(n_hubs=12),
            grid=GridSpec(),
            scheduler=SchedulerSpec(name="rule-based"),
            blackout=BlackoutSpec(outage_probability_per_hour=0.0),
            run=RunSpec(days=30),
        ),
        ScenarioSpec(
            name="fleet-default",
            description=(
                "the ect-hub fleet flag defaults: 24 hubs x 14 days with "
                "rare blackouts (the PR-1 network-scale study)"
            ),
            fleet=FleetSpec(n_hubs=24),
            grid=GridSpec(),
            scheduler=SchedulerSpec(name="rule-based"),
            blackout=BlackoutSpec(outage_probability_per_hour=0.001),
            run=RunSpec(days=14),
        ),
        ScenarioSpec(
            name="congested-city",
            description=(
                "48 dense urban hubs on 4 feeders whose capacity derates "
                "through the evening peak; unserved energy charged at VoLL"
            ),
            fleet=FleetSpec(n_hubs=48, urban_fraction=1.0),
            grid=GridSpec(
                n_feeders=4,
                feeder_capacity_kw=700.0,
                capacity_profile=_EVENING_DERATE,
                allocation="proportional",
            ),
            scheduler=SchedulerSpec(name="rule-based"),
            blackout=BlackoutSpec(outage_probability_per_hour=0.001),
            run=RunSpec(days=7, voll_per_kwh=2.0),
        ),
        ScenarioSpec(
            name="blackout-prone",
            description=(
                "a fragile grid: 1% hourly outage probability, 6 h recovery, "
                "unserved energy charged at VoLL"
            ),
            fleet=FleetSpec(n_hubs=24),
            grid=GridSpec(),
            scheduler=SchedulerSpec(name="rule-based"),
            blackout=BlackoutSpec(
                outage_probability_per_hour=0.01, recovery_time_h=6
            ),
            run=RunSpec(days=14, voll_per_kwh=2.0),
        ),
        ScenarioSpec(
            name="heterogeneous-batteries",
            description=(
                "three battery tiers across one fleet: half-size packs, the "
                "default sizing, and double-size packs plus one premium group"
            ),
            fleet=FleetSpec(
                groups=(
                    HubGroupSpec(count=8, battery_scale=0.5),
                    HubGroupSpec(count=8),
                    HubGroupSpec(count=6, battery_scale=2.0),
                    HubGroupSpec(
                        count=2,
                        battery=BatteryConfig(
                            capacity_kwh=400.0,
                            charge_rate_kw=100.0,
                            discharge_rate_kw=100.0,
                            charge_efficiency=0.97,
                            discharge_efficiency=0.97,
                        ),
                    ),
                )
            ),
            grid=GridSpec(),
            scheduler=SchedulerSpec(name="rule-based"),
            blackout=BlackoutSpec(outage_probability_per_hour=0.001),
            run=RunSpec(days=14),
        ),
        ScenarioSpec(
            name="rural-microgrid",
            description=(
                "12 rural PV+WT hubs behind 2 weak feeders, greedy-renewable "
                "scheduling, unserved energy charged at VoLL"
            ),
            fleet=FleetSpec(n_hubs=12, urban_fraction=0.0),
            grid=GridSpec(
                n_feeders=2, feeder_capacity_kw=250.0, allocation="priority"
            ),
            scheduler=SchedulerSpec(name="greedy-renewable"),
            blackout=BlackoutSpec(
                outage_probability_per_hour=0.005, recovery_time_h=6
            ),
            run=RunSpec(days=14, voll_per_kwh=2.0),
        ),
    )
}


def available_presets() -> list[str]:
    """All preset names."""
    return sorted(PRESETS)


def get_preset(name: str) -> ScenarioSpec:
    """Look up one preset by name."""
    if name not in PRESETS:
        raise ConfigError(
            f"unknown preset {name!r}; available: {', '.join(available_presets())}"
        )
    return PRESETS[name]


def verify_roundtrips(*, build_specs: bool = False) -> list[str]:
    """Assert every preset survives ``to_dict → json → from_dict`` intact.

    With ``build_specs=True`` each round-tripped preset is also compiled
    (sites, traces, feeders, engine) — the CI smoke check. Returns the
    verified preset names; raises :class:`ConfigError` on the first
    preset that fails to round-trip.
    """
    verified: list[str] = []
    for name in available_presets():
        spec = PRESETS[name]
        rebuilt = ScenarioSpec.from_json(json.dumps(spec.to_dict()))
        if rebuilt != spec:
            raise ConfigError(f"preset {name!r} did not round-trip through JSON")
        if build_specs:
            from .compiler import build

            build(rebuilt)
        verified.append(name)
    return verified
