"""Compile a spec's ``pricing`` section into per-hub discount schedules.

The fleet-scale port of the paper's ECT-Price loop (§IV-A, Tables II/III):
train the spec'd discount policy on a simulated historical charging log,
score every (hub, slot) item, select the budgeted top slots per hub, and
hand :func:`~repro.spec.compiler.build` a ``(n_hubs, horizon)`` discount
plane. The compiled engine then sees both sides of the trade — the
re-realised occupancy (incentive strata respond to the discount) and the
discounted charging-price plane (``SlotPlanes.srtp_kwh``).

Feeder-aware pricing closes the loop the paper only gestures at: the
zero-discount baseline's :meth:`~repro.fleet.grid.FeederGroup.
available_import_kw` headroom becomes a per-(hub, slot) congestion penalty
subtracted from every policy's score, so discounts steer away from slots
where the feeder could not carry the extra charging load anyway.

Determinism contract: all randomness flows through name-keyed
:class:`~repro.rng.RngFactory` streams (``charging/log`` for the training
history, ``pricing/ours`` / ``pricing/{OR,IPS,DR}`` for model init) that
are disjoint from the engine's ``fleet/*`` and ``hub/*`` streams, so a
priced run's traces/strata/outages are bit-identical to the unpriced
baseline's.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

import numpy as np

from ..causal import (
    EctPriceConfig,
    EctPriceModel,
    EctPricePolicy,
    EveningHeuristicPolicy,
    NcfConfig,
    OraclePolicy,
    UpliftPolicy,
    dataset_from_log,
    discount_schedule_for_hub,
    make_baseline,
    time_ids_for_slots,
)
from ..errors import ConfigError
from ..rng import RngFactory
from .compiler import FleetAssembly, _scaled

#: Constituent NCF models per baseline method. This deliberately mirrors
#: ``repro.experiments.pricing_common.MODELS_PER_METHOD`` (keep them in
#: sync): the equal-total-compute protocol must hold here too, and the
#: spec layer does not import the experiments package.
MODELS_PER_METHOD = {"OR": 2, "IPS": 3, "DR": 4}


@dataclass
class CompiledPricing:
    """One compiled pricing section: the schedule plus its provenance."""

    policy: str
    #: Per-hub discount fractions, ``(n_hubs, horizon)`` float.
    discount: np.ndarray
    #: Items in the training log (0 for the untrained oracle/evening).
    n_train_items: int
    #: Hub-slots receiving a discount.
    discounted_hub_slots: int
    #: Mean discount fraction over the whole plane.
    mean_discount: float
    #: Whether the feeder congestion penalty shaped the schedule.
    feeder_aware: bool
    #: The congestion signal used (``None`` when not feeder-aware).
    congestion: np.ndarray | None


def _span(telemetry, name: str, **fields):
    return (
        contextlib.nullcontext()
        if telemetry is None
        else telemetry.span(name, **fields)
    )


def congestion_signal(assembly: FleetAssembly) -> np.ndarray:
    """Per-(hub, slot) congestion in [0, 1] under the zero-discount baseline.

    1 means the hub's fair-share feeder headroom could not carry even one
    full-rate charging session; 0 means unconstrained. Computed from the
    same :meth:`~repro.fleet.grid.FeederGroup.available_import_kw` signal
    the congestion-aware schedulers and the RL observation feature use.
    """
    feeders = assembly.feeders
    shape = (assembly.n_hubs, assembly.horizon)
    if feeders.is_unlimited:
        return np.zeros(shape)

    from ..fleet.builder import fleet_simulation_from_scenarios

    run = assembly.spec.run
    simulation = fleet_simulation_from_scenarios(
        assembly.scenarios,
        assembly.realize_occupancy(None),
        np.zeros(assembly.horizon),
        outage=assembly.outage,
        initial_soc_fraction=run.initial_soc_fraction,
        feeders=feeders,
        voll_per_kwh=run.voll_per_kwh,
        backend=run.backend,
    )
    base = simulation.planes.base_import_kw
    available = np.empty(shape)
    for t in range(assembly.horizon):
        available[:, t] = feeders.available_import_kw(base[:, t], t)
    rate = np.maximum(simulation.params.cs_rate_kw, 1e-9)[:, None]
    # Unlimited slots give available=inf -> 1 - inf = -inf -> clipped to 0.
    return np.clip(1.0 - available / rate, 0.0, 1.0)


def compile_pricing(
    assembly: FleetAssembly, *, telemetry=None
) -> CompiledPricing:
    """Train the spec'd policy and price every hub of the assembly.

    The protocol mirrors the scalar Table III path
    (:mod:`repro.experiments.scheduling_common`): one policy trained on the
    behaviour model's historical log prices all hubs, each hub's slots are
    scored through :func:`~repro.causal.policy.discount_schedule_for_hub`
    under the spec's discount level and budget fraction. ``train_days`` and
    ``epochs`` are run-scaled like the fleet itself.
    """
    spec = assembly.spec
    pricing = spec.pricing
    if pricing.policy == "none":
        raise ConfigError(
            "compile_pricing needs a pricing policy other than 'none'"
        )
    scale = spec.run.scale
    factory = RngFactory(seed=spec.run.seed)
    time_ids = time_ids_for_slots(
        assembly.horizon, calendar=assembly.behavior.calendar
    )

    feeder_aware = pricing.feeder_aware and not assembly.feeders.is_unlimited
    congestion: np.ndarray | None = None
    offsets: np.ndarray | None = None
    if feeder_aware:
        with _span(telemetry, "pricing-congestion", hubs=assembly.n_hubs):
            congestion = congestion_signal(assembly)
        offsets = pricing.congestion_weight * congestion

    n_train_items = 0
    per_hub_policies: list | None = None
    policy = None
    if pricing.policy == "oracle":
        # Clairvoyant upper bound: each hub's policy reads its own realised
        # strata directly — no training, no log.
        strata = assembly.realize_strata()
        per_hub_policies = [
            OraclePolicy(strata[index]) for index in range(assembly.n_hubs)
        ]
    elif pricing.policy == "evening":
        policy = EveningHeuristicPolicy()
    else:
        train_days = _scaled(pricing.train_days, scale, minimum=7)
        epochs = _scaled(pricing.epochs, scale, minimum=2)
        with _span(
            telemetry,
            "pricing-train",
            policy=pricing.policy,
            train_days=train_days,
            epochs=epochs,
        ):
            log = assembly.behavior.simulate_log(train_days)
            train = dataset_from_log(log, n_stations=assembly.n_hubs)
            n_train_items = len(train)
            if pricing.policy == "ours":
                model = EctPriceModel(
                    assembly.n_hubs,
                    train.n_time_ids,
                    EctPriceConfig(
                        epochs=epochs,
                        batch_size=pricing.batch_size,
                        learning_rate=pricing.learning_rate,
                    ),
                    factory.stream("pricing/ours"),
                )
                model.fit(train)
                policy = EctPricePolicy(
                    model,
                    always_avoidance_threshold=(
                        pricing.always_avoidance_threshold
                    ),
                )
            else:
                name = pricing.policy.upper()
                model = make_baseline(
                    name,
                    assembly.n_hubs,
                    train.n_time_ids,
                    NcfConfig(
                        epochs=max(epochs // MODELS_PER_METHOD[name], 1),
                        batch_size=pricing.batch_size,
                        learning_rate=pricing.learning_rate,
                    ),
                    factory.stream(f"pricing/{name}"),
                )
                model.fit(train)
                policy = UpliftPolicy(model)

    with _span(telemetry, "pricing-schedule", hubs=assembly.n_hubs):
        rows = []
        for index, scenario in enumerate(assembly.scenarios):
            hub_policy = (
                per_hub_policies[index] if per_hub_policies is not None else policy
            )
            rows.append(
                discount_schedule_for_hub(
                    hub_policy,
                    scenario.site.hub_id,
                    time_ids,
                    discount_level=pricing.discount_level,
                    budget_fraction=pricing.budget_fraction,
                    score_offset=None if offsets is None else offsets[index],
                )
            )
        discount = np.stack(rows)

    discounted_hub_slots = int((discount > 0.0).sum())
    if telemetry is not None:
        telemetry.metrics.inc("pricing.discounted_hub_slots", discounted_hub_slots)
        telemetry.metrics.inc("pricing.train_items", n_train_items)
    return CompiledPricing(
        policy=pricing.policy,
        discount=discount,
        n_train_items=n_train_items,
        discounted_hub_slots=discounted_hub_slots,
        mean_discount=float(discount.mean()),
        feeder_aware=feeder_aware,
        congestion=congestion,
    )
