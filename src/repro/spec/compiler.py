"""Compile a :class:`~repro.spec.scenario.ScenarioSpec` into engines.

One deterministic pipeline from data to simulation: resolve run-scale,
generate the site catalog, apply group overrides, build per-hub scenarios
(traces + Eq. 6-sized batteries), realise charging occupancy from the
latent strata, sample blackouts, wire the feeder topology, and assemble
the batched :class:`~repro.fleet.simulation.FleetSimulation` plus the
spec'd scheduler. The default spec compiles to exactly the fleet the old
imperative ``build_default_fleet`` produced — bit-for-bit, which is what
keeps the PR-1/PR-2 equivalence and determinism suites binding on this
layer too.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass

import numpy as np

from ..config import replace
from ..energy.grid import BlackoutConfig, BlackoutModel
from ..errors import ConfigError
from ..fleet.grid import FeederGroup
from ..fleet.schedulers import FleetScheduler, make_fleet_scheduler
from ..fleet.simulation import FleetSimulation
from ..hub.scenario import (
    HubScenario,
    ScenarioConfig,
    build_scenario,
    resolve_occupancy,
)
from ..rng import RngFactory
from ..synth.catalog import HubSite, default_fleet
from ..synth.charging import ChargingBehaviorModel, ChargingConfig
from ..units import HOURS_PER_DAY
from .scenario import (
    DEFAULT_DAYS,
    DEFAULT_N_HUBS,
    BlackoutSpec,
    FleetSpec,
    GridSpec,
    HubGroupSpec,
    PricingSpec,
    RlSpec,
    RunSpec,
    ScenarioSpec,
    SchedulerSpec,
)

#: Blackout intensity of the ``ect-hub fleet`` flag defaults.
DEFAULT_OUTAGE_PROBABILITY = 0.001

#: ``ect-hub train-fleet`` flag defaults (scale-1 values).
DEFAULT_TRAIN_FLEET_HUBS = 6
DEFAULT_TRAIN_FLEET_DAYS = 10

#: ``ect-hub price`` flag defaults (scale-1 values): the Table III
#: reproduction at city scale — 100 hubs, one week of pricing.
DEFAULT_PRICE_HUBS = 100
DEFAULT_PRICE_DAYS = 7
DEFAULT_PRICE_TRAIN_DAYS = 30


def _scaled(value: int, scale: float, *, minimum: int = 1) -> int:
    """Run-scale an integer knob (same rounding as experiments.base.scaled)."""
    return max(int(round(value * scale)), minimum)


@dataclass
class CompiledScenario:
    """A spec resolved into runnable engines.

    ``scenarios`` keeps the per-hub scenario objects for inspection and
    scalar-engine cross-checks; ``simulation`` is the batched engine with
    feeders, blackouts, and the VoLL penalty wired in; ``scheduler`` is
    the spec'd policy. :meth:`execute` runs the horizon and returns the
    completed :class:`~repro.fleet.costs.FleetCostBook`.
    """

    spec: ScenarioSpec
    scenarios: list[HubScenario]
    simulation: FleetSimulation
    scheduler: FleetScheduler
    n_hubs: int
    days: int
    #: Set when the spec's ``pricing`` section compiled a discount
    #: schedule (:class:`~repro.spec.pricing.CompiledPricing`).
    pricing: object | None = None

    def execute(self):
        """Run the remaining horizon under the spec'd scheduler."""
        return self.simulation.run(self.scheduler)


def _group_table(fleet: FleetSpec, scale: float) -> tuple[int, list[HubGroupSpec | None]]:
    """Resolve run-scale and expand groups into a per-hub override row."""
    if fleet.groups:
        per_hub: list[HubGroupSpec | None] = []
        for group in fleet.groups:
            per_hub.extend([group] * _scaled(group.count, scale, minimum=1))
        return len(per_hub), per_hub
    n_hubs = _scaled(fleet.resolved_n_hubs, scale, minimum=1)
    return n_hubs, [None] * n_hubs


def _apply_site_overrides(
    site: HubSite, group: HubGroupSpec | None
) -> HubSite:
    if group is None:
        return site
    changes = {
        name: getattr(group, name)
        for name in ("kind", "pv_kw", "wt_kw", "traffic_scale", "n_base_stations")
        if getattr(group, name) is not None
    }
    return dataclasses.replace(site, **changes) if changes else site


def _hub_config_for(
    base: ScenarioConfig, group: HubGroupSpec | None
) -> ScenarioConfig:
    """Per-hub ScenarioConfig once group battery/cost overrides are applied."""
    if group is None:
        return base
    config = base
    if group.battery is not None:
        config = replace(config, battery=group.battery)
    elif group.battery_scale is not None:
        scale = group.battery_scale
        battery = config.battery
        config = replace(
            config,
            battery=replace(
                battery,
                capacity_kwh=battery.capacity_kwh * scale,
                charge_rate_kw=battery.charge_rate_kw * scale,
                discharge_rate_kw=battery.discharge_rate_kw * scale,
            ),
        )
    if group.c_bp_per_slot is not None:
        config = replace(config, c_bp_per_slot=group.c_bp_per_slot)
    return config


def _build_feeders(
    grid: GridSpec,
    per_hub: list[HubGroupSpec | None],
    n_hubs: int,
    horizon: int,
) -> FeederGroup:
    if grid.n_feeders > n_hubs:
        raise ConfigError(
            f"{grid.n_feeders} feeders for {n_hubs} hubs leaves feeders empty"
        )
    assignment = np.arange(n_hubs) % grid.n_feeders
    for index, group in enumerate(per_hub):
        if group is not None and group.feeder is not None:
            if group.feeder >= grid.n_feeders:
                raise ConfigError(
                    f"group feeder {group.feeder} out of range for "
                    f"{grid.n_feeders} feeders"
                )
            assignment[index] = group.feeder
    if grid.feeder_capacity_kw is None:
        capacity = np.full(grid.n_feeders, np.inf)
    elif grid.capacity_profile is not None:
        pattern = np.asarray(grid.capacity_profile, dtype=float)
        slots = grid.feeder_capacity_kw * pattern[np.arange(horizon) % len(pattern)]
        capacity = np.broadcast_to(slots, (grid.n_feeders, horizon)).copy()
    else:
        capacity = np.full(grid.n_feeders, float(grid.feeder_capacity_kw))
    return FeederGroup(
        assignment=assignment,
        import_capacity_kw=capacity,
        policy=grid.allocation,
    )


def make_scheduler(
    scheduler: SchedulerSpec,
    *,
    n_hubs: int,
    rng_factory: RngFactory,
    hub_ids=None,
) -> FleetScheduler:
    """Instantiate the spec'd scheduler (quantiles None ⇒ class defaults).

    ``hub_ids`` carries global hub indices into the random scheduler's
    per-hub stream names — what keeps a sharded run's random actions
    bit-identical to the unsharded fleet's.
    """
    return make_fleet_scheduler(
        scheduler.name,
        n_hubs=n_hubs,
        rng_factory=rng_factory,
        congestion_aware=scheduler.congestion_aware,
        cheap_quantile=scheduler.cheap_quantile,
        expensive_quantile=scheduler.expensive_quantile,
        hub_ids=hub_ids,
    )


@dataclass
class FleetAssembly:
    """The spec-derived fleet pieces every compilation target shares.

    :func:`build` layers the occupancy realisation, batched engine, and
    scheduler on top; :func:`build_fleet_env` consumes the assembly
    directly (the RL environment re-realises occupancy per episode, so
    the full-horizon realisation and engine would be dead work there).
    All randomness is drawn from name-keyed :class:`RngFactory` streams,
    so both targets see identical scenarios/outages for one spec.

    The latent charging strata are realised lazily (:meth:`realize_strata`)
    and cached: the strata draw does not depend on the discount schedule,
    so :meth:`realize_occupancy` can resolve the *same* latent demand
    against any per-hub ``(n_hubs, horizon)`` discount plane in one
    vectorized pass — the pricing loop's injection seam.
    """

    spec: ScenarioSpec
    scenarios: list[HubScenario]
    behavior: ChargingBehaviorModel
    outage: np.ndarray | None
    feeders: "FeederGroup"
    n_hubs: int
    days: int
    horizon: int
    _strata: np.ndarray | None = dataclasses.field(
        default=None, init=False, repr=False
    )

    def realize_strata(self) -> np.ndarray:
        """Latent strata per (hub, slot), cached — ``(n_hubs, horizon)`` int.

        Streams are name-keyed per hub (``fleet/occupancy/{hub_id}``) from
        a fresh run-seed factory, so the rows here are bit-identical to
        what the pre-refactor inline loop in :func:`build` drew — and to
        what any later caller with the same spec draws.
        """
        if self._strata is None:
            factory = RngFactory(seed=self.spec.run.seed)
            slots = np.arange(self.horizon)
            self._strata = np.stack(
                [
                    self.behavior.sample_strata(
                        scenario.site.hub_id,
                        slots,
                        factory.stream(f"fleet/occupancy/{scenario.site.hub_id}"),
                    )
                    for scenario in self.scenarios
                ]
            )
        return self._strata

    def discount_rows(self, discount: np.ndarray | None) -> np.ndarray:
        """Normalize a discount schedule to ``(n_hubs, horizon)`` float.

        ``None`` means the zero-discount baseline; 1-D schedules broadcast
        across hubs; anything else must already be per-hub-per-slot.
        """
        shape = (self.n_hubs, self.horizon)
        if discount is None:
            return np.zeros(shape)
        rows = np.asarray(discount, dtype=float)
        if rows.ndim == 1:
            rows = np.broadcast_to(rows, shape).copy()
        if rows.shape != shape:
            raise ConfigError(
                f"discount schedule must have shape {shape} (or broadcast "
                f"from ({self.horizon},)), got {rows.shape}"
            )
        return rows

    @property
    def backend(self) -> str:
        """The array backend the spec asks engines built from this to use."""
        return self.spec.run.backend

    def realize_occupancy(self, discount: np.ndarray | None = None) -> np.ndarray:
        """Charging occupancy under a discount schedule — one vectorized pass.

        Incentive-stratum slots charge exactly when discounted; Always
        slots charge regardless; None slots never do. Because the cached
        strata are discount-independent, re-pricing the fleet re-realises
        all hubs at numpy speed without touching the rng.
        """
        return resolve_occupancy(
            self.realize_strata(), self.discount_rows(discount) > 0.0
        )


def assemble_sites(
    spec: ScenarioSpec,
) -> tuple[list[HubSite], list[HubGroupSpec | None], FeederGroup, int, int, int]:
    """Sites + feeder topology + resolved sizes, without hub traces.

    Returns ``(sites, per_hub, feeders, n_hubs, days, horizon)`` — the
    cheap, whole-fleet part of :func:`_assemble_fleet` (site jitter is a
    single sequential ``catalog/fleet`` stream, feeders a topology
    table). The sharded runner plans shards and reports hub kinds from
    this without compiling a single trace; every stream is name-keyed,
    so a worker re-deriving the same sites sees identical values.
    """
    if not isinstance(spec, ScenarioSpec):
        raise ConfigError(
            f"expected a ScenarioSpec, got {type(spec).__name__}"
        )
    run = spec.run
    n_hubs, per_hub = _group_table(spec.fleet, run.scale)
    days = _scaled(run.days, run.scale, minimum=1)
    horizon = days * HOURS_PER_DAY
    factory = RngFactory(seed=run.seed)
    sites = default_fleet(
        n_hubs, rng_factory=factory, urban_fraction=spec.fleet.urban_fraction
    )
    sites = [
        _apply_site_overrides(site, group)
        for site, group in zip(sites, per_hub)
    ]
    feeders = _build_feeders(spec.grid, per_hub, n_hubs, horizon)
    return sites, per_hub, feeders, n_hubs, days, horizon


def assembly_fingerprint(spec: ScenarioSpec) -> str:
    """Canonical JSON of exactly the spec sections the assembly consumes.

    Two specs with equal fingerprints produce bit-identical
    :class:`FleetAssembly` pieces (sites, traces, strata, outages,
    feeders) — scheduler/pricing/rl differences don't re-assemble. The
    sweep executor keys its per-worker assembly cache on this.
    """
    payload = spec.to_dict()
    run = payload["run"]
    # run.backend is deliberately excluded: the backend changes how the
    # engine computes, not what the assembly *is* (sites, traces, strata,
    # outages, feeders are identical across backends), so the sweep
    # executor's assembly cache stays shared across backend variants.
    return json.dumps(
        {
            "fleet": payload["fleet"],
            "grid": payload["grid"],
            "blackout": payload["blackout"],
            "run": {key: run[key] for key in ("days", "seed", "scale")},
        },
        sort_keys=True,
    )


def _assemble_fleet(
    spec: ScenarioSpec, *, hub_indices=None
) -> FleetAssembly:
    """Resolve a spec into sites, traces, blackout masks, and feeders.

    ``hub_indices`` (strictly increasing global hub indices) restricts
    the expensive per-hub work — trace synthesis, battery sizing, outage
    sampling — to a shard of the fleet while keeping every whole-fleet
    draw (site jitter, the charging behavior model's sequential streams)
    identical to the unsharded assembly. Because all per-hub randomness
    is name-keyed by global hub id, shard row *i* is bit-identical to
    row ``hub_indices[i]`` of the full assembly; the returned feeders
    are the matching :meth:`FeederGroup.subgroup`.
    """
    sites, per_hub, feeders, n_hubs, days, horizon = assemble_sites(spec)
    run = spec.run
    factory = RngFactory(seed=run.seed)
    fleet = spec.fleet
    charging = replace(
        fleet.charging if fleet.charging is not None else ChargingConfig(),
        n_stations=n_hubs,
    )
    base_config = ScenarioConfig(
        n_hours=horizon,
        recovery_time_h=spec.blackout.recovery_time_h,
        charging=charging,
        c_bp_per_slot=fleet.c_bp_per_slot,
        **{
            name: getattr(fleet, name)
            for name in ("battery", "base_station", "charging_station",
                         "weather", "traffic", "rtp")
            if getattr(fleet, name) is not None
        },
    )

    if hub_indices is None:
        selected = list(zip(sites, per_hub))
    else:
        idx = np.asarray(hub_indices)
        # subgroup() validates the index array (1-D, integer, strictly
        # increasing, in range) as it restricts the feeder topology.
        feeders, _ = feeders.subgroup(idx)
        selected = [(sites[i], per_hub[i]) for i in idx]
    scenarios = [
        build_scenario(site, _hub_config_for(base_config, group), factory)
        for site, group in selected
    ]

    # Strata scales index by *global* station id inside the behavior
    # model, so the table always spans the full fleet.
    strata_scales: np.ndarray | None = None
    if any(
        group is not None
        and (group.incentive_scale is not None or group.always_scale is not None)
        for group in per_hub
    ):
        strata_scales = np.ones((n_hubs, 2))
        for index, group in enumerate(per_hub):
            if group is None:
                continue
            if group.incentive_scale is not None:
                strata_scales[index, 0] = group.incentive_scale
            if group.always_scale is not None:
                strata_scales[index, 1] = group.always_scale

    outage: np.ndarray | None = None
    if spec.blackout.outage_probability_per_hour > 0.0:
        model = BlackoutModel(
            BlackoutConfig(
                outage_probability_per_hour=spec.blackout.outage_probability_per_hour,
                recovery_time_h=spec.blackout.recovery_time_h,
            )
        )
        outage = np.stack(
            [
                model.sample_outages(
                    horizon, factory.stream(f"fleet/outage/{scenario.site.hub_id}")
                )
                for scenario in scenarios
            ]
        )

    return FleetAssembly(
        spec=spec,
        scenarios=scenarios,
        behavior=ChargingBehaviorModel(
            base_config.charging, factory, strata_scales=strata_scales
        ),
        outage=outage,
        feeders=feeders,
        n_hubs=len(scenarios),
        days=days,
        horizon=horizon,
    )


def build(
    spec: ScenarioSpec,
    *,
    discount: np.ndarray | None = None,
    telemetry=None,
    assembly: FleetAssembly | None = None,
) -> CompiledScenario:
    """Compile a spec into scenarios + batched engine + scheduler.

    ``discount`` injects an explicit per-hub (or broadcast 1-D) discount
    schedule, bypassing the spec's ``pricing`` section; ``None`` compiles
    the section instead — the zero-discount baseline when the policy is
    ``"none"``, a trained policy's schedule otherwise. Either way the
    latent strata, traces, outages, and feeders are identical; only the
    occupancy/discount planes differ.

    ``assembly`` reuses a previously built :class:`FleetAssembly` instead
    of re-synthesising traces — the sweep workers' cache seam. The
    assembly must come from a spec with the same
    :func:`assembly_fingerprint` (scheduler/pricing/run-policy knobs may
    differ; fleet/grid/blackout and run days/seed/scale may not) or a
    :class:`ConfigError` is raised. The cached strata survive the rebind,
    so re-pricing sweeps skip both trace synthesis and the strata draw.
    """
    if assembly is None:
        assembly = _assemble_fleet(spec)
    elif assembly.spec is not spec:
        if assembly_fingerprint(assembly.spec) != assembly_fingerprint(spec):
            raise ConfigError(
                "cached assembly does not match this spec's "
                "fleet/grid/blackout/run sections"
            )
        rebound = dataclasses.replace(assembly, spec=spec)
        # dataclasses.replace re-inits, resetting the init=False strata
        # cache — carry it over; it's discount-independent by design.
        rebound._strata = assembly._strata
        assembly = rebound
    run = spec.run
    scenarios = assembly.scenarios

    pricing_compiled = None
    if discount is None and spec.pricing.policy != "none":
        # Local import: the pricing compiler pulls the causal/NCF stack,
        # which plain (unpriced) builds must not load.
        from .pricing import compile_pricing

        pricing_compiled = compile_pricing(assembly, telemetry=telemetry)
        discount = pricing_compiled.discount

    discount_rows = assembly.discount_rows(discount)
    occupied = assembly.realize_occupancy(discount_rows)

    from ..fleet.builder import fleet_simulation_from_scenarios

    simulation = fleet_simulation_from_scenarios(
        scenarios,
        occupied,
        discount_rows,
        outage=assembly.outage,
        initial_soc_fraction=run.initial_soc_fraction,
        feeders=assembly.feeders,
        voll_per_kwh=run.voll_per_kwh,
        storage=run.storage,
        backend=run.backend,
    )
    scheduler = make_scheduler(
        spec.scheduler, n_hubs=assembly.n_hubs, rng_factory=RngFactory(seed=run.seed)
    )
    return CompiledScenario(
        spec=spec,
        scenarios=scenarios,
        simulation=simulation,
        scheduler=scheduler,
        n_hubs=assembly.n_hubs,
        days=assembly.days,
        pricing=pricing_compiled,
    )


def build_fleet_env(spec: ScenarioSpec, *, rng=None):
    """Compile a spec's ``rl`` section into a batched fleet environment.

    Returns ``(assembly, env)``: the :class:`FleetAssembly` (scenarios,
    blackout masks, feeders — the same pieces :func:`build` compiles,
    minus the engine the RL path never uses) plus a
    :class:`~repro.rl.fleet_env.FleetEnv` over its scenarios. Episode
    length is clamped to the compiled horizon so run-scaled scenarios
    still train; discounts are zero (the fleet baseline — pricing-loop
    discounts are a spec follow-on). ``rng`` overrides the episode
    stream (default: the run seed's ``"rl/env"`` stream).
    """
    # Local import: repro.rl pulls the nn stack, which the spec layer
    # must not load for plain (non-RL) builds.
    from ..rl.env import EnvConfig
    from ..rl.fleet_env import FleetEnv

    assembly = _assemble_fleet(spec)
    rl = spec.rl
    config = EnvConfig(
        episode_days=min(rl.episode_days, assembly.days),
        window_h=rl.window_h,
        reward_scale=rl.reward_scale,
        random_initial_soc=rl.random_initial_soc,
    )
    feeders = assembly.feeders
    env = FleetEnv(
        assembly.scenarios,
        assembly.behavior,
        np.zeros(assembly.horizon),
        config=config,
        rng=rng if rng is not None else RngFactory(seed=spec.run.seed).stream("rl/env"),
        outage=assembly.outage,
        feeders=feeders,
        voll_per_kwh=spec.run.voll_per_kwh,
        feeder_aware=rl.feeder_aware and not feeders.is_unlimited,
        backend=spec.run.backend,
    )
    return assembly, env


def ppo_config_from_spec(spec: ScenarioSpec):
    """The :class:`~repro.rl.ppo.PpoConfig` a spec's ``rl`` section means."""
    from ..rl.ppo import PpoConfig

    rl = spec.rl
    return PpoConfig(
        learning_rate=rl.learning_rate,
        weight_decay=rl.weight_decay,
        gamma=rl.gamma,
        gae_lambda=rl.gae_lambda,
        clip_epsilon=rl.clip_epsilon,
        value_coef=rl.value_coef,
        entropy_coef=rl.entropy_coef,
        update_epochs=rl.update_epochs,
        batch_size=rl.batch_size,
        max_grad_norm=rl.max_grad_norm,
        hidden_sizes=rl.hidden_sizes,
    )


def spec_from_train_fleet_flags(
    *,
    scale: float = 1.0,
    seed: int = 0,
    n_hubs: int | None = None,
    days: int | None = None,
    train_episodes: int | None = None,
    eval_episodes: int | None = None,
) -> ScenarioSpec:
    """One spec per ``ect-hub train-fleet`` invocation.

    Resolves the scale-dependent defaults (6 hubs x 10 days, 40 training
    / 5 evaluation episodes at scale 1) into explicit spec values — the
    same shim pattern as :func:`spec_from_fleet_flags`, so a serialized
    train-fleet spec replays the exact run the flags meant. The PPO
    defaults lean myopic (``gamma=0.95``, light entropy) — battery
    arbitrage credit spans hours, not the 30-day episode, and the short
    smoke schedule learns measurably faster that way.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    return ScenarioSpec(
        name="train-fleet",
        description="flag-built fleet PPO training scenario",
        fleet=FleetSpec(
            n_hubs=(
                n_hubs
                if n_hubs is not None
                else _scaled(DEFAULT_TRAIN_FLEET_HUBS, scale, minimum=2)
            )
        ),
        blackout=BlackoutSpec(
            outage_probability_per_hour=DEFAULT_OUTAGE_PROBABILITY,
            recovery_time_h=4,
        ),
        run=RunSpec(
            days=(
                days
                if days is not None
                else _scaled(DEFAULT_TRAIN_FLEET_DAYS, scale, minimum=3)
            ),
            seed=seed,
        ),
        rl=RlSpec(
            episode_days=5,
            gamma=0.95,
            entropy_coef=0.005,
            train_episodes=(
                train_episodes
                if train_episodes is not None
                else _scaled(40, scale, minimum=2)
            ),
            eval_episodes=(
                eval_episodes
                if eval_episodes is not None
                else _scaled(5, scale, minimum=1)
            ),
        ),
    )


def spec_from_price_flags(
    *,
    scale: float = 1.0,
    seed: int = 0,
    n_hubs: int | None = None,
    days: int | None = None,
    train_days: int | None = None,
    epochs: int | None = None,
    discount_level: float | None = None,
    feeder_aware: bool = False,
    n_feeders: int = 1,
    feeder_capacity_kw: float | None = None,
) -> ScenarioSpec:
    """One spec per ``ect-hub price`` invocation (Table III at city scale).

    Resolves the scale-dependent defaults (100 hubs x 7 days, a 30-day
    training log at scale 1) into explicit spec values — the same shim
    pattern as :func:`spec_from_fleet_flags`, so a serialized price spec
    replays the exact run the flags meant. The base policy is ``"ours"``
    (ECT-Price); :func:`repro.api.run_pricing` sweeps ``pricing.policy``
    over the compared methods on top of this base.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    return ScenarioSpec(
        name="price",
        description="flag-built fleet pricing scenario",
        fleet=FleetSpec(
            n_hubs=(
                n_hubs
                if n_hubs is not None
                else _scaled(DEFAULT_PRICE_HUBS, scale, minimum=2)
            )
        ),
        grid=GridSpec(
            n_feeders=n_feeders,
            feeder_capacity_kw=feeder_capacity_kw,
        ),
        run=RunSpec(
            days=(
                days
                if days is not None
                else _scaled(DEFAULT_PRICE_DAYS, scale, minimum=2)
            ),
            seed=seed,
        ),
        pricing=PricingSpec(
            policy="ours",
            train_days=(
                train_days
                if train_days is not None
                else _scaled(DEFAULT_PRICE_TRAIN_DAYS, scale, minimum=7)
            ),
            epochs=(
                epochs if epochs is not None else _scaled(30, scale, minimum=2)
            ),
            discount_level=(
                discount_level if discount_level is not None else 0.2
            ),
            feeder_aware=feeder_aware,
        ),
    )


def spec_from_fleet_flags(
    *,
    scale: float = 1.0,
    seed: int = 0,
    n_hubs: int | None = None,
    days: int | None = None,
    scheduler: str = "rule-based",
    n_feeders: int = 1,
    feeder_capacity_kw: float | None = None,
    allocation: str = "proportional",
) -> ScenarioSpec:
    """The flag-shim: one spec per legacy ``ect-hub fleet`` invocation.

    Resolves the old CLI's scale-dependent defaults (24 hubs / 14 days at
    scale 1, floors of 4 and 7) into explicit spec values, so the returned
    spec — serialized or not — rebuilds exactly the run the flags meant.
    """
    if scale <= 0:
        raise ConfigError(f"scale must be positive, got {scale}")
    resolved_hubs = (
        n_hubs if n_hubs is not None else _scaled(DEFAULT_N_HUBS, scale, minimum=4)
    )
    resolved_days = (
        days if days is not None else _scaled(DEFAULT_DAYS, scale, minimum=7)
    )
    return ScenarioSpec(
        name="fleet",
        description="legacy flag-built fleet scenario",
        fleet=FleetSpec(n_hubs=resolved_hubs),
        grid=GridSpec(
            n_feeders=n_feeders,
            feeder_capacity_kw=feeder_capacity_kw,
            allocation=allocation,
        ),
        scheduler=SchedulerSpec(name=scheduler),
        blackout=BlackoutSpec(
            outage_probability_per_hour=DEFAULT_OUTAGE_PROBABILITY,
            recovery_time_h=4,
        ),
        run=RunSpec(days=resolved_days, seed=seed),
    )
