"""The declarative scenario tree: frozen, JSON-round-trippable specs.

A :class:`ScenarioSpec` fully describes one simulation — fleet composition
(with per-group heterogeneity), feeder topology and capacity, scheduler
choice, blackout process, and run shape — as *data* instead of imperative
builder calls. Specs are built on the :mod:`repro.config` plumbing, so

``spec == ScenarioSpec.from_dict(spec.to_dict())``

holds bit-for-bit, unknown keys raise :class:`~repro.errors.ConfigError`,
and a spec saved as JSON today rebuilds the exact same simulation in any
future session (``repro.api.build`` / ``repro.api.run``).

Dotted-path overrides (:func:`apply_overrides`) are the update language
shared by the CLI's ``--set key=value`` flags and the sweep expander:
``{"grid.feeder_capacity_kw": 400.0}`` returns a new spec with only that
leaf changed, validation re-run at every level.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Mapping

from .. import config
from ..energy.base_station import BaseStationConfig
from ..energy.battery import BatteryConfig
from ..energy.charging_station import ChargingStationConfig
from ..errors import ConfigError
from ..fleet.grid import ALLOCATION_POLICIES
from ..fleet.schedulers import FLEET_SCHEDULERS
from ..synth.charging import ChargingConfig
from ..synth.rtp import RtpConfig
from ..synth.traffic import TrafficConfig
from ..synth.weather import WeatherConfig

#: Fleet size / horizon a spec describes when left unset (the ``ect-hub
#: fleet`` defaults, so flag-built and spec-built runs agree).
DEFAULT_N_HUBS = 24
DEFAULT_DAYS = 14


@dataclass(frozen=True)
class HubGroupSpec:
    """Overrides for one contiguous group of hubs (heterogeneous fleets).

    ``count`` hubs in a row share these overrides; any field left ``None``
    keeps the generated :func:`~repro.synth.catalog.default_fleet` value,
    so a group can pin just one knob (say ``battery_scale``) while the
    rest of the site stays heterogeneous.

    ``battery`` replaces the base battery config outright (it is still
    Eq. 6-sized against the group's BS cluster); ``battery_scale``
    multiplies capacity and charge/discharge rates of the default battery
    instead — the two are mutually exclusive. ``feeder`` pins the group to
    one feeder id, overriding the round-robin assignment.

    ``incentive_scale`` / ``always_scale`` multiply the group's latent
    charging-strata probabilities (price-sensitive / habitual demand) on
    top of each station's drawn personality — the per-group knob the
    pricing loop uses to build fleets with heterogeneous discount
    responsiveness. ``None`` keeps the generated profile untouched.
    """

    count: int = 1
    kind: str | None = None
    pv_kw: float | None = None
    wt_kw: float | None = None
    traffic_scale: float | None = None
    n_base_stations: int | None = None
    battery: BatteryConfig | None = None
    battery_scale: float | None = None
    c_bp_per_slot: float | None = None
    feeder: int | None = None
    incentive_scale: float | None = None
    always_scale: float | None = None

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ConfigError(f"group count must be positive, got {self.count}")
        if self.kind is not None and self.kind not in ("urban", "rural"):
            raise ConfigError(
                f"group kind must be 'urban' or 'rural', got {self.kind!r}"
            )
        for name in ("pv_kw", "wt_kw"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigError(f"group {name} must be non-negative, got {value}")
        if self.traffic_scale is not None and self.traffic_scale <= 0:
            raise ConfigError(
                f"group traffic_scale must be positive, got {self.traffic_scale}"
            )
        if self.n_base_stations is not None and self.n_base_stations <= 0:
            raise ConfigError(
                f"group n_base_stations must be positive, got {self.n_base_stations}"
            )
        if self.battery is not None and self.battery_scale is not None:
            raise ConfigError(
                "group battery and battery_scale are mutually exclusive"
            )
        if self.battery_scale is not None and self.battery_scale <= 0:
            raise ConfigError(
                f"group battery_scale must be positive, got {self.battery_scale}"
            )
        if self.c_bp_per_slot is not None and self.c_bp_per_slot < 0:
            raise ConfigError(
                f"group c_bp_per_slot must be non-negative, got {self.c_bp_per_slot}"
            )
        if self.feeder is not None and self.feeder < 0:
            raise ConfigError(
                f"group feeder must be non-negative, got {self.feeder}"
            )
        for name in ("incentive_scale", "always_scale"):
            value = getattr(self, name)
            if value is not None and (not math.isfinite(value) or value <= 0):
                raise ConfigError(
                    f"group {name} must be finite and positive, got {value}"
                )


@dataclass(frozen=True)
class FleetSpec:
    """What hubs the fleet is made of.

    ``n_hubs`` sizes a homogeneous-recipe fleet (the generated urban/rural
    mix); ``groups`` carves the fleet into override groups instead — when
    groups are present their counts define the fleet size and ``n_hubs``,
    if also given, must agree. The optional nested configs replace the
    :class:`~repro.hub.scenario.ScenarioConfig` defaults fleet-wide
    (weather regimes, traffic volumes, tariff processes, plant baselines);
    ``None`` keeps the library default.
    """

    n_hubs: int | None = None
    groups: tuple[HubGroupSpec, ...] = ()
    urban_fraction: float = 0.5
    battery: BatteryConfig | None = None
    base_station: BaseStationConfig | None = None
    charging_station: ChargingStationConfig | None = None
    weather: WeatherConfig | None = None
    traffic: TrafficConfig | None = None
    rtp: RtpConfig | None = None
    charging: ChargingConfig | None = None
    c_bp_per_slot: float = 0.01

    def __post_init__(self) -> None:
        groups = self.groups
        if not isinstance(groups, tuple):
            if not isinstance(groups, (list, tuple)):
                raise ConfigError("fleet groups must be a sequence of HubGroupSpec")
            object.__setattr__(self, "groups", tuple(groups))
            groups = self.groups
        for group in groups:
            if not isinstance(group, HubGroupSpec):
                raise ConfigError(
                    f"fleet groups must hold HubGroupSpec entries, got "
                    f"{type(group).__name__}"
                )
        if self.n_hubs is not None and self.n_hubs <= 0:
            raise ConfigError(f"n_hubs must be positive, got {self.n_hubs}")
        if groups and self.n_hubs is not None:
            total = sum(group.count for group in groups)
            if total != self.n_hubs:
                raise ConfigError(
                    f"group counts sum to {total} but n_hubs is {self.n_hubs}; "
                    "drop n_hubs or make them agree"
                )
        if not 0.0 <= self.urban_fraction <= 1.0:
            raise ConfigError(
                f"urban_fraction must be in [0, 1], got {self.urban_fraction}"
            )
        if self.c_bp_per_slot < 0:
            raise ConfigError(
                f"c_bp_per_slot must be non-negative, got {self.c_bp_per_slot}"
            )

    @property
    def resolved_n_hubs(self) -> int:
        """Fleet size before run-scale: group counts, n_hubs, or the default."""
        if self.groups:
            return sum(group.count for group in self.groups)
        return self.n_hubs if self.n_hubs is not None else DEFAULT_N_HUBS


@dataclass(frozen=True)
class GridSpec:
    """Feeder topology and import capacity (shared-grid coupling).

    ``feeder_capacity_kw=None`` keeps feeders unlimited — numerically the
    uncoupled engine, with the topology still honoured in the cost book's
    per-feeder rollups. ``capacity_profile`` is a repeating per-slot
    multiplier on ``feeder_capacity_kw`` (e.g. 24 entries for a diurnal
    derate), tiled over the horizon at compile time.
    """

    n_feeders: int = 1
    feeder_capacity_kw: float | None = None
    capacity_profile: tuple[float, ...] | None = None
    allocation: str = "proportional"

    def __post_init__(self) -> None:
        if self.n_feeders <= 0:
            raise ConfigError(f"n_feeders must be positive, got {self.n_feeders}")
        capacity = self.feeder_capacity_kw
        if capacity is not None and (math.isnan(capacity) or capacity < 0):
            raise ConfigError(
                f"feeder_capacity_kw must be non-negative, got {capacity}"
            )
        profile = self.capacity_profile
        if profile is not None:
            if not isinstance(profile, tuple):
                object.__setattr__(self, "capacity_profile", tuple(profile))
                profile = self.capacity_profile
            if self.feeder_capacity_kw is None:
                raise ConfigError(
                    "capacity_profile needs feeder_capacity_kw as its base level"
                )
            if len(profile) == 0:
                raise ConfigError("capacity_profile must not be empty")
            if any(value < 0 or value != value for value in profile):
                raise ConfigError(
                    "capacity_profile entries must be non-negative numbers"
                )
        if self.allocation not in ALLOCATION_POLICIES:
            raise ConfigError(
                f"unknown allocation policy {self.allocation!r}; "
                f"available: {', '.join(ALLOCATION_POLICIES)}"
            )


@dataclass(frozen=True)
class SchedulerSpec:
    """Which battery policy drives the fleet, plus its knobs.

    Quantiles left ``None`` inherit each scheduler class's own default
    (0.3/0.7 for rule-based, 0.75 for greedy-renewable), so a bare
    ``SchedulerSpec(name=...)`` is behaviour-identical to the named
    scheduler built by :func:`~repro.fleet.schedulers.make_fleet_scheduler`.
    """

    name: str = "rule-based"
    cheap_quantile: float | None = None
    expensive_quantile: float | None = None
    congestion_aware: bool = True

    #: Which quantile knobs each scheduler actually consumes; setting any
    #: other combination is rejected so a spec never silently differs from
    #: the run it produces.
    _QUANTILE_KNOBS = {
        "idle": (),
        "random": (),
        "rule-based": ("cheap_quantile", "expensive_quantile"),
        "greedy-renewable": ("expensive_quantile",),
    }

    def __post_init__(self) -> None:
        if self.name not in FLEET_SCHEDULERS:
            raise ConfigError(
                f"unknown fleet scheduler {self.name!r}; "
                f"available: {', '.join(FLEET_SCHEDULERS)}"
            )
        allowed = self._QUANTILE_KNOBS.get(self.name, ())
        for label in ("cheap_quantile", "expensive_quantile"):
            value = getattr(self, label)
            if value is None:
                continue
            if label not in allowed:
                raise ConfigError(
                    f"scheduler {self.name!r} does not take {label}"
                )
            if not 0.0 < value < 1.0:
                raise ConfigError(f"{label} must be in (0, 1), got {value}")
        if (
            self.cheap_quantile is not None
            and self.expensive_quantile is not None
            and self.cheap_quantile >= self.expensive_quantile
        ):
            raise ConfigError(
                "cheap_quantile must be below expensive_quantile, got "
                f"({self.cheap_quantile}, {self.expensive_quantile})"
            )


@dataclass(frozen=True)
class BlackoutSpec:
    """The grid outage process hubs must ride through."""

    outage_probability_per_hour: float = 0.0
    recovery_time_h: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.outage_probability_per_hour <= 1.0:
            raise ConfigError(
                f"outage_probability_per_hour must be in [0, 1], got "
                f"{self.outage_probability_per_hour}"
            )
        if self.recovery_time_h < 0:
            raise ConfigError(
                f"recovery_time_h must be non-negative, got {self.recovery_time_h}"
            )


#: Discount policies the pricing section may name. ``none`` keeps the
#: zero-discount baseline; ``ours`` is ECT-Price (CF-MTL); ``oracle`` is
#: the clairvoyant upper bound; ``evening`` is the operators' heuristic
#: (discount 18:00–24:00, the logging policy's rule); ``or``/``ips``/``dr``
#: are the uplift baselines.
PRICING_POLICIES = ("none", "ours", "oracle", "evening", "or", "ips", "dr")


@dataclass(frozen=True)
class PricingSpec:
    """The ECT-Price section: which discount policy prices the fleet.

    Compiled by :func:`~repro.spec.pricing.compile_pricing` into a per-hub
    ``(n_hubs, horizon)`` discount schedule: a policy is trained on a
    simulated historical charging log (``train_days`` days, run-scaled),
    each hub's slots are scored, and the top ``budget_fraction`` of slots
    with positive expected reward receive ``discount_level`` — the
    Table II/III protocol at fleet scale. The schedule re-realises
    charging occupancy (incentive strata respond to the discount) and
    discounts the charging price plane, so Eq. 12 profit sees both sides
    of the trade.

    ``feeder_aware=True`` closes the pricing↔congestion loop: the
    zero-discount baseline's :meth:`~repro.fleet.grid.FeederGroup.
    available_import_kw` headroom becomes a per-(hub, slot) congestion
    penalty (weighted by ``congestion_weight``) subtracted from every
    policy's score, steering discounts away from slots where the feeder
    could not serve the extra charging load anyway. With unlimited
    feeders the penalty is identically zero.
    """

    policy: str = "none"
    discount_level: float = 0.2
    budget_fraction: float = 0.195
    train_days: int = 60
    epochs: int = 30
    batch_size: int = 128
    learning_rate: float = 0.01
    always_avoidance_threshold: float = 0.5
    feeder_aware: bool = False
    congestion_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.policy not in PRICING_POLICIES:
            raise ConfigError(
                f"unknown pricing policy {self.policy!r}; "
                f"available: {', '.join(PRICING_POLICIES)}"
            )
        if not 0.0 <= self.discount_level < 1.0:
            raise ConfigError(
                f"pricing discount_level must be in [0, 1), got "
                f"{self.discount_level}"
            )
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ConfigError(
                f"pricing budget_fraction must be in (0, 1], got "
                f"{self.budget_fraction}"
            )
        for name in ("train_days", "epochs", "batch_size"):
            if getattr(self, name) <= 0:
                raise ConfigError(
                    f"pricing {name} must be positive, got {getattr(self, name)}"
                )
        if not (
            math.isfinite(self.learning_rate) and self.learning_rate > 0
        ):
            raise ConfigError(
                f"pricing learning_rate must be positive, got "
                f"{self.learning_rate}"
            )
        if not 0.0 < self.always_avoidance_threshold <= 1.0:
            raise ConfigError(
                f"pricing always_avoidance_threshold must be in (0, 1], got "
                f"{self.always_avoidance_threshold}"
            )
        if not math.isfinite(self.congestion_weight) or self.congestion_weight < 0:
            raise ConfigError(
                f"pricing congestion_weight must be finite and non-negative, "
                f"got {self.congestion_weight}"
            )


@dataclass(frozen=True)
class RlSpec:
    """The ECT-DRL training section: environment shape + PPO knobs.

    Compiled by :func:`~repro.spec.compiler.build_fleet_env` into a
    batched :class:`~repro.rl.fleet_env.FleetEnv` (episode/window shape,
    reward scaling, feeder-aware observations) plus a
    :class:`~repro.rl.ppo.PpoConfig`; ``train_episodes`` /
    ``eval_episodes`` size the ``train-fleet`` schedule before run-scale.
    ``episode_days`` is clamped to the compiled horizon, so a
    run-scaled-down scenario still trains (on shorter episodes).
    ``feeder_aware`` appends the normalised ``available_import_kw``
    observation feature whenever the grid section is capacity-limited.
    """

    episode_days: int = 7
    window_h: int = 24
    reward_scale: float = 10.0
    random_initial_soc: bool = True
    feeder_aware: bool = True
    train_episodes: int = 40
    eval_episodes: int = 5
    learning_rate: float = 1e-3
    weight_decay: float = 1e-4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_epsilon: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    update_epochs: int = 4
    batch_size: int = 64
    max_grad_norm: float = 0.5
    hidden_sizes: tuple[int, ...] = (64, 64)

    def __post_init__(self) -> None:
        # The PPO bounds here deliberately mirror PpoConfig's __post_init__
        # (keep them in sync): the spec layer must reject bad values with
        # ConfigError at construction, and cannot import repro.rl (the nn
        # stack) just to validate — plain spec builds stay lightweight.
        for name in ("episode_days", "window_h", "train_episodes",
                     "eval_episodes", "update_epochs", "batch_size"):
            if getattr(self, name) <= 0:
                raise ConfigError(
                    f"rl {name} must be positive, got {getattr(self, name)}"
                )
        for name in ("reward_scale", "learning_rate", "max_grad_norm"):
            if getattr(self, name) <= 0:
                raise ConfigError(
                    f"rl {name} must be positive, got {getattr(self, name)}"
                )
        if self.weight_decay < 0 or self.value_coef < 0 or self.entropy_coef < 0:
            raise ConfigError("rl coefficients must be non-negative")
        if not 0.0 < self.gamma <= 1.0 or not 0.0 <= self.gae_lambda <= 1.0:
            raise ConfigError(
                f"rl gamma/gae_lambda invalid: ({self.gamma}, {self.gae_lambda})"
            )
        if not 0.0 < self.clip_epsilon < 1.0:
            raise ConfigError(
                f"rl clip_epsilon must be in (0, 1), got {self.clip_epsilon}"
            )
        sizes = self.hidden_sizes
        if not isinstance(sizes, tuple):
            object.__setattr__(self, "hidden_sizes", tuple(sizes))
            sizes = self.hidden_sizes
        if not sizes or any(
            not isinstance(s, int) or isinstance(s, bool) or s <= 0
            for s in sizes
        ):
            raise ConfigError(
                f"rl hidden_sizes must be positive integers, got {sizes!r}"
            )


#: Cost-book storage layouts (mirrors ``repro.fleet.costs.STORAGE_MODES``;
#: kept local so plain spec builds stay engine-import-free).
STORAGE_MODES = ("dense", "windowed")

#: Array backends the engine can dispatch through (mirrors
#: ``repro.backend.BACKEND_NAMES``; kept local for the same reason).
BACKENDS = ("numpy", "numba")


@dataclass(frozen=True)
class RunSpec:
    """Horizon, seed, scale, and run-level economics.

    ``scale`` multiplies the fleet size and horizon at compile time (the
    experiment-wide fidelity/runtime dial); ``voll_per_kwh`` is the
    value-of-lost-load penalty — Eq. 12 profit charges every unserved kWh
    at this rate, so reliability failures are monetized instead of free.

    ``shards`` and ``storage`` are the city-scale execution knobs:
    ``shards > 1`` partitions the fleet feeder-aware over worker
    processes (byte-identical results to an unsharded run — an executor
    choice, not a model change), and ``storage="windowed"`` folds the
    cost book into running aggregates so memory stops scaling with the
    horizon (aggregates agree with dense at atol 1e-9).

    ``backend`` picks the array backend the engine dispatches through:
    ``"numpy"`` (default, the byte-identical reference) or ``"numba"``
    (optional JIT; falls back to numpy with a warning where the package
    is missing, held to atol 1e-9 otherwise). Shard and sweep workers
    rebuild from the spec, so children inherit the parent's backend.
    """

    days: int = DEFAULT_DAYS
    seed: int = 0
    scale: float = 1.0
    initial_soc_fraction: float = 0.5
    voll_per_kwh: float = 0.0
    shards: int = 1
    storage: str = "dense"
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ConfigError(f"days must be positive, got {self.days}")
        if not isinstance(self.shards, int) or isinstance(self.shards, bool) \
                or self.shards < 1:
            raise ConfigError(
                f"shards must be an integer >= 1, got {self.shards!r}"
            )
        if self.storage not in STORAGE_MODES:
            raise ConfigError(
                f"unknown run storage {self.storage!r}; "
                f"available: {', '.join(STORAGE_MODES)}"
            )
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown run backend {self.backend!r}; "
                f"available: {', '.join(BACKENDS)}"
            )
        if not math.isfinite(self.scale) or self.scale <= 0:
            raise ConfigError(f"scale must be finite and positive, got {self.scale}")
        if not 0.0 <= self.initial_soc_fraction <= 1.0:
            raise ConfigError(
                f"initial_soc_fraction must be in [0, 1], got "
                f"{self.initial_soc_fraction}"
            )
        if not math.isfinite(self.voll_per_kwh) or self.voll_per_kwh < 0:
            raise ConfigError(
                f"voll_per_kwh must be finite and non-negative, got "
                f"{self.voll_per_kwh}"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable scenario description.

    >>> spec = ScenarioSpec(name="demo")
    >>> ScenarioSpec.from_dict(spec.to_dict()) == spec
    True
    """

    name: str = "scenario"
    description: str = ""
    fleet: FleetSpec = field(default_factory=FleetSpec)
    grid: GridSpec = field(default_factory=GridSpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    blackout: BlackoutSpec = field(default_factory=BlackoutSpec)
    run: RunSpec = field(default_factory=RunSpec)
    rl: RlSpec = field(default_factory=RlSpec)
    pricing: PricingSpec = field(default_factory=PricingSpec)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario name must be a non-empty string")

    # ------------------------------------------------------------------ #
    # Serialization (the config.to_dict/from_dict plumbing)                #
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        """Plain dict/list/scalar form (JSON-safe)."""
        return config.to_dict(self)

    def to_json(self, *, indent: int = 2) -> str:
        """Canonical JSON text (sorted keys, stable across runs)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec; unknown keys raise :class:`ConfigError`."""
        return config.from_dict(cls, payload)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Rebuild a spec from JSON text."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid scenario JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path) -> None:
        """Write the spec as JSON."""
        config.save_json(self, path)

    @classmethod
    def load(cls, path) -> "ScenarioSpec":
        """Load a spec JSON file written by :meth:`save` (or by hand)."""
        return config.load_json(cls, path)

    def with_overrides(self, overrides: Mapping[str, Any]) -> "ScenarioSpec":
        """A new spec with dotted-path leaves replaced (see module docs)."""
        return apply_overrides(self, overrides)


# --------------------------------------------------------------------- #
# Dotted-path overrides                                                   #
# --------------------------------------------------------------------- #


def _coerce(current: Any, value: Any) -> Any:
    """Make ``--set grid.feeder_capacity_kw=400`` mean the float 400.0."""
    if isinstance(current, float) and isinstance(value, int) and not isinstance(
        value, bool
    ):
        return float(value)
    return value


def _coerce_field(node: Any, name: str, value: Any) -> Any:
    """Leaf coercion: dict/list payloads rebuild nested configs, ints widen."""
    converted = config.convert_field_value(type(node), name, value)
    return _coerce(getattr(node, name), converted)


def _set_path(node: Any, segments: list[str], value: Any, full_key: str) -> Any:
    head = segments[0]
    if isinstance(node, tuple):
        if not head.lstrip("-").isdigit():
            raise ConfigError(
                f"override {full_key!r}: expected a tuple index, got {head!r}"
            )
        index = int(head)
        if not 0 <= index < len(node):
            raise ConfigError(
                f"override {full_key!r}: index {index} out of range for a "
                f"tuple of length {len(node)}"
            )
        if len(segments) == 1:
            current = node[index]
            if (
                isinstance(value, dict)
                and is_dataclass(current)
                and not isinstance(current, type)
            ):
                replacement = config.from_dict(type(current), value)
            else:
                replacement = _coerce(current, value)
        else:
            replacement = _set_path(node[index], segments[1:], value, full_key)
        return node[:index] + (replacement,) + node[index + 1 :]
    if not is_dataclass(node) or isinstance(node, type):
        raise ConfigError(
            f"override {full_key!r}: {head!r} cannot be reached inside a "
            f"{type(node).__name__}"
        )
    valid = {spec.name for spec in fields(node)}
    if head not in valid:
        raise ConfigError(
            f"override {full_key!r}: unknown key {head!r} for "
            f"{type(node).__name__}; valid keys: {sorted(valid)}"
        )
    if len(segments) == 1:
        return config.replace(node, **{head: _coerce_field(node, head, value)})
    child = _set_path(getattr(node, head), segments[1:], value, full_key)
    return config.replace(node, **{head: child})


def apply_overrides(
    spec: ScenarioSpec, overrides: Mapping[str, Any]
) -> ScenarioSpec:
    """Apply dotted-path overrides, re-validating every touched level.

    Keys address leaves through the spec tree (``run.seed``,
    ``grid.feeder_capacity_kw``, ``fleet.groups.0.battery_scale``); values
    replace the leaf as-is (ints are widened to float where the current
    value is a float). Unknown keys and out-of-range indices raise
    :class:`ConfigError`.
    """
    for key, value in overrides.items():
        if not key:
            raise ConfigError("override keys must be non-empty dotted paths")
        spec = _set_path(spec, key.split("."), value, key)
    return spec


def parse_override_value(text: str) -> Any:
    """``--set`` value syntax: JSON where it parses, bare string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def parse_assignments(pairs: list[str]) -> dict[str, Any]:
    """Parse ``KEY=VALUE`` strings (the CLI's ``--set``) into an override map."""
    overrides: dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ConfigError(
                f"override {pair!r} must look like key.path=value"
            )
        overrides[key] = parse_override_value(raw)
    return overrides
