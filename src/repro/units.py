"""Unit conventions and conversions.

The library stores quantities in a single internal convention:

* power in **kW**
* energy in **kWh**
* prices in **$/kWh**
* time in **hours** (slot length ``dt_h`` is carried explicitly)

External feeds use other units — the ENGIE-style real-time price is quoted in
$/MWh (paper Fig. 5 shows a 50–130 $/MWh band) and renewable telemetry in W
(paper Fig. 2) — so conversion helpers live here and raise
:class:`~repro.errors.UnitsError` on invalid magnitudes rather than silently
producing nonsense.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .errors import UnitsError

#: Hours per day, used throughout the slot calendars.
HOURS_PER_DAY = 24

#: kW per MW.
KW_PER_MW = 1000.0

#: W per kW.
W_PER_KW = 1000.0


def mwh_price_to_kwh(price_per_mwh: float) -> float:
    """Convert a $/MWh price quote to $/kWh.

    >>> mwh_price_to_kwh(120.0)
    0.12
    """
    return float(price_per_mwh) / KW_PER_MW


def kwh_price_to_mwh(price_per_kwh: float) -> float:
    """Convert a $/kWh price to the $/MWh convention used by RTP feeds."""
    return float(price_per_kwh) * KW_PER_MW


def watts_to_kw(power_w: float) -> float:
    """Convert watts to kilowatts."""
    return float(power_w) / W_PER_KW


def kw_to_watts(power_kw: float) -> float:
    """Convert kilowatts to watts."""
    return float(power_kw) * W_PER_KW


def energy_kwh(power_kw: float, duration_h: float) -> float:
    """Energy in kWh delivered by ``power_kw`` sustained for ``duration_h``.

    Raises :class:`UnitsError` for a negative duration — negative power is
    legal (battery discharge is signed) but time never runs backwards.
    """
    if duration_h < 0:
        raise UnitsError(f"duration must be non-negative, got {duration_h}")
    return float(power_kw) * float(duration_h)


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is strictly positive; return it as float."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise UnitsError(f"{name} must be a positive finite number, got {value}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is >= 0 and finite; return it as float."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise UnitsError(f"{name} must be a non-negative finite number, got {value}")
    return value


def require_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1]; return it as float."""
    value = float(value)
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise UnitsError(f"{name} must lie in [0, 1], got {value}")
    return value


def require_fractions(name: str, values: Iterable[float]) -> np.ndarray:
    """Validate every element of ``values`` lies in [0, 1]; return an array."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size and (not np.all(np.isfinite(arr)) or arr.min() < 0 or arr.max() > 1):
        raise UnitsError(f"every element of {name} must lie in [0, 1]")
    return arr
