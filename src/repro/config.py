"""Config dataclass plumbing: validation hooks and dict round-tripping.

Every subsystem defines a frozen dataclass config (battery, PV, hub, PPO, …).
This module provides the shared machinery: recursive ``to_dict`` /
``from_dict`` so scenarios can be serialized to JSON, and a ``validate``
convention (``__post_init__`` calls ``self.validate()`` where defined) so a
bad config fails at construction, not mid-simulation.
"""

from __future__ import annotations

import dataclasses
import json
import typing
from pathlib import Path
from typing import Any, Type, TypeVar

from .errors import ConfigError

C = TypeVar("C")


def to_dict(config: Any) -> dict[str, Any]:
    """Recursively convert a dataclass config to plain dict/list/scalars."""
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise ConfigError(f"expected a dataclass instance, got {type(config).__name__}")
    return dataclasses.asdict(config)


def from_dict(cls: Type[C], payload: dict[str, Any]) -> C:
    """Instantiate dataclass ``cls`` from a dict, recursing into nested configs.

    Unknown keys raise :class:`ConfigError` so typos in scenario files are
    caught instead of silently ignored.
    """
    if not dataclasses.is_dataclass(cls):
        raise ConfigError(f"{cls!r} is not a dataclass type")
    if not isinstance(payload, dict):
        raise ConfigError(f"expected a dict for {cls.__name__}, got {type(payload).__name__}")

    field_map = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(payload) - set(field_map)
    if unknown:
        raise ConfigError(
            f"unknown key(s) {sorted(unknown)} for {cls.__name__}; "
            f"valid keys: {sorted(field_map)}"
        )

    # Resolve string annotations (PEP 563) so nested dataclasses round-trip.
    try:
        hints = typing.get_type_hints(cls)
    except Exception:  # pragma: no cover - exotic forward references
        hints = {}

    kwargs: dict[str, Any] = {}
    for name, value in payload.items():
        field = field_map[name]
        field_type = field.type if isinstance(field.type, type) else hints.get(name)
        if typing.get_origin(field_type) is typing.Union:
            # Optional[Config]: pick the dataclass member if present.
            members = [
                arg
                for arg in typing.get_args(field_type)
                if isinstance(arg, type) and dataclasses.is_dataclass(arg)
            ]
            field_type = members[0] if members else None
        if (
            isinstance(field_type, type)
            and dataclasses.is_dataclass(field_type)
            and isinstance(value, dict)
        ):
            kwargs[name] = from_dict(field_type, value)
        elif isinstance(value, list):
            kwargs[name] = tuple(value) if _wants_tuple(field) else list(value)
        else:
            kwargs[name] = value
    return cls(**kwargs)


def _wants_tuple(field: dataclasses.Field) -> bool:
    """Heuristic: fields annotated or defaulted as tuples round-trip as tuples."""
    if isinstance(field.default, tuple):
        return True
    type_repr = str(field.type)
    return type_repr.startswith(("tuple", "Tuple", "typing.Tuple"))


def save_json(config: Any, path: str | Path) -> None:
    """Serialize a dataclass config to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(config), indent=2, sort_keys=True))


def load_json(cls: Type[C], path: str | Path) -> C:
    """Load a dataclass config from a JSON file written by :func:`save_json`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid JSON in {path}: {exc}") from exc
    return from_dict(cls, payload)


def replace(config: C, **changes: Any) -> C:
    """Typed wrapper over :func:`dataclasses.replace` for frozen configs."""
    try:
        return dataclasses.replace(config, **changes)
    except TypeError as exc:
        raise ConfigError(str(exc)) from exc
