"""Config dataclass plumbing: validation hooks and dict round-tripping.

Every subsystem defines a frozen dataclass config (battery, PV, hub, PPO, …).
This module provides the shared machinery: recursive ``to_dict`` /
``from_dict`` so scenarios can be serialized to JSON, and a ``validate``
convention (``__post_init__`` calls ``self.validate()`` where defined) so a
bad config fails at construction, not mid-simulation.
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing
from pathlib import Path
from typing import Any, Type, TypeVar

from .errors import ConfigError

C = TypeVar("C")


def to_dict(config: Any) -> dict[str, Any]:
    """Recursively convert a dataclass config to plain dict/list/scalars."""
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise ConfigError(f"expected a dataclass instance, got {type(config).__name__}")
    return dataclasses.asdict(config)


def from_dict(cls: Type[C], payload: dict[str, Any]) -> C:
    """Instantiate dataclass ``cls`` from a dict, recursing into nested configs.

    Unknown keys raise :class:`ConfigError` so typos in scenario files are
    caught instead of silently ignored.
    """
    if not dataclasses.is_dataclass(cls):
        raise ConfigError(f"{cls!r} is not a dataclass type")
    if not isinstance(payload, dict):
        raise ConfigError(f"expected a dict for {cls.__name__}, got {type(payload).__name__}")

    field_map = {f.name: f for f in dataclasses.fields(cls)}
    unknown = set(payload) - set(field_map)
    if unknown:
        raise ConfigError(
            f"unknown key(s) {sorted(unknown)} for {cls.__name__}; "
            f"valid keys: {sorted(field_map)}"
        )

    # Resolve string annotations (PEP 563) so nested dataclasses round-trip.
    try:
        hints = typing.get_type_hints(cls)
    except Exception:  # pragma: no cover - exotic forward references
        hints = {}

    kwargs = {
        name: _convert_field(field_map[name], hints.get(name), value)
        for name, value in payload.items()
    }
    return cls(**kwargs)


def convert_field_value(cls: type, name: str, value: Any) -> Any:
    """Convert one field's payload value exactly as :func:`from_dict` would.

    Lets dotted-path overrides accept the same plain-dict/list payloads a
    spec file carries (``--set fleet.groups.0.battery={"capacity_kwh":400}``
    rebuilds a ``BatteryConfig``), keeping override results identical to
    their serialized round trip.
    """
    field_map = {f.name: f for f in dataclasses.fields(cls)}
    if name not in field_map:
        raise ConfigError(
            f"unknown key {name!r} for {cls.__name__}; "
            f"valid keys: {sorted(field_map)}"
        )
    try:
        hints = typing.get_type_hints(cls)
    except Exception:  # pragma: no cover - exotic forward references
        hints = {}
    return _convert_field(field_map[name], hints.get(name), value)


def _convert_field(field: dataclasses.Field, hint: Any, value: Any) -> Any:
    field_type = field.type if isinstance(field.type, type) else hint
    if typing.get_origin(field_type) in (typing.Union, types.UnionType):
        # Optional[Config] / Optional[tuple[...]]: pick the member that
        # matches the payload's shape (dict ⇒ dataclass, list ⇒ sequence).
        members = [
            arg for arg in typing.get_args(field_type) if arg is not type(None)
        ]
        field_type = None
        for member in members:
            if isinstance(member, type) and dataclasses.is_dataclass(member):
                if isinstance(value, dict):
                    field_type = member
                    break
            elif typing.get_origin(member) in (tuple, list):
                if isinstance(value, (list, tuple)):
                    field_type = member
                    break
    if (
        isinstance(field_type, type)
        and dataclasses.is_dataclass(field_type)
        and isinstance(value, dict)
    ):
        return from_dict(field_type, value)
    if isinstance(value, (list, tuple)):
        return _from_sequence(field, field_type, value)
    return value


def _from_sequence(
    field: dataclasses.Field, field_type: Any, value: list | tuple
) -> tuple | list:
    """Rebuild a sequence field, recursing into dataclass element types."""
    element_type = None
    if typing.get_origin(field_type) in (tuple, list):
        candidates = [
            arg for arg in typing.get_args(field_type) if arg is not Ellipsis
        ]
        if (
            candidates
            and isinstance(candidates[0], type)
            and dataclasses.is_dataclass(candidates[0])
        ):
            element_type = candidates[0]
    items = [
        from_dict(element_type, item)
        if element_type is not None and isinstance(item, dict)
        else item
        for item in value
    ]
    wants_tuple = _wants_tuple(field) or typing.get_origin(field_type) is tuple
    return tuple(items) if wants_tuple else list(items)


def _wants_tuple(field: dataclasses.Field) -> bool:
    """Heuristic: fields annotated or defaulted as tuples round-trip as tuples."""
    if isinstance(field.default, tuple):
        return True
    type_repr = str(field.type)
    return type_repr.startswith(("tuple", "Tuple", "typing.Tuple"))


def save_json(config: Any, path: str | Path) -> None:
    """Serialize a dataclass config to a JSON file."""
    Path(path).write_text(json.dumps(to_dict(config), indent=2, sort_keys=True))


def load_json(cls: Type[C], path: str | Path) -> C:
    """Load a dataclass config from a JSON file written by :func:`save_json`."""
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigError(f"cannot read config file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid JSON in {path}: {exc}") from exc
    return from_dict(cls, payload)


def replace(config: C, **changes: Any) -> C:
    """Typed wrapper over :func:`dataclasses.replace` for frozen configs."""
    try:
        return dataclasses.replace(config, **changes)
    except TypeError as exc:
        raise ConfigError(str(exc)) from exc
