"""Item dataset for the pricing models.

The paper's causal unit is an *item*: one (charging station, time slot)
pair with features ``X`` (station and time-slot features), treatment ``T``
(discount given), and outcome ``Y`` (an EV charged). This module converts a
:class:`~repro.synth.charging.ChargingLog` into the id-based feature layout
the NCF-style models consume:

* ``station_ids`` — the station index (the NCF "user");
* ``time_ids`` — hour-of-day, optionally crossed with a weekend flag
  (the NCF "item": 24 or 48 ids).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from ..synth.charging import ChargingLog
from ..timeutils import SlotCalendar
from ..units import HOURS_PER_DAY


@dataclass(frozen=True)
class PricingDataset:
    """Flat arrays of items for training/evaluating pricing models.

    ``stratum`` carries the generator's ground-truth latent stratum when
    available (−1 when unknown), used only for evaluation — the models never
    see it.
    """

    station_ids: np.ndarray
    time_ids: np.ndarray
    treated: np.ndarray
    charged: np.ndarray
    stratum: np.ndarray
    n_stations: int
    n_time_ids: int

    def __post_init__(self) -> None:
        n = len(self.station_ids)
        for name in ("time_ids", "treated", "charged", "stratum"):
            if len(getattr(self, name)) != n:
                raise DataError(f"dataset column {name} has inconsistent length")
        if n:
            if self.station_ids.min() < 0 or self.station_ids.max() >= self.n_stations:
                raise DataError("station_ids out of range")
            if self.time_ids.min() < 0 or self.time_ids.max() >= self.n_time_ids:
                raise DataError("time_ids out of range")
            for name in ("treated", "charged"):
                values = np.unique(getattr(self, name))
                if not np.isin(values, (0, 1)).all():
                    raise DataError(f"{name} must be binary")

    def __len__(self) -> int:
        return len(self.station_ids)

    @property
    def has_ground_truth(self) -> bool:
        """Whether the latent strata are recorded (synthetic data only)."""
        return bool(len(self)) and bool((self.stratum >= 0).all())

    def subset(self, mask: np.ndarray) -> "PricingDataset":
        """Items selected by a boolean mask."""
        if mask.shape != (len(self),):
            raise DataError(f"mask shape {mask.shape} does not match dataset")
        return PricingDataset(
            station_ids=self.station_ids[mask],
            time_ids=self.time_ids[mask],
            treated=self.treated[mask],
            charged=self.charged[mask],
            stratum=self.stratum[mask],
            n_stations=self.n_stations,
            n_time_ids=self.n_time_ids,
        )

    def batches(
        self,
        batch_size: int,
        rng: np.random.Generator,
    ):
        """Yield shuffled index arrays of at most ``batch_size`` items."""
        if batch_size <= 0:
            raise DataError(f"batch_size must be positive, got {batch_size}")
        order = rng.permutation(len(self))
        for start in range(0, len(order), batch_size):
            yield order[start : start + batch_size]


def dataset_from_log(
    log: ChargingLog,
    *,
    n_stations: int,
    use_weekend_flag: bool = True,
) -> PricingDataset:
    """Convert a charging log into the item dataset.

    ``use_weekend_flag=True`` crosses hour-of-day with a weekend indicator
    (48 time ids); the paper's "time slot features" are not fully specified,
    and the weekly pattern is real in the generator, so the default keeps it.
    """
    hour = np.asarray(log.hour_of_day, dtype=int)
    if use_weekend_flag:
        weekend = (np.asarray(log.day_of_week, dtype=int) >= 5).astype(int)
        time_ids = hour + HOURS_PER_DAY * weekend
        n_time_ids = 2 * HOURS_PER_DAY
    else:
        time_ids = hour
        n_time_ids = HOURS_PER_DAY
    return PricingDataset(
        station_ids=np.asarray(log.station_id, dtype=int),
        time_ids=time_ids,
        treated=np.asarray(log.treated, dtype=int),
        charged=np.asarray(log.charged, dtype=int),
        stratum=np.asarray(log.stratum, dtype=int),
        n_stations=n_stations,
        n_time_ids=n_time_ids,
    )


def time_ids_for_slots(
    n_slots: int,
    *,
    calendar: SlotCalendar | None = None,
    use_weekend_flag: bool = True,
) -> np.ndarray:
    """Map simulation slots to the pricing models' time-feature ids.

    The same hour-of-day × weekend crossing as :func:`dataset_from_log`
    (48 ids by default, 24 without the weekend flag), so schedules built
    from a trained policy index the exact embedding cells the policy was
    trained on.
    """
    calendar = calendar or SlotCalendar()
    slots = np.arange(n_slots)
    hod = np.asarray(calendar.hour_of_day(slots))
    if not use_weekend_flag:
        return hod
    weekend = np.asarray(calendar.is_weekend(slots)).astype(int)
    return hod + HOURS_PER_DAY * weekend


def train_test_split_by_day(
    log: ChargingLog,
    *,
    n_stations: int,
    boundary_day: int,
    use_weekend_flag: bool = True,
) -> tuple[PricingDataset, PricingDataset]:
    """Chronological split mirroring the paper's train/evaluate protocol."""
    train_log, test_log = log.split_by_day(boundary_day)
    if len(train_log) == 0 or len(test_log) == 0:
        raise DataError(
            f"boundary_day={boundary_day} leaves an empty split "
            f"(train={len(train_log)}, test={len(test_log)})"
        )
    make = lambda l: dataset_from_log(  # noqa: E731 - tiny local alias
        l, n_stations=n_stations, use_weekend_flag=use_weekend_flag
    )
    return make(train_log), make(test_log)
