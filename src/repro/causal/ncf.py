"""Neural Collaborative Filtering (He et al., WWW'17) base model.

The paper uses NCF in two roles (§V-A): as the *labeler* that pre-trains on
charging records to split charged items into Always/Incentive strata, and as
the base model of every pricing method ("All the baselines and the two tasks
in ECT-Price use NCF as base models").

The architecture follows NeuMF: a GMF path (element-wise product of station
and time embeddings) in parallel with an MLP path (concatenated embeddings
through hidden layers), fused into one logit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..errors import ConfigError, NotFittedError
from .dataset import PricingDataset


@dataclass(frozen=True)
class NcfConfig:
    """Hyperparameters of an NCF tower.

    Defaults follow the paper's training setup (§V-A: Adam, lr 0.01, weight
    decay 1e-4, batch 64) at CPU-friendly widths.
    """

    embedding_dim: int = 8
    hidden_sizes: tuple[int, ...] = (32, 16)
    learning_rate: float = 0.01
    weight_decay: float = 1e-4
    batch_size: int = 64
    epochs: int = 5

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0:
            raise ConfigError(f"embedding_dim must be positive, got {self.embedding_dim}")
        if any(h <= 0 for h in self.hidden_sizes):
            raise ConfigError("hidden sizes must be positive")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if self.weight_decay < 0:
            raise ConfigError("weight_decay must be non-negative")
        if self.batch_size <= 0 or self.epochs <= 0:
            raise ConfigError("batch_size and epochs must be positive")


class NcfNetwork(nn.Module):
    """The NeuMF network: GMF ⊕ MLP over (station, time) embeddings."""

    def __init__(
        self,
        n_stations: int,
        n_time_ids: int,
        config: NcfConfig,
        rng: np.random.Generator,
        *,
        n_outputs: int = 1,
    ) -> None:
        super().__init__()
        dim = config.embedding_dim
        self.station_gmf = nn.Embedding(n_stations, dim, rng)
        self.time_gmf = nn.Embedding(n_time_ids, dim, rng)
        self.station_mlp = nn.Embedding(n_stations, dim, rng)
        self.time_mlp = nn.Embedding(n_time_ids, dim, rng)
        self.mlp = nn.MLP((2 * dim, *config.hidden_sizes), rng)
        fused = dim + config.hidden_sizes[-1]
        self.head = nn.Linear(fused, n_outputs, rng)

    def forward(self, station_ids: np.ndarray, time_ids: np.ndarray) -> nn.Tensor:
        """Raw logits of shape (batch, n_outputs)."""
        gmf = self.station_gmf(station_ids) * self.time_gmf(time_ids)
        mlp_in = nn.concat([self.station_mlp(station_ids), self.time_mlp(time_ids)], axis=1)
        mlp_out = self.mlp(mlp_in).relu()
        fused = nn.concat([gmf, mlp_out], axis=1)
        return self.head(fused)


class NcfRegressor:
    """An NCF tower trained on an arbitrary per-item target.

    Serves as the shared base learner for the OR / IPS / DR baselines:
    classification targets use a sigmoid + BCE head, continuous pseudo-
    outcomes (IPS / DR transformed outcomes) use a linear + MSE head.
    """

    def __init__(
        self,
        n_stations: int,
        n_time_ids: int,
        config: NcfConfig,
        rng: np.random.Generator,
        *,
        binary: bool = True,
    ) -> None:
        self.config = config
        self.binary = binary
        self.network = NcfNetwork(n_stations, n_time_ids, config, rng)
        self._optimizer = nn.Adam(
            self.network.parameters(),
            lr=config.learning_rate,
            weight_decay=config.weight_decay,
        )
        self._rng = rng
        self._fitted = False

    def fit(
        self,
        station_ids: np.ndarray,
        time_ids: np.ndarray,
        targets: np.ndarray,
        *,
        sample_weight: np.ndarray | None = None,
    ) -> list[float]:
        """Train; returns the per-epoch mean loss trajectory."""
        station_ids = np.asarray(station_ids, dtype=int)
        time_ids = np.asarray(time_ids, dtype=int)
        targets = np.asarray(targets, dtype=float).reshape(-1, 1)
        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=float).reshape(-1, 1)

        history: list[float] = []
        n = len(station_ids)
        for _ in range(self.config.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, self.config.batch_size):
                idx = order[start : start + self.config.batch_size]
                loss = self._batch_loss(
                    station_ids[idx],
                    time_ids[idx],
                    targets[idx],
                    None if sample_weight is None else sample_weight[idx],
                )
                self._optimizer.zero_grad()
                loss.backward()
                self._optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            history.append(epoch_loss / max(n_batches, 1))
        self._fitted = True
        return history

    def _batch_loss(
        self,
        stations: np.ndarray,
        times: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray | None,
    ) -> nn.Tensor:
        logits = self.network(stations, times)
        if self.binary:
            if weights is None:
                return nn.bce_with_logits(logits, nn.Tensor(targets))
            probs = logits.sigmoid().clip(1e-7, 1.0 - 1e-7)
            t = nn.Tensor(targets)
            w = nn.Tensor(weights)
            losses = -(t * probs.log() + (1.0 - t) * (1.0 - probs).log())
            return (losses * w).mean()
        diff = logits - nn.Tensor(targets)
        squared = diff * diff
        if weights is not None:
            squared = squared * nn.Tensor(weights)
        return squared.mean()

    def predict(self, station_ids: np.ndarray, time_ids: np.ndarray) -> np.ndarray:
        """Predicted probability (binary) or value (regression), shape (n,)."""
        if not self._fitted:
            raise NotFittedError("NcfRegressor.predict called before fit")
        self.network.eval()
        logits = self.network(np.asarray(station_ids, dtype=int), np.asarray(time_ids, dtype=int))
        self.network.train()
        values = logits.sigmoid() if self.binary else logits
        return values.numpy().reshape(-1).copy()


def pretrain_rating_model(
    dataset: PricingDataset,
    config: NcfConfig,
    rng: np.random.Generator,
) -> NcfRegressor:
    """Pre-train an NCF on charged/not-charged — the paper's labeler (§V-A)."""
    model = NcfRegressor(
        dataset.n_stations, dataset.n_time_ids, config, rng, binary=True
    )
    model.fit(dataset.station_ids, dataset.time_ids, dataset.charged)
    return model
