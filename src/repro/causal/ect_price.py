"""ECT-Price: the CF-MTL counterfactual stratification model (§IV-A).

Two NCF-style towers trained jointly on observational (X, T, Y) data:

* a **stratification task** predicting the strata probabilities
  ``(f00, f01, f11)`` = P(No Charge), P(Incentive Charge), P(Always Charge)
  as a 3-way softmax head (Fig. 9's three outputs);
* a **propensity task** predicting ``g(X) = P(T=1 | X)``.

Counterfactual identification (Eqs. 13–16) ties products of the two tasks'
outputs to observable cell indicators. Two loss forms are provided:

* ``loss_form="nll"`` (default) — the maximum-likelihood form: the four
  observation cells partition the outcome space, so we minimise the
  categorical negative log-likelihood of the realised cell, with the three
  strata as a softmax head. Statistically efficient (it is the MLE of the
  same identification).
* ``loss_form="mse"`` — the paper's Eq. 23 as printed: a sum of MSE terms
  between probability products and cell indicators. Kept for paper-exact
  comparison; converges noticeably slower (see EXPERIMENTS.md).

The identification table both forms encode:

====  ==========================  =====================
loss  prediction                  observation indicator
====  ==========================  =====================
L1    ``f00 · g``                 ``Y=0 & T=1``
L2    ``f11 · (1−g)``             ``Y=1 & T=0``
L3    ``(f01 + f11) · g``         ``Y=1 & T=1``
L4    ``(f00 + f01) · (1−g)``     ``Y=0 & T=0``
Lp    ``g``                       ``T=1``
====  ==========================  =====================

Note on L4: the paper's Eq. 16/21 prints ``f00 + f11`` for the
``(Y=0, T=0)`` cell, but an untreated *Always* item charges (Y=1) while an
untreated *Incentive* item does not — the cell is reached by None and
Incentive, i.e. ``f00 + f01`` (equivalently ``1 − f11``, the complement of
Eq. 14). We default to the corrected identity; ``paper_eq16_compat=True``
reproduces the printed loss for comparison.

Architecture: one shared NCF (NeuMF) trunk with four heads — three strata
plus the propensity. The paper states "the two tasks in ECT-Price use NCF
as base models" (§V-A) and stresses "the multi-task learning approach";
sharing the embeddings/trunk is what gives CF-MTL its efficiency edge over
the OR baseline, whose μ₁/μ₀ models each see only their own treatment arm
(roughly half the data per parameter).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import nn
from ..errors import ConfigError, NotFittedError
from ..synth.charging import Stratum
from .dataset import PricingDataset
from .ncf import NcfConfig, NcfNetwork


@dataclass(frozen=True)
class EctPriceConfig:
    """Hyperparameters of the CF-MTL model.

    Defaults mirror the paper's §V-A training setup (Adam, lr 0.01, weight
    decay 1e-4, batch 64) at CPU-friendly sizes.
    """

    embedding_dim: int = 8
    hidden_sizes: tuple[int, ...] = (32, 16)
    learning_rate: float = 0.01
    weight_decay: float = 0.0
    batch_size: int = 128
    epochs: int = 30
    loss_form: str = "nll"
    paper_eq16_compat: bool = False

    def __post_init__(self) -> None:
        if self.embedding_dim <= 0:
            raise ConfigError("embedding_dim must be positive")
        if any(h <= 0 for h in self.hidden_sizes):
            raise ConfigError("hidden sizes must be positive")
        if self.learning_rate <= 0:
            raise ConfigError("learning_rate must be positive")
        if self.weight_decay < 0:
            raise ConfigError("weight_decay must be non-negative")
        if self.batch_size <= 0 or self.epochs <= 0:
            raise ConfigError("batch_size and epochs must be positive")
        if self.loss_form not in ("nll", "mse"):
            raise ConfigError(
                f"loss_form must be 'nll' or 'mse', got {self.loss_form!r}"
            )


def _shared_network(
    n_stations: int,
    n_time_ids: int,
    config: EctPriceConfig,
    rng: np.random.Generator,
) -> NcfNetwork:
    """The shared multi-task NCF: heads [f00, f01, f11, g]."""
    ncf_config = NcfConfig(
        embedding_dim=config.embedding_dim,
        hidden_sizes=config.hidden_sizes,
        learning_rate=config.learning_rate,
        weight_decay=config.weight_decay,
        batch_size=config.batch_size,
        epochs=config.epochs,
    )
    return NcfNetwork(n_stations, n_time_ids, ncf_config, rng, n_outputs=4)


class EctPriceModel:
    """The jointly-trained stratification + propensity model."""

    #: Softmax column order, aligned with the :class:`Stratum` enum.
    STRATA_ORDER = (Stratum.NONE, Stratum.INCENTIVE, Stratum.ALWAYS)

    def __init__(
        self,
        n_stations: int,
        n_time_ids: int,
        config: EctPriceConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or EctPriceConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.network = _shared_network(n_stations, n_time_ids, self.config, self._rng)
        self._optimizer = nn.Adam(
            self.network.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self._fitted = False

    # ------------------------------------------------------------------ #
    # Loss (Eq. 23)                                                        #
    # ------------------------------------------------------------------ #

    def _heads(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> tuple[nn.Tensor, nn.Tensor, nn.Tensor, nn.Tensor]:
        """Forward pass → (f00, f01, f11, g) as 1-D tensors."""
        batch = len(station_ids)
        logits = self.network(station_ids, time_ids)
        c0 = logits.select_columns(np.zeros(batch, dtype=int)).reshape(batch, 1)
        c1 = logits.select_columns(np.ones(batch, dtype=int)).reshape(batch, 1)
        c2 = logits.select_columns(np.full(batch, 2, dtype=int)).reshape(batch, 1)
        strata = nn.concat([c0, c1, c2], axis=1).softmax(axis=-1)
        f00 = strata.select_columns(np.zeros(batch, dtype=int))
        f01 = strata.select_columns(np.ones(batch, dtype=int))
        f11 = strata.select_columns(np.full(batch, 2, dtype=int))
        g = logits.select_columns(np.full(batch, 3, dtype=int)).sigmoid()
        return f00, f01, f11, g

    def loss(
        self,
        station_ids: np.ndarray,
        time_ids: np.ndarray,
        treated: np.ndarray,
        charged: np.ndarray,
    ) -> nn.Tensor:
        """The joint objective on one batch (Eq. 23 or its MLE form)."""
        treated = np.asarray(treated, dtype=float)
        charged = np.asarray(charged, dtype=float)
        f00, f01, f11, g = self._heads(station_ids, time_ids)

        y0t1 = nn.Tensor(((charged == 0) & (treated == 1)).astype(float))
        y1t0 = nn.Tensor(((charged == 1) & (treated == 0)).astype(float))
        y1t1 = nn.Tensor(((charged == 1) & (treated == 1)).astype(float))
        y0t0 = nn.Tensor(((charged == 0) & (treated == 0)).astype(float))

        if self.config.loss_form == "nll":
            p1 = (f00 * g).clip(1e-9, 1.0)
            p2 = (f11 * (1.0 - g)).clip(1e-9, 1.0)
            p3 = ((f01 + f11) * g).clip(1e-9, 1.0)
            p4 = ((f00 + f01) * (1.0 - g)).clip(1e-9, 1.0)
            nll = -(
                y0t1 * p1.log()
                + y1t0 * p2.log()
                + y1t1 * p3.log()
                + y0t0 * p4.log()
            )
            return nll.mean()

        l1 = nn.mse_loss(f00 * g, y0t1)
        l2 = nn.mse_loss(f11 * (1.0 - g), y1t0)
        l3 = nn.mse_loss((f01 + f11) * g, y1t1)
        if self.config.paper_eq16_compat:
            l4 = nn.mse_loss((f00 + f11) * (1.0 - g), y0t0)
        else:
            l4 = nn.mse_loss((f00 + f01) * (1.0 - g), y0t0)
        lp = nn.mse_loss(g, nn.Tensor(treated))
        return l1 + l2 + l3 + l4 + lp

    # ------------------------------------------------------------------ #
    # Training                                                             #
    # ------------------------------------------------------------------ #

    def fit(self, dataset: PricingDataset) -> list[float]:
        """Joint minimisation of Eq. 23; returns per-epoch mean losses."""
        history: list[float] = []
        for _ in range(self.config.epochs):
            epoch_loss = 0.0
            n_batches = 0
            for idx in dataset.batches(self.config.batch_size, self._rng):
                loss = self.loss(
                    dataset.station_ids[idx],
                    dataset.time_ids[idx],
                    dataset.treated[idx],
                    dataset.charged[idx],
                )
                self._optimizer.zero_grad()
                loss.backward()
                self._optimizer.step()
                epoch_loss += loss.item()
                n_batches += 1
            history.append(epoch_loss / max(n_batches, 1))
        self._fitted = True
        return history

    # ------------------------------------------------------------------ #
    # Inference                                                            #
    # ------------------------------------------------------------------ #

    def predict_strata(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> np.ndarray:
        """(n, 3) strata probabilities ordered [None, Incentive, Always]."""
        if not self._fitted:
            raise NotFittedError("EctPriceModel.predict_strata called before fit")
        self.network.eval()
        logits = self.network(
            np.asarray(station_ids, dtype=int), np.asarray(time_ids, dtype=int)
        ).numpy()
        self.network.train()
        strata = logits[:, :3]
        shifted = np.exp(strata - strata.max(axis=1, keepdims=True))
        return shifted / shifted.sum(axis=1, keepdims=True)

    def predict_strata_normalized(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> np.ndarray:
        """Alias of :meth:`predict_strata` (already a simplex distribution)."""
        return self.predict_strata(station_ids, time_ids)

    def predict_stratum(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> np.ndarray:
        """Argmax stratum per item, as :class:`Stratum` integer codes."""
        return self.predict_strata(station_ids, time_ids).argmax(axis=1)

    def predict_propensity(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> np.ndarray:
        """Estimated ``P(T=1 | X)`` per item."""
        if not self._fitted:
            raise NotFittedError("EctPriceModel.predict_propensity called before fit")
        self.network.eval()
        logits = self.network(
            np.asarray(station_ids, dtype=int), np.asarray(time_ids, dtype=int)
        ).numpy()
        self.network.train()
        clipped = np.clip(logits[:, 3], -60.0, 60.0)
        return 1.0 / (1.0 + np.exp(-clipped))
