"""Uplift-modeling baselines: OR, IPS, and DR estimators (§V-A).

The paper compares ECT-Price against three traditional uplift approaches,
all built on NCF base models:

* **OR** (outcome regression, "two-model"): fit ``μ₁(X) ≈ E[Y | T=1, X]``
  on treated items and ``μ₀(X) ≈ E[Y | T=0, X]`` on controls; the uplift is
  ``μ₁ − μ₀``.
* **IPS** (inverse propensity scoring): fit a propensity model ``e(X)``,
  form the transformed outcome ``Z = Y·T/e − Y·(1−T)/(1−e)`` (whose
  conditional expectation is the uplift under unconfoundedness), and
  regress ``Z`` on ``X``.
* **DR** (doubly robust): combine both — the pseudo-outcome
  ``Z = μ₁ − μ₀ + T(Y−μ₁)/e − (1−T)(Y−μ₀)/(1−e)`` is regressed on ``X``.

All three estimate only the *treatment effect* and cannot separate the
"Always Buyer" stratum (the paper's core criticism): an always-charging
item has near-zero uplift but high outcome levels, and under the
generator's confounding its estimated uplift is biased upward, so these
baselines waste discounts on Always items — visible in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, NotFittedError
from .dataset import PricingDataset
from .ncf import NcfConfig, NcfRegressor

#: Propensity estimates are clipped into this band before inverting.
PROPENSITY_CLIP = (0.02, 0.98)


@dataclass(frozen=True)
class UpliftPrediction:
    """Per-item outputs every baseline exposes for the discount policy.

    ``uplift`` estimates ``P(Y=1|do(T=1),X) − P(Y=1|do(T=0),X)``;
    ``baseline_outcome`` estimates ``P(Y=1|do(T=0),X)`` (the "always"
    signal, available only for OR and DR which model outcomes directly).
    """

    uplift: np.ndarray
    baseline_outcome: np.ndarray | None


class UpliftModel:
    """Interface shared by the OR / IPS / DR estimators."""

    name: str = "uplift"

    def fit(self, dataset: PricingDataset) -> None:
        """Train on observational data."""
        raise NotImplementedError

    def predict(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> UpliftPrediction:
        """Per-item uplift estimates."""
        raise NotImplementedError


class OutcomeRegression(UpliftModel):
    """The two-model OR estimator."""

    name = "OR"

    def __init__(
        self,
        n_stations: int,
        n_time_ids: int,
        config: NcfConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or NcfConfig()
        rng = rng if rng is not None else np.random.default_rng(0)
        self._mu1 = NcfRegressor(n_stations, n_time_ids, self.config, rng, binary=True)
        self._mu0 = NcfRegressor(n_stations, n_time_ids, self.config, rng, binary=True)
        self._fitted = False

    def fit(self, dataset: PricingDataset) -> None:
        treated = dataset.treated == 1
        if not treated.any() or treated.all():
            raise ConfigError("OR requires both treated and control items")
        t_set = dataset.subset(treated)
        c_set = dataset.subset(~treated)
        self._mu1.fit(t_set.station_ids, t_set.time_ids, t_set.charged)
        self._mu0.fit(c_set.station_ids, c_set.time_ids, c_set.charged)
        self._fitted = True

    def predict(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> UpliftPrediction:
        if not self._fitted:
            raise NotFittedError("OutcomeRegression.predict called before fit")
        mu1 = self._mu1.predict(station_ids, time_ids)
        mu0 = self._mu0.predict(station_ids, time_ids)
        return UpliftPrediction(uplift=mu1 - mu0, baseline_outcome=mu0)


class InversePropensityScoring(UpliftModel):
    """The transformed-outcome IPS estimator."""

    name = "IPS"

    def __init__(
        self,
        n_stations: int,
        n_time_ids: int,
        config: NcfConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or NcfConfig()
        rng = rng if rng is not None else np.random.default_rng(0)
        self._propensity = NcfRegressor(
            n_stations, n_time_ids, self.config, rng, binary=True
        )
        self._effect = NcfRegressor(
            n_stations, n_time_ids, self.config, rng, binary=False
        )
        self._fitted = False

    def fit(self, dataset: PricingDataset) -> None:
        self._propensity.fit(dataset.station_ids, dataset.time_ids, dataset.treated)
        e = np.clip(
            self._propensity.predict(dataset.station_ids, dataset.time_ids),
            *PROPENSITY_CLIP,
        )
        y = dataset.charged.astype(float)
        t = dataset.treated.astype(float)
        transformed = y * t / e - y * (1.0 - t) / (1.0 - e)
        self._effect.fit(dataset.station_ids, dataset.time_ids, transformed)
        self._fitted = True

    def predict(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> UpliftPrediction:
        if not self._fitted:
            raise NotFittedError("InversePropensityScoring.predict called before fit")
        return UpliftPrediction(
            uplift=self._effect.predict(station_ids, time_ids),
            baseline_outcome=None,
        )


class DoublyRobust(UpliftModel):
    """The AIPW / doubly-robust estimator."""

    name = "DR"

    def __init__(
        self,
        n_stations: int,
        n_time_ids: int,
        config: NcfConfig | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.config = config or NcfConfig()
        rng = rng if rng is not None else np.random.default_rng(0)
        self._mu1 = NcfRegressor(n_stations, n_time_ids, self.config, rng, binary=True)
        self._mu0 = NcfRegressor(n_stations, n_time_ids, self.config, rng, binary=True)
        self._propensity = NcfRegressor(
            n_stations, n_time_ids, self.config, rng, binary=True
        )
        self._effect = NcfRegressor(
            n_stations, n_time_ids, self.config, rng, binary=False
        )
        self._fitted = False

    def fit(self, dataset: PricingDataset) -> None:
        treated = dataset.treated == 1
        if not treated.any() or treated.all():
            raise ConfigError("DR requires both treated and control items")
        t_set = dataset.subset(treated)
        c_set = dataset.subset(~treated)
        self._mu1.fit(t_set.station_ids, t_set.time_ids, t_set.charged)
        self._mu0.fit(c_set.station_ids, c_set.time_ids, c_set.charged)
        self._propensity.fit(dataset.station_ids, dataset.time_ids, dataset.treated)

        e = np.clip(
            self._propensity.predict(dataset.station_ids, dataset.time_ids),
            *PROPENSITY_CLIP,
        )
        mu1 = self._mu1.predict(dataset.station_ids, dataset.time_ids)
        mu0 = self._mu0.predict(dataset.station_ids, dataset.time_ids)
        y = dataset.charged.astype(float)
        t = dataset.treated.astype(float)
        pseudo = (
            mu1
            - mu0
            + t * (y - mu1) / e
            - (1.0 - t) * (y - mu0) / (1.0 - e)
        )
        self._effect.fit(dataset.station_ids, dataset.time_ids, pseudo)
        self._fitted = True

    def predict(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> UpliftPrediction:
        if not self._fitted:
            raise NotFittedError("DoublyRobust.predict called before fit")
        mu0 = self._mu0.predict(station_ids, time_ids)
        return UpliftPrediction(
            uplift=self._effect.predict(station_ids, time_ids),
            baseline_outcome=mu0,
        )


def make_baseline(
    name: str,
    n_stations: int,
    n_time_ids: int,
    config: NcfConfig | None = None,
    rng: np.random.Generator | None = None,
) -> UpliftModel:
    """Factory keyed by the paper's method names (OR / IPS / DR)."""
    classes = {
        "OR": OutcomeRegression,
        "IPS": InversePropensityScoring,
        "DR": DoublyRobust,
    }
    if name not in classes:
        raise ConfigError(f"unknown baseline {name!r}; expected one of {sorted(classes)}")
    return classes[name](n_stations, n_time_ids, config, rng)
