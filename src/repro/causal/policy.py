"""Discount policies: turning model outputs into per-item decisions.

Protocol (reverse-engineered from Table II — see DESIGN.md §5): every
method ranks the test items by its own *expected discount reward* score and
discounts the top items under a **fixed shared budget** (all Table II rows
sum to the same 8,426 items), excluding items whose score is non-positive
(which is why OR's selection shrinks at 50–60 % discounts: its expected
reward ``û − c·(1 − û)`` goes negative for more items as ``c`` grows).

Scores
------
For an item with estimated probability ``p`` of being *Incentive Charge*
(ECT-Price) or estimated uplift ``u`` (baselines, clipped to [0, 1]), the
expected reward of discounting at level ``c`` under the Table II metric is

``score = p − c · (1 − p)``

— a correct incentive costs nothing and earns 1; anything else wastes ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..synth.charging import Stratum
from .baselines import UpliftModel
from .ect_price import EctPriceModel


@dataclass(frozen=True)
class DiscountDecision:
    """Per-item boolean decisions plus the scores behind them."""

    discounted: np.ndarray
    score: np.ndarray

    def __post_init__(self) -> None:
        if self.discounted.shape != self.score.shape:
            raise ConfigError("discounted and score must share a shape")

    @property
    def n_discounted(self) -> int:
        """How many items receive a discount."""
        return int(self.discounted.sum())


def expected_discount_reward(
    incentive_probability: np.ndarray, discount_level: float
) -> np.ndarray:
    """Table II expected reward of discounting: ``p − c·(1 − p)``."""
    if not 0.0 <= discount_level < 1.0:
        raise ConfigError(f"discount_level must be in [0, 1), got {discount_level}")
    p = np.clip(np.asarray(incentive_probability, dtype=float), 0.0, 1.0)
    return p - discount_level * (1.0 - p)


def select_with_budget(score: np.ndarray, budget: int | None) -> np.ndarray:
    """Boolean mask of items to discount: positive scores, top-``budget``.

    ``budget=None`` keeps every positive-score item (no cap).
    """
    score = np.asarray(score, dtype=float)
    positive = score > 0.0
    if budget is None or positive.sum() <= budget:
        return positive
    if budget < 0:
        raise ConfigError(f"budget must be non-negative, got {budget}")
    mask = np.zeros(len(score), dtype=bool)
    if budget == 0:
        return mask
    # Highest-score positive items first; stable under ties via argsort.
    candidate_idx = np.flatnonzero(positive)
    order = candidate_idx[np.argsort(-score[candidate_idx], kind="stable")]
    mask[order[:budget]] = True
    return mask


def _apply_score_offset(
    score: np.ndarray, score_offset: np.ndarray | None
) -> np.ndarray:
    """Subtract a per-item penalty (e.g. feeder congestion) from scores."""
    if score_offset is None:
        return score
    offset = np.asarray(score_offset, dtype=float)
    if offset.shape != score.shape:
        raise ConfigError(
            f"score_offset shape {offset.shape} does not match the "
            f"{score.shape} item set"
        )
    return score - offset


class DiscountPolicy:
    """Interface: items in, discount decisions out."""

    name: str = "policy"

    def incentive_probability(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> np.ndarray:
        """Each method's estimate of P(item is Incentive Charge)."""
        raise NotImplementedError

    def decide(
        self,
        station_ids: np.ndarray,
        time_ids: np.ndarray,
        *,
        discount_level: float = 0.0,
        budget: int | None = None,
        score_offset: np.ndarray | None = None,
    ) -> DiscountDecision:
        """Budgeted reward-ranked selection (the Table II protocol).

        ``score_offset`` is subtracted from every item's score before
        selection — the feeder-aware congestion penalty's entry point.
        ``None`` leaves the protocol untouched.
        """
        p = self.incentive_probability(station_ids, time_ids)
        score = expected_discount_reward(p, discount_level)
        score = _apply_score_offset(score, score_offset)
        return DiscountDecision(
            discounted=select_with_budget(score, budget), score=score
        )


class EctPricePolicy(DiscountPolicy):
    """ECT-Price: rank by the CF-MTL's predicted Incentive probability and
    explicitly *avoid Always Charge* items.

    The stratification head estimates P(Always) per item — information the
    uplift baselines do not have — and the paper's rule "gives discounts …
    to the Incentive Charge [items] and avoids the Always Charge [items]"
    is implemented as a hard veto on items whose predicted Always
    probability exceeds ``always_avoidance_threshold``.
    """

    name = "Ours"

    def __init__(
        self,
        model: EctPriceModel,
        *,
        always_avoidance_threshold: float = 0.5,
    ) -> None:
        if not 0.0 < always_avoidance_threshold <= 1.0:
            raise ConfigError(
                "always_avoidance_threshold must be in (0, 1], got "
                f"{always_avoidance_threshold}"
            )
        self.model = model
        self.always_avoidance_threshold = float(always_avoidance_threshold)

    def incentive_probability(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> np.ndarray:
        probs = self.model.predict_strata(station_ids, time_ids)
        return probs[:, int(Stratum.INCENTIVE)]

    def decide(
        self,
        station_ids: np.ndarray,
        time_ids: np.ndarray,
        *,
        discount_level: float = 0.0,
        budget: int | None = None,
        score_offset: np.ndarray | None = None,
    ) -> DiscountDecision:
        probs = self.model.predict_strata(station_ids, time_ids)
        p_inc = probs[:, int(Stratum.INCENTIVE)]
        p_alw = probs[:, int(Stratum.ALWAYS)]
        score = expected_discount_reward(p_inc, discount_level)
        score = np.where(p_alw > self.always_avoidance_threshold, -1.0, score)
        score = _apply_score_offset(score, score_offset)
        return DiscountDecision(
            discounted=select_with_budget(score, budget), score=score
        )


class UpliftPolicy(DiscountPolicy):
    """Baselines: the estimated uplift stands in for P(Incentive)."""

    def __init__(self, model: UpliftModel) -> None:
        self.model = model
        self.name = model.name

    def incentive_probability(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> np.ndarray:
        prediction = self.model.predict(station_ids, time_ids)
        return np.clip(prediction.uplift, 0.0, 1.0)


class EveningHeuristicPolicy(DiscountPolicy):
    """The operators' rule of thumb: discount the evening hours.

    This is the heuristic the historical logging policy leaned on
    (:meth:`~repro.synth.charging.ChargingBehaviorModel.propensity` boosts
    18:00–24:00) — the learned-vs-heuristic reference point for the
    fleet-scale pricing comparison. Time ids may carry the weekend
    crossing; only the hour-of-day component matters here.
    """

    name = "Evening"

    def __init__(self, evening_hours: tuple[int, int] = (18, 24)) -> None:
        start, end = evening_hours
        if not 0 <= start < end <= 24:
            raise ConfigError(
                f"evening_hours must satisfy 0 <= start < end <= 24, got "
                f"{evening_hours}"
            )
        self.evening_hours = (int(start), int(end))

    def incentive_probability(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> np.ndarray:
        start, end = self.evening_hours
        hours = np.asarray(time_ids, dtype=int) % 24
        return ((hours >= start) & (hours < end)).astype(float)


class OraclePolicy(DiscountPolicy):
    """Upper bound: knows the true strata (synthetic-data oracle)."""

    name = "Oracle"

    def __init__(self, true_strata: np.ndarray) -> None:
        self._strata = np.asarray(true_strata, dtype=int)

    def incentive_probability(
        self, station_ids: np.ndarray, time_ids: np.ndarray
    ) -> np.ndarray:
        if len(station_ids) != len(self._strata):
            raise ConfigError(
                "OraclePolicy was built for a different item set "
                f"({len(self._strata)} vs {len(station_ids)})"
            )
        return (self._strata == int(Stratum.INCENTIVE)).astype(float)


def discount_schedule_for_hub(
    policy: DiscountPolicy,
    station_id: int,
    time_ids_by_slot: np.ndarray,
    *,
    discount_level: float,
    budget_fraction: float | None = None,
    score_offset: np.ndarray | None = None,
) -> np.ndarray:
    """Per-slot discount fractions for one hub under a trained policy.

    ``time_ids_by_slot`` maps each simulation slot to its time-feature id;
    the returned array feeds :class:`~repro.hub.simulation.HubInputs`.
    ``budget_fraction`` optionally caps the share of slots discounted.
    ``score_offset`` (per slot) penalizes slots before selection — the
    feeder-congestion signal of the fleet pricing loop.
    """
    if not 0.0 <= discount_level < 1.0:
        raise ConfigError(f"discount_level must be in [0, 1), got {discount_level}")
    time_ids = np.asarray(time_ids_by_slot, dtype=int)
    stations = np.full(len(time_ids), station_id, dtype=int)
    budget = (
        None
        if budget_fraction is None
        else int(round(budget_fraction * len(time_ids)))
    )
    decision = policy.decide(
        stations,
        time_ids,
        discount_level=discount_level,
        budget=budget,
        score_offset=score_offset,
    )
    return np.where(decision.discounted, discount_level, 0.0)
