"""``repro.causal`` — ECT-Price and the uplift-modeling baselines.

Implements §IV-A of the paper: the CF-MTL stratification + propensity model
(:mod:`.ect_price`, Eqs. 13–23), the NCF base model and labeler
(:mod:`.ncf`), the OR / IPS / DR baselines (:mod:`.baselines`), discount
policies (:mod:`.policy`), and the verified Table II metric
(:mod:`.evaluation`).
"""

from .baselines import (
    DoublyRobust,
    InversePropensityScoring,
    OutcomeRegression,
    UpliftModel,
    UpliftPrediction,
    make_baseline,
)
from .dataset import (
    PricingDataset,
    dataset_from_log,
    time_ids_for_slots,
    train_test_split_by_day,
)
from .ect_price import EctPriceConfig, EctPriceModel
from .evaluation import DiscountOutcome, render_table, score_decision
from .ncf import NcfConfig, NcfNetwork, NcfRegressor, pretrain_rating_model
from .policy import (
    DiscountDecision,
    DiscountPolicy,
    EctPricePolicy,
    EveningHeuristicPolicy,
    OraclePolicy,
    UpliftPolicy,
    discount_schedule_for_hub,
)
from .strata import (
    Stratum,
    ground_truth_labels,
    heuristic_strata_labels,
    label_agreement,
)

__all__ = [
    "DiscountDecision",
    "DiscountOutcome",
    "DiscountPolicy",
    "DoublyRobust",
    "EctPriceConfig",
    "EctPriceModel",
    "EctPricePolicy",
    "EveningHeuristicPolicy",
    "InversePropensityScoring",
    "NcfConfig",
    "NcfNetwork",
    "NcfRegressor",
    "OraclePolicy",
    "OutcomeRegression",
    "PricingDataset",
    "Stratum",
    "UpliftModel",
    "UpliftPolicy",
    "UpliftPrediction",
    "dataset_from_log",
    "discount_schedule_for_hub",
    "ground_truth_labels",
    "heuristic_strata_labels",
    "label_agreement",
    "make_baseline",
    "pretrain_rating_model",
    "render_table",
    "score_decision",
    "time_ids_for_slots",
    "train_test_split_by_day",
]
