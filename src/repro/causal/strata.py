"""Strata definitions and the paper's NCF-based labeling heuristic.

The paper cannot observe counterfactuals, so it *labels* strata for
supervision (§V-A): every slot with a charging record is ``Y = 1``; an NCF
pre-trained on the records scores those items, the top half becomes
*Always Charge* and the bottom half *Incentive Charge*; everything else is
*No Charge*. Our synthetic generator knows the true latent strata, so both
the heuristic labels (paper-faithful) and the ground truth are available —
the gap between them is itself reported in the experiments.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from ..synth.charging import Stratum
from .dataset import PricingDataset
from .ncf import NcfConfig, NcfRegressor, pretrain_rating_model

__all__ = [
    "Stratum",
    "heuristic_strata_labels",
    "ground_truth_labels",
    "label_agreement",
]


def heuristic_strata_labels(
    dataset: PricingDataset,
    rng: np.random.Generator,
    *,
    ncf_config: NcfConfig | None = None,
    rating_model: NcfRegressor | None = None,
) -> np.ndarray:
    """The paper's labeling pipeline: NCF ratings split charged items.

    Returns an array of :class:`Stratum` values per item. Pass a pre-trained
    ``rating_model`` to reuse one labeler across splits (as the paper's
    single pre-training run does); otherwise one is trained on ``dataset``.
    """
    if len(dataset) == 0:
        return np.empty(0, dtype=int)
    model = rating_model or pretrain_rating_model(
        dataset, ncf_config or NcfConfig(), rng
    )
    labels = np.full(len(dataset), int(Stratum.NONE), dtype=int)
    charged_mask = dataset.charged == 1
    if not charged_mask.any():
        return labels

    ratings = model.predict(
        dataset.station_ids[charged_mask], dataset.time_ids[charged_mask]
    )
    # "we label half of the items with the highest predicted ratings as
    #  Always Charge and the remaining half as Incentive Charge"
    median = np.median(ratings)
    charged_labels = np.where(ratings >= median, int(Stratum.ALWAYS), int(Stratum.INCENTIVE))
    labels[charged_mask] = charged_labels
    return labels


def ground_truth_labels(dataset: PricingDataset) -> np.ndarray:
    """The generator's latent strata (evaluation-only oracle)."""
    if not dataset.has_ground_truth:
        raise DataError("dataset carries no ground-truth strata")
    return dataset.stratum.copy()


def label_agreement(labels_a: np.ndarray, labels_b: np.ndarray) -> float:
    """Fraction of items on which two labelings agree."""
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.shape != b.shape:
        raise DataError(f"label shapes differ: {a.shape} vs {b.shape}")
    if a.size == 0:
        return 1.0
    return float((a == b).mean())
