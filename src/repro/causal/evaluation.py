"""Table II evaluation: strata counts and the discount reward.

The published Table II pins the metric down exactly (DESIGN.md §5): for the
set ``D`` of items a method discounts, with true strata and discount level
``c``,

``Reward(D) = #{Incentive ∈ D} − c · (#{None ∈ D} + #{Always ∈ D})``

i.e. every correctly-incentivised charge is worth 1 and every wasted
discount (on an item that would have charged anyway, or not at all) costs
the discount fraction. This module computes those four columns for any
policy and renders the table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, DataError
from ..synth.charging import Stratum
from .policy import DiscountDecision


@dataclass(frozen=True)
class DiscountOutcome:
    """One Table II cell-group: counts of discounted items per true stratum."""

    method: str
    discount_level: float
    n_none: int
    n_incentive: int
    n_always: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.discount_level < 1.0:
            raise ConfigError(
                f"discount_level must be in [0, 1), got {self.discount_level}"
            )
        if min(self.n_none, self.n_incentive, self.n_always) < 0:
            raise ConfigError("counts must be non-negative")

    @property
    def n_discounted(self) -> int:
        """Total items given the discount."""
        return self.n_none + self.n_incentive + self.n_always

    @property
    def reward(self) -> float:
        """The verified Table II reward formula."""
        return self.n_incentive - self.discount_level * (self.n_none + self.n_always)


def score_decision(
    decision: DiscountDecision,
    true_strata: np.ndarray,
    *,
    method: str,
    discount_level: float,
) -> DiscountOutcome:
    """Score a policy's decisions against the true strata."""
    strata = np.asarray(true_strata, dtype=int)
    if strata.shape != decision.discounted.shape:
        raise DataError(
            f"strata shape {strata.shape} != decisions shape "
            f"{decision.discounted.shape}"
        )
    chosen = strata[decision.discounted]
    return DiscountOutcome(
        method=method,
        discount_level=discount_level,
        n_none=int((chosen == int(Stratum.NONE)).sum()),
        n_incentive=int((chosen == int(Stratum.INCENTIVE)).sum()),
        n_always=int((chosen == int(Stratum.ALWAYS)).sum()),
    )


def render_table(outcomes: list[DiscountOutcome]) -> str:
    """Format outcomes as the paper's Table II layout (text)."""
    if not outcomes:
        return "(no outcomes)"
    levels = sorted({o.discount_level for o in outcomes})
    methods: list[str] = []
    for outcome in outcomes:
        if outcome.method not in methods:
            methods.append(outcome.method)

    lines: list[str] = []
    header = f"{'Method':<8}" + "".join(
        f"| {int(level * 100):>2d}% None  Inc  Alw  Reward " for level in levels
    )
    lines.append(header)
    lines.append("-" * len(header))
    index = {(o.method, o.discount_level): o for o in outcomes}
    for method in methods:
        row = f"{method:<8}"
        for level in levels:
            outcome = index.get((method, level))
            if outcome is None:
                row += "| (missing)".ljust(30)
            else:
                row += (
                    f"| {outcome.n_none:>8d} {outcome.n_incentive:>4d} "
                    f"{outcome.n_always:>4d} {outcome.reward:>7.1f} "
                )
        lines.append(row)
    return "\n".join(lines)
