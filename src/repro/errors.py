"""Exception hierarchy for the ECT-Hub reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries. Subclasses mark which subsystem raised
the error; messages carry enough context to debug without a traceback.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class UnitsError(ReproError):
    """A quantity was supplied in the wrong unit or with an invalid value."""


class DataError(ReproError):
    """A synthetic dataset or trace is malformed or internally inconsistent."""


class EnergyModelError(ReproError):
    """A physical energy model was driven outside its valid envelope."""


class BatteryError(EnergyModelError):
    """Battery operated outside SoC / rate limits in strict mode."""


class GridError(EnergyModelError):
    """Grid interaction violated an operating rule (e.g. feed-in attempt)."""


class HubError(ReproError):
    """ECT-Hub composition or simulation failed an invariant."""


class ConstraintViolation(HubError):
    """A hard operating constraint (Eq. 5 / Eq. 6 of the paper) was violated."""


class ModelError(ReproError):
    """A learned model (NCF / CF-MTL / PPO) was misused or failed to fit."""


class NotFittedError(ModelError):
    """A model method requiring training was called before ``fit``."""


class EnvError(ReproError):
    """The RL environment was driven incorrectly (e.g. step before reset)."""


class ExperimentError(ReproError):
    """An experiment runner failed or an unknown experiment id was requested."""


class FleetError(ReproError):
    """The batched fleet engine was misconfigured or driven incorrectly."""


class ParallelError(ReproError):
    """A parallel sweep job failed; the message names the job's overrides.

    ``job_traceback`` carries the worker's formatted traceback text (the
    remote stack is otherwise lost when the exception is pickled back),
    so the CLI can show *where* in the worker the job died, not just
    which overrides it ran.
    """

    def __init__(self, message: str, *, job_traceback: str | None = None) -> None:
        super().__init__(message)
        self.job_traceback = job_traceback
