"""Base-station power model — Eq. 1 of the paper.

A 5G BS consists of a near-constant BBU draw plus an AAU draw that scales
with traffic (§II-B). Eq. 1 captures this as a linear ramp in the load rate
``α_t``:

``P_BS(t) = P_min + α_t · (P_max − P_min)``

(The paper's prose swaps the ``P_max``/``P_min`` labels; we follow the
formula, so ``P_min`` is the idle draw.) Defaults use the paper's 2–4 kW
single-BS range. A hub may aggregate several co-located BSs sharing one
battery point; :class:`BaseStationCluster` scales the ramp accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class BaseStationConfig:
    """Single-BS power envelope (kW)."""

    p_min_kw: float = 2.0
    p_max_kw: float = 4.0

    def __post_init__(self) -> None:
        if self.p_min_kw < 0:
            raise ConfigError(f"p_min_kw must be non-negative, got {self.p_min_kw}")
        if self.p_max_kw <= self.p_min_kw:
            raise ConfigError(
                f"p_max_kw ({self.p_max_kw}) must exceed p_min_kw ({self.p_min_kw})"
            )


class BaseStation:
    """One base station; power is Eq. 1 in the load rate."""

    def __init__(self, config: BaseStationConfig | None = None) -> None:
        self.config = config or BaseStationConfig()

    def power_kw(self, load_rate: np.ndarray | float) -> np.ndarray | float:
        """``P_BS`` for load rate(s) ``α`` in [0, 1]."""
        alpha = np.asarray(load_rate, dtype=float)
        if alpha.size and (alpha.min() < 0.0 or alpha.max() > 1.0):
            raise ConfigError("load_rate must lie in [0, 1]")
        cfg = self.config
        power = cfg.p_min_kw + alpha * (cfg.p_max_kw - cfg.p_min_kw)
        return power if np.ndim(load_rate) else float(power)


class BaseStationCluster:
    """Several co-located BSs sharing one hub battery point (Fig. 6)."""

    def __init__(self, n_stations: int, config: BaseStationConfig | None = None) -> None:
        if n_stations <= 0:
            raise ConfigError(f"n_stations must be positive, got {n_stations}")
        self.n_stations = int(n_stations)
        self.station = BaseStation(config)

    @property
    def config(self) -> BaseStationConfig:
        """The per-station power envelope."""
        return self.station.config

    def power_kw(self, load_rate: np.ndarray | float) -> np.ndarray | float:
        """Aggregate ``P_BS`` assuming the cluster shares the load rate."""
        return self.n_stations * self.station.power_kw(load_rate)

    @property
    def max_power_kw(self) -> float:
        """Worst-case aggregate draw (used for reserve sizing, Eq. 6)."""
        return self.n_stations * self.station.config.p_max_kw
