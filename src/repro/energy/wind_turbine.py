"""Wind turbine model.

A standard piecewise power curve converts hub-height wind speed into the
``P_WT(t)`` term of Eq. 7:

* below ``cut_in`` and above ``cut_out``: zero output;
* between ``cut_in`` and ``rated_speed``: cubic ramp
  ``rated · (v³ − v_ci³) / (v_r³ − v_ci³)``;
* between ``rated_speed`` and ``cut_out``: rated output.

The cubic region is what gives the WT trace in paper Fig. 2 its spiky,
hard-to-predict character.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class WindTurbineConfig:
    """Turbine power-curve parameters (speeds in m/s)."""

    rated_kw: float = 25.0
    cut_in_m_s: float = 3.0
    rated_speed_m_s: float = 12.0
    cut_out_m_s: float = 25.0

    def __post_init__(self) -> None:
        if self.rated_kw < 0:
            raise ConfigError(f"rated_kw must be non-negative, got {self.rated_kw}")
        if not 0.0 <= self.cut_in_m_s < self.rated_speed_m_s < self.cut_out_m_s:
            raise ConfigError(
                "speeds must satisfy 0 <= cut_in < rated_speed < cut_out, got "
                f"({self.cut_in_m_s}, {self.rated_speed_m_s}, {self.cut_out_m_s})"
            )


class WindTurbine:
    """A wind turbine producing ``P_WT(t)`` from wind speed."""

    def __init__(self, config: WindTurbineConfig | None = None) -> None:
        self.config = config or WindTurbineConfig()

    def power_kw(self, wind_speed_m_s: np.ndarray | float) -> np.ndarray | float:
        """Power output for the given wind speed (array-friendly)."""
        speed = np.asarray(wind_speed_m_s, dtype=float)
        if speed.size and speed.min() < 0:
            raise ConfigError("wind speed must be non-negative")
        cfg = self.config

        v3 = speed**3
        ci3 = cfg.cut_in_m_s**3
        r3 = cfg.rated_speed_m_s**3
        ramp = cfg.rated_kw * (v3 - ci3) / (r3 - ci3)

        power = np.where(
            (speed < cfg.cut_in_m_s) | (speed >= cfg.cut_out_m_s),
            0.0,
            np.where(speed >= cfg.rated_speed_m_s, cfg.rated_kw, np.clip(ramp, 0.0, cfg.rated_kw)),
        )
        return power if np.ndim(wind_speed_m_s) else float(power)
