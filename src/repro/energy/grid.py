"""Grid connection: RTP billing (Eq. 9) and blackout events (Eq. 6 context).

The grid supplies whatever residual power the hub needs (Eq. 7) at the
real-time price. Feeding power *back* is explicitly ruled out by the paper
(§I: grid-integration fluctuations make feed-in uneconomical), so a
negative residual is curtailed, never exported — attempting an export in
strict mode raises :class:`~repro.errors.GridError`.

Blackouts motivate the backup batteries: :class:`BlackoutModel` samples
rare outage windows whose duration matches the paper's grid recovery time
``T_r``; during an outage the grid supplies nothing and the battery's
reserve band (Eq. 6) must carry the base station.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError, GridError


@dataclass(frozen=True)
class GridConfig:
    """Grid interconnection parameters.

    Attributes
    ----------
    import_limit_kw:
        Maximum simultaneous draw (0 disables the check).
    allow_export:
        Paper-false: surplus is curtailed. Kept as a flag so the no-feed-in
        design decision is explicit and testable.
    """

    import_limit_kw: float = 0.0
    allow_export: bool = False

    def __post_init__(self) -> None:
        if self.import_limit_kw < 0:
            raise ConfigError("import_limit_kw must be non-negative")


class GridConnection:
    """Stateless billing and limit checks for grid imports."""

    def __init__(self, config: GridConfig | None = None) -> None:
        self.config = config or GridConfig()

    def draw_power(self, residual_kw: float, *, strict: bool = False) -> float:
        """Resolve a residual bus power into a grid import (``P_grid``).

        Positive residual → import from the grid (capped by the import
        limit). Negative residual → surplus; returns 0 (curtailment) unless
        exports are enabled. ``strict`` raises on surplus instead, for
        callers that must account for every kWh explicitly.
        """
        if residual_kw < 0:
            if self.config.allow_export:
                return float(residual_kw)
            if strict:
                raise GridError(
                    f"surplus of {-residual_kw:.3f} kW cannot be exported "
                    "(feed-in disabled per the paper)"
                )
            return 0.0
        limit = self.config.import_limit_kw
        if limit and residual_kw > limit:
            raise GridError(
                f"import of {residual_kw:.3f} kW exceeds the interconnection "
                f"limit of {limit:.3f} kW"
            )
        return float(residual_kw)

    def cost(self, power_kw: float, price_kwh: float, dt_h: float = 1.0) -> float:
        """Eq. 9: ``C_grid = P_grid · RTP`` over one slot."""
        if power_kw < 0:
            raise GridError(f"grid cost requires non-negative power, got {power_kw}")
        if price_kwh < 0:
            raise GridError(f"price must be non-negative, got {price_kwh}")
        if dt_h <= 0:
            raise GridError(f"dt_h must be positive, got {dt_h}")
        return power_kw * dt_h * price_kwh


@dataclass(frozen=True)
class BlackoutConfig:
    """Outage process parameters.

    Attributes
    ----------
    outage_probability_per_hour:
        Per-slot probability an outage begins.
    recovery_time_h:
        The paper's ``T_r`` — expected grid recovery time; outage durations
        are sampled uniformly in ``[1, 2·T_r − 1]`` so the mean is ``T_r``.
    """

    outage_probability_per_hour: float = 0.0005
    recovery_time_h: int = 4

    def __post_init__(self) -> None:
        if not 0.0 <= self.outage_probability_per_hour <= 1.0:
            raise ConfigError("outage_probability_per_hour must be in [0, 1]")
        if self.recovery_time_h < 1:
            raise ConfigError("recovery_time_h must be at least 1")


class BlackoutModel:
    """Samples outage masks over a horizon."""

    def __init__(self, config: BlackoutConfig | None = None) -> None:
        self.config = config or BlackoutConfig()

    def sample_outages(self, n_hours: int, rng: np.random.Generator) -> np.ndarray:
        """Boolean array: True where the grid is down."""
        if n_hours < 0:
            raise ConfigError(f"n_hours must be non-negative, got {n_hours}")
        cfg = self.config
        down = np.zeros(n_hours, dtype=bool)
        t = 0
        while t < n_hours:
            if rng.random() < cfg.outage_probability_per_hour:
                duration = int(rng.integers(1, 2 * cfg.recovery_time_h))
                down[t : t + duration] = True
                t += duration
            else:
                t += 1
        return down
