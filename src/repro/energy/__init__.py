"""``repro.energy`` — physical models of every hub component.

Implements the paper's system model (§III-B): the base station (Eq. 1),
the charging station (Eq. 2), the battery point (Eqs. 3–5), renewable
plants (the ``P_WT``/``P_PV`` terms of Eq. 7), grid billing (Eq. 9), and
the degradation process behind Fig. 4 and the ``c_BP`` cost.
"""

from .base_station import BaseStation, BaseStationCluster, BaseStationConfig
from .battery import (
    CHARGE,
    DISCHARGE,
    IDLE,
    BatteryConfig,
    BatteryPack,
    BatteryStepResult,
)
from .charging_station import ChargingStation, ChargingStationConfig
from .degradation import (
    DegradationConfig,
    capacity_fade,
    cell_voltage,
    operation_cost_per_slot,
    simulate_voltage_traces,
)
from .grid import (
    BlackoutConfig,
    BlackoutModel,
    GridConfig,
    GridConnection,
)
from .pv import PvArray, PvConfig
from .wind_turbine import WindTurbine, WindTurbineConfig

__all__ = [
    "CHARGE",
    "DISCHARGE",
    "IDLE",
    "BaseStation",
    "BaseStationCluster",
    "BaseStationConfig",
    "BatteryConfig",
    "BatteryPack",
    "BatteryStepResult",
    "BlackoutConfig",
    "BlackoutModel",
    "ChargingStation",
    "ChargingStationConfig",
    "DegradationConfig",
    "GridConfig",
    "GridConnection",
    "PvArray",
    "PvConfig",
    "WindTurbine",
    "WindTurbineConfig",
    "capacity_fade",
    "cell_voltage",
    "operation_cost_per_slot",
    "simulate_voltage_traces",
]
