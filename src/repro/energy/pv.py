"""Photovoltaic plant model.

Converts the weather feed's global horizontal irradiance into AC power with
the standard performance-ratio formulation:

``P = rated_kw · (GHI / 1000 W/m²) · performance_ratio``

clipped to the inverter rating. This is the ``P_PV(t)`` term of Eq. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class PvConfig:
    """PV plant parameters.

    Attributes
    ----------
    rated_kw:
        Nameplate DC rating at reference irradiance.
    performance_ratio:
        Lumped derating (soiling, wiring, inverter), typically 0.75–0.85.
    reference_irradiance_w_m2:
        Irradiance at which the plant produces ``rated_kw``.
    inverter_limit_kw:
        AC clip level; defaults to the DC rating when non-positive.
    """

    rated_kw: float = 20.0
    performance_ratio: float = 0.8
    reference_irradiance_w_m2: float = 1000.0
    inverter_limit_kw: float = 0.0

    def __post_init__(self) -> None:
        if self.rated_kw < 0:
            raise ConfigError(f"rated_kw must be non-negative, got {self.rated_kw}")
        if not 0.0 < self.performance_ratio <= 1.0:
            raise ConfigError(
                f"performance_ratio must be in (0, 1], got {self.performance_ratio}"
            )
        if self.reference_irradiance_w_m2 <= 0:
            raise ConfigError("reference_irradiance_w_m2 must be positive")
        if self.inverter_limit_kw < 0:
            raise ConfigError("inverter_limit_kw must be non-negative")

    @property
    def clip_kw(self) -> float:
        """Effective AC output ceiling."""
        return self.inverter_limit_kw if self.inverter_limit_kw > 0 else self.rated_kw


class PvArray:
    """A PV plant producing ``P_PV(t)`` from irradiance."""

    def __init__(self, config: PvConfig | None = None) -> None:
        self.config = config or PvConfig()

    def power_kw(self, irradiance_w_m2: np.ndarray | float) -> np.ndarray | float:
        """AC power for the given irradiance (array-friendly)."""
        ghi = np.asarray(irradiance_w_m2, dtype=float)
        if ghi.size and ghi.min() < 0:
            raise ConfigError("irradiance must be non-negative")
        cfg = self.config
        raw = cfg.rated_kw * cfg.performance_ratio * ghi / cfg.reference_irradiance_w_m2
        power = np.minimum(raw, cfg.clip_kw)
        return power if np.ndim(irradiance_w_m2) else float(power)
