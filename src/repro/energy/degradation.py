"""Battery degradation: calendar + cycle fade and the Fig. 4 voltage curves.

The paper motivates EV charging partly by battery self-degradation: backup
batteries fade even when idle (Fig. 4 shows the float voltage of two
lead-acid cells declining from ≈2.29 V to ≈2.10 V over 350 days, and a
~54 V battery group declining in step). Degradation also prices the
``c_BP`` per-slot operating cost in Eq. 8.

Model
-----
Capacity fade is the sum of a calendar term (time-driven, affects idle
packs) and a cycle term (throughput-driven):

``fade(t) = k_cal · t_days + k_cyc · equivalent_full_cycles(t)``

Float voltage maps affinely onto fade with additive measurement noise,
which reproduces Fig. 4's gently sloped noisy traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class DegradationConfig:
    """Calendar/cycle fade parameters and the voltage mapping.

    Attributes
    ----------
    calendar_fade_per_day:
        Fractional capacity lost per idle day (lead-acid float service).
    cycle_fade_per_efc:
        Fractional capacity lost per equivalent full cycle.
    cell_nominal_v:
        Fresh float voltage of a single 2 V-class cell (Fig. 4 left axis).
    cell_voltage_span_v:
        Voltage drop corresponding to fade going 0 → 1.
    cells_in_group:
        Series cells in the battery group (Fig. 4 right axis, ≈54 V ⇒ 24).
    voltage_noise_v:
        Std-dev of per-sample measurement noise on a single cell.
    """

    calendar_fade_per_day: float = 5.5e-4
    cycle_fade_per_efc: float = 4.0e-4
    cell_nominal_v: float = 2.29
    cell_voltage_span_v: float = 1.0
    cells_in_group: int = 24
    voltage_noise_v: float = 0.004

    def __post_init__(self) -> None:
        if self.calendar_fade_per_day < 0 or self.cycle_fade_per_efc < 0:
            raise ConfigError("fade coefficients must be non-negative")
        if self.cell_nominal_v <= 0 or self.cell_voltage_span_v <= 0:
            raise ConfigError("voltage parameters must be positive")
        if self.cells_in_group <= 0:
            raise ConfigError("cells_in_group must be positive")
        if self.voltage_noise_v < 0:
            raise ConfigError("voltage_noise_v must be non-negative")


def capacity_fade(
    config: DegradationConfig,
    *,
    days: float,
    equivalent_full_cycles: float = 0.0,
) -> float:
    """Fractional capacity fade after ``days`` and the given cycling."""
    if days < 0 or equivalent_full_cycles < 0:
        raise ConfigError("days and cycles must be non-negative")
    fade = (
        config.calendar_fade_per_day * days
        + config.cycle_fade_per_efc * equivalent_full_cycles
    )
    return float(min(fade, 1.0))


def cell_voltage(
    config: DegradationConfig,
    fade: np.ndarray | float,
) -> np.ndarray | float:
    """Float voltage of a single cell at the given fade level."""
    return config.cell_nominal_v - config.cell_voltage_span_v * np.asarray(fade, dtype=float)


def simulate_voltage_traces(
    n_days: int,
    rng: np.random.Generator,
    config: DegradationConfig | None = None,
    *,
    n_cells: int = 2,
    daily_cycles: float = 0.05,
) -> dict[str, np.ndarray]:
    """Daily voltage traces for individual cells and the series group (Fig. 4).

    Each cell gets a mildly different calendar rate (manufacturing spread);
    the group voltage is the sum over ``cells_in_group`` independent cells
    re-scaled from the two observed ones.

    Returns a dict with ``days``, ``cell_voltages`` of shape
    ``(n_cells, n_days)``, and ``group_voltage`` of shape ``(n_days,)``.
    """
    if n_days <= 0:
        raise ConfigError(f"n_days must be positive, got {n_days}")
    if n_cells <= 0:
        raise ConfigError(f"n_cells must be positive, got {n_cells}")
    if daily_cycles < 0:
        raise ConfigError("daily_cycles must be non-negative")
    config = config or DegradationConfig()

    days = np.arange(n_days, dtype=float)
    cell_voltages = np.empty((n_cells, n_days))
    for cell in range(n_cells):
        rate_scale = rng.uniform(0.85, 1.15)
        fade = np.minimum(
            config.calendar_fade_per_day * rate_scale * days
            + config.cycle_fade_per_efc * daily_cycles * days,
            1.0,
        )
        noise = rng.normal(0.0, config.voltage_noise_v, size=n_days)
        cell_voltages[cell] = cell_voltage(config, fade) + noise

    group_fade = np.minimum(
        config.calendar_fade_per_day * days
        + config.cycle_fade_per_efc * daily_cycles * days,
        1.0,
    )
    group_noise = rng.normal(
        0.0, config.voltage_noise_v * np.sqrt(config.cells_in_group), size=n_days
    )
    group_voltage = config.cells_in_group * cell_voltage(config, group_fade) + group_noise

    return {"days": days, "cell_voltages": cell_voltages, "group_voltage": group_voltage}


def operation_cost_per_slot(
    *,
    pack_capital_cost: float,
    capacity_kwh: float,
    config: DegradationConfig | None = None,
    dt_h: float = 1.0,
) -> float:
    """Derive the paper's ``c_BP`` (Eq. 8) from amortised cycle wear.

    One active slot at full rate moves roughly ``rate·dt`` kWh, costing
    ``pack_capital_cost · cycle_fade_per_efc · (rate·dt) / (2·capacity)``.
    The paper simply sets ``c_BP = 0.01``; this helper shows one defensible
    calibration and is exercised by the ablation benches.
    """
    if pack_capital_cost <= 0 or capacity_kwh <= 0 or dt_h <= 0:
        raise ConfigError("cost inputs must be positive")
    config = config or DegradationConfig()
    efc_per_slot = dt_h / 2.0  # full-rate slot relative to a full cycle, order-of-magnitude
    return pack_capital_cost * config.cycle_fade_per_efc * efc_per_slot / capacity_kwh
