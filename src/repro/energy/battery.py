"""Battery point (BP) model — Eqs. 3–5 of the paper.

The battery pack is the hub's central flexibility asset: it charges from
the grid/renewables (``S_BP = 1``), discharges to the BS + charging station
bus (``S_BP = −1``), or idles (``S_BP = 0``). State of charge follows
Eq. 4 with efficiency-scaled throughput, bounded by Eq. 5's
``[SoC_min, SoC_max]`` window.

Two efficiency conventions are supported (DESIGN.md §6):

* ``paper_exact=True`` reproduces Eq. 3 literally: the bus-side power is
  ``S_BP · η · R`` and SoC changes by exactly that amount (discharge is a
  lossless transfer at a derated rate).
* ``paper_exact=False`` (default) is the physical convention: charging
  stores ``η_ch · R_ch`` of the ``R_ch`` drawn at the bus; discharging
  delivers ``R_dch`` at the bus while drawing ``R_dch / η_dch`` from the
  cells.

Actions that would overshoot a SoC bound are *partially executed* (rate is
clipped to the available headroom) unless ``strict=True``, in which case
:class:`~repro.errors.BatteryError` is raised. Partial execution is what the
RL environment relies on: an infeasible action degrades gracefully to the
feasible fraction, and the true applied state is reported back.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BatteryError, ConfigError

#: Action codes matching the paper's ``S_BP``.
CHARGE = 1
IDLE = 0
DISCHARGE = -1

_VALID_ACTIONS = (DISCHARGE, IDLE, CHARGE)


@dataclass(frozen=True)
class BatteryConfig:
    """Battery pack parameters.

    Defaults follow the paper's feasibility discussion (§II-A): pack sizes
    of 200–600 kWh dwarf a single BS's 2–4 kW draw; we default to the small
    end.

    Attributes
    ----------
    capacity_kwh:
        Nameplate energy capacity.
    charge_rate_kw / discharge_rate_kw:
        Maximum bus-side power while charging / discharging (``R_ch`` /
        ``R_dch``).
    charge_efficiency / discharge_efficiency:
        ``η_ch`` / ``η_dch`` in (0, 1].
    soc_min_fraction / soc_max_fraction:
        Eq. 5's bounds as fractions of capacity. The lower bound doubles as
        the blackout reserve (Eq. 6) — see
        :func:`repro.hub.constraints.required_reserve_kwh`.
    paper_exact:
        Select the literal Eq. 3 arithmetic (see module docstring).
    """

    capacity_kwh: float = 200.0
    charge_rate_kw: float = 50.0
    discharge_rate_kw: float = 50.0
    charge_efficiency: float = 0.95
    discharge_efficiency: float = 0.95
    soc_min_fraction: float = 0.10
    soc_max_fraction: float = 0.95
    paper_exact: bool = False

    def __post_init__(self) -> None:
        if self.capacity_kwh <= 0:
            raise ConfigError(f"capacity_kwh must be positive, got {self.capacity_kwh}")
        if self.charge_rate_kw <= 0 or self.discharge_rate_kw <= 0:
            raise ConfigError("charge/discharge rates must be positive")
        for name in ("charge_efficiency", "discharge_efficiency"):
            eta = getattr(self, name)
            if not 0.0 < eta <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1], got {eta}")
        if not 0.0 <= self.soc_min_fraction < self.soc_max_fraction <= 1.0:
            raise ConfigError(
                "SoC bounds must satisfy 0 <= min < max <= 1, got "
                f"[{self.soc_min_fraction}, {self.soc_max_fraction}]"
            )

    @property
    def soc_min_kwh(self) -> float:
        """Lower SoC bound in kWh."""
        return self.soc_min_fraction * self.capacity_kwh

    @property
    def soc_max_kwh(self) -> float:
        """Upper SoC bound in kWh."""
        return self.soc_max_fraction * self.capacity_kwh


@dataclass(frozen=True)
class BatteryStepResult:
    """Outcome of one battery slot.

    Attributes
    ----------
    action:
        The action actually applied (may be :data:`IDLE` if the request was
        fully infeasible).
    bus_power_kw:
        Signed power at the hub bus: positive = the battery consumes
        (charging load, the paper's ``P_BP > 0``), negative = the battery
        supplies the bus.
    delta_soc_kwh:
        Change applied to the state of charge.
    loss_kwh:
        Conversion energy lost this slot.
    curtailed:
        True when the requested rate was clipped by a SoC bound.
    """

    action: int
    bus_power_kw: float
    delta_soc_kwh: float
    loss_kwh: float
    curtailed: bool


class BatteryPack:
    """Stateful battery pack implementing Eqs. 3–5.

    >>> pack = BatteryPack(BatteryConfig(), initial_soc_fraction=0.5)
    >>> result = pack.step(CHARGE, dt_h=1.0)
    >>> result.bus_power_kw
    50.0
    """

    def __init__(
        self,
        config: BatteryConfig | None = None,
        *,
        initial_soc_fraction: float = 0.5,
    ) -> None:
        self.config = config or BatteryConfig()
        if not 0.0 <= initial_soc_fraction <= 1.0:
            raise ConfigError(
                f"initial_soc_fraction must be in [0, 1], got {initial_soc_fraction}"
            )
        initial = initial_soc_fraction * self.config.capacity_kwh
        self._soc_kwh = float(
            min(max(initial, self.config.soc_min_kwh), self.config.soc_max_kwh)
        )
        self._throughput_kwh = 0.0
        self._cycles = 0.0

    # ------------------------------------------------------------------ #
    # State inspection                                                    #
    # ------------------------------------------------------------------ #

    @property
    def soc_kwh(self) -> float:
        """Current state of charge in kWh."""
        return self._soc_kwh

    @property
    def soc_fraction(self) -> float:
        """Current state of charge as a fraction of capacity."""
        return self._soc_kwh / self.config.capacity_kwh

    @property
    def throughput_kwh(self) -> float:
        """Cumulative absolute SoC movement (degradation driver)."""
        return self._throughput_kwh

    @property
    def equivalent_full_cycles(self) -> float:
        """Cumulative throughput expressed in full charge/discharge cycles."""
        return self._throughput_kwh / (2.0 * self.config.capacity_kwh)

    def headroom_kwh(self) -> float:
        """Energy the pack can still absorb before hitting ``SoC_max``."""
        return max(self.config.soc_max_kwh - self._soc_kwh, 0.0)

    def available_kwh(self) -> float:
        """Energy the pack can still release before hitting ``SoC_min``."""
        return max(self._soc_kwh - self.config.soc_min_kwh, 0.0)

    def reset(self, soc_fraction: float) -> None:
        """Reset SoC (clipped into the legal window) and clear counters."""
        if not 0.0 <= soc_fraction <= 1.0:
            raise ConfigError(f"soc_fraction must be in [0, 1], got {soc_fraction}")
        target = soc_fraction * self.config.capacity_kwh
        self._soc_kwh = float(
            min(max(target, self.config.soc_min_kwh), self.config.soc_max_kwh)
        )
        self._throughput_kwh = 0.0

    # ------------------------------------------------------------------ #
    # Dynamics                                                            #
    # ------------------------------------------------------------------ #

    def step(self, action: int, dt_h: float = 1.0, *, strict: bool = False) -> BatteryStepResult:
        """Advance one slot with the paper's ``S_BP`` action.

        Parameters
        ----------
        action:
            :data:`CHARGE`, :data:`IDLE`, or :data:`DISCHARGE`.
        dt_h:
            Slot length in hours.
        strict:
            Raise :class:`BatteryError` instead of clipping when the action
            cannot be executed at full rate.
        """
        if action not in _VALID_ACTIONS:
            raise BatteryError(f"invalid battery action {action}; expected -1, 0, or 1")
        if dt_h <= 0:
            raise BatteryError(f"dt_h must be positive, got {dt_h}")

        if action == IDLE:
            return BatteryStepResult(IDLE, 0.0, 0.0, 0.0, curtailed=False)
        if action == CHARGE:
            return self._charge(dt_h, strict)
        return self._discharge(dt_h, strict)

    def _charge(self, dt_h: float, strict: bool) -> BatteryStepResult:
        cfg = self.config
        eta = cfg.charge_efficiency
        requested_bus_kwh = cfg.charge_rate_kw * dt_h
        stored_requested = requested_bus_kwh * eta
        headroom = self.headroom_kwh()
        if stored_requested > headroom + 1e-12:
            if strict:
                raise BatteryError(
                    f"charge of {stored_requested:.3f} kWh exceeds headroom "
                    f"{headroom:.3f} kWh (SoC {self._soc_kwh:.3f}/{cfg.soc_max_kwh:.3f})"
                )
            stored = headroom
            curtailed = True
        else:
            stored = stored_requested
            curtailed = False
        if stored <= 0.0:
            return BatteryStepResult(IDLE, 0.0, 0.0, 0.0, curtailed=True)
        bus_kwh = stored / eta
        self._soc_kwh += stored
        self._throughput_kwh += stored
        return BatteryStepResult(
            action=CHARGE,
            bus_power_kw=bus_kwh / dt_h,
            delta_soc_kwh=stored,
            loss_kwh=bus_kwh - stored,
            curtailed=curtailed,
        )

    def _discharge(self, dt_h: float, strict: bool) -> BatteryStepResult:
        cfg = self.config
        eta = cfg.discharge_efficiency
        requested_bus_kwh = cfg.discharge_rate_kw * dt_h

        if cfg.paper_exact:
            # Eq. 3 literal: SoC moves by η·R, bus receives η·R.
            drawn_requested = requested_bus_kwh * eta
            bus_per_drawn = 1.0
        else:
            # Physical: bus receives R, cells provide R / η.
            drawn_requested = requested_bus_kwh / eta
            bus_per_drawn = eta

        available = self.available_kwh()
        if drawn_requested > available + 1e-12:
            if strict:
                raise BatteryError(
                    f"discharge of {drawn_requested:.3f} kWh exceeds available "
                    f"{available:.3f} kWh (SoC {self._soc_kwh:.3f}/{cfg.soc_min_kwh:.3f} min)"
                )
            drawn = available
            curtailed = True
        else:
            drawn = drawn_requested
            curtailed = False
        if drawn <= 0.0:
            return BatteryStepResult(IDLE, 0.0, 0.0, 0.0, curtailed=True)
        bus_kwh = drawn * bus_per_drawn
        self._soc_kwh -= drawn
        self._throughput_kwh += drawn
        return BatteryStepResult(
            action=DISCHARGE,
            bus_power_kw=-bus_kwh / dt_h,
            delta_soc_kwh=-drawn,
            loss_kwh=drawn - bus_kwh,
            curtailed=curtailed,
        )

    # ------------------------------------------------------------------ #
    # Emergency (blackout) service                                        #
    # ------------------------------------------------------------------ #

    def emergency_supply(self, demand_kwh: float) -> float:
        """Serve a blackout load, allowed to dip *below* ``SoC_min``.

        The Eq. 6 reserve exists exactly for this case: during an outage the
        pack may use the reserved band down to empty. Returns the energy
        actually delivered at the bus.
        """
        if demand_kwh < 0:
            raise BatteryError(f"demand_kwh must be non-negative, got {demand_kwh}")
        eta = 1.0 if self.config.paper_exact else self.config.discharge_efficiency
        drawn_needed = demand_kwh / eta
        drawn = min(drawn_needed, self._soc_kwh)
        self._soc_kwh -= drawn
        self._throughput_kwh += drawn
        return drawn * eta
