"""EV charging station (EVSE) model — Eq. 2 of the paper.

The paper models the charging station as a binary occupancy process:
``P_CS(t) = S_CS(t) · R_CS`` where ``S_CS ∈ {0, 1}`` and ``R_CS`` is the
charging rate. Revenue accrues at the selling price ``SRTP(t)`` (Eq. 11),
optionally discounted by ECT-Price.

The DC-direct design argument (§II-A: EVSE fed from the battery's DC bus
avoids rectifier losses) is modelled as a configurable delivery efficiency
that is higher when energy comes from the BP/renewables than via the grid's
AC path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError


@dataclass(frozen=True)
class ChargingStationConfig:
    """Charging-station parameters.

    Attributes
    ----------
    rate_kw:
        ``R_CS`` — the aggregate charging rate while occupied (default two
        60 kW DC ports, which lands daily hub profit in the paper's
        Fig. 13 band of roughly $300–560).
    base_price_kwh:
        Undiscounted selling price ``SRTP`` in $/kWh (public DC fast
        charging is typically $0.30–0.50/kWh).
    dc_path_efficiency:
        Delivery efficiency when fed from the DC bus (battery/PV).
    ac_path_efficiency:
        Delivery efficiency when fed from the grid AC path.
    """

    rate_kw: float = 120.0
    base_price_kwh: float = 0.45
    dc_path_efficiency: float = 0.97
    ac_path_efficiency: float = 0.92

    def __post_init__(self) -> None:
        if self.rate_kw <= 0:
            raise ConfigError(f"rate_kw must be positive, got {self.rate_kw}")
        if self.base_price_kwh <= 0:
            raise ConfigError(f"base_price_kwh must be positive, got {self.base_price_kwh}")
        for name in ("dc_path_efficiency", "ac_path_efficiency"):
            eta = getattr(self, name)
            if not 0.0 < eta <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1], got {eta}")


class ChargingStation:
    """One EVSE implementing Eq. 2 power and Eq. 11 revenue."""

    def __init__(self, config: ChargingStationConfig | None = None) -> None:
        self.config = config or ChargingStationConfig()

    def power_kw(self, occupied: np.ndarray | bool | int) -> np.ndarray | float:
        """``P_CS = S_CS · R_CS`` (array-friendly)."""
        state = np.asarray(occupied, dtype=float)
        if state.size and not np.isin(np.unique(state), (0.0, 1.0)).all():
            raise ConfigError("occupancy must be binary (0/1)")
        power = state * self.config.rate_kw
        return power if np.ndim(occupied) else float(power)

    def selling_price_kwh(self, discount_fraction: float = 0.0) -> float:
        """``SRTP`` after an optional ECT-Price discount."""
        if not 0.0 <= discount_fraction < 1.0:
            raise ConfigError(
                f"discount_fraction must be in [0, 1), got {discount_fraction}"
            )
        return self.config.base_price_kwh * (1.0 - discount_fraction)

    def revenue(
        self,
        occupied: bool | int,
        dt_h: float,
        *,
        discount_fraction: float = 0.0,
    ) -> float:
        """Revenue for one slot: ``P_CS · SRTP · dt`` (Eq. 11 summand)."""
        if dt_h <= 0:
            raise ConfigError(f"dt_h must be positive, got {dt_h}")
        power = self.power_kw(1 if occupied else 0)
        return power * dt_h * self.selling_price_kwh(discount_fraction)
