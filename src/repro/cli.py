"""Command-line entry point: regenerate any paper artifact.

Usage::

    ect-hub list
    ect-hub run table2 [--scale 1.0] [--seed 0] [--out results.json]
    ect-hub run-all [--scale 0.5] [--out results.json]
    ect-hub fleet --n-hubs 200 [--days 14] [--scheduler rule-based]
    ect-hub fleet --n-hubs 200 --n-feeders 8 --feeder-capacity 400 \\
        [--allocation proportional]

``--out PATH`` persists the experiment ``data`` dicts as JSON so results
can be diffed across runs and PRs.
"""

from __future__ import annotations

import argparse
import sys

from .errors import ReproError
from .experiments import available_experiments, run_experiment
from .experiments.base import write_results_json
from .experiments.fleet_sim import run as run_fleet
from .fleet.grid import ALLOCATION_POLICIES
from .fleet.schedulers import FLEET_SCHEDULERS


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="ect-hub",
        description="ECT-Hub reproduction: regenerate paper tables/figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=available_experiments())
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--out", type=str, default=None, help="write data as JSON")

    all_p = sub.add_parser("run-all", help="run every experiment")
    all_p.add_argument("--scale", type=float, default=1.0)
    all_p.add_argument("--seed", type=int, default=0)
    all_p.add_argument("--out", type=str, default=None, help="write data as JSON")

    fleet_p = sub.add_parser(
        "fleet", help="batch-simulate an N-hub fleet (vectorized engine)"
    )
    fleet_p.add_argument("--n-hubs", type=int, default=None)
    fleet_p.add_argument("--days", type=int, default=None)
    fleet_p.add_argument(
        "--scheduler", choices=sorted(FLEET_SCHEDULERS), default="rule-based"
    )
    fleet_p.add_argument(
        "--n-feeders",
        type=int,
        default=1,
        help="feeders hubs are round-robined over (shared-grid coupling)",
    )
    fleet_p.add_argument(
        "--feeder-capacity",
        type=float,
        default=None,
        help="per-feeder import capacity in kW (default: unlimited/uncoupled)",
    )
    fleet_p.add_argument(
        "--allocation",
        choices=list(ALLOCATION_POLICIES),
        default="proportional",
        help="contention policy when a feeder limit binds",
    )
    fleet_p.add_argument("--scale", type=float, default=1.0)
    fleet_p.add_argument("--seed", type=int, default=0)
    fleet_p.add_argument("--out", type=str, default=None, help="write data as JSON")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        print(f"ect-hub {args.command}: error: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0
    if args.command == "run":
        result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
        print(result.rendered())
        if args.out:
            print(f"wrote {write_results_json(result, args.out)}")
        return 0
    if args.command == "run-all":
        results = []
        for experiment_id in available_experiments():
            result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
            results.append(result)
            print(result.rendered())
            print()
        if args.out:
            print(f"wrote {write_results_json(results, args.out)}")
        return 0
    if args.command == "fleet":
        result = run_fleet(
            scale=args.scale,
            seed=args.seed,
            n_hubs=args.n_hubs,
            days=args.days,
            scheduler=args.scheduler,
            n_feeders=args.n_feeders,
            feeder_capacity_kw=args.feeder_capacity,
            allocation=args.allocation,
        )
        print(result.rendered())
        if args.out:
            print(f"wrote {write_results_json(result, args.out)}")
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
