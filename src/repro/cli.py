"""Command-line entry point: regenerate any paper artifact, run any spec.

Usage::

    ect-hub list
    ect-hub run table2 [--scale 1.0] [--seed 0] [--out results.json]
    ect-hub run-all [--scale 0.5] [--out results.json]

    ect-hub fleet --n-hubs 200 [--days 14] [--scheduler rule-based]
    ect-hub fleet --preset congested-city --set run.days=3
    ect-hub fleet --spec scenario.json --out results.json
    ect-hub fleet --preset congested-city --shards 8 --storage windowed
    ect-hub fleet --preset fleet-default --backend numba

    ect-hub train-fleet --n-hubs 12 --episodes 100
    ect-hub train-fleet --preset congested-city --set rl.train_episodes=50

    ect-hub price --n-hubs 100 [--methods none,evening,ours,or,ips,dr]
    ect-hub price --preset congested-city --set pricing.feeder_aware=true

    ect-hub presets [--show NAME] [--check]
    ect-hub sweep --preset fleet-default --param run.seed=0,1,2
    ect-hub sweep --spec sweep.json --out sweep.json

``fleet`` accepts either the legacy engine flags (a shim that folds them
into a :class:`~repro.spec.scenario.ScenarioSpec`) or a declarative
scenario via ``--spec FILE`` / ``--preset NAME`` plus dotted ``--set
key=value`` overrides. ``sweep`` expands a base spec × parameter grid and
runs every job. ``--out PATH`` persists experiment ``data`` dicts as JSON
so results can be diffed across runs and PRs.

Observability: every subcommand takes ``-v/--verbose`` and ``-q/--quiet``
(the :mod:`repro.telemetry.log` threshold); the run-shaped subcommands
additionally take ``--telemetry`` (collect + print a RunTelemetry
summary; with ``--out`` the record also lands in a ``*.telemetry.json``
sidecar) and ``--trace-out PATH`` (export the nested phase trace and
full record as JSON).
"""

from __future__ import annotations

import argparse
import sys

from .errors import ConfigError, ParallelError, ReproError
from .experiments import available_experiments, run_experiment
from .experiments.base import write_results_json
from .fleet.grid import ALLOCATION_POLICIES
from .fleet.schedulers import FLEET_SCHEDULERS
from .spec import (
    ScenarioSpec,
    SweepSpec,
    available_presets,
    get_preset,
    parse_assignments,
    parse_override_value,
    spec_from_fleet_flags,
    spec_from_price_flags,
    spec_from_train_fleet_flags,
    verify_roundtrips,
)
from .telemetry import (
    Telemetry,
    log,
    telemetry_sidecar_path,
    write_telemetry_json,
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="ect-hub",
        description="ECT-Hub reproduction: regenerate paper tables/figures.",
    )
    # Shared per-subcommand flags: verbosity on everything, telemetry on
    # the run-shaped subcommands (parents= so they sit after the
    # subcommand where users type them).
    verbosity = argparse.ArgumentParser(add_help=False)
    verbosity_g = verbosity.add_mutually_exclusive_group()
    verbosity_g.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="show debug-level log lines",
    )
    verbosity_g.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress info-level log lines (warnings/errors only)",
    )
    telemetry_args = argparse.ArgumentParser(add_help=False)
    telemetry_args.add_argument(
        "--telemetry",
        action="store_true",
        help="collect run telemetry (phase timings, engine counters) and "
        "print a summary; with --out, also write a *.telemetry.json sidecar",
    )
    telemetry_args.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the nested phase trace + RunTelemetry record as JSON "
        "(implies --telemetry)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list", help="list available experiment ids", parents=[verbosity]
    )

    run_p = sub.add_parser(
        "run",
        help="run one experiment",
        parents=[verbosity, telemetry_args],
    )
    run_p.add_argument("experiment", choices=available_experiments())
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for sweep-style experiments "
        "(0 = all cores; default: serial)",
    )
    run_p.add_argument("--out", type=str, default=None, help="write data as JSON")

    all_p = sub.add_parser(
        "run-all", help="run every experiment", parents=[verbosity]
    )
    all_p.add_argument("--scale", type=float, default=1.0)
    all_p.add_argument("--seed", type=int, default=0)
    all_p.add_argument("--out", type=str, default=None, help="write data as JSON")

    fleet_p = sub.add_parser(
        "fleet",
        help="batch-simulate an N-hub fleet (vectorized engine)",
        parents=[verbosity, telemetry_args],
    )
    spec_g = fleet_p.add_argument_group("declarative scenario")
    spec_g.add_argument(
        "--spec", type=str, default=None, help="scenario spec JSON file"
    )
    spec_g.add_argument(
        "--preset", type=str, default=None, help="named preset (see `presets`)"
    )
    spec_g.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="dotted override, e.g. --set grid.feeder_capacity_kw=400",
    )
    flag_g = fleet_p.add_argument_group(
        "engine flags (legacy shim; not combinable with --spec/--preset)"
    )
    flag_g.add_argument("--n-hubs", type=int, default=None)
    flag_g.add_argument("--days", type=int, default=None)
    flag_g.add_argument(
        "--scheduler", choices=sorted(FLEET_SCHEDULERS), default=None
    )
    flag_g.add_argument(
        "--n-feeders",
        type=int,
        default=None,
        help="feeders hubs are round-robined over (shared-grid coupling)",
    )
    flag_g.add_argument(
        "--feeder-capacity",
        type=float,
        default=None,
        help="per-feeder import capacity in kW (default: unlimited/uncoupled)",
    )
    flag_g.add_argument(
        "--allocation",
        choices=list(ALLOCATION_POLICIES),
        default=None,
        help="contention policy when a feeder limit binds",
    )
    fleet_p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition the fleet feeder-aware and step shards in worker "
        "processes (byte-identical results; default: the spec's run.shards)",
    )
    fleet_p.add_argument(
        "--storage",
        choices=("dense", "windowed"),
        default=None,
        help="cost-book layout: 'windowed' folds slots into running "
        "aggregates so memory stops scaling with the horizon "
        "(sugar for --set run.storage=...)",
    )
    fleet_p.add_argument(
        "--backend",
        choices=("numpy", "numba"),
        default=None,
        help="array backend the engine dispatches through: 'numpy' "
        "(reference, byte-identical) or 'numba' (optional JIT; falls "
        "back to numpy with a warning when the package is missing) "
        "(sugar for --set run.backend=...)",
    )
    fleet_p.add_argument("--scale", type=float, default=None)
    fleet_p.add_argument("--seed", type=int, default=None)
    fleet_p.add_argument("--out", type=str, default=None, help="write data as JSON")

    train_p = sub.add_parser(
        "train-fleet",
        help="train PPO on (n_hubs,) action batches over the fleet engine",
        parents=[verbosity, telemetry_args],
    )
    train_spec_g = train_p.add_argument_group("declarative scenario")
    train_spec_g.add_argument(
        "--spec", type=str, default=None, help="scenario spec JSON file"
    )
    train_spec_g.add_argument(
        "--preset", type=str, default=None, help="named preset (see `presets`)"
    )
    train_spec_g.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="dotted override, e.g. --set rl.train_episodes=100",
    )
    train_flag_g = train_p.add_argument_group(
        "schedule flags (shim; not combinable with --spec/--preset)"
    )
    train_flag_g.add_argument("--n-hubs", type=int, default=None)
    train_flag_g.add_argument("--days", type=int, default=None)
    train_flag_g.add_argument(
        "--episodes",
        type=int,
        default=None,
        help="PPO training episodes (one update per episode)",
    )
    train_flag_g.add_argument(
        "--eval-episodes",
        type=int,
        default=None,
        help="evaluation episodes before and after training",
    )
    train_p.add_argument("--scale", type=float, default=None)
    train_p.add_argument("--seed", type=int, default=None)
    train_p.add_argument("--out", type=str, default=None, help="write data as JSON")

    price_p = sub.add_parser(
        "price",
        help="compare discount pricing policies over one fleet (Table III)",
        parents=[verbosity, telemetry_args],
    )
    price_spec_g = price_p.add_argument_group("declarative scenario")
    price_spec_g.add_argument(
        "--spec", type=str, default=None, help="scenario spec JSON file"
    )
    price_spec_g.add_argument(
        "--preset", type=str, default=None, help="named preset (see `presets`)"
    )
    price_spec_g.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="dotted override, e.g. --set pricing.discount_level=0.3",
    )
    price_flag_g = price_p.add_argument_group(
        "pricing flags (shim; not combinable with --spec/--preset)"
    )
    price_flag_g.add_argument("--n-hubs", type=int, default=None)
    price_flag_g.add_argument("--days", type=int, default=None)
    price_flag_g.add_argument(
        "--train-days",
        type=int,
        default=None,
        help="simulated historical log length the policies train on",
    )
    price_flag_g.add_argument(
        "--epochs",
        type=int,
        default=None,
        help="ECT-Price training epochs (baselines split the same budget)",
    )
    price_flag_g.add_argument(
        "--discount",
        type=float,
        default=None,
        help="discount level in [0, 1) offered on selected hub-slots",
    )
    price_flag_g.add_argument(
        "--feeder-capacity",
        type=float,
        default=None,
        help="per-feeder import capacity in kW; also turns on feeder-aware "
        "pricing (default: unlimited/uncoupled)",
    )
    price_p.add_argument(
        "--methods",
        type=str,
        default=None,
        metavar="M1,M2,...",
        help="comma-separated policies to compare "
        "(default: none,evening,ours,or,ips,dr)",
    )
    price_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes, one method per job "
        "(0 = all cores; default: serial, byte-identical either way)",
    )
    price_p.add_argument("--scale", type=float, default=None)
    price_p.add_argument("--seed", type=int, default=None)
    price_p.add_argument("--out", type=str, default=None, help="write data as JSON")

    presets_p = sub.add_parser(
        "presets", help="list/inspect scenario presets", parents=[verbosity]
    )
    presets_p.add_argument(
        "--show", type=str, default=None, metavar="NAME", help="print a preset as JSON"
    )
    presets_p.add_argument(
        "--check",
        action="store_true",
        help="round-trip and compile every preset (CI smoke check)",
    )

    sweep_p = sub.add_parser(
        "sweep",
        help="expand a base spec x parameter grid and run every job",
        parents=[verbosity, telemetry_args],
    )
    sweep_p.add_argument(
        "--spec", type=str, default=None, help="SweepSpec JSON file"
    )
    sweep_p.add_argument(
        "--preset", type=str, default=None, help="base scenario from a preset"
    )
    sweep_p.add_argument(
        "--base-spec", type=str, default=None, help="base scenario JSON file"
    )
    sweep_p.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="dotted override applied to the base before expansion",
    )
    sweep_p.add_argument(
        "--param",
        dest="params",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="grid axis, e.g. --param run.seed=0,1,2 (repeatable)",
    )
    sweep_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (0 = all cores; default: serial, "
        "byte-identical results either way)",
    )
    sweep_p.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="jobs per worker task (default: ~4 chunks per worker; bigger "
        "chunks amortise submit overhead and assembly recompiles)",
    )
    sweep_p.add_argument("--out", type=str, default=None, help="write data as JSON")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns the process exit code."""
    args = build_parser().parse_args(argv)
    log.configure(
        verbose=getattr(args, "verbose", False),
        quiet=getattr(args, "quiet", False),
    )
    try:
        return _dispatch(args)
    except ReproError as error:
        log.error(f"ect-hub {args.command}: error: {error}")
        if isinstance(error, ParallelError) and error.job_traceback:
            log.error("worker traceback (job-side):\n" + error.job_traceback)
        return 1


def _telemetry_session(args: argparse.Namespace) -> Telemetry | None:
    """The run's telemetry session, or ``None`` when not requested."""
    if getattr(args, "telemetry", False) or getattr(args, "trace_out", None):
        return Telemetry()
    return None


def _emit_telemetry(
    telemetry: Telemetry | None, args: argparse.Namespace
) -> None:
    """Print the telemetry summary and write the requested export files.

    Called after the run (and, for sweeps, after job records have been
    absorbed), so the session snapshot is the complete RunTelemetry
    record at this point.
    """
    if telemetry is None:
        return
    for line in telemetry.summary_lines():
        log.info(line)
    record = telemetry.to_dict()
    if getattr(args, "trace_out", None):
        log.info(f"wrote {write_telemetry_json(record, args.trace_out)}")
    if getattr(args, "out", None):
        sidecar = telemetry_sidecar_path(args.out)
        log.info(f"wrote {write_telemetry_json(record, sidecar)}")


def _resolve_spec_args(
    args: argparse.Namespace,
    shim_flags: dict[str, object],
    build_shim,
    override_hint: str,
) -> ScenarioSpec:
    """Shared ``--spec/--preset/--set`` vs engine-flag resolution.

    ``shim_flags`` maps flag spellings to parsed values (``None`` =
    unset); declarative mode rejects any set flag with ``override_hint``
    as the suggested ``--set`` replacement, flag mode calls
    ``build_shim(scale, seed)`` to fold them into a spec.
    """
    declarative = args.spec is not None or args.preset is not None
    if args.spec is not None and args.preset is not None:
        raise ConfigError("--spec and --preset are mutually exclusive")
    if declarative:
        used = sorted(
            name for name, value in shim_flags.items() if value is not None
        )
        if used:
            raise ConfigError(
                f"{', '.join(used)} cannot be combined with --spec/--preset; "
                f"use --set overrides instead (e.g. --set {override_hint})"
            )
        spec = (
            ScenarioSpec.load(args.spec)
            if args.spec is not None
            else get_preset(args.preset)
        )
        sugar: dict[str, object] = {}
        if args.scale is not None:
            sugar["run.scale"] = args.scale
        if args.seed is not None:
            sugar["run.seed"] = args.seed
        if sugar:
            spec = spec.with_overrides(sugar)
    else:
        spec = build_shim(
            scale=args.scale if args.scale is not None else 1.0,
            seed=args.seed if args.seed is not None else 0,
        )
    if args.overrides:
        spec = spec.with_overrides(parse_assignments(args.overrides))
    return spec


def _fleet_spec(args: argparse.Namespace) -> ScenarioSpec:
    """Resolve the ``fleet`` subcommand's arguments into one spec."""
    return _resolve_spec_args(
        args,
        {
            "--n-hubs": args.n_hubs,
            "--days": args.days,
            "--scheduler": args.scheduler,
            "--n-feeders": args.n_feeders,
            "--feeder-capacity": args.feeder_capacity,
            "--allocation": args.allocation,
        },
        lambda *, scale, seed: spec_from_fleet_flags(
            scale=scale,
            seed=seed,
            n_hubs=args.n_hubs,
            days=args.days,
            scheduler=args.scheduler if args.scheduler is not None else "rule-based",
            n_feeders=args.n_feeders if args.n_feeders is not None else 1,
            feeder_capacity_kw=args.feeder_capacity,
            allocation=args.allocation if args.allocation is not None else "proportional",
        ),
        "fleet.n_hubs=48",
    )


def _train_fleet_spec(args: argparse.Namespace) -> ScenarioSpec:
    """Resolve the ``train-fleet`` subcommand's arguments into one spec."""
    return _resolve_spec_args(
        args,
        {
            "--n-hubs": args.n_hubs,
            "--days": args.days,
            "--episodes": args.episodes,
            "--eval-episodes": args.eval_episodes,
        },
        lambda *, scale, seed: spec_from_train_fleet_flags(
            scale=scale,
            seed=seed,
            n_hubs=args.n_hubs,
            days=args.days,
            train_episodes=args.episodes,
            eval_episodes=args.eval_episodes,
        ),
        "rl.train_episodes=20",
    )


def _price_spec(args: argparse.Namespace) -> ScenarioSpec:
    """Resolve the ``price`` subcommand's arguments into one spec."""
    return _resolve_spec_args(
        args,
        {
            "--n-hubs": args.n_hubs,
            "--days": args.days,
            "--train-days": args.train_days,
            "--epochs": args.epochs,
            "--discount": args.discount,
            "--feeder-capacity": args.feeder_capacity,
        },
        lambda *, scale, seed: spec_from_price_flags(
            scale=scale,
            seed=seed,
            n_hubs=args.n_hubs,
            days=args.days,
            train_days=args.train_days,
            epochs=args.epochs,
            discount_level=args.discount,
            feeder_aware=args.feeder_capacity is not None,
            feeder_capacity_kw=args.feeder_capacity,
        ),
        "pricing.discount_level=0.3",
    )


def _price_methods(args: argparse.Namespace) -> tuple[str, ...] | None:
    """Parse ``--methods M1,M2,...`` (``None`` = the default lineup)."""
    if args.methods is None:
        return None
    methods = tuple(
        name.strip() for name in args.methods.split(",") if name.strip()
    )
    if not methods:
        raise ConfigError("--methods needs at least one policy name")
    return methods


def _sweep_spec(args: argparse.Namespace) -> SweepSpec:
    """Resolve the ``sweep`` subcommand's arguments into one SweepSpec."""
    sources = [args.spec, args.preset, args.base_spec]
    if sum(source is not None for source in sources) != 1:
        raise ConfigError(
            "sweep needs exactly one of --spec, --preset, or --base-spec"
        )
    if args.spec is not None:
        sweep = SweepSpec.load(args.spec)
        if args.overrides or args.params:
            raise ConfigError(
                "--set/--param cannot be combined with a full --spec sweep file"
            )
        return sweep
    base = (
        get_preset(args.preset)
        if args.preset is not None
        else ScenarioSpec.load(args.base_spec)
    )
    if args.overrides:
        base = base.with_overrides(parse_assignments(args.overrides))
    if not args.params:
        raise ConfigError("sweep needs at least one --param KEY=V1,V2,... axis")
    parameters: dict[str, tuple] = {}
    for raw in args.params:
        key, sep, values = raw.partition("=")
        if not sep or not key or not values:
            raise ConfigError(f"--param {raw!r} must look like key.path=v1,v2,...")
        parameters[key] = tuple(
            parse_override_value(value) for value in values.split(",")
        )
    return SweepSpec(base=base, parameters=parameters, name=f"{base.name}-sweep")


def _dispatch(args: argparse.Namespace) -> int:
    # Local import: repro.api pulls in the experiment registry package,
    # which imports this module's siblings; keep CLI start-up light.
    from . import api

    if args.command == "list":
        for experiment_id in available_experiments():
            log.info(experiment_id)
        return 0
    if args.command == "run":
        telemetry = _telemetry_session(args)
        result = run_experiment(
            args.experiment,
            scale=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            telemetry=telemetry,
        )
        log.info(result.rendered())
        _emit_telemetry(telemetry, args)
        if args.out:
            log.info(f"wrote {write_results_json(result, args.out)}")
        return 0
    if args.command == "run-all":
        results = []
        for experiment_id in available_experiments():
            result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
            results.append(result)
            log.info(result.rendered())
            log.info("")
        if args.out:
            log.info(f"wrote {write_results_json(results, args.out)}")
        return 0
    if args.command == "fleet":
        telemetry = _telemetry_session(args)
        spec = _fleet_spec(args)
        if args.storage is not None:
            spec = spec.with_overrides({"run.storage": args.storage})
        if args.backend is not None:
            spec = spec.with_overrides({"run.backend": args.backend})
        # --shards stays an api.run *argument* (not a spec override) so
        # the exported data["spec"] — and therefore the whole --out
        # payload — is byte-identical whatever the shard count.
        result = api.run(spec, telemetry=telemetry, shards=args.shards)
        log.info(result.rendered())
        _emit_telemetry(telemetry, args)
        if args.out:
            log.info(f"wrote {write_results_json(result, args.out)}")
        return 0
    if args.command == "train-fleet":
        telemetry = _telemetry_session(args)
        result = api.train_fleet(_train_fleet_spec(args), telemetry=telemetry)
        log.info(result.rendered())
        _emit_telemetry(telemetry, args)
        if args.out:
            log.info(f"wrote {write_results_json(result, args.out)}")
        return 0
    if args.command == "price":
        telemetry = _telemetry_session(args)
        result = api.run_pricing(
            _price_spec(args),
            methods=_price_methods(args),
            jobs=args.jobs,
            telemetry=telemetry,
        )
        log.info(result.rendered())
        _emit_telemetry(telemetry, args)
        if args.out:
            log.info(f"wrote {write_results_json(result, args.out)}")
        return 0
    if args.command == "presets":
        if args.check:
            names = verify_roundtrips(build_specs=True)
            log.info(f"ok: {len(names)} presets round-trip and compile")
            return 0
        if args.show is not None:
            log.info(get_preset(args.show).to_json())
            return 0
        for name in available_presets():
            log.info(f"{name:<24} {get_preset(name).description}")
        return 0
    if args.command == "sweep":
        telemetry = _telemetry_session(args)
        sweep = _sweep_spec(args)
        jobs = sweep.jobs()
        log.info(f"sweep {sweep.name}: {len(jobs)} jobs over {sweep.base.name!r}")
        results = api.run_sweep(
            sweep,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
            telemetry=telemetry,
        )
        for job, result in zip(jobs, results):
            data = result.data
            label = job.label() or "(base)"
            log.info(
                f"  [{job.index}] {label}: profit ${data['network_profit']:,.0f}, "
                f"unserved {data['network_unserved_kwh']:,.1f} kWh, "
                f"curtailed {data['import_shortfall_kwh']:,.1f} kWh"
            )
        _emit_telemetry(telemetry, args)
        if args.out:
            log.info(f"wrote {write_results_json(results, args.out)}")
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
