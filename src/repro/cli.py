"""Command-line entry point: regenerate any paper artifact.

Usage::

    ect-hub list
    ect-hub run table2 [--scale 1.0] [--seed 0]
    ect-hub run-all [--scale 0.5]
"""

from __future__ import annotations

import argparse
import sys

from .experiments import available_experiments, run_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="ect-hub",
        description="ECT-Hub reproduction: regenerate paper tables/figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", choices=available_experiments())
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--seed", type=int, default=0)

    all_p = sub.add_parser("run-all", help="run every experiment")
    all_p.add_argument("--scale", type=float, default=1.0)
    all_p.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI main; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0
    if args.command == "run":
        result = run_experiment(args.experiment, scale=args.scale, seed=args.seed)
        print(result.rendered())
        return 0
    if args.command == "run-all":
        for experiment_id in available_experiments():
            result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
            print(result.rendered())
            print()
        return 0
    return 2


if __name__ == "__main__":
    sys.exit(main())
