"""Synthetic wind speed (NSRDB substitute).

Hourly wind speed is generated as a Weibull-marginal AR(1) process: a
Gaussian AR(1) series is mapped through its own CDF to a uniform, then
through the inverse Weibull CDF. This gives the right marginal distribution
(Weibull with shape ≈ 2 is the standard wind-resource model) while keeping
hour-to-hour persistence — the gusty volatility that paper Fig. 2 shows in
the WT power trace.

A mild diurnal modulation (stronger afternoon winds, typical of surface
stations) is applied multiplicatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from ..errors import ConfigError
from ..timeutils import SlotCalendar


@dataclass(frozen=True)
class WindConfig:
    """Parameters of the synthetic wind-speed model.

    Attributes
    ----------
    weibull_shape:
        Weibull ``k``; ≈2 (Rayleigh) for typical sites.
    weibull_scale_m_s:
        Weibull ``λ`` in m/s; sets the mean resource level.
    persistence:
        AR(1) coefficient of the latent Gaussian driver.
    diurnal_amplitude:
        Fractional amplitude of the afternoon-peaking diurnal cycle
        (0 disables it).
    diurnal_peak_hour:
        Hour of day of maximum diurnal boost.
    """

    weibull_shape: float = 2.0
    weibull_scale_m_s: float = 7.5
    persistence: float = 0.85
    diurnal_amplitude: float = 0.15
    diurnal_peak_hour: float = 15.0

    def __post_init__(self) -> None:
        if self.weibull_shape <= 0:
            raise ConfigError(f"weibull_shape must be positive, got {self.weibull_shape}")
        if self.weibull_scale_m_s <= 0:
            raise ConfigError(
                f"weibull_scale_m_s must be positive, got {self.weibull_scale_m_s}"
            )
        if not 0.0 <= self.persistence < 1.0:
            raise ConfigError(f"persistence must be in [0, 1), got {self.persistence}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if not 0.0 <= self.diurnal_peak_hour < 24.0:
            raise ConfigError(
                f"diurnal_peak_hour must be in [0, 24), got {self.diurnal_peak_hour}"
            )


def _gaussian_ar1(n: int, phi: float, rng: np.random.Generator) -> np.ndarray:
    """Stationary unit-variance Gaussian AR(1) series."""
    series = np.empty(n)
    innovation_std = np.sqrt(1.0 - phi**2)
    state = rng.normal(0.0, 1.0)
    for t in range(n):
        state = phi * state + rng.normal(0.0, innovation_std)
        series[t] = state
    return series


def generate_wind_speed(
    n_hours: int,
    config: WindConfig,
    rng: np.random.Generator,
    *,
    calendar: SlotCalendar | None = None,
) -> np.ndarray:
    """Hourly wind-speed trace in m/s of length ``n_hours``."""
    if n_hours < 0:
        raise ConfigError(f"n_hours must be non-negative, got {n_hours}")
    if n_hours == 0:
        return np.empty(0)
    calendar = calendar or SlotCalendar()

    gaussian = _gaussian_ar1(n_hours, config.persistence, rng)
    # Probability-integral transform: Gaussian -> uniform -> Weibull marginal.
    uniform = np.clip(special.ndtr(gaussian), 1e-12, 1.0 - 1e-12)
    speeds = config.weibull_scale_m_s * (-np.log1p(-uniform)) ** (1.0 / config.weibull_shape)

    if config.diurnal_amplitude > 0.0:
        hod = np.asarray(calendar.hour_of_day(np.arange(n_hours)), dtype=float)
        phase = 2.0 * np.pi * (hod - config.diurnal_peak_hour) / 24.0
        speeds = speeds * (1.0 + config.diurnal_amplitude * np.cos(phase))
    return np.maximum(speeds, 0.0)


def weibull_mean(config: WindConfig) -> float:
    """Analytic mean of the configured Weibull marginal (m/s)."""
    return float(
        config.weibull_scale_m_s * special.gamma(1.0 + 1.0 / config.weibull_shape)
    )
