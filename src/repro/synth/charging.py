"""Synthetic EV charging behaviour with latent causal strata.

This replaces the paper's proprietary dataset (3 years × 12 campus charging
stations, 70k+ session records) with a *generative causal model* that
realises the paper's Fig. 8 diagram exactly:

* every (station, slot) item carries a **latent stratum** ``Z`` —
  *No Charge*, *Incentive Charge*, or *Always Charge* (§IV-A);
* a historical **logging policy** assigns the treatment ``T`` (a price
  discount) with a feature- and confounder-dependent propensity;
* the **outcome** ``Y`` (does an EV charge this slot?) follows the stratum
  semantics: Always ⇒ Y=1 regardless of T; Incentive ⇒ Y=T; None ⇒ Y=0;
* an **unmeasured confounder** ``U`` (a daily weather/holiday effect)
  shifts both the propensity and the activity level, so naive correlational
  estimators are biased exactly as the paper argues.

Strata probabilities vary by hour of day and are calibrated to the paper's
Fig. 12 pies: *Incentive Charge* concentrates in 18:00–24:00 (≈41 %) while
*Always Charge* dominates daytime. Aggregate session counts reproduce the
diurnal usage variation of Fig. 3.

Cells are **typed**: each (station, hour-of-day, weekend) cell draws a
persistent *type* once — habitual (realises Always/None), price-sensitive
(realises Incentive/None), or dead (always None) — and each day the cell
is *active* with probability ``cell_activity`` (modulated by the daily
confounder; habitual demand responds to good days more strongly than
price-sensitive demand, which is what biases naive uplift estimates toward
Always-heavy cells). Day-to-day variation is whether anyone shows up, not
customers switching type. This matches the paper's Table II composition:
the best method reaches ≈76 % incentive precision with almost no Always
leakage — impossible if strata were redrawn i.i.d. per day, natural when
habitual and price-sensitive demand occupy disjoint (station, hour) cells.

Because the model is generative we know every item's true stratum — the
ground truth the paper can only approximate by pre-training an NCF labeler.
Both evaluation paths are supported (see :mod:`repro.causal.strata`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..errors import ConfigError, DataError
from ..rng import RngFactory
from ..timeutils import SlotCalendar
from ..units import HOURS_PER_DAY


class Stratum(IntEnum):
    """The paper's three charging strata (§IV-A)."""

    NONE = 0
    INCENTIVE = 1
    ALWAYS = 2


#: Period-centre hours used for anchoring the strata probability curves
#: (centres of the paper's Fig. 12 periods).
_ANCHOR_HOURS = np.array([3.0, 9.0, 15.0, 21.0])


@dataclass(frozen=True)
class StationProfile:
    """Per-station personality applied on top of the global hourly curves."""

    station_id: int
    demand_scale: float = 1.0
    incentive_scale: float = 1.0
    always_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.station_id < 0:
            raise ConfigError(f"station_id must be non-negative, got {self.station_id}")
        for name in ("demand_scale", "incentive_scale", "always_scale"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")


@dataclass(frozen=True)
class ChargingConfig:
    """Parameters of the charging behaviour model.

    The anchor tuples give the mean *realised* probability of each stratum
    at the centre of the four six-hour periods (00–06, 06–12, 12–18,
    18–24); they default to values calibrated against the paper's Fig. 12
    pies. Cell-type probabilities are anchors divided by ``cell_activity``.
    """

    n_stations: int = 12
    always_anchors: tuple[float, float, float, float] = (0.10, 0.30, 0.33, 0.21)
    incentive_anchors: tuple[float, float, float, float] = (0.05, 0.04, 0.03, 0.48)
    cell_activity: float = 0.80
    activity_jitter: float = 0.22
    station_jitter: float = 0.15
    propensity_base: float = 0.12
    propensity_evening_boost: float = 0.72
    confounder_std: float = 0.12
    confounder_propensity_weight: float = 2.0
    confounder_always_weight: float = 1.5
    confounder_incentive_weight: float = 0.4
    session_energy_mean_kwh: float = 40.0
    session_energy_std_kwh: float = 10.0

    def __post_init__(self) -> None:
        if self.n_stations <= 0:
            raise ConfigError(f"n_stations must be positive, got {self.n_stations}")
        for anchors in (self.always_anchors, self.incentive_anchors):
            if len(anchors) != 4:
                raise ConfigError("anchor tuples must have exactly 4 entries")
            if any(not 0.0 <= a <= 1.0 for a in anchors):
                raise ConfigError("anchor probabilities must lie in [0, 1]")
        if not 0.0 < self.cell_activity <= 1.0:
            raise ConfigError("cell_activity must be in (0, 1]")
        if self.activity_jitter < 0:
            raise ConfigError("activity_jitter must be non-negative")
        for a, i in zip(self.always_anchors, self.incentive_anchors):
            if (a + i) / self.cell_activity >= 1.0:
                raise ConfigError(
                    "anchor probabilities divided by cell_activity must stay "
                    "below 1 (cell-type probabilities would overflow)"
                )
        if not 0.0 <= self.station_jitter < 0.5:
            raise ConfigError("station_jitter must be in [0, 0.5)")
        if not 0.0 < self.propensity_base < 1.0:
            raise ConfigError("propensity_base must be in (0, 1)")
        if self.propensity_evening_boost < 0:
            raise ConfigError("propensity_evening_boost must be non-negative")
        if self.confounder_std < 0:
            raise ConfigError("confounder_std must be non-negative")
        if self.session_energy_mean_kwh <= 0 or self.session_energy_std_kwh < 0:
            raise ConfigError("session energy parameters must be positive")


@dataclass(frozen=True)
class ChargingLog:
    """A flat log of (station, slot) items with treatments and outcomes.

    Attributes mirror the causal diagram: ``treated`` is ``T``, ``charged``
    is ``Y``, ``stratum`` is the latent ``Z`` (ground truth, unavailable to
    models in the paper's setting), ``confounder`` is the daily ``U``.
    """

    station_id: np.ndarray
    slot: np.ndarray
    hour_of_day: np.ndarray
    day_of_week: np.ndarray
    treated: np.ndarray
    charged: np.ndarray
    stratum: np.ndarray
    confounder: np.ndarray
    energy_kwh: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.station_id)
        for name in (
            "slot",
            "hour_of_day",
            "day_of_week",
            "treated",
            "charged",
            "stratum",
            "confounder",
            "energy_kwh",
        ):
            if len(getattr(self, name)) != n:
                raise DataError(f"charging log column {name} has inconsistent length")
        if n and not np.isin(np.unique(self.stratum), list(Stratum)).all():
            raise DataError("stratum column contains values outside the Stratum enum")

    def __len__(self) -> int:
        return len(self.station_id)

    @property
    def n_sessions(self) -> int:
        """Number of charging events (Y = 1 items)."""
        return int(self.charged.sum())

    def counts_by_hour(self) -> np.ndarray:
        """Charging-session counts per hour of day (paper Fig. 3)."""
        counts = np.zeros(HOURS_PER_DAY, dtype=int)
        hours = self.hour_of_day[self.charged == 1]
        np.add.at(counts, hours, 1)
        return counts

    def filter_station(self, station_id: int) -> "ChargingLog":
        """Items belonging to one station."""
        return self._mask(self.station_id == station_id)

    def split_by_day(self, boundary_day: int) -> tuple["ChargingLog", "ChargingLog"]:
        """Chronological train/test split at ``boundary_day`` (by slot)."""
        day = self.slot // HOURS_PER_DAY
        return self._mask(day < boundary_day), self._mask(day >= boundary_day)

    def _mask(self, mask: np.ndarray) -> "ChargingLog":
        return ChargingLog(
            station_id=self.station_id[mask],
            slot=self.slot[mask],
            hour_of_day=self.hour_of_day[mask],
            day_of_week=self.day_of_week[mask],
            treated=self.treated[mask],
            charged=self.charged[mask],
            stratum=self.stratum[mask],
            confounder=self.confounder[mask],
            energy_kwh=self.energy_kwh[mask],
        )


def _circular_interp(hours: np.ndarray, anchors: tuple[float, ...]) -> np.ndarray:
    """Smooth 24 h-periodic interpolation through the four anchor values."""
    hours = np.asarray(hours, dtype=float)
    # Extend anchors circularly so interpolation wraps midnight.
    xs = np.concatenate([_ANCHOR_HOURS - 24.0, _ANCHOR_HOURS, _ANCHOR_HOURS + 24.0])
    ys = np.tile(np.asarray(anchors, dtype=float), 3)
    return np.interp(hours, xs, ys)


class ChargingBehaviorModel:
    """The generative causal model of EV charging at the hub fleet."""

    def __init__(
        self,
        config: ChargingConfig | None = None,
        rng_factory: RngFactory | None = None,
        *,
        calendar: SlotCalendar | None = None,
        strata_scales: np.ndarray | None = None,
    ) -> None:
        self.config = config or ChargingConfig()
        self._factory = rng_factory or RngFactory(seed=0)
        self.calendar = calendar or SlotCalendar()
        self._strata_scales = self._validate_strata_scales(strata_scales)
        self._profiles = self._build_profiles()
        self._cell_types = self._build_cell_types()
        self._cell_activity = self._build_cell_activity()

    def _validate_strata_scales(
        self, scales: np.ndarray | None
    ) -> np.ndarray | None:
        """``(n_stations, 2)`` [incentive, always] multipliers, or ``None``.

        The multipliers reshape each station's cell-type *probabilities*
        only — the rng draw counts are fixed per station, so scaling one
        station never shifts another station's cell-type draws.
        """
        if scales is None:
            return None
        scales = np.asarray(scales, dtype=float)
        if scales.shape != (self.config.n_stations, 2):
            raise ConfigError(
                f"strata_scales must have shape ({self.config.n_stations}, 2),"
                f" got {scales.shape}"
            )
        if not np.isfinite(scales).all() or (scales <= 0).any():
            raise ConfigError("strata_scales entries must be finite and positive")
        return scales

    # ------------------------------------------------------------------ #
    # Station personalities                                               #
    # ------------------------------------------------------------------ #

    def _build_profiles(self) -> list[StationProfile]:
        rng = self._factory.stream("charging/profiles")
        jitter = self.config.station_jitter
        profiles = []
        for station_id in range(self.config.n_stations):
            profiles.append(
                StationProfile(
                    station_id=station_id,
                    demand_scale=float(np.clip(rng.normal(1.0, jitter), 0.6, 1.4)),
                    incentive_scale=float(np.clip(rng.normal(1.0, jitter), 0.6, 1.4)),
                    always_scale=float(np.clip(rng.normal(1.0, jitter), 0.6, 1.4)),
                )
            )
        return profiles

    @property
    def station_profiles(self) -> list[StationProfile]:
        """The fleet's station personalities (deterministic under the seed)."""
        return list(self._profiles)

    def _profile_for(self, station_id: int) -> StationProfile:
        if not 0 <= station_id < len(self._profiles):
            raise ConfigError(
                f"station_id {station_id} outside fleet of {len(self._profiles)}"
            )
        return self._profiles[station_id]

    # ------------------------------------------------------------------ #
    # Cell types                                                          #
    # ------------------------------------------------------------------ #

    def cell_type_probabilities(
        self, station_id: int, hours_of_day: np.ndarray
    ) -> np.ndarray:
        """(n, 3) probabilities a cell is [dead, price-sensitive, habitual]."""
        profile = self._profile_for(station_id)
        cfg = self.config
        hours = np.asarray(hours_of_day, dtype=float)
        extra_inc, extra_alw = (
            (1.0, 1.0)
            if self._strata_scales is None
            else self._strata_scales[station_id]
        )

        p_alw = (
            _circular_interp(hours, cfg.always_anchors)
            * profile.always_scale
            * extra_alw
            * profile.demand_scale
            / cfg.cell_activity
        )
        p_inc = (
            _circular_interp(hours, cfg.incentive_anchors)
            * profile.incentive_scale
            * extra_inc
            * profile.demand_scale
            / cfg.cell_activity
        )
        p_alw = np.clip(p_alw, 0.0, 0.95)
        p_inc = np.clip(p_inc, 0.0, 0.95)
        total = p_alw + p_inc
        overflow = total > 0.95
        if np.any(overflow):
            scale = np.where(overflow, 0.95 / total, 1.0)
            p_alw = p_alw * scale
            p_inc = p_inc * scale
        return np.column_stack([1.0 - p_alw - p_inc, p_inc, p_alw])

    def _build_cell_types(self) -> np.ndarray:
        """Persistent cell types: (n_stations, 48) for hour × weekend cells."""
        rng = self._factory.stream("charging/cells")
        hours = np.arange(HOURS_PER_DAY)
        types = np.empty((self.config.n_stations, 2 * HOURS_PER_DAY), dtype=int)
        for station_id in range(self.config.n_stations):
            probs = self.cell_type_probabilities(station_id, hours)
            # Independent draws for the weekday and weekend halves of the map.
            types[station_id, :HOURS_PER_DAY] = _sample_categorical(probs, rng)
            types[station_id, HOURS_PER_DAY:] = _sample_categorical(probs, rng)
        return types

    def cell_type_map(self) -> np.ndarray:
        """Copy of the persistent (station, hour×weekend) cell types."""
        return self._cell_types.copy()

    def _build_cell_activity(self) -> np.ndarray:
        """Persistent per-cell activity levels (heterogeneous demand depth).

        Real stations mix strong and weak demand pockets; the jitter puts
        some price-sensitive cells near the selection boundary, which is
        what separates good from mediocre uplift estimators in Table II.
        """
        rng = self._factory.stream("charging/activity")
        cfg = self.config
        raw = rng.normal(
            cfg.cell_activity,
            cfg.activity_jitter,
            size=(cfg.n_stations, 2 * HOURS_PER_DAY),
        )
        return np.clip(raw, 0.15, 0.98)

    def cell_activity_map(self) -> np.ndarray:
        """Copy of the persistent per-cell activity levels."""
        return self._cell_activity.copy()

    # ------------------------------------------------------------------ #
    # Activity and realised strata                                        #
    # ------------------------------------------------------------------ #

    def _activity(
        self,
        cell_types: np.ndarray,
        base_activity: np.ndarray,
        confounder: np.ndarray | float,
    ) -> np.ndarray:
        """Per-item activity probability given cell type, depth, and daily U."""
        cfg = self.config
        u = np.asarray(confounder, dtype=float)
        boost = np.where(
            cell_types == int(Stratum.ALWAYS),
            cfg.confounder_always_weight,
            cfg.confounder_incentive_weight,
        )
        return np.clip(base_activity * (1.0 + boost * u), 0.0, 1.0)

    def realize_strata(
        self,
        station_id: int,
        slots: np.ndarray,
        rng: np.random.Generator,
        *,
        confounder: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Realised strata for the given slots under the typed-cell process."""
        slots = np.asarray(slots)
        hod = np.asarray(self.calendar.hour_of_day(slots))
        weekend = np.asarray(self.calendar.is_weekend(slots)).astype(int)
        cells = hod + HOURS_PER_DAY * weekend
        cell_types = self._cell_types[station_id, cells]
        base_activity = self._cell_activity[station_id, cells]
        active = rng.random(len(slots)) < self._activity(
            cell_types, base_activity, confounder
        )
        return np.where(active, cell_types, int(Stratum.NONE)).astype(int)

    def stratum_probabilities(
        self,
        station_id: int,
        hours_of_day: np.ndarray,
        *,
        confounder: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """(n, 3) *marginal* [P(None), P(Incentive), P(Always)] per hour.

        Marginalises over the cell-type draw, so it reports the population
        curves used in Figs. 11/12-style plots; the realised process is
        :meth:`realize_strata`.
        """
        cfg = self.config
        type_probs = self.cell_type_probabilities(station_id, hours_of_day)
        u = np.asarray(confounder, dtype=float)
        act_inc = np.clip(
            cfg.cell_activity * (1.0 + cfg.confounder_incentive_weight * u), 0.0, 1.0
        )
        act_alw = np.clip(
            cfg.cell_activity * (1.0 + cfg.confounder_always_weight * u), 0.0, 1.0
        )
        p_inc = type_probs[:, int(Stratum.INCENTIVE)] * act_inc
        p_alw = type_probs[:, int(Stratum.ALWAYS)] * act_alw
        return np.column_stack([1.0 - p_inc - p_alw, p_inc, p_alw])

    def propensity(
        self,
        hours_of_day: np.ndarray,
        *,
        confounder: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Historical discount propensity ``P(T=1 | X, U)`` per hour.

        The logging policy discounted evenings more often (operators already
        suspected evening sensitivity) and is confounded by ``U``.
        """
        cfg = self.config
        hours = np.asarray(hours_of_day, dtype=float)
        evening = np.exp(-0.5 * (((hours - 21.0 + 12.0) % 24.0 - 12.0) / 3.0) ** 2)
        p = (
            cfg.propensity_base
            + cfg.propensity_evening_boost * evening
            + cfg.confounder_propensity_weight * np.asarray(confounder, dtype=float)
        )
        return np.clip(p, 0.02, 0.98)

    # ------------------------------------------------------------------ #
    # Log simulation                                                      #
    # ------------------------------------------------------------------ #

    def simulate_log(
        self,
        n_days: int,
        *,
        stations: list[int] | None = None,
        stream: str = "charging/log",
    ) -> ChargingLog:
        """Simulate the historical charging log over ``n_days`` days.

        One item per (station, hourly slot). Both the treatment assignment
        and the realised strata depend on the daily confounder, so the log
        exhibits genuine confounding bias.
        """
        if n_days < 0:
            raise ConfigError(f"n_days must be non-negative, got {n_days}")
        station_ids = stations if stations is not None else list(range(self.config.n_stations))
        rng = self._factory.stream(stream)

        n_slots = n_days * HOURS_PER_DAY
        slots = np.arange(n_slots)
        hod = np.asarray(self.calendar.hour_of_day(slots))
        dow = np.asarray(self.calendar.day_of_week(slots))
        day_index = slots // HOURS_PER_DAY

        daily_u = rng.normal(0.0, self.config.confounder_std, size=max(n_days, 1))
        u_per_slot = daily_u[day_index] if n_slots else np.empty(0)

        columns: dict[str, list[np.ndarray]] = {
            name: []
            for name in (
                "station_id",
                "slot",
                "hour_of_day",
                "day_of_week",
                "treated",
                "charged",
                "stratum",
                "confounder",
                "energy_kwh",
            )
        }

        for station_id in station_ids:
            strata = self.realize_strata(
                station_id, slots, rng, confounder=u_per_slot
            )
            propensity = self.propensity(hod, confounder=u_per_slot)
            treated = (rng.random(n_slots) < propensity).astype(int)
            charged = np.where(
                strata == Stratum.ALWAYS,
                1,
                np.where(strata == Stratum.INCENTIVE, treated, 0),
            )
            energy = np.where(
                charged == 1,
                np.maximum(
                    rng.normal(
                        self.config.session_energy_mean_kwh,
                        self.config.session_energy_std_kwh,
                        size=n_slots,
                    ),
                    5.0,
                ),
                0.0,
            )
            columns["station_id"].append(np.full(n_slots, station_id))
            columns["slot"].append(slots)
            columns["hour_of_day"].append(hod)
            columns["day_of_week"].append(dow)
            columns["treated"].append(treated)
            columns["charged"].append(charged)
            columns["stratum"].append(strata)
            columns["confounder"].append(u_per_slot)
            columns["energy_kwh"].append(energy)

        return ChargingLog(
            **{name: np.concatenate(parts) if parts else np.empty(0) for name, parts in columns.items()}
        )

    def sample_strata(
        self,
        station_id: int,
        slots: np.ndarray,
        rng: np.random.Generator,
        *,
        confounder: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Alias of :meth:`realize_strata` (used by the RL environment)."""
        return self.realize_strata(station_id, slots, rng, confounder=confounder)


def _sample_categorical(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Vectorised categorical sampling over rows of a probability matrix."""
    cumulative = np.cumsum(probs, axis=1)
    draws = rng.random(len(probs))[:, None]
    return (draws > cumulative[:, :-1]).sum(axis=1).astype(int)
