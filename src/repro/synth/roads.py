"""Synthetic road network and base-station placement (paper Fig. 1).

Fig. 1 overlays Texas main roads (OpenStreetMap) with base-station locations
(OpenCelliD) to argue that BS deployment tracks the road network. Offline we
reproduce the *measurable claim*: when BS sites are placed with a
road-biased density, the fraction of stations within a given distance of a
road far exceeds the uniform-placement baseline.

The road network is a jittered grid graph (networkx) over a square region;
roads are the graph's edges as line segments. Station placement draws from
a mixture: with probability ``road_bias`` a station is sampled near a random
road point (Gaussian offset), otherwise uniformly over the region.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..errors import ConfigError, DataError


@dataclass(frozen=True)
class RoadNetworkConfig:
    """Parameters of the synthetic region.

    Attributes
    ----------
    region_km:
        Side length of the square region.
    grid_size:
        Number of grid nodes per side of the backbone road grid.
    jitter_km:
        Positional jitter applied to grid nodes (makes roads non-axial).
    extra_edge_fraction:
        Fraction of random diagonal edges added on top of the grid
        (highways cutting across the lattice).
    """

    region_km: float = 100.0
    grid_size: int = 6
    jitter_km: float = 4.0
    extra_edge_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.region_km <= 0:
            raise ConfigError(f"region_km must be positive, got {self.region_km}")
        if self.grid_size < 2:
            raise ConfigError(f"grid_size must be at least 2, got {self.grid_size}")
        if self.jitter_km < 0:
            raise ConfigError("jitter_km must be non-negative")
        if not 0.0 <= self.extra_edge_fraction <= 1.0:
            raise ConfigError("extra_edge_fraction must be in [0, 1]")


@dataclass(frozen=True)
class RoadNetwork:
    """A road network: a graph plus the geometry of its segments."""

    graph: nx.Graph
    node_xy: dict[int, tuple[float, float]]
    region_km: float

    @property
    def segments(self) -> np.ndarray:
        """(n_edges, 4) array of segment endpoints [x1, y1, x2, y2]."""
        rows = []
        for u, v in self.graph.edges():
            x1, y1 = self.node_xy[u]
            x2, y2 = self.node_xy[v]
            rows.append((x1, y1, x2, y2))
        return np.asarray(rows, dtype=float)

    @property
    def total_length_km(self) -> float:
        """Total road length."""
        seg = self.segments
        return float(np.hypot(seg[:, 2] - seg[:, 0], seg[:, 3] - seg[:, 1]).sum())


def build_road_network(
    config: RoadNetworkConfig,
    rng: np.random.Generator,
) -> RoadNetwork:
    """Construct the jittered-grid road network."""
    n = config.grid_size
    spacing = config.region_km / (n - 1)
    graph = nx.grid_2d_graph(n, n)
    graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")

    node_xy: dict[int, tuple[float, float]] = {}
    for node, (i, j) in enumerate(sorted((i, j) for i in range(n) for j in range(n))):
        x = j * spacing + rng.normal(0.0, config.jitter_km)
        y = i * spacing + rng.normal(0.0, config.jitter_km)
        node_xy[node] = (
            float(np.clip(x, 0.0, config.region_km)),
            float(np.clip(y, 0.0, config.region_km)),
        )

    n_extra = int(config.extra_edge_fraction * graph.number_of_edges())
    nodes = list(graph.nodes())
    for _ in range(n_extra):
        u, v = rng.choice(nodes, size=2, replace=False)
        graph.add_edge(int(u), int(v))

    return RoadNetwork(graph=graph, node_xy=node_xy, region_km=config.region_km)


def point_segment_distance(
    points: np.ndarray,
    segments: np.ndarray,
) -> np.ndarray:
    """Distance from each point to its nearest segment.

    ``points`` is (n, 2); ``segments`` is (m, 4). Returns (n,) distances.
    """
    points = np.asarray(points, dtype=float)
    segments = np.asarray(segments, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise DataError(f"points must be (n, 2), got {points.shape}")
    if segments.ndim != 2 or segments.shape[1] != 4:
        raise DataError(f"segments must be (m, 4), got {segments.shape}")

    a = segments[:, :2]  # (m, 2)
    b = segments[:, 2:]  # (m, 2)
    ab = b - a
    ab_len_sq = np.maximum((ab**2).sum(axis=1), 1e-12)  # (m,)

    # Project every point on every segment: (n, m)
    ap = points[:, None, :] - a[None, :, :]
    t = np.clip((ap * ab[None, :, :]).sum(axis=2) / ab_len_sq[None, :], 0.0, 1.0)
    closest = a[None, :, :] + t[:, :, None] * ab[None, :, :]
    dist = np.sqrt(((points[:, None, :] - closest) ** 2).sum(axis=2))
    return dist.min(axis=1)


def place_stations(
    network: RoadNetwork,
    n_stations: int,
    rng: np.random.Generator,
    *,
    road_bias: float = 0.85,
    roadside_spread_km: float = 1.5,
) -> np.ndarray:
    """Sample ``n_stations`` BS coordinates, road-biased with prob ``road_bias``.

    Returns an (n_stations, 2) array. ``road_bias=0`` gives the uniform
    null model used as the comparison in the Fig. 1 experiment.
    """
    if n_stations < 0:
        raise ConfigError(f"n_stations must be non-negative, got {n_stations}")
    if not 0.0 <= road_bias <= 1.0:
        raise ConfigError(f"road_bias must be in [0, 1], got {road_bias}")
    if roadside_spread_km < 0:
        raise ConfigError("roadside_spread_km must be non-negative")

    segments = network.segments
    lengths = np.hypot(segments[:, 2] - segments[:, 0], segments[:, 3] - segments[:, 1])
    weights = lengths / lengths.sum()

    points = np.empty((n_stations, 2))
    near_road = rng.random(n_stations) < road_bias
    for index in range(n_stations):
        if near_road[index]:
            seg = segments[rng.choice(len(segments), p=weights)]
            t = rng.random()
            base = seg[:2] + t * (seg[2:] - seg[:2])
            offset = rng.normal(0.0, roadside_spread_km, size=2)
            points[index] = np.clip(base + offset, 0.0, network.region_km)
        else:
            points[index] = rng.uniform(0.0, network.region_km, size=2)
    return points


def near_road_fraction(
    network: RoadNetwork,
    stations: np.ndarray,
    *,
    threshold_km: float = 2.0,
) -> float:
    """Fraction of stations within ``threshold_km`` of any road."""
    if len(stations) == 0:
        return 0.0
    distances = point_segment_distance(stations, network.segments)
    return float((distances <= threshold_km).mean())
