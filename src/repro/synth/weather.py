"""Combined weather generation: the library's NSRDB-equivalent feed.

:class:`WeatherGenerator` bundles the solar and wind processes into a single
:class:`WeatherTrace` so the hub simulator and the DRL state (Eq. 24's
``weather`` vector) consume one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError, DataError
from ..rng import RngFactory
from ..timeutils import SlotCalendar
from .solar import SolarConfig, generate_irradiance
from .wind import WindConfig, generate_wind_speed


@dataclass(frozen=True)
class WeatherConfig:
    """Configuration for the combined weather feed."""

    solar: SolarConfig = field(default_factory=SolarConfig)
    wind: WindConfig = field(default_factory=WindConfig)


@dataclass(frozen=True)
class WeatherTrace:
    """Hourly weather observations.

    Attributes
    ----------
    irradiance_w_m2:
        Global horizontal irradiance per slot.
    wind_speed_m_s:
        Hub-height wind speed per slot.
    cloud_cover:
        Cloud-cover fraction per slot (kept for diagnostics; it is the
        paper's "unmeasured confounder U" realisation).
    """

    irradiance_w_m2: np.ndarray
    wind_speed_m_s: np.ndarray
    cloud_cover: np.ndarray

    def __post_init__(self) -> None:
        lengths = {
            len(self.irradiance_w_m2),
            len(self.wind_speed_m_s),
            len(self.cloud_cover),
        }
        if len(lengths) != 1:
            raise DataError(f"weather trace arrays disagree on length: {lengths}")
        if len(self.irradiance_w_m2) and self.irradiance_w_m2.min() < 0:
            raise DataError("irradiance must be non-negative")
        if len(self.wind_speed_m_s) and self.wind_speed_m_s.min() < 0:
            raise DataError("wind speed must be non-negative")

    def __len__(self) -> int:
        return len(self.irradiance_w_m2)

    def slice(self, start: int, stop: int) -> "WeatherTrace":
        """A sub-trace covering slots [start, stop)."""
        if not 0 <= start <= stop <= len(self):
            raise DataError(
                f"invalid slice [{start}, {stop}) for trace of length {len(self)}"
            )
        return WeatherTrace(
            irradiance_w_m2=self.irradiance_w_m2[start:stop],
            wind_speed_m_s=self.wind_speed_m_s[start:stop],
            cloud_cover=self.cloud_cover[start:stop],
        )

    def normalized_features(self) -> np.ndarray:
        """(n, 2) array of [irradiance/1000, wind/25] features for NN input."""
        return np.column_stack(
            [self.irradiance_w_m2 / 1000.0, self.wind_speed_m_s / 25.0]
        )


class WeatherGenerator:
    """Generates :class:`WeatherTrace` objects from a seeded factory.

    >>> gen = WeatherGenerator(WeatherConfig(), RngFactory(seed=1))
    >>> trace = gen.generate(48)
    >>> len(trace)
    48
    """

    def __init__(
        self,
        config: WeatherConfig | None = None,
        rng_factory: RngFactory | None = None,
        *,
        calendar: SlotCalendar | None = None,
    ) -> None:
        self.config = config or WeatherConfig()
        self._factory = rng_factory or RngFactory(seed=0)
        self.calendar = calendar or SlotCalendar()

    def generate(self, n_hours: int, *, stream: str = "weather") -> WeatherTrace:
        """Generate ``n_hours`` of weather using the named RNG stream."""
        if n_hours < 0:
            raise ConfigError(f"n_hours must be non-negative, got {n_hours}")
        solar_rng = self._factory.stream(f"{stream}/solar")
        wind_rng = self._factory.stream(f"{stream}/wind")
        irradiance, cover = generate_irradiance(
            n_hours, self.config.solar, solar_rng, calendar=self.calendar
        )
        wind_speed = generate_wind_speed(
            n_hours, self.config.wind, wind_rng, calendar=self.calendar
        )
        return WeatherTrace(
            irradiance_w_m2=irradiance,
            wind_speed_m_s=wind_speed,
            cloud_cover=cover,
        )
